#pragma once
// Strongly typed simulated time. All latencies in the Elastico/PBFT
// substrate and the MVCom scheduler are expressed in simulated seconds; a
// dedicated type prevents accidental mixing with iteration counts, epoch
// indices, or transaction counts.

#include <compare>
#include <limits>

namespace mvcom::common {

/// A point or duration on the simulated clock, in seconds.
/// Plain double under the hood; the wrapper exists for type safety in
/// interfaces, not for arithmetic ceremony — both roles (instant/duration)
/// share the type, mirroring how the paper treats latency values.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  explicit constexpr SimTime(double seconds) noexcept : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const noexcept { return seconds_; }

  /// Sentinel "never" — used for ping timeouts of failed committees (§V-A:
  /// "its connection latency can be tested as infinity").
  static constexpr SimTime infinity() noexcept {
    return SimTime(std::numeric_limits<double>::infinity());
  }
  static constexpr SimTime zero() noexcept { return SimTime(0.0); }

  [[nodiscard]] constexpr bool is_infinite() const noexcept {
    return seconds_ == std::numeric_limits<double>::infinity();
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  constexpr SimTime& operator+=(SimTime rhs) noexcept {
    seconds_ += rhs.seconds_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) noexcept {
    seconds_ -= rhs.seconds_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime(a.seconds_ + b.seconds_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime(a.seconds_ - b.seconds_);
  }
  friend constexpr SimTime operator*(double k, SimTime t) noexcept {
    return SimTime(k * t.seconds_);
  }

 private:
  double seconds_ = 0.0;
};

}  // namespace mvcom::common
