#pragma once
// Deterministic pseudo-random number generation for the MVCom simulator.
//
// Every stochastic component in this repository draws from an explicitly
// seeded engine so that traces, experiments, and tests are reproducible
// bit-for-bit across runs and machines. We implement xoshiro256** (public
// domain, Blackman & Vigna) seeded through SplitMix64, rather than relying on
// std::mt19937_64, because (a) the state is tiny and cheap to fork per
// component, and (b) the output sequence is fully specified — unlike the
// standard distributions, whose exact sequences are implementation-defined.
// All distribution transforms below are therefore hand-rolled and portable.

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include <cstddef>

namespace mvcom::common {

/// SplitMix64 — used solely to expand a 64-bit seed into engine state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — general-purpose 64-bit engine with 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Forks an independent child engine. The child's seed is drawn from this
  /// engine, so a single top-level seed deterministically derives the whole
  /// tree of per-component engines.
  Rng fork() noexcept { return Rng((*this)()); }

  /// Derives the `index`-th independent substream of `seed` *without* any
  /// shared engine state. fork() is inherently order-dependent — each child
  /// seed is a draw from the parent — which is fine inside one epoch where
  /// fork order is fixed, but breaks down when overlapped epochs must draw
  /// concurrently (the streaming pipeline runs formation for epoch e+1 while
  /// epoch e is still scheduling). stream() instead jumps the SplitMix64
  /// seeder ahead by `index` increments of its Weyl constant, so
  /// stream(seed, i) for distinct i are decorrelated, reproducible in any
  /// order, and never alias regardless of how many draws other streams made.
  static Rng stream(std::uint64_t seed, std::uint64_t index) noexcept {
    SplitMix64 sm(seed + 0x9e3779b97f4a7c15ULL * index);
    return Rng(sm.next());
  }

  // ---- Distribution transforms (portable, fully specified) ----

  /// Uniform real in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Fills `out` with uniform01() draws, consuming exactly out.size() engine
  /// steps in order. Batch form for hot loops (e.g. the Eq.-(8) timer race)
  /// where drawing into a flat scratch buffer keeps the transform loop that
  /// follows free of engine-state dependencies and lets it vectorize.
  void fill_uniform01(std::span<double> out) noexcept {
    for (double& v : out) v = uniform01();
  }

  /// Uniform integer in [0, n) using Lemire's multiply-shift rejection
  /// method (unbiased). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Bounded-Pareto variate on [lo, hi] with tail index alpha, by inverse
  /// CDF. The continuous analogue of the Zipf rank distribution — used for
  /// heavy-tailed sizes (account balances, burst magnitudes) where a hard
  /// upper bound must hold. Preconditions: 0 < lo < hi, alpha > 0.
  double bounded_pareto(double lo, double hi, double alpha) noexcept;

  /// Exponential variate with the given mean (= 1/rate). Used heavily by the
  /// SE algorithm's countdown timers (Eq. 8 of the paper) and by the PoW
  /// solve-latency model. Precondition: mean > 0.
  double exponential(double mean) noexcept;

  /// Fills `out` with exponential(mean) draws, consuming exactly out.size()
  /// engine steps. Batch discipline matches fill_uniform01: the uniforms are
  /// drawn first in engine order, then the −mean·log1p(−u) transform runs
  /// over the flat buffer in width-4 blocks plus a scalar tail, so the
  /// transform loop is free of engine-state dependencies and vectorizes.
  /// The output is pinned ULP-for-ULP to out.size() sequential
  /// exponential(mean) calls — every batch length, including the odd tails,
  /// is property-tested in tests/test_rng.cpp. Used by the Eq.-(8) timer
  /// race and the batched PBFT verification-delay kernel.
  void fill_exponential(std::span<double> out, double mean) noexcept;

  /// Standard normal variate (Marsaglia polar method, portable).
  double normal(double mu = 0.0, double sigma = 1.0) noexcept;

  /// Log-normal variate parameterized by the *target* mean and standard
  /// deviation of the log-normal itself (not of the underlying normal).
  double lognormal_mean_sd(double mean, double sd) noexcept;

  /// Poisson variate (Knuth for small lambda, normal approximation above 64).
  std::uint64_t poisson(double lambda) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) uniformly (partial Fisher–Yates).
  /// Precondition: k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  // Cached spare normal variate for the polar method.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Exact Zipf(s) sampler over the ranks {0, …, n−1}: P(k) ∝ 1/(k+1)^s.
/// Inverse-CDF: the normalized CDF is precomputed once (O(n)), each draw is
/// one uniform01() plus a binary search (O(log n)) — so the engine advances
/// exactly one step per variate, which keeps substream accounting trivial.
/// Construction is the only allocating operation; sampling is const and
/// safe to share across threads that each hold their own Rng.
class ZipfSampler {
 public:
  /// Preconditions: n >= 1, s >= 0 (s = 0 degenerates to uniform ranks).
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank, consuming exactly one engine step.
  [[nodiscard]] std::uint32_t operator()(Rng& rng) const noexcept;

  /// Fills `out` with ranks, consuming exactly out.size() engine steps in
  /// order — the batch form symmetric with Rng::fill_uniform01, so a batch
  /// fill and a draw loop produce identical sequences.
  void fill(Rng& rng, std::span<std::uint32_t> out) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double skew() const noexcept { return skew_; }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1.0
  double skew_ = 0.0;
};

}  // namespace mvcom::common
