#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <sstream>

namespace mvcom::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> sample) {
  RunningStats s;
  for (const double x : sample) s.add(x);
  return s.mean();
}

double percentile(std::span<const double> sample, double q) {
  assert(!sample.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> sample) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

std::vector<CdfPoint> cdf_at_quantiles(std::span<const double> sample,
                                       std::size_t points) {
  assert(points >= 2);
  std::vector<CdfPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({percentile(sample, q), q});
  }
  return out;
}

MeanCi mean_confidence_interval(std::span<const double> sample,
                                double confidence) {
  if (sample.empty()) {
    throw std::invalid_argument("mean_confidence_interval: empty sample");
  }
  double z = 0.0;
  if (confidence == 0.90) {
    z = 1.6449;
  } else if (confidence == 0.95) {
    z = 1.9600;
  } else if (confidence == 0.99) {
    z = 2.5758;
  } else {
    throw std::invalid_argument(
        "mean_confidence_interval: confidence must be 0.90/0.95/0.99");
  }
  RunningStats stats;
  for (const double x : sample) stats.add(x);
  MeanCi ci;
  ci.mean = stats.mean();
  ci.half_width = z * stats.stddev() /
                  std::sqrt(static_cast<double>(stats.count()));
  return ci;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  assert(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lower(std::size_t bin) const {
  assert(bin < counts_.size());
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::bin_upper(std::size_t bin) const {
  assert(bin < counts_.size());
  return lo_ + static_cast<double>(bin + 1) * width_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os << bin_lower(b) << ".." << bin_upper(b) << ": " << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace mvcom::common
