#include "common/rng.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <numeric>

namespace mvcom::common {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Bitmask-with-rejection: draw within the smallest enclosing power of two
  // and reject out-of-range values. Unbiased; expected < 2 draws.
  if (n == 1) return 0;
  const int bits = 64 - std::countl_zero(n - 1);
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  for (;;) {
    const std::uint64_t candidate = (*this)() & mask;
    if (candidate < n) return candidate;
  }
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // Inverse CDF; 1 - u in (0, 1] avoids log(0).
  return -mean * std::log1p(-uniform01());
}

void Rng::fill_exponential(std::span<double> out, double mean) noexcept {
  assert(mean > 0.0);
  // Engine phase first (sequential by construction), transform second. The
  // transform is the same -mean*log1p(-u) expression as exponential(), so
  // every lane is bitwise identical to the sequential draw; the blocked
  // shape only exists so the compiler can vectorize log1p across lanes.
  for (double& v : out) v = uniform01();
  constexpr std::size_t kWidth = 4;
  std::size_t i = 0;
  for (; i + kWidth <= out.size(); i += kWidth) {
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      out[i + lane] = -mean * std::log1p(-out[i + lane]);
    }
  }
  for (; i < out.size(); ++i) out[i] = -mean * std::log1p(-out[i]);
}

double Rng::normal(double mu, double sigma) noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return mu + sigma * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mu + sigma * u * factor;
}

double Rng::lognormal_mean_sd(double mean, double sd) noexcept {
  assert(mean > 0.0 && sd > 0.0);
  // Solve for the underlying normal parameters from the target moments:
  //   mean = exp(mu + sigma^2/2),  var = (exp(sigma^2)-1) exp(2mu+sigma^2).
  const double variance = sd * sd;
  const double sigma2 = std::log1p(variance / (mean * mean));
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double product = uniform01();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform01();
    }
    return count;
  }
  // Normal approximation with continuity correction — adequate for workload
  // synthesis where lambda is the per-block transaction count (~10^3).
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

double Rng::bounded_pareto(double lo, double hi, double alpha) noexcept {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
  // Inverse CDF of the truncated Pareto: F(x) = (1 − (lo/x)^a) / (1 − (lo/hi)^a).
  const double ratio = std::pow(lo / hi, alpha);
  const double u = uniform01();
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : skew_(s) {
  assert(n >= 1 && s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint32_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  // First k with cdf_[k] > u; u < 1 and cdf_.back() == 1 guarantee a hit.
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

void ZipfSampler::fill(Rng& rng, std::span<std::uint32_t> out) const noexcept {
  // Uniforms are drawn first, in engine order, so the transform loop below
  // is free of engine-state dependencies — the same discipline as
  // fill_uniform01. The sequence equals out.size() sequential draws.
  for (std::uint32_t& v : out) {
    const double u = rng.uniform01();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    v = static_cast<std::uint32_t>(it - cdf_.begin());
  }
}

}  // namespace mvcom::common
