#include "common/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <numeric>

namespace mvcom::common {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Bitmask-with-rejection: draw within the smallest enclosing power of two
  // and reject out-of-range values. Unbiased; expected < 2 draws.
  if (n == 1) return 0;
  const int bits = 64 - std::countl_zero(n - 1);
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  for (;;) {
    const std::uint64_t candidate = (*this)() & mask;
    if (candidate < n) return candidate;
  }
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // Inverse CDF; 1 - u in (0, 1] avoids log(0).
  return -mean * std::log1p(-uniform01());
}

double Rng::normal(double mu, double sigma) noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return mu + sigma * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mu + sigma * u * factor;
}

double Rng::lognormal_mean_sd(double mean, double sd) noexcept {
  assert(mean > 0.0 && sd > 0.0);
  // Solve for the underlying normal parameters from the target moments:
  //   mean = exp(mu + sigma^2/2),  var = (exp(sigma^2)-1) exp(2mu+sigma^2).
  const double variance = sd * sd;
  const double sigma2 = std::log1p(variance / (mean * mean));
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double product = uniform01();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform01();
    }
    return count;
  }
  // Normal approximation with continuity correction — adequate for workload
  // synthesis where lambda is the per-block transaction count (~10^3).
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace mvcom::common
