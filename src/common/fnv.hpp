#pragma once
// FNV-1a — the one hash the whole repository folds its determinism witnesses
// with. The DES order digest, the per-lane digest merge in the Elastico
// epoch, the x-shard commit/defer ledger digest, the adversary campaign
// decision digest, the checkpoint checksum, the obs event-stream digest, and
// the fabric wire-frame checksum all use the same two constants; this header
// is the single definition (previously each site re-declared them locally).
//
// Two folds are in use and both are part of the pinned contract
// (tests/test_fnv.cpp):
//   * fnv1a_bytes — the textbook byte-at-a-time FNV-1a over a buffer.
//   * fnv1a_mix   — the whole-word fold h' = (h ^ v64) * prime used to merge
//     64-bit digests/fields. NOT equivalent to feeding the 8 bytes one at a
//     time; it is its own (stable) variant, and every existing digest in the
//     repo depends on it staying exactly this.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace mvcom::common {

/// FNV-1a 64-bit offset basis — also the seed value of every digest fold.
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ULL;
/// FNV-1a 64-bit prime.
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// Whole-word fold: absorbs one 64-bit value into the running digest.
[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                                std::uint64_t v) noexcept {
  return (h ^ v) * kFnv1aPrime;
}

/// Byte fold: absorbs one byte into the running digest (textbook FNV-1a).
[[nodiscard]] constexpr std::uint64_t fnv1a_byte(std::uint64_t h,
                                                 std::uint8_t b) noexcept {
  return (h ^ b) * kFnv1aPrime;
}

/// Textbook FNV-1a over a byte buffer, continuing from digest `h`.
[[nodiscard]] constexpr std::uint64_t fnv1a_bytes(
    std::uint64_t h, std::span<const std::uint8_t> bytes) noexcept {
  for (const std::uint8_t b : bytes) h = fnv1a_byte(h, b);
  return h;
}

/// Textbook FNV-1a over a string's bytes, continuing from digest `h`.
[[nodiscard]] constexpr std::uint64_t fnv1a_bytes(
    std::uint64_t h, std::string_view bytes) noexcept {
  for (const char c : bytes) h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  return h;
}

/// One-shot textbook FNV-1a of a buffer (seeded with the offset basis).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::span<const std::uint8_t> bytes) noexcept {
  return fnv1a_bytes(kFnv1aBasis, bytes);
}
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  return fnv1a_bytes(kFnv1aBasis, bytes);
}

}  // namespace mvcom::common
