#pragma once
// Minimal CSV reading/writing for the transaction-trace dataset and for the
// experiment harness's series dumps. Deliberately simple: no quoting or
// embedded separators are needed by any producer in this repository, and the
// reader rejects rather than misparses such input.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace mvcom::common {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single line into fields separated by `sep`. Throws
/// std::invalid_argument on quote characters (unsupported dialect).
[[nodiscard]] CsvRow parse_csv_line(std::string_view line, char sep = ',');

/// Reads an entire file. If `expect_header` is true the first row is treated
/// as a header and returned separately. Throws std::runtime_error when the
/// file cannot be opened or rows have inconsistent arity.
struct CsvFile {
  CsvRow header;            // empty when expect_header was false
  std::vector<CsvRow> rows;
};
[[nodiscard]] CsvFile read_csv(const std::filesystem::path& path,
                               bool expect_header, char sep = ',');

/// Streaming CSV writer with RAII file ownership.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path, char sep = ',');
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& fields);

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps <fstream> out of this header
};

}  // namespace mvcom::common
