#pragma once
// RFC-4180-style CSV reading/writing for the transaction-trace dataset, the
// experiment harness's series dumps, and the observability exports. The
// dialect: fields containing the separator, a double quote, or a newline are
// enclosed in double quotes, and an embedded quote is doubled (""). The
// reader is strict — a stray quote inside an unquoted field, text after a
// closing quote, or an unterminated quoted field throws rather than
// misparses.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace mvcom::common {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Escapes one field for CSV output: returns the field quoted (with ""
/// escapes) when it contains `sep`, a quote, or a CR/LF; verbatim otherwise.
[[nodiscard]] std::string escape_csv_field(std::string_view field,
                                           char sep = ',');

/// Parses a single physical line into fields separated by `sep`, honoring
/// RFC-4180 quoting. Throws std::invalid_argument on malformed quoting or on
/// embedded CR/LF (a quoted field spanning lines needs read_csv, which sees
/// the whole stream).
[[nodiscard]] CsvRow parse_csv_line(std::string_view line, char sep = ',');

/// Reads an entire file. Quoted fields may span physical lines. If
/// `expect_header` is true the first record is treated as a header and
/// returned separately. Blank lines between records are skipped. Throws
/// std::runtime_error when the file cannot be opened or records have
/// inconsistent arity, std::invalid_argument on malformed quoting.
struct CsvFile {
  CsvRow header;            // empty when expect_header was false
  std::vector<CsvRow> rows;
};
[[nodiscard]] CsvFile read_csv(const std::filesystem::path& path,
                               bool expect_header, char sep = ',');

/// Streaming CSV writer with RAII file ownership. Fields are quoted via
/// escape_csv_field as needed, so round-trips through read_csv are lossless
/// for arbitrary field content (including separators and newlines).
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path, char sep = ',');
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& fields);

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps <fstream> out of this header
};

}  // namespace mvcom::common
