#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace mvcom::common {

struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t size = 0;
  std::atomic<std::size_t> next{0};       // claim cursor
  std::atomic<std::size_t> completed{0};  // finished-task count
  std::once_flag error_once;
  std::exception_ptr error;  // first exception thrown by any body call
};

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::drain(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.size) return;
    try {
      (*batch.body)(i);
    } catch (...) {
      std::call_once(batch.error_once,
                     [&batch] { batch.error = std::current_exception(); });
    }
    // Release so the submitter's acquire load of `completed` also sees any
    // captured error before rethrowing.
    batch.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
      batch = current_;  // shared_ptr copy keeps the batch alive past reset
    }
    if (!batch) continue;  // woke after the submitter already retired it
    drain(*batch);
    if (batch->completed.load(std::memory_order_acquire) == batch->size) {
      // Lock before notifying so the submitter cannot miss the wakeup
      // between its predicate check and its wait.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->size = n;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    current_ = batch;
    ++epoch_;
  }
  // Wake only as many workers as there are tasks beyond the submitter's own:
  // for small batches on a big pool the rest stay asleep. A skipped notify
  // is never lost work — sleeping workers re-check the epoch predicate on
  // their next wakeup, so they simply sit this batch out.
  const std::size_t to_wake = std::min(threads_.size(), n - 1);
  if (to_wake == threads_.size()) {
    wake_.notify_all();
  } else {
    for (std::size_t i = 0; i < to_wake; ++i) wake_.notify_one();
  }
  drain(*batch);  // the submitting thread participates in the batch
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return batch->completed.load(std::memory_order_acquire) == batch->size;
    });
    current_.reset();
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace mvcom::common
