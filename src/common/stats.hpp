#pragma once
// Streaming and batch statistics used across the simulator and the
// experiment harness: running moments (Welford), percentiles, empirical CDFs
// and fixed-width histograms. These back the CDF plots (Fig. 2b, Fig. 13) and
// the convergence-trace summaries of every experiment.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mvcom::common {

/// Numerically stable streaming moments (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty sample (matching
/// RunningStats::mean()). One Welford pass — benches previously hand-rolled
/// this loop; use this instead.
[[nodiscard]] double mean(std::span<const double> sample);

/// Linear-interpolated percentile of a sample, q in [0, 1].
/// Copies and sorts internally; intended for post-run analysis, not hot paths.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// One point of an empirical CDF: P[X <= value] = cumulative_probability.
struct CdfPoint {
  double value;
  double cumulative_probability;
};

/// Full empirical CDF of a sample (sorted values with step probabilities).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> sample);

/// Empirical CDF evaluated at a fixed number of evenly spaced quantiles —
/// compact representation for printing figure series.
[[nodiscard]] std::vector<CdfPoint> cdf_at_quantiles(
    std::span<const double> sample, std::size_t points);

/// Mean with a normal-approximation confidence interval (mean ± z·s/√n).
/// `confidence` ∈ {0.90, 0.95, 0.99} (the usual z table); other values
/// throw. Experiment harnesses report mean ± half_width.
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;
};
[[nodiscard]] MeanCi mean_confidence_interval(std::span<const double> sample,
                                              double confidence = 0.95);

/// Fixed-width histogram over [lo, hi]; out-of-range samples clamp to the
/// boundary bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Renders "lo..hi: count" lines — used by bench binaries for quick looks.
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mvcom::common
