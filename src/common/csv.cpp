#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mvcom::common {

namespace {

bool is_newline(char c) { return c == '\n' || c == '\r'; }

/// Parses one record starting at text[pos], advancing pos past the record's
/// terminating newline (LF, CRLF, or CR) or to end-of-input. Quoted fields
/// may contain separators, quotes (doubled), and newlines.
CsvRow parse_record(std::string_view text, std::size_t& pos, char sep) {
  CsvRow fields;
  std::string field;
  for (;;) {
    field.clear();
    if (pos < text.size() && text[pos] == '"') {
      ++pos;  // opening quote
      for (;;) {
        if (pos >= text.size()) {
          throw std::invalid_argument("unterminated quoted CSV field");
        }
        const char c = text[pos++];
        if (c == '"') {
          if (pos < text.size() && text[pos] == '"') {
            field += '"';  // "" escape
            ++pos;
          } else {
            break;  // closing quote
          }
        } else {
          field += c;
        }
      }
      if (pos < text.size() && text[pos] != sep && !is_newline(text[pos])) {
        throw std::invalid_argument(
            "unexpected character after closing quote in CSV field");
      }
    } else {
      while (pos < text.size() && text[pos] != sep && !is_newline(text[pos])) {
        if (text[pos] == '"') {
          throw std::invalid_argument(
              "stray quote inside unquoted CSV field");
        }
        field += text[pos++];
      }
    }
    fields.push_back(field);
    if (pos >= text.size()) return fields;
    if (text[pos] == sep) {
      ++pos;
      continue;
    }
    // Record terminator: LF, CRLF, or bare CR.
    if (text[pos] == '\r') {
      ++pos;
      if (pos < text.size() && text[pos] == '\n') ++pos;
    } else {
      ++pos;  // '\n'
    }
    return fields;
  }
}

}  // namespace

std::string escape_csv_field(std::string_view field, char sep) {
  const bool needs_quoting =
      field.find_first_of("\"\r\n") != std::string_view::npos ||
      field.find(sep) != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvRow parse_csv_line(std::string_view line, char sep) {
  std::size_t pos = 0;
  CsvRow row = parse_record(line, pos, sep);
  if (pos != line.size()) {
    // A record terminator mid-line means the "line" held embedded newlines.
    throw std::invalid_argument(
        "parse_csv_line: embedded newline (multi-line records need read_csv)");
  }
  return row;
}

CsvFile read_csv(const std::filesystem::path& path, bool expect_header,
                 char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open CSV file: " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  CsvFile file;
  std::size_t pos = 0;
  std::size_t arity = 0;
  bool first = true;
  while (pos < text.size()) {
    if (is_newline(text[pos])) {  // blank line between records
      if (text[pos] == '\r' && pos + 1 < text.size() &&
          text[pos + 1] == '\n') {
        ++pos;
      }
      ++pos;
      continue;
    }
    CsvRow row = parse_record(text, pos, sep);
    if (first) {
      arity = row.size();
      first = false;
      if (expect_header) {
        file.header = std::move(row);
        continue;
      }
    } else if (row.size() != arity) {
      throw std::runtime_error("inconsistent CSV arity in " + path.string());
    }
    file.rows.push_back(std::move(row));
  }
  return file;
}

struct CsvWriter::Impl {
  std::ofstream out;
  char sep;
};

CsvWriter::CsvWriter(const std::filesystem::path& path, char sep)
    : impl_(new Impl{std::ofstream(path, std::ios::binary), sep}) {
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("cannot open CSV file for writing: " +
                             path.string());
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  std::ostringstream os;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os << impl_->sep;
    os << escape_csv_field(fields[i], impl_->sep);
  }
  impl_->out << os.str() << '\n';
}

}  // namespace mvcom::common
