#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mvcom::common {

CsvRow parse_csv_line(std::string_view line, char sep) {
  if (line.find('"') != std::string_view::npos) {
    throw std::invalid_argument("quoted CSV fields are not supported");
  }
  CsvRow fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

CsvFile read_csv(const std::filesystem::path& path, bool expect_header,
                 char sep) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open CSV file: " + path.string());
  }
  CsvFile file;
  std::string line;
  std::size_t arity = 0;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    CsvRow row = parse_csv_line(line, sep);
    if (first) {
      arity = row.size();
      first = false;
      if (expect_header) {
        file.header = std::move(row);
        continue;
      }
    } else if (row.size() != arity) {
      throw std::runtime_error("inconsistent CSV arity in " + path.string());
    }
    file.rows.push_back(std::move(row));
  }
  return file;
}

struct CsvWriter::Impl {
  std::ofstream out;
  char sep;
};

CsvWriter::CsvWriter(const std::filesystem::path& path, char sep)
    : impl_(new Impl{std::ofstream(path), sep}) {
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("cannot open CSV file for writing: " +
                             path.string());
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  std::ostringstream os;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os << impl_->sep;
    os << fields[i];
  }
  impl_->out << os.str() << '\n';
}

}  // namespace mvcom::common
