#pragma once
// A small fixed-size worker pool for barrier-style data parallelism — the
// execution substrate behind the SE scheduler's Γ "distributed parallel
// execution threads" (paper §IV-D), the Elastico epoch's per-committee
// simulator lanes (ElasticoConfig::lane_workers, DESIGN.md §12), and any
// other fork/join hot path.
//
// Design:
//  * N workers are spawned once at construction and live for the pool's
//    lifetime — no per-batch thread spawn on the hot path.
//  * parallel_for(n, body) submits one batch of n index-tasks. Workers and
//    the CALLING thread claim indices from a shared atomic cursor, so the
//    caller is never idle while work remains, and a pool with zero workers
//    degenerates to an inline loop (handy for single-core hosts and for
//    keeping a single code path in callers).
//  * The call is a barrier: it returns only after every index has executed.
//  * Exceptions thrown by the body are captured; the first one is rethrown
//    from parallel_for after the barrier.
//
// The pool supports one batch at a time from one submitting thread; nested
// or concurrent parallel_for calls are not supported (the SE scheduler only
// ever submits between cooperation barriers, so this is not a limitation
// there).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mvcom::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads. Zero is valid: every batch then runs inline
  /// on the submitting thread.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

  /// Runs body(0), …, body(n−1) across the workers plus the calling thread
  /// and returns once all n calls have completed (barrier-style wait).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Batch;

  void worker_loop();
  static void drain(Batch& batch);

  std::mutex mutex_;
  std::condition_variable wake_;   // signals workers: new batch / shutdown
  std::condition_variable done_;   // signals the submitter: batch complete
  std::shared_ptr<Batch> current_;  // published under mutex_
  std::uint64_t epoch_ = 0;         // bumped per batch; workers wait on it
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mvcom::common
