#pragma once
// EpochSupervisor — the fault-tolerant deployment layer around
// OnlineCommitteeScheduler. The paper's deployment story (§V, Fig. 5–7,
// Theorem 2) is about surviving committee failures, stragglers, and rational
// misreporting; the bare scheduler trusts every claimed s_i and relies on
// callers to detect failures. The supervisor adds the three missing
// robustness subsystems:
//
//  1. Verified admission — committees submit a sharding::ShardSubmission
//     whose Merkle root binds per-block transaction counts. Submissions are
//     checked with verify_submission before their s_i ever reaches the
//     scheduling instance; a committee whose claimed s_i or root disagrees
//     is quarantined with a per-committee strike count. A later honest
//     submission re-admits it, until the strike budget is exhausted and the
//     committee is banned for the epoch. A verified-but-different
//     re-submission from a live committee (equivocation) also strikes.
//
//  2. Active failure detection — a heartbeat monitor driven by the DES
//     (sim::Simulator) using Network::ping_rtt, the §V-A failure detector:
//     pings that exceed a timeout (or are lost) count as missed; K
//     consecutive misses declare on_failure; probing backs off
//     exponentially while a committee is down, and a returning ping
//     triggers automatic on_recovery re-admitting the last verified report.
//     Fig. 9-style leave/rejoin thus emerges from the network model instead
//     of being scripted by the caller.
//
//  3. Graceful-degradation decide() — a documented fallback ladder so the
//     epoch always produces the best answer available at the DDL:
//       tier 1  SE best            converged/bootstrapped SE selection
//       tier 2  greedy repair      density repair of the (infeasible or
//                                  partial) SE selection
//       tier 3  greedy scratch     density greedy over the live set, with a
//                                  guaranteed minimal-feasible fill (the
//                                  N_min smallest shards) as last resort —
//                                  this tier succeeds whenever ANY feasible
//                                  selection exists
//       tier 4  permit all         everyone, if that happens to be feasible
//       tier 5  infeasible         with a machine-readable reason
//     After every failure the Theorem-2 perturbation bound
//     (analysis::failure_perturbation_bound) is evaluated at runtime and
//     surfaced in the decision, so callers can check that the observed
//     utility dip respects the theory.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/online.hpp"
#include "net/network.hpp"
#include "sharding/verification.hpp"
#include "sim/simulator.hpp"

namespace mvcom::obs {
class LogHistogram;
}  // namespace mvcom::obs

namespace mvcom::core {

/// Outcome of one submission presented to the supervisor.
enum class Admission {
  kAdmitted,      // verified and entered the scheduling instance
  kReadmitted,    // verified after an earlier quarantine/failure
  kQuarantined,   // verification failed or equivocation detected; struck
  kBanned,        // strike budget exhausted this epoch; dropped outright
  kDuplicate,     // identical re-submission from a live committee; ignored
  kRefused,       // wrapped scheduler refused (listening stopped at N_max)
};
[[nodiscard]] const char* to_string(Admission admission) noexcept;

/// Which rung of the degradation ladder produced the decision.
enum class DecisionTier {
  kSeBest,
  kGreedyRepair,
  kGreedyScratch,
  kPermitAll,
  kInfeasible,
};
[[nodiscard]] const char* to_string(DecisionTier tier) noexcept;

/// Why no feasible selection exists (tier 5 only).
enum class InfeasibleReason {
  kNone,                  // decision is feasible
  kNoLiveCommittees,      // nothing admitted (or everything failed)
  kNminUnreachable,       // fewer live committees than N_min
  kCapacityInsufficient,  // even the N_min smallest shards exceed Ĉ
};
[[nodiscard]] const char* to_string(InfeasibleReason reason) noexcept;

/// Risk-adaptive committee-sizing policy (Blockguard / Zhang et al.: the
/// committee structure must respond to the observed threat). The supervisor
/// keeps a scalar risk score fed by detectable adversary signals — strikes
/// (failed verifications + equivocations) and detector-declared failures —
/// and translates it into two defensive knobs:
///
///  * N_min escalation — raise the scheduler's N_min by one per
///    `escalation_step` of risk (up to `boost_cap`). A wider mandatory
///    selection under a binding capacity squeezes out inflated claims: the
///    knapsack must fit more committees, so a few huge (forged) shards can
///    no longer crowd out the honest ones.
///  * Strike-budget tightening — lower the effective max_strikes by one per
///    `tighten_step` of risk (floor 2 — a first offense never bans, else a
///    broad attack converts the membership into bans and collapses
///    liveness), so quarantine→ban escalation speeds up under attack.
///
/// Every resize is clamped so that feasible_selection_exists still holds on
/// the live reports at the raised N_min (and bootstrap stays reachable,
/// N_min < N_max): the defense must never cause an infeasible epoch that a
/// static supervisor would have solved. Each applied resize records
/// Theorem-2 perturbation accounting (ResizeRecord), extending the failure
/// bound to adaptive resizing: shrinking the feasible space perturbs the
/// stationary optimum by at most the best utility on the larger space.
struct RiskPolicyConfig {
  bool enabled = false;
  double strike_weight = 1.0;   // risk per strike
  double failure_weight = 0.5;  // risk per detector-declared failure
  double escalation_step = 2.0; // risk per +1 N_min
  std::size_t boost_cap = 8;    // max N_min raise over the static base
  double tighten_step = 4.0;    // risk per −1 effective max_strikes
  /// Cross-epoch decay applied to the risk score when exporting carry.
  double carry_decay = 0.5;
};

/// Theorem-2 accounting of one risk-adaptive N_min resize, mirroring
/// FailureRecord: the feasible-space change perturbs the certified optimum
/// by at most the best utility on the larger of the two spaces.
struct ResizeRecord {
  double sim_time_seconds = 0.0;
  std::size_t n_min_before = 0;
  std::size_t n_min_after = 0;
  double risk_score = 0.0;
  double utility_before = 0.0;
  double utility_after = 0.0;
  double perturbation_bound = 0.0;
  bool within_bound = true;
};

/// Cross-epoch supervision state: strike counts and bans survive epoch
/// boundaries (repeated equivocation escalates monotonically — a banned
/// committee stays banned), and the decayed risk score seeds the next
/// epoch's risk-adaptive policy.
struct SupervisorCarry {
  struct Entry {
    std::uint32_t committee_id = 0;
    int strikes = 0;
    bool banned = false;
  };
  std::vector<Entry> entries;  // ascending committee_id
  double risk = 0.0;
};

/// Runtime record of one committee failure and its Theorem-2 accounting.
struct FailureRecord {
  std::uint32_t committee_id = 0;
  double sim_time_seconds = 0.0;    // 0 when no monitor drives the clock
  double utility_before = 0.0;      // best ladder utility just before trim
  double utility_after = 0.0;       // best ladder utility on the trimmed set
  /// Theorem 2: ‖q*uᵀ − q̃uᵀ‖ ≤ max_{g∈G} U_g. The bound is evaluated with
  /// the best utility the ladder can certify on the trimmed space G.
  double perturbation_bound = 0.0;
  bool within_bound = true;         // |before − after| ≤ bound
};

/// Per-committee robustness state.
struct CommitteeHealth {
  bool admitted = false;      // currently contributing to the instance
  bool quarantined = false;   // last submission struck; awaiting honesty
  bool banned = false;        // strikes exhausted; refused for the epoch
  bool failed = false;        // declared failed (detector or caller)
  int strikes = 0;
  int missed_pings = 0;
  std::uint64_t verified_txs = 0;  // s_i of the last verified submission
  double ping_interval_seconds = 0.0;  // current (possibly backed-off)
};

struct SupervisorConfig {
  OnlineSchedulerConfig scheduler{};
  /// Strikes (failed verifications / equivocations) before a permanent
  /// epoch-scoped ban.
  int max_strikes = 3;
  /// Heartbeat monitor (§V-A ping failure detector).
  double ping_interval_seconds = 30.0;
  double ping_timeout_seconds = 12.0;
  int missed_pings_before_failure = 3;   // K
  double ping_backoff_factor = 2.0;      // while the committee is down
  double ping_interval_cap_seconds = 480.0;
  /// Risk-adaptive committee sizing (disabled by default — the static
  /// supervisor behaves exactly as before).
  RiskPolicyConfig risk{};
};

/// The epoch's final, tier-attributed answer.
struct SupervisedDecision {
  SchedulingDecision decision{};
  DecisionTier tier = DecisionTier::kInfeasible;
  InfeasibleReason reason = InfeasibleReason::kNoLiveCommittees;
  /// Max Theorem-2 bound across the epoch's failures (0 when none).
  double perturbation_bound = 0.0;
  /// True iff every recorded failure's utility dip respected its bound.
  bool theorem2_respected = true;
};

/// True iff some selection over `reports` satisfies both Eq. (3) and
/// Eq. (4): at least n_min reports exist and the n_min smallest shard sizes
/// fit in `capacity` (any feasible selection's n_min smallest members weigh
/// at least that much, so the test is exact). Used by the chaos harness to
/// certify that the ladder never reports infeasible while a feasible
/// selection exists.
[[nodiscard]] bool feasible_selection_exists(
    std::span<const txn::ShardReport> reports, std::uint64_t capacity,
    std::size_t n_min);

class EpochSupervisor {
 public:
  EpochSupervisor(SupervisorConfig config, std::uint64_t seed);

  /// Verified admission: checks the count-binding Merkle commitment, then
  /// feeds the *verified* s_i (never the raw claim) to the scheduler.
  Admission on_submission(const sharding::ShardSubmission& submission,
                          double formation_latency, double consensus_latency);

  /// Declares a committee failed (monitor-driven or manual §V-A signal).
  /// Records the Theorem-2 perturbation accounting when the committee was
  /// contributing to the instance.
  void on_failure(std::uint32_t committee_id);

  /// Declares a failed committee recovered; re-admits its last verified
  /// report unless it is quarantined/banned. Returns true when the report
  /// re-entered the instance.
  bool on_recovery(std::uint32_t committee_id);

  /// Opportunistic SE exploration (delegates to the wrapped scheduler).
  void explore(std::size_t iterations);

  /// Attaches the heartbeat monitor: `observer` is the final committee's
  /// node; registered committees are probed on `simulator`'s clock.
  void attach_monitor(sim::Simulator& simulator, net::Network& network,
                      net::NodeId observer);
  /// Maps a committee id to the network node that answers its pings and
  /// schedules its first probe (monitor must be attached first or the
  /// registration simply records the mapping).
  void register_committee_node(std::uint32_t committee_id, net::NodeId node);

  /// The graceful-degradation ladder (header comment). Const and
  /// side-effect-free on supervision state: callable at any instant, not
  /// only the DDL (attached observability instruments do record each call).
  [[nodiscard]] SupervisedDecision decide() const;

  /// Attaches observability; propagated into the wrapped online scheduler
  /// (and through it, the SE scheduler).
  void set_obs(obs::ObsContext obs);

  /// Adopts cross-epoch supervision state (call before any submission):
  /// carried strikes and bans pre-populate the health table — a committee
  /// banned last epoch is refused outright this epoch — and the carried
  /// risk score seeds the risk-adaptive policy.
  void adopt_carry(const SupervisorCarry& carry);
  /// Exports the state the next epoch's supervisor should adopt: every
  /// committee with strikes or a ban, plus the risk score decayed by
  /// RiskPolicyConfig::carry_decay.
  [[nodiscard]] SupervisorCarry export_carry() const;

  // -- Introspection -------------------------------------------------------
  [[nodiscard]] const OnlineCommitteeScheduler& scheduler() const noexcept {
    return scheduler_;
  }
  [[nodiscard]] std::optional<CommitteeHealth> health(
      std::uint32_t committee_id) const;
  [[nodiscard]] const std::vector<FailureRecord>& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] std::vector<std::uint32_t> quarantined_ids() const;
  [[nodiscard]] std::vector<std::uint32_t> banned_ids() const;
  [[nodiscard]] std::uint64_t failures_detected() const noexcept {
    return failures_detected_;
  }
  [[nodiscard]] std::uint64_t recoveries_detected() const noexcept {
    return recoveries_detected_;
  }
  /// Current risk score: carried risk + weighted strikes and failures.
  [[nodiscard]] double risk_score() const noexcept;
  /// Theorem-2 accounting of every applied risk-adaptive resize.
  [[nodiscard]] const std::vector<ResizeRecord>& resizes() const noexcept {
    return resizes_;
  }
  /// The (possibly risk-tightened) strike budget currently in force.
  [[nodiscard]] int effective_max_strikes() const noexcept;

 private:
  /// on_submission's admission logic; the public wrapper adds the
  /// observability record of the outcome.
  Admission admit_submission(const sharding::ShardSubmission& submission,
                             double formation_latency,
                             double consensus_latency);
  /// One verification failure or equivocation: increments the strike count,
  /// quarantines, evicts a live report, bans past the strike budget.
  void strike(std::uint32_t committee_id, CommitteeHealth& health);
  /// True iff banning one more committee leaves the unbanned membership at
  /// N_max or above — the line below which bans start costing usable
  /// members (and, continued, manufacture the next epoch's infeasibility).
  [[nodiscard]] bool ban_preserves_liveness() const noexcept;
  /// decide()'s pure ladder walk; the public wrapper records the outcome.
  [[nodiscard]] SupervisedDecision run_ladder() const;
  /// Best utility the ladder can certify right now (0 when infeasible).
  [[nodiscard]] double best_ladder_utility() const;
  void schedule_probe(std::uint32_t committee_id, double delay_seconds);
  void probe(std::uint32_t committee_id);
  /// Heartbeat-tick kernel: probes are never cancelled, so they ride the
  /// typed-event path (payload word a = committee id) and batch under the
  /// cohort executor when several committees tick at the same instant.
  static void heartbeat_thunk(void* ctx, const sim::TypedPayload* cohort,
                              std::size_t n);
  [[nodiscard]] double now_seconds() const;
  /// Re-evaluates the risk-adaptive N_min after any state change that moved
  /// the risk score or the live report set. The boost is clamped so a
  /// feasible selection still exists at the raised N_min and bootstrap stays
  /// reachable; applied resizes are recorded with Theorem-2 accounting.
  void update_risk_policy();

  SupervisorConfig config_;
  OnlineCommitteeScheduler scheduler_;
  common::Rng rng_;  // models probe loss under Network::loss_probability
  std::size_t base_n_min_ = 0;     // the static N_min the boost raises from
  std::uint64_t strikes_total_ = 0;
  double risk_carry_ = 0.0;        // adopted (decayed) prior-epoch risk
  std::vector<ResizeRecord> resizes_;
  std::map<std::uint32_t, CommitteeHealth> health_;
  std::map<std::uint32_t, txn::ShardReport> last_verified_;
  /// Ids whose report the wrapped scheduler saw fail (so re-admission goes
  /// through its recovery door, not the N_max-gated report door).
  std::map<std::uint32_t, bool> evicted_from_scheduler_;
  std::vector<FailureRecord> failures_;
  std::uint64_t failures_detected_ = 0;
  std::uint64_t recoveries_detected_ = 0;

  sim::Simulator* simulator_ = nullptr;  // non-owning; set by attach_monitor
  sim::KernelId heartbeat_kernel_{};     // registered by attach_monitor
  net::Network* network_ = nullptr;
  net::NodeId observer_ = 0;
  std::map<std::uint32_t, net::NodeId> node_of_;

  obs::ObsContext obs_;
  // Cached instruments, indexed by the enum values they label.
  std::array<obs::Counter*, 6> obs_admission_{};  // per Admission outcome
  std::array<obs::Counter*, 5> obs_tier_{};       // per DecisionTier rung
  obs::Counter* obs_strikes_ = nullptr;
  obs::Counter* obs_resizes_ = nullptr;
  obs::Counter* obs_failures_ = nullptr;
  obs::Counter* obs_recoveries_ = nullptr;
  obs::Counter* obs_probe_ok_ = nullptr;
  obs::Counter* obs_probe_missed_ = nullptr;
  obs::LogHistogram* obs_ping_rtt_ = nullptr;
};

}  // namespace mvcom::core
