#include "mvcom/fault_injection.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace mvcom::core {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kCrashRecover: return "crash-recover";
    case FaultKind::kStragglerDelay: return "straggler-delay";
    case FaultKind::kMisreport: return "misreport";
    case FaultKind::kEquivocate: return "equivocate";
    case FaultKind::kMessageLossBurst: return "message-loss-burst";
  }
  return "unknown";
}

FaultPlan FaultPlan::randomized(const FaultPlanConfig& config,
                                std::size_t num_committees,
                                common::Rng& rng) {
  FaultPlan plan;
  const auto draw = [&](FaultKind kind, std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      FaultEvent event;
      event.kind = kind;
      event.committee_id =
          static_cast<std::uint32_t>(rng.below(num_committees));
      event.at_seconds = rng.uniform(0.0, config.horizon_seconds);
      event.duration_seconds = rng.uniform(config.min_downtime_seconds,
                                           config.max_downtime_seconds);
      switch (kind) {
        case FaultKind::kStragglerDelay:
          event.magnitude = rng.uniform(1.0, config.max_slowdown);
          break;
        case FaultKind::kMisreport:
        case FaultKind::kEquivocate:
          event.magnitude = rng.uniform(1.0 + 1e-3, config.max_inflation);
          break;
        case FaultKind::kMessageLossBurst:
          event.magnitude = rng.uniform(0.0, config.max_loss_probability);
          break;
        case FaultKind::kCrash:
        case FaultKind::kCrashRecover:
          event.magnitude = 1.0;
          break;
      }
      plan.events.push_back(event);
    }
  };
  draw(FaultKind::kCrash, config.crashes);
  draw(FaultKind::kCrashRecover, config.crash_recovers);
  draw(FaultKind::kStragglerDelay, config.stragglers);
  draw(FaultKind::kMisreport, config.misreports);
  draw(FaultKind::kEquivocate, config.equivocations);
  draw(FaultKind::kMessageLossBurst, config.loss_bursts);
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at_seconds < b.at_seconds;
            });
  return plan;
}

std::vector<ChaosCommittee> chaos_committees_from_reports(
    std::span<const txn::ShardReport> reports) {
  std::vector<ChaosCommittee> committees;
  committees.reserve(reports.size());
  for (const txn::ShardReport& r : reports) {
    ChaosCommittee c;
    // One count-binding entry per shard suffices: the Merkle commitment is
    // over (hash, count) pairs, so the single entry binds the full s_i.
    c.submission = sharding::build_submission(
        r.committee_id,
        {{"shard-" + std::to_string(r.committee_id), r.tx_count}});
    c.formation_latency = r.formation_latency;
    c.consensus_latency = r.consensus_latency;
    committees.push_back(std::move(c));
  }
  return committees;
}

namespace {

/// Mutable in-flight state of one committee's submission.
struct PendingSubmission {
  sharding::ShardSubmission submission;
  double formation_latency = 0.0;
  double consensus_latency = 0.0;
  double deliver_at = 0.0;  // faults may push this back
  bool delivered = false;
};

/// Forges a verification-passing equivocation: the honest entries plus one
/// fabricated block, re-committed so root and count check out — only the
/// supervisor's equivocation tracking can catch it.
sharding::ShardSubmission forge_equivocation(
    const sharding::ShardSubmission& honest, double inflation) {
  std::vector<sharding::ShardEntry> entries = honest.entries;
  const std::uint64_t extra = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(honest.claimed_tx_count) *
             (inflation - 1.0)));
  entries.push_back({"forged-" + std::to_string(honest.committee_id), extra});
  return sharding::build_submission(honest.committee_id, std::move(entries));
}

/// Detaches the recorder's simulated clock on scope exit: the clock closure
/// captures the epoch's simulator, which dies before the recorder does.
struct SimClockGuard {
  obs::TraceRecorder* trace;
  ~SimClockGuard() {
    if (trace != nullptr) trace->set_sim_clock(nullptr);
  }
};

}  // namespace

ChaosReport run_chaos_epoch(const std::vector<ChaosCommittee>& committees,
                            const FaultPlan& plan, const ChaosConfig& config,
                            std::uint64_t seed) {
  common::Rng root(seed);
  sim::Simulator simulator;
  net::Network network(
      simulator, root.fork(),
      std::make_shared<net::ExponentialLatency>(
          common::SimTime(config.link_latency_mean_seconds)),
      committees.size() + 1);
  const net::NodeId observer = static_cast<net::NodeId>(committees.size());

  EpochSupervisor supervisor(config.supervisor, root());
  ChaosReport report;

  // Observability wiring. The sim clock must be detached before `simulator`
  // goes out of scope; the guard handles every exit path.
  obs::TraceRecorder* trace = config.obs.trace();
  SimClockGuard clock_guard{trace};
  if (trace != nullptr) {
    trace->set_sim_clock(
        [&simulator] { return simulator.now().seconds(); });
  }
  simulator.set_obs(config.obs);
  network.set_obs(config.obs);
  supervisor.set_obs(config.obs);
  if (trace != nullptr) {
    trace->instant("epoch", "epoch/start",
                   {{"committees", static_cast<double>(committees.size())},
                    {"ddl_s", config.ddl_seconds},
                    {"planned_faults", static_cast<double>(plan.events.size())}});
  }

  // Committee i answers pings on node i.
  std::vector<PendingSubmission> pending(committees.size());
  std::vector<net::NodeId> node_of_index(committees.size());
  for (std::size_t i = 0; i < committees.size(); ++i) {
    pending[i].submission = committees[i].submission;
    pending[i].formation_latency = committees[i].formation_latency;
    pending[i].consensus_latency = committees[i].consensus_latency;
    pending[i].deliver_at =
        committees[i].formation_latency + committees[i].consensus_latency;
    node_of_index[i] = static_cast<net::NodeId>(i);
    supervisor.register_committee_node(committees[i].submission.committee_id,
                                       node_of_index[i]);
  }
  supervisor.attach_monitor(simulator, network, observer);

  const auto index_of = [&](std::uint32_t committee_id) -> std::size_t {
    for (std::size_t i = 0; i < committees.size(); ++i) {
      if (committees[i].submission.committee_id == committee_id) return i;
    }
    return committees.size();
  };

  const auto count_admission = [&](Admission admission) {
    switch (admission) {
      case Admission::kAdmitted: ++report.admitted; break;
      case Admission::kReadmitted: ++report.readmitted; break;
      case Admission::kQuarantined:
      case Admission::kBanned: ++report.quarantine_events; break;
      case Admission::kDuplicate:
      case Admission::kRefused: ++report.refused; break;
    }
  };

  const auto submit = [&](std::size_t i,
                          const sharding::ShardSubmission& submission) {
    if (network.is_failed(node_of_index[i])) {
      ++report.dropped_submissions;  // a down node cannot send (§V-A)
      return;
    }
    count_admission(supervisor.on_submission(submission,
                                             pending[i].formation_latency,
                                             pending[i].consensus_latency));
  };

  // Submission delivery: re-check deliver_at so straggler faults that land
  // while the message is still "in preparation" push it back.
  std::function<void(std::size_t)> deliver = [&](std::size_t i) {
    if (pending[i].delivered) return;
    if (simulator.now().seconds() + 1e-9 < pending[i].deliver_at) {
      simulator.schedule_at(common::SimTime(pending[i].deliver_at),
                            [&deliver, i] { deliver(i); });
      return;
    }
    pending[i].delivered = true;
    submit(i, pending[i].submission);
  };
  for (std::size_t i = 0; i < committees.size(); ++i) {
    simulator.schedule_at(common::SimTime(pending[i].deliver_at),
                          [&deliver, i] { deliver(i); });
  }

  // Fault injection.
  for (const FaultEvent& event : plan.events) {
    const std::size_t i = event.kind == FaultKind::kMessageLossBurst
                              ? 0
                              : index_of(event.committee_id);
    if (event.kind != FaultKind::kMessageLossBurst &&
        i >= committees.size()) {
      continue;  // victim not part of this run
    }
    if (trace != nullptr) {
      // One sim-clocked instant per injected fault, at injection time.
      simulator.schedule_at(common::SimTime(event.at_seconds), [&, event] {
        trace->instant("fault", to_string(event.kind),
                       {{"committee_id", static_cast<double>(event.committee_id)},
                        {"magnitude", event.magnitude},
                        {"duration_s", event.duration_seconds}});
      });
    }
    switch (event.kind) {
      case FaultKind::kCrash:
        simulator.schedule_at(common::SimTime(event.at_seconds), [&, i] {
          network.set_failed(node_of_index[i], true);
        });
        break;
      case FaultKind::kCrashRecover:
        simulator.schedule_at(common::SimTime(event.at_seconds), [&, i] {
          network.set_failed(node_of_index[i], true);
        });
        simulator.schedule_at(
            common::SimTime(event.at_seconds + event.duration_seconds),
            [&, i] { network.set_failed(node_of_index[i], false); });
        break;
      case FaultKind::kStragglerDelay:
        simulator.schedule_at(
            common::SimTime(event.at_seconds), [&, i, event] {
              network.set_node_factor(node_of_index[i], event.magnitude);
              if (!pending[i].delivered) {
                pending[i].deliver_at = std::max(pending[i].deliver_at,
                                                 simulator.now().seconds()) +
                                        event.duration_seconds;
              }
            });
        break;
      case FaultKind::kMisreport:
        simulator.schedule_at(
            common::SimTime(event.at_seconds), [&, i, event] {
              if (!pending[i].delivered) {
                // Inflate the claim before it is ever sent; the Merkle
                // commitment still binds the honest counts, so admission
                // verification must catch the lie.
                auto& s = pending[i].submission;
                s.claimed_tx_count = static_cast<std::uint64_t>(
                    static_cast<double>(s.claimed_tx_count) *
                        event.magnitude +
                    1.0);
              } else {
                // Already admitted honestly: send the inflated claim now.
                sharding::ShardSubmission lie = committees[i].submission;
                lie.claimed_tx_count = static_cast<std::uint64_t>(
                    static_cast<double>(lie.claimed_tx_count) *
                        event.magnitude +
                    1.0);
                submit(i, lie);
              }
            });
        break;
      case FaultKind::kEquivocate:
        simulator.schedule_at(
            common::SimTime(event.at_seconds), [&, i, event] {
              submit(i, forge_equivocation(committees[i].submission,
                                           event.magnitude));
            });
        break;
      case FaultKind::kMessageLossBurst:
        simulator.schedule_at(common::SimTime(event.at_seconds), [&, event] {
          network.set_loss_probability(event.magnitude);
        });
        simulator.schedule_at(
            common::SimTime(event.at_seconds + event.duration_seconds),
            [&] { network.set_loss_probability(0.0); });
        break;
    }
  }

  // Exploration pump + timeline sampling + the acceptance-criterion check.
  const auto sample = [&] {
    const SupervisedDecision d = supervisor.decide();
    ChaosTimelinePoint point;
    point.at_seconds = simulator.now().seconds();
    point.feasible = d.decision.feasible;
    point.tier = d.tier;
    point.utility = d.decision.utility;
    report.timeline.push_back(point);
    if (!d.decision.feasible &&
        feasible_selection_exists(supervisor.scheduler().reports(),
                                  config.supervisor.scheduler.capacity,
                                  supervisor.scheduler().n_min())) {
      report.infeasible_while_feasible = true;
    }
  };
  std::function<void()> tick = [&] {
    supervisor.explore(config.iterations_per_tick);
    sample();
    const double next =
        simulator.now().seconds() + config.explore_tick_seconds;
    if (next < config.ddl_seconds) {
      simulator.schedule_at(common::SimTime(next), tick);
    }
  };
  simulator.schedule_at(common::SimTime(config.explore_tick_seconds), tick);

  simulator.run_until(common::SimTime(config.ddl_seconds));

  report.final_decision = supervisor.decide();
  sample();  // include the DDL instant itself in the timeline/criterion
  if (trace != nullptr) {
    trace->instant(
        "epoch", "epoch/decide",
        {{"tier", static_cast<double>(report.final_decision.tier)},
         {"feasible", report.final_decision.decision.feasible ? 1.0 : 0.0},
         {"utility", report.final_decision.decision.utility},
         {"permitted", static_cast<double>(
                           report.final_decision.decision.permitted_ids.size())}});
    // The whole epoch as one span (complete() records at the end; the
    // exporter rewinds the start by the duration, so this bar covers
    // [0, now] on the sim-time track in Perfetto).
    trace->complete(
        "epoch", "epoch/span", simulator.now().seconds(),
        {{"tier", static_cast<double>(report.final_decision.tier)},
         {"utility", report.final_decision.decision.utility}});
  }
  report.failures = supervisor.failures();
  report.quarantined_ids = supervisor.quarantined_ids();
  report.banned_ids = supervisor.banned_ids();
  report.failures_detected = supervisor.failures_detected();
  report.recoveries_detected = supervisor.recoveries_detected();
  return report;
}

}  // namespace mvcom::core
