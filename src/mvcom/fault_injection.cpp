#include "mvcom/fault_injection.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace mvcom::core {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kCrashRecover: return "crash-recover";
    case FaultKind::kStragglerDelay: return "straggler-delay";
    case FaultKind::kMisreport: return "misreport";
    case FaultKind::kEquivocate: return "equivocate";
    case FaultKind::kMessageLossBurst: return "message-loss-burst";
    case FaultKind::kForgeSubmission: return "forge-submission";
    case FaultKind::kJoin: return "join";
    case FaultKind::kLeave: return "leave";
  }
  return "unknown";
}

FaultPlan FaultPlan::randomized(const FaultPlanConfig& config,
                                std::size_t num_committees, common::Rng& rng,
                                std::size_t num_reserve) {
  FaultPlan plan;
  const auto draw = [&](FaultKind kind, std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      FaultEvent event;
      event.kind = kind;
      // Live-rank targeting: with no churn events the live order equals the
      // input order, so these plans reproduce the pre-churn harness exactly.
      event.victim = FaultEvent::Victim::kByLiveRank;
      event.committee_id = kind == FaultKind::kJoin
                               ? static_cast<std::uint32_t>(
                                     rng.below(std::max<std::size_t>(
                                         1, num_reserve)))
                               : static_cast<std::uint32_t>(
                                     rng.below(num_committees));
      event.at_seconds = rng.uniform(0.0, config.horizon_seconds);
      event.duration_seconds = rng.uniform(config.min_downtime_seconds,
                                           config.max_downtime_seconds);
      switch (kind) {
        case FaultKind::kStragglerDelay:
          event.magnitude = rng.uniform(1.0, config.max_slowdown);
          break;
        case FaultKind::kMisreport:
        case FaultKind::kEquivocate:
        case FaultKind::kForgeSubmission:
          event.magnitude = rng.uniform(1.0 + 1e-3, config.max_inflation);
          break;
        case FaultKind::kMessageLossBurst:
          event.magnitude = rng.uniform(0.0, config.max_loss_probability);
          break;
        case FaultKind::kCrash:
        case FaultKind::kCrashRecover:
        case FaultKind::kJoin:
        case FaultKind::kLeave:
          event.magnitude = 1.0;
          break;
      }
      plan.events.push_back(event);
    }
  };
  draw(FaultKind::kCrash, config.crashes);
  draw(FaultKind::kCrashRecover, config.crash_recovers);
  draw(FaultKind::kStragglerDelay, config.stragglers);
  draw(FaultKind::kMisreport, config.misreports);
  draw(FaultKind::kEquivocate, config.equivocations);
  draw(FaultKind::kMessageLossBurst, config.loss_bursts);
  draw(FaultKind::kForgeSubmission, config.forgeries);
  draw(FaultKind::kJoin, num_reserve > 0 ? config.joins : 0);
  draw(FaultKind::kLeave, config.leaves);
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at_seconds < b.at_seconds;
            });
  return plan;
}

std::vector<ChaosCommittee> chaos_committees_from_reports(
    std::span<const txn::ShardReport> reports) {
  std::vector<ChaosCommittee> committees;
  committees.reserve(reports.size());
  for (const txn::ShardReport& r : reports) {
    ChaosCommittee c;
    // One count-binding entry per shard suffices: the Merkle commitment is
    // over (hash, count) pairs, so the single entry binds the full s_i.
    c.submission = sharding::build_submission(
        r.committee_id,
        {{"shard-" + std::to_string(r.committee_id), r.tx_count}});
    c.formation_latency = r.formation_latency;
    c.consensus_latency = r.consensus_latency;
    committees.push_back(std::move(c));
  }
  return committees;
}

namespace {

/// Mutable in-flight state of one committee's submission.
struct PendingSubmission {
  sharding::ShardSubmission submission;
  double formation_latency = 0.0;
  double consensus_latency = 0.0;
  double deliver_at = 0.0;  // faults may push this back
  bool delivered = false;
};

/// Forges a verification-passing equivocation: the honest entries plus one
/// fabricated block, re-committed so root and count check out — only the
/// supervisor's equivocation tracking can catch it.
sharding::ShardSubmission forge_equivocation(
    const sharding::ShardSubmission& honest, double inflation) {
  std::vector<sharding::ShardEntry> entries = honest.entries;
  const std::uint64_t extra = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(honest.claimed_tx_count) *
             (inflation - 1.0)));
  entries.push_back({"forged-" + std::to_string(honest.committee_id), extra});
  return sharding::build_submission(honest.committee_id, std::move(entries));
}

/// Detaches the recorder's simulated clock on scope exit: the clock closure
/// captures the epoch's simulator, which dies before the recorder does.
struct SimClockGuard {
  obs::TraceRecorder* trace;
  ~SimClockGuard() {
    if (trace != nullptr) trace->set_sim_clock(nullptr);
  }
};

}  // namespace

ChaosReport run_chaos_epoch(const std::vector<ChaosCommittee>& committees,
                            const FaultPlan& plan, const ChaosConfig& config,
                            std::uint64_t seed) {
  common::Rng root(seed);
  sim::Simulator simulator;
  // Network nodes are fixed at construction, so the reserve pool gets its
  // nodes up front: [initial members][reserve][observer].
  const std::size_t total_members = committees.size() + config.reserve.size();
  net::Network network(
      simulator, root.fork(),
      std::make_shared<net::ExponentialLatency>(
          common::SimTime(config.link_latency_mean_seconds)),
      total_members + 1);
  const net::NodeId observer = static_cast<net::NodeId>(total_members);

  EpochSupervisor supervisor(config.supervisor, root());
  if (config.carry_in != nullptr) supervisor.adopt_carry(*config.carry_in);
  ChaosReport report;

  // Observability wiring. The sim clock must be detached before `simulator`
  // goes out of scope; the guard handles every exit path.
  obs::TraceRecorder* trace = config.obs.trace();
  SimClockGuard clock_guard{trace};
  if (trace != nullptr) {
    trace->set_sim_clock(
        [&simulator] { return simulator.now().seconds(); });
  }
  simulator.set_obs(config.obs);
  network.set_obs(config.obs);
  supervisor.set_obs(config.obs);
  if (trace != nullptr) {
    trace->instant("epoch", "epoch/start",
                   {{"committees", static_cast<double>(committees.size())},
                    {"ddl_s", config.ddl_seconds},
                    {"planned_faults", static_cast<double>(plan.events.size())}});
  }

  // Member i answers pings on node i; the first committees.size() members
  // form the epoch-start membership, the rest are the kJoin reserve.
  struct MemberState {
    sharding::ShardSubmission honest;  // as provided by the caller
    PendingSubmission pending;
    net::NodeId node = 0;
    bool member = false;  // currently part of the membership
    bool left = false;    // departed for good (kLeave)
  };
  std::vector<MemberState> members(total_members);
  std::vector<std::size_t> live_order;  // membership in join order
  live_order.reserve(total_members);
  const auto setup_member = [&](std::size_t i, const ChaosCommittee& c) {
    members[i].honest = c.submission;
    members[i].pending.submission = c.submission;
    members[i].pending.formation_latency = c.formation_latency;
    members[i].pending.consensus_latency = c.consensus_latency;
    members[i].pending.deliver_at = c.formation_latency + c.consensus_latency;
    members[i].node = static_cast<net::NodeId>(i);
  };
  for (std::size_t i = 0; i < committees.size(); ++i) {
    setup_member(i, committees[i]);
    members[i].member = true;
    live_order.push_back(i);
    supervisor.register_committee_node(members[i].honest.committee_id,
                                       members[i].node);
  }
  for (std::size_t j = 0; j < config.reserve.size(); ++j) {
    setup_member(committees.size() + j, config.reserve[j]);
  }
  supervisor.attach_monitor(simulator, network, observer);

  // Satellite fix: victims resolve against the LIVE membership at fire time,
  // not the epoch-start population — an event whose victim already left (or
  // never joined) is skipped and counted, never applied to a stale index.
  const auto resolve_victim = [&](const FaultEvent& event) -> std::size_t {
    if (event.victim == FaultEvent::Victim::kByLiveRank) {
      return event.committee_id < live_order.size()
                 ? live_order[event.committee_id]
                 : members.size();
    }
    for (const std::size_t i : live_order) {
      if (members[i].honest.committee_id == event.committee_id) return i;
    }
    return members.size();
  };

  const auto count_admission = [&](Admission admission) {
    switch (admission) {
      case Admission::kAdmitted: ++report.admitted; break;
      case Admission::kReadmitted: ++report.readmitted; break;
      case Admission::kQuarantined:
      case Admission::kBanned: ++report.quarantine_events; break;
      case Admission::kDuplicate:
      case Admission::kRefused: ++report.refused; break;
    }
  };

  const auto submit = [&](std::size_t i,
                          const sharding::ShardSubmission& submission) {
    if (members[i].left) return;
    if (network.is_failed(members[i].node)) {
      ++report.dropped_submissions;  // a down node cannot send (§V-A)
      return;
    }
    count_admission(
        supervisor.on_submission(submission,
                                 members[i].pending.formation_latency,
                                 members[i].pending.consensus_latency));
  };

  // Submission delivery: re-check deliver_at so straggler faults that land
  // while the message is still "in preparation" push it back.
  std::function<void(std::size_t)> deliver = [&](std::size_t i) {
    if (members[i].pending.delivered || members[i].left) return;
    if (simulator.now().seconds() + 1e-9 < members[i].pending.deliver_at) {
      simulator.schedule_at(common::SimTime(members[i].pending.deliver_at),
                            [&deliver, i] { deliver(i); });
      return;
    }
    members[i].pending.delivered = true;
    submit(i, members[i].pending.submission);
  };
  for (std::size_t i = 0; i < committees.size(); ++i) {
    simulator.schedule_at(common::SimTime(members[i].pending.deliver_at),
                          [&deliver, i] { deliver(i); });
  }

  // Fault injection. Each event fires as one sim event at its at_seconds;
  // the victim is resolved then (against the live membership), the trace
  // instant emitted, and the kind's action applied.
  const auto fire = [&](const FaultEvent& event) {
    // kJoin addresses the reserve pool, everything victimful the live set.
    std::size_t i = members.size();
    if (event.kind == FaultKind::kJoin) {
      const std::size_t slot = committees.size() + event.committee_id;
      if (slot < members.size() && !members[slot].member &&
          !members[slot].left) {
        i = slot;
      }
    } else if (event.kind != FaultKind::kMessageLossBurst) {
      i = resolve_victim(event);
    }
    if (event.kind != FaultKind::kMessageLossBurst && i >= members.size()) {
      ++report.skipped_events;
      if (trace != nullptr) {
        trace->instant(
            "fault", "fault/skipped",
            {{"kind", static_cast<double>(event.kind)},
             {"committee_id", static_cast<double>(event.committee_id)}});
      }
      return;
    }
    if (trace != nullptr) {
      trace->instant("fault", to_string(event.kind),
                     {{"committee_id", static_cast<double>(event.committee_id)},
                      {"magnitude", event.magnitude},
                      {"duration_s", event.duration_seconds}});
    }
    switch (event.kind) {
      case FaultKind::kCrash:
        network.set_failed(members[i].node, true);
        break;
      case FaultKind::kCrashRecover:
        network.set_failed(members[i].node, true);
        simulator.schedule_after(common::SimTime(event.duration_seconds),
                                 [&network, &members, i] {
                                   if (!members[i].left) {
                                     network.set_failed(members[i].node,
                                                        false);
                                   }
                                 });
        break;
      case FaultKind::kStragglerDelay:
        network.set_node_factor(members[i].node, event.magnitude);
        if (!members[i].pending.delivered) {
          members[i].pending.deliver_at =
              std::max(members[i].pending.deliver_at,
                       simulator.now().seconds()) +
              event.duration_seconds;
        }
        break;
      case FaultKind::kMisreport:
        if (!members[i].pending.delivered) {
          // Inflate the claim before it is ever sent; the Merkle commitment
          // still binds the honest counts, so admission verification must
          // catch the lie.
          auto& s = members[i].pending.submission;
          s.claimed_tx_count = static_cast<std::uint64_t>(
              static_cast<double>(s.claimed_tx_count) * event.magnitude +
              1.0);
        } else {
          // Already admitted honestly: send the inflated claim now.
          sharding::ShardSubmission lie = members[i].honest;
          lie.claimed_tx_count = static_cast<std::uint64_t>(
              static_cast<double>(lie.claimed_tx_count) * event.magnitude +
              1.0);
          submit(i, lie);
        }
        break;
      case FaultKind::kEquivocate:
        submit(i, forge_equivocation(members[i].honest, event.magnitude));
        break;
      case FaultKind::kForgeSubmission:
        if (!members[i].pending.delivered) {
          // The forgery replaces the honest report outright: the single
          // submission that ever arrives verifies (the commitment is over
          // the fabricated entries), so admission cannot catch it — only a
          // later differing verified submission would.
          members[i].pending.submission =
              forge_equivocation(members[i].honest, event.magnitude);
        } else {
          // Too late to suppress the honest report: the forgery lands as a
          // second verified submission and is struck as an equivocation.
          submit(i, forge_equivocation(members[i].honest, event.magnitude));
        }
        break;
      case FaultKind::kJoin:
        members[i].member = true;
        live_order.push_back(i);
        supervisor.register_committee_node(members[i].honest.committee_id,
                                           members[i].node);
        // Joining IS reporting (Fig. 14): the join event delivers the
        // committee's report now. Admission may still refuse it (N_max).
        members[i].pending.delivered = true;
        submit(i, members[i].pending.submission);
        ++report.joins;
        break;
      case FaultKind::kLeave:
        members[i].member = false;
        members[i].left = true;
        live_order.erase(
            std::find(live_order.begin(), live_order.end(), i));
        network.set_failed(members[i].node, true);
        members[i].pending.delivered = true;  // never sends
        ++report.leaves;
        break;
      case FaultKind::kMessageLossBurst:
        network.set_loss_probability(event.magnitude);
        simulator.schedule_after(
            common::SimTime(event.duration_seconds),
            [&network] { network.set_loss_probability(0.0); });
        break;
    }
  };
  for (const FaultEvent& event : plan.events) {
    simulator.schedule_at(common::SimTime(event.at_seconds),
                          [&fire, event] { fire(event); });
  }

  // Exploration pump + timeline sampling + the acceptance-criterion check.
  const auto sample = [&] {
    const SupervisedDecision d = supervisor.decide();
    ChaosTimelinePoint point;
    point.at_seconds = simulator.now().seconds();
    point.feasible = d.decision.feasible;
    point.tier = d.tier;
    point.utility = d.decision.utility;
    report.timeline.push_back(point);
    if (!d.decision.feasible &&
        feasible_selection_exists(supervisor.scheduler().reports(),
                                  config.supervisor.scheduler.capacity,
                                  supervisor.scheduler().n_min())) {
      report.infeasible_while_feasible = true;
    }
  };
  std::function<void()> tick = [&] {
    supervisor.explore(config.iterations_per_tick);
    sample();
    const double next =
        simulator.now().seconds() + config.explore_tick_seconds;
    if (next < config.ddl_seconds) {
      simulator.schedule_at(common::SimTime(next), tick);
    }
  };
  simulator.schedule_at(common::SimTime(config.explore_tick_seconds), tick);

  simulator.run_until(common::SimTime(config.ddl_seconds));

  report.final_decision = supervisor.decide();
  sample();  // include the DDL instant itself in the timeline/criterion
  if (trace != nullptr) {
    trace->instant(
        "epoch", "epoch/decide",
        {{"tier", static_cast<double>(report.final_decision.tier)},
         {"feasible", report.final_decision.decision.feasible ? 1.0 : 0.0},
         {"utility", report.final_decision.decision.utility},
         {"permitted", static_cast<double>(
                           report.final_decision.decision.permitted_ids.size())}});
    // The whole epoch as one span (complete() records at the end; the
    // exporter rewinds the start by the duration, so this bar covers
    // [0, now] on the sim-time track in Perfetto).
    trace->complete(
        "epoch", "epoch/span", simulator.now().seconds(),
        {{"tier", static_cast<double>(report.final_decision.tier)},
         {"utility", report.final_decision.decision.utility}});
  }
  report.failures = supervisor.failures();
  report.quarantined_ids = supervisor.quarantined_ids();
  report.banned_ids = supervisor.banned_ids();
  report.failures_detected = supervisor.failures_detected();
  report.recoveries_detected = supervisor.recoveries_detected();
  report.final_reports = supervisor.scheduler().reports();
  report.resizes = supervisor.resizes();
  report.effective_n_min = supervisor.scheduler().n_min();
  report.risk_score = supervisor.risk_score();
  report.carry_out = supervisor.export_carry();
  return report;
}

}  // namespace mvcom::core
