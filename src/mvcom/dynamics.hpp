#pragma once
// Online dynamics harness: drives an SeScheduler iteration-by-iteration
// while injecting committee join/leave (failure/recovery) events at chosen
// iterations — the setup behind Fig. 9 (leave & rejoin; consecutive joins)
// and Fig. 14 (online execution with consecutive joining).
//
// Also implements the cross-epoch rule of Fig. 3: a committee refused at
// epoch j re-enters epoch j+1 with its two-phase latency reduced by the
// previous deadline, making it more likely to be permitted next time.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"
#include "mvcom/se_scheduler.hpp"

namespace mvcom::core {

/// Membership churn intensity, in expected events per epoch. The Fig. 14
/// baseline is the paper's online-execution regime at |I| = 50: committees
/// keep joining throughout the epoch while leaves stay rare.
struct ChurnRates {
  double joins_per_epoch = 0.0;
  double leaves_per_epoch = 0.0;
};
inline constexpr ChurnRates kFig14BaselineChurn{23.0, 2.0};

/// One epoch's sampled churn: Poisson event counts with uniform arrival
/// times over [0, horizon). Join/leave interleaving is by time.
struct ChurnSchedule {
  struct Arrival {
    bool join = true;  // false = leave
    double at_seconds = 0.0;
  };
  std::vector<Arrival> arrivals;  // sorted by at_seconds
  std::size_t joins = 0;
  std::size_t leaves = 0;
};

/// Samples a churn schedule: counts ~ Poisson(rate·multiplier), times
/// uniform over [0, horizon_seconds), sorted by time (ties keep joins
/// before leaves). Pure function of the rng state — the churn-storm
/// adversary drives it with Rng::stream(seed, epoch) for replayability.
[[nodiscard]] ChurnSchedule sample_churn_schedule(const ChurnRates& rates,
                                                  double multiplier,
                                                  double horizon_seconds,
                                                  common::Rng& rng);

/// A scheduled membership event.
struct DynamicEvent {
  enum class Kind { kJoin, kLeave };
  std::size_t at_iteration = 0;
  Kind kind = Kind::kJoin;
  Committee committee{};  // for kLeave only `committee.id` is consulted
};

/// Trace of an online run: best feasible utility after every iteration,
/// with event markers.
struct DynamicTrace {
  std::vector<double> utility;           // one entry per iteration (NaN = none)
  std::vector<std::size_t> event_iterations;
  Selection final_selection;
  double final_utility = 0.0;
};

/// Runs `scheduler` for `iterations`, applying `events` (sorted or not —
/// they are processed by at_iteration) just before the matching iteration.
[[nodiscard]] DynamicTrace run_with_events(SeScheduler& scheduler,
                                           std::size_t iterations,
                                           std::vector<DynamicEvent> events);

/// Cross-epoch carry-over (Fig. 3): committees refused at epoch j keep their
/// pending shards and re-report at epoch j+1 with latency
/// max(0, l_i − t_j) — they "will be more likely to be permitted with a new
/// smaller two-phase latency at epoch j+1".
struct EpochChainResult {
  std::vector<double> epoch_utilities;
  std::vector<std::size_t> refused_counts;   // refused committees per epoch
  std::uint64_t total_permitted_txs = 0;
};

struct EpochChainParams {
  double alpha = 1.5;
  std::uint64_t capacity = 40'000;
  std::size_t n_min = 0;
  SeParams se{};
};

/// Runs `epochs` successive epochs: each epoch's committee set is the fresh
/// workload plus the carried-over refusals from the previous epoch.
[[nodiscard]] EpochChainResult run_epoch_chain(
    const std::vector<std::vector<Committee>>& per_epoch_fresh,
    const EpochChainParams& params, std::uint64_t seed);

}  // namespace mvcom::core
