#pragma once
// OnlineCommitteeScheduler — the deployment wrapper of Alg. 1, exactly the
// interaction loop of Fig. 5/6: the final committee feeds committee reports
// to the algorithm as they arrive; the algorithm bootstraps once scheduling
// becomes worthwhile (line 1: enough committees AND the capacity binds),
// keeps exploring between events, handles failures (leaves) detected by
// ping timeouts, and stops listening once N_max of the expected member
// committees have arrived (line 29).
//
// Usage per epoch:
//   OnlineCommitteeScheduler scheduler(config, seed);
//   for each arriving report r:   scheduler.on_report(r);
//   on failure of committee id:   scheduler.on_failure(id);
//   anytime:                      scheduler.explore(k);   // k SE iterations
//   at the DDL:                   auto decision = scheduler.decide();

#include <cstdint>
#include <optional>
#include <vector>

#include "mvcom/problem.hpp"
#include "mvcom/se_scheduler.hpp"
#include "txn/workload.hpp"

namespace mvcom::core {

struct OnlineSchedulerConfig {
  double alpha = 1.5;
  std::uint64_t capacity = 0;     // Ĉ — required, > 0
  /// Number of member committees in the epoch; N_min/N_max fractions apply
  /// to this count (paper §VI-A: N_min = 50%·|I|, N_max = 80%). Both round
  /// UP: N_min = ⌈n_min_fraction·expected⌉ (Eq. (3) is a lower bound on a
  /// committee count, so fractional targets cannot truncate down), and the
  /// pair must satisfy N_min < ⌈n_max_fraction·expected⌉ — bootstrap needs
  /// strictly more than N_min arrivals before listening stops at N_max
  /// (validated at construction).
  std::size_t expected_committees = 0;
  double n_min_fraction = 0.5;
  double n_max_fraction = 0.8;
  /// SE iterations run opportunistically after every accepted event.
  std::size_t iterations_per_event = 50;
  SeParams se{};
};

/// The final decision for an epoch.
struct SchedulingDecision {
  bool feasible = false;
  std::vector<std::uint32_t> permitted_ids;  // committee ids to include
  double utility = 0.0;
  double valuable_degree = 0.0;
  std::uint64_t permitted_txs = 0;
};

class OnlineCommitteeScheduler {
 public:
  OnlineCommitteeScheduler(OnlineSchedulerConfig config, std::uint64_t seed);

  /// A member committee submitted its shard. Returns false when the report
  /// was refused because listening already stopped (N_max reached) or the
  /// committee id was already seen.
  bool on_report(const txn::ShardReport& report);

  /// A committee was detected failed (ping → ∞, §V-A). No-op for ids not
  /// currently tracked.
  void on_failure(std::uint32_t committee_id);

  /// A failed committee recovered and re-submitted. Only ids that previously
  /// went through on_failure may re-enter this way — the recovery door must
  /// not double as a late-join loophole after listening stopped at N_max.
  bool on_recovery(const txn::ShardReport& report);

  /// Runs `iterations` SE iterations if the algorithm has bootstrapped.
  void explore(std::size_t iterations);

  /// Alg. 1 line 1: has exploration started?
  [[nodiscard]] bool bootstrapped() const noexcept {
    return scheduler_.has_value();
  }
  /// Alg. 1 line 29: has the scheduler stopped accepting new reports?
  [[nodiscard]] bool listening() const noexcept { return listening_; }
  [[nodiscard]] std::size_t arrived() const noexcept {
    return reports_.size();
  }
  [[nodiscard]] std::size_t n_min() const noexcept { return n_min_; }
  /// The N_max listening cutoff (arrivals stop once this many reports are
  /// in). Exposed so supervision layers can keep adaptive N_min below it.
  [[nodiscard]] std::size_t n_max_count() const noexcept {
    return n_max_count_;
  }

  /// Risk-adaptive resizing (supervision policy, not in the paper): replaces
  /// the Eq.-(3) floor N_min for all subsequent decisions. Returns false —
  /// leaving everything unchanged — when the new value would make bootstrap
  /// unreachable (n_min >= the N_max cutoff). A bootstrapped SE scheduler is
  /// rebuilt onto the resized instance, carrying its solution family over.
  bool set_n_min(std::size_t n_min);

  /// The live (non-failed) reports currently backing decisions.
  [[nodiscard]] const std::vector<txn::ShardReport>& reports() const noexcept {
    return reports_;
  }
  /// Running Σ tx_count over the live reports (kept incrementally — the
  /// admission loop must not rescan all reports per arrival).
  [[nodiscard]] std::uint64_t total_reported_txs() const noexcept {
    return total_txs_;
  }
  /// The underlying SE scheduler, nullptr before bootstrap. Exposed for
  /// supervision layers that need the raw selection for fallback repair.
  [[nodiscard]] const SeScheduler* se() const noexcept {
    return scheduler_ ? &*scheduler_ : nullptr;
  }

  /// Produces the current best selection (the epoch's final answer).
  [[nodiscard]] SchedulingDecision decide() const;

  /// Attaches observability; propagated into the SE scheduler (including
  /// one created by a later bootstrap).
  void set_obs(obs::ObsContext obs);

 private:
  void try_bootstrap();
  [[nodiscard]] EpochInstance build_instance() const;

  OnlineSchedulerConfig config_;
  std::uint64_t seed_;
  std::size_t n_min_ = 0;
  std::size_t n_max_count_ = 0;
  bool listening_ = true;
  std::vector<txn::ShardReport> reports_;  // live (non-failed) committees
  std::uint64_t total_txs_ = 0;            // Σ tx_count over reports_ (cached)
  std::vector<std::uint32_t> failed_ids_;  // ids eligible for on_recovery
  std::optional<SeScheduler> scheduler_;

  obs::ObsContext obs_;
  obs::Counter* obs_reports_accepted_ = nullptr;
  obs::Counter* obs_reports_refused_ = nullptr;
  obs::Counter* obs_failures_ = nullptr;
  obs::Counter* obs_recoveries_ = nullptr;
};

}  // namespace mvcom::core
