#pragma once
// The online distributed Stochastic-Exploration (SE) algorithm — the paper's
// core contribution (Alg. 1–3).
//
// Markov-approximation background (§IV-B/C): associate every feasible
// selection f with stationary probability p*_f ∝ exp(β·U_f) (Eq. 6). A
// time-reversible continuous-time Markov chain over the per-cardinality
// solution spaces realizes p* with transition rates
//     q_{f,f'} = exp(−τ) · exp(½β(U_{f'} − U_f))                    (Eq. 7)
// implemented by exponential countdown timers with mean
//     exp(τ − ½β(U_{f'} − U_f)) / (|I| − n)                         (Eq. 8)
// — one timer per parallel solution f_n (n = 1..|I|−1). When a timer
// expires, its solution swaps the chosen pair (state transition) and
// broadcasts RESET, refreshing every other timer.
//
// Implementation notes:
//  * Timers race in log-space: log T_n = τ − ½βΔU_n − ln(|I|−n) + ln(−ln u),
//    which is exact (monotone transform of the exponential race) and immune
//    to exp() overflow when β·ΔU is large. The uniform draws for one race
//    are batched into a flat scratch buffer (Rng::fill_uniform01), so the
//    log-transform loop carries no engine-state dependency.
//  * Capacity (Eq. 4) is enforced throughout: initial solutions are feasible
//    (Alg. 2 lines 3–4) and candidate swaps that would exceed Ĉ are
//    resampled; a cardinality n for which no capacity-feasible subset exists
//    (Σ of the n smallest s_i > Ĉ) is marked inactive — the paper's Alg. 2
//    would spin forever on such n.
//  * N_min (Eq. 3) is enforced at selection time: the λ-argmax of Alg. 1
//    lines 22–26 only admits solutions with n ≥ N_min.
//  * Γ parallel execution threads (§IV-D, Fig. 5) are Γ independent
//    explorer instances; one scheduler iteration steps each thread once and
//    the reported utility is the best feasible solution across threads.
//    With SeParams::parallel_execution they are stepped on a fixed worker
//    pool (one explorer per worker between cooperation barriers); chains are
//    independent between share points, so the parallel path is bitwise
//    identical to the serial one — see the SeScheduler class comment.
//  * Scale (50k committees): the paper's family keeps one chain per
//    cardinality n = 1..|I| — O(|I|²) state, fine at the paper's |I| ≤ 1000
//    and fatal at 50k (≈ 20 GB and seconds of setup per explorer). Above
//    SeParams::max_family the family becomes an even stride over the
//    admissible cardinalities [max(1, N_min), n_max(Ĉ)] (endpoints always
//    kept); each chain still realizes the exact per-cardinality law, the
//    λ-argmax simply scans a subsampled cardinality axis. All read-only
//    per-committee data (gains, sizes, prefix sums, gain/size orderings)
//    lives in one SeLayout shared by the Γ explorers instead of Γ copies.
//  * Dynamics (Alg. 1 lines 8–12, §V): join adds a committee and the new
//    cardinality slot; leave (failure) trims every solution containing the
//    failed committee by re-initialization — the trimmed space G of Fig. 7.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"
#include "mvcom/swap_set.hpp"
#include "obs/context.hpp"

namespace mvcom::common {
class ThreadPool;
}  // namespace mvcom::common

namespace mvcom::obs {
class Counter;
class Gauge;
}  // namespace mvcom::obs

namespace mvcom::core {

namespace detail {

/// ln(−ln(1−u)) — the log of a unit-exponential variate drawn by inverse
/// CDF, used by the Eq.-(8) timer race in log-space. `u` is clamped into the
/// open interval (0,1): Rng::uniform01() draws from the half-open [0,1), and
/// u == 0 would give ln(−ln 1) = ln 0 = −∞ — a degenerate timer that wins
/// the race deterministically regardless of β·ΔU, corrupting the Eq.-(7)/(8)
/// transition law.
[[nodiscard]] inline double log_unit_exponential(double u) noexcept {
  u = std::max(u, std::numeric_limits<double>::min());
  return std::log(-std::log1p(-u));
}

}  // namespace detail

/// How one scheduler iteration advances the solution family {f_n}. Both
/// modes realize the same time-reversible chain with the Eq.-(6) stationary
/// distribution (the per-cardinality chains are independent, so they may be
/// advanced jointly or via the global race without changing the law).
enum class SeTransition {
  /// Every solution f_n performs one Metropolis-style transition per
  /// iteration: propose a uniform feasible swap, accept with probability
  /// min(1, exp(β·ΔU)) = min(1, q_{f,f'}/q_{f',f}). |I|−1 transitions per
  /// iteration — convergence in iterations matches the paper's figures.
  kChainParallel,
  /// Alg. 3 verbatim: each solution arms an exponential timer with the
  /// Eq.-(8) mean for one sampled candidate; the minimum timer fires, its
  /// swap applies, and RESET refreshes every timer. One transition per
  /// iteration — the literal discrete-event realization.
  kTimerRace,
};

struct SeParams {
  double beta = 2.0;   // approximation sharpness (paper default)
  double tau = 0.0;    // rate-scaling constant (paper default)
  std::size_t threads = 1;  // Γ — parallel execution threads
  SeTransition transition = SeTransition::kChainParallel;
  std::size_t max_iterations = 5000;
  /// Converged when the best utility improves by less than `tol` over this
  /// many consecutive iterations ("an empirical number of running
  /// iterations", §IV-D Check Convergence).
  std::size_t convergence_window = 300;
  double convergence_tol = 1e-9;
  /// Retries when proposing a capacity-feasible swap / initial subset.
  int feasibility_retries = 16;
  /// Every `share_interval` iterations the Γ threads exchange the best
  /// solution (§IV-D: threads communicate "a very limited state information
  /// such as the RESET signals and the current system utility"): each
  /// thread's chain at the incumbent's cardinality adopts the incumbent if
  /// it is better, so all threads polish the best candidate. 0 disables.
  std::size_t share_interval = 100;
  /// When true, the Γ explorer threads really run on OS threads: each
  /// explorer is stepped on its own pool worker between cooperation
  /// barriers (workers run `share_interval` iterations independently, then
  /// synchronize at the §IV-D share point). Every explorer owns a private
  /// forked Rng, so chains stay data-race-free and the results — traces,
  /// selections, utilities — are bitwise identical to the serial path; only
  /// wall-clock changes. Off by default so tests and single-core callers
  /// skip the pool entirely.
  bool parallel_execution = false;
  /// Upper bound on the per-cardinality parallel solutions each explorer
  /// maintains (0 = unlimited — the paper's literal family). Instances with
  /// |I| ≤ max_family keep the full n = 1..|I| family and behave exactly as
  /// before; larger instances get an even cardinality stride over the
  /// admissible range (see the header comment). The default keeps every
  /// paper-scale experiment (|I| ≤ 1000) on the exact family while making
  /// 10k–50k committees tractable in time AND memory.
  std::size_t max_family = 1024;
  /// Cap on pool worker threads in parallel mode (0 = Γ − 1, the historical
  /// default). Results are bitwise independent of this value — workers claim
  /// whole explorers between barriers, and each explorer's trajectory
  /// depends only on its private Rng — so Γ = 25 on an 8-core host can run
  /// on 7 workers without changing a single output bit (tested by the
  /// determinism matrix in test_se_parallel).
  std::size_t max_pool_workers = 0;
};

/// Outcome of a (converged) run.
struct SeResult {
  Selection best;           // best feasible selection found
  double utility = 0.0;
  double valuable_degree = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  bool feasible = false;    // false when no (n >= N_min, capacity-ok) exists
  std::vector<double> utility_trace;  // best feasible utility per iteration
};

/// Read-only flat per-instance data shared by all Γ explorers, rebuilt once
/// per instance mutation (construction, join, leave) by the scheduler. The
/// SE inner loops touch `gain`/`txs` millions of times per run — flat arrays
/// beat pointer-chasing through EpochInstance::committees() — and the
/// gain/size orderings are the candidate indexes that let greedy seeding and
/// feasibility fallbacks stop scanning all |I| committees.
struct SeLayout {
  std::vector<double> gain;                    // gain(i), index-aligned
  std::vector<std::uint64_t> txs;              // s_i, index-aligned
  std::vector<std::uint64_t> smallest_prefix;  // Σ of n smallest s_i; size I+1
  std::vector<std::uint32_t> by_size;          // indices, ascending s_i
  std::vector<std::uint32_t> by_gain;          // indices, descending gain
  std::vector<std::uint32_t> family;   // maintained cardinalities, ascending
  std::vector<double> log_remaining;   // ln(|I| − n) per family slot
  std::size_t first_admissible = 0;    // first slot with n >= N_min

  void rebuild(const EpochInstance& instance, const SeParams& params);

  /// Family slot holding cardinality n; nullopt when n is not maintained.
  [[nodiscard]] std::optional<std::size_t> slot_of(std::uint32_t n) const {
    const auto it = std::lower_bound(family.begin(), family.end(), n);
    if (it == family.end() || *it != n) return std::nullopt;
    return static_cast<std::size_t>(it - family.begin());
  }
};

/// Per-explorer bookkeeping for one barrier-to-barrier block of iterations:
/// the per-iteration best-feasible-utility trace plus selection snapshots
/// taken whenever the explorer's running maximum improved. The scheduler
/// merges these after the barrier to reconstruct the exact global trace and
/// best selection the serial path would have observed.
struct SeBlockStats {
  struct Snapshot {
    std::size_t offset = 0;  // iteration index within the block
    double utility = 0.0;
    Selection selection;
  };
  std::vector<double> trace;
  std::vector<Snapshot> snapshots;
};

/// Plain per-explorer observability tallies for one barrier-to-barrier
/// block. The SE inner loop is hotter than even a relaxed atomic RMW, so
/// each explorer increments these thread-private integers (compiled out
/// entirely when MVCOM_OBS=OFF) and the scheduler folds them into the
/// metrics registry at the cooperation barrier — the same merge discipline
/// as SeBlockStats.
struct SeObsCounters {
  std::uint64_t accepts = 0;      // applied transitions (Eq. 7 accepted)
  std::uint64_t rejects = 0;      // Metropolis-rejected downhill proposals
  std::uint64_t infeasible = 0;   // proposal retries exhausted (Cons. 4)
  std::uint64_t timer_draws = 0;  // Eq.-(8) log-timer draws (timer race)

  void reset() noexcept { *this = SeObsCounters{}; }
  SeObsCounters& operator+=(const SeObsCounters& o) noexcept {
    accepts += o.accepts;
    rejects += o.rejects;
    infeasible += o.infeasible;
    timer_draws += o.timer_draws;
    return *this;
  }
};

/// One independent exploration thread: the solution family {f_n} + timers.
/// All per-iteration state lives in reusable member scratch buffers — after
/// construction, step()/step_block() allocate nothing.
class SeExplorer {
 public:
  SeExplorer(const EpochInstance* instance, const SeParams* params,
             const SeLayout* layout, common::Rng rng);

  /// One iteration: advances the family per SeParams::transition — either
  /// one Metropolis move per solution (kChainParallel) or one global timer
  /// expiry (kTimerRace; RESET implicitly refreshes all timers, which are
  /// resampled on the next call).
  void step();

  /// `k` consecutive iterations — the unit of work one pool worker performs
  /// between cooperation barriers. Touches only this explorer's private
  /// state (solutions + forked Rng) and const shared data, so concurrent
  /// step_block calls on distinct explorers are data-race-free. When `stats`
  /// is non-null, records the per-iteration best feasible utility and, when
  /// `running_max` is also non-null, snapshots the best selection whenever
  /// it strictly exceeds *running_max (updated in place; persists across
  /// blocks so only genuinely new maxima are materialized).
  void step_block(std::size_t k, SeBlockStats* stats, double* running_max);

  /// Rebinds to a mutated instance + freshly rebuilt layout after a
  /// join/leave event, carrying over solutions that survive (leave:
  /// solutions containing `removed` are re-initialized; join: pass
  /// std::nullopt). Carry-over matches by cardinality, so a re-strided
  /// family keeps every chain whose cardinality it still maintains.
  void rebind(const EpochInstance* instance, const SeLayout* layout,
              std::optional<std::uint32_t> removed_index);

  /// Best solution among {f_n : n >= N_min, capacity ok}; nullopt when none.
  [[nodiscard]] std::optional<std::pair<double, const SwapSet*>> best() const;

  /// Thread cooperation: replaces this explorer's chain of the same
  /// cardinality with `incumbent` when the incumbent is strictly better,
  /// and seeds the grid-adjacent cardinalities with greedy variants of the
  /// incumbent (drop the worst members / add the best fitting non-members,
  /// located through the SeLayout gain index rather than a full scan).
  void adopt_if_better(const SwapSet& incumbent, double utility);

 private:
  struct SolutionState {
    SwapSet set;
    double utility = 0.0;
    std::uint64_t txs = 0;   // Σ s_i over selected — capacity bookkeeping
    std::uint32_t n = 0;     // this chain's cardinality
    bool active = false;     // false when no feasible subset of this size
  };

  void initialize_solution(SolutionState& sol, std::uint32_t n);
  void recompute(SolutionState& sol);

  void step_timer_race();
  void step_chain_parallel();

  /// Seeds solutions_[slot] (cardinality m < n) with the incumbent minus its
  /// n − m worst-gain members, when that variant beats the current chain.
  void seed_below(const SwapSet& incumbent, double utility, std::size_t slot);
  /// Seeds solutions_[slot] (cardinality m > n) with the incumbent plus the
  /// m − n best-gain non-members that fit Ĉ, when that variant wins.
  void seed_above(const SwapSet& incumbent, double utility, std::size_t slot);

  const EpochInstance* instance_;
  const SeParams* params_;
  const SeLayout* layout_;
  common::Rng rng_;
  std::vector<SolutionState> solutions_;  // parallel to layout_->family
  SeObsCounters obs_tally_;  // block-local; scheduler merges at the barrier
  /// Consecutive initialize_solution calls whose Alg.-2 resampling exhausted
  /// its budget. Initialization proceeds in ascending cardinality and the
  /// chance a uniform n-subset fits Ĉ only shrinks with n, so after the
  /// first exhausted slot the later ones get a single attempt — without this
  /// the O(n·retries) dead resamples dominate 50k-committee construction.
  int init_fail_streak_ = 0;

  // Reusable scratch — kept as members so the hot paths never allocate.
  Selection scratch_x_;                       // bitmap builds / translations
  Selection scratch_old_x_;                   // rebind source bitmap
  std::vector<std::uint32_t> scratch_pool_;   // permutation for subset draws
  std::vector<std::uint32_t> scratch_members_;  // nth_element workspace
  std::vector<std::uint32_t> cand_slot_;      // timer race: candidate slots
  std::vector<std::uint32_t> cand_out_;
  std::vector<std::uint32_t> cand_in_;
  std::vector<std::uint64_t> cand_txs_;
  std::vector<double> cand_delta_;
  std::vector<double> cand_u_;                // batched Exp(1) timer draws

  friend class SeScheduler;
};

/// The full scheduler: Γ explorer threads over a mutable committee set.
///
/// Threading model: with SeParams::parallel_execution the Γ explorers are
/// stepped on a fixed worker pool — each worker advances one explorer for a
/// whole barrier-to-barrier block (up to share_interval iterations), then
/// the incumbent selection and adopt_if_better run on the calling thread
/// under the barrier. The scheduler itself is single-caller: step()/
/// advance()/run() and the accessors must not be invoked concurrently.
class SeScheduler {
 public:
  SeScheduler(EpochInstance instance, SeParams params, std::uint64_t seed);
  ~SeScheduler();

  /// Runs until convergence or max_iterations; fills the utility trace.
  SeResult run();

  /// One global iteration: every explorer thread performs one transition.
  void step();

  /// Advances `k` global iterations, honoring the §IV-D share points at
  /// every share_interval boundary. This is the bulk API the event-driven
  /// online wrapper uses: in parallel mode each barrier-to-barrier block is
  /// fanned out across the worker pool, so the cost per block is one
  /// dispatch + one barrier instead of k of them.
  void advance(std::size_t k);

  /// Best feasible utility across threads right now; NaN when none feasible.
  [[nodiscard]] double current_utility() const;
  /// Best feasible selection across threads right now (empty when none).
  [[nodiscard]] Selection current_selection() const;

  [[nodiscard]] const EpochInstance& instance() const noexcept {
    return instance_;
  }
  [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }
  /// The shared per-instance layout (cardinality family, candidate indexes).
  [[nodiscard]] const SeLayout& layout() const noexcept { return layout_; }

  /// Cross-epoch warm start: seeds every explorer's matching-cardinality
  /// chain (plus the grid-adjacent cardinalities) from `seed` through the
  /// same adopt_if_better machinery the §IV-D share points use, and records
  /// the seed as a floor — run() initializes its best from the floor, so a
  /// warm-started run can never report a feasible result worse than its
  /// seed. `seed` must be index-aligned with the *current* instance (the
  /// streaming pipeline re-derives it from the previous epoch's chosen
  /// subset plus the joined/left deltas before calling). Returns the seed's
  /// utility when accepted; NaN when `seed` is mis-sized or infeasible here,
  /// in which case the scheduler behaves exactly as a cold start.
  double warm_start(const Selection& seed);

  /// Online dynamics (Alg. 1 lines 8–12). Both reset convergence tracking
  /// and drop any warm-start floor (it is index-aligned with the old
  /// instance).
  void add_committee(const Committee& committee);
  /// Removes by committee id (e.g. on failure). No-op for unknown ids.
  void remove_committee(std::uint32_t committee_id);
  /// Risk-adaptive resizing: replaces the Eq.-(3) floor N_min and rebinds
  /// every explorer onto the resized instance (same committees/α/Ĉ). No-op
  /// when the value is unchanged.
  void set_n_min(std::size_t n_min);

  /// Attaches observability. Registers the SE metric families and starts
  /// emitting barrier-granular trace events; a default context detaches.
  void set_obs(obs::ObsContext obs);

 private:
  void rebind_all(std::optional<std::uint32_t> removed_index);

  /// Length of the next barrier-to-barrier block: at most `remaining`, and
  /// never crossing a share_interval boundary.
  [[nodiscard]] std::size_t next_block_length(std::size_t remaining) const;

  /// Steps every explorer `k` iterations — on the pool when parallel
  /// execution is enabled, inline otherwise. `blocks`/`running_max` are
  /// per-explorer (parallel-indexed) and may be null when no tracing is
  /// needed.
  void step_explorers(std::size_t k, std::vector<SeBlockStats>* blocks,
                      std::vector<double>* running_max);

  /// Thread cooperation at a share boundary (§IV-D). Returns true when a
  /// share actually ran this iteration.
  bool maybe_share();

  /// Folds every explorer's SeObsCounters into the registry and emits the
  /// barrier trace events. Runs under the barrier (workers quiescent).
  void flush_obs(std::size_t block, bool shared);

  EpochInstance instance_;
  SeParams params_;
  SeLayout layout_;
  std::vector<SeExplorer> explorers_;
  std::size_t iteration_ = 0;
  /// Warm-start floor (empty selection = cold start). run() starts its best
  /// from here, making warm ≥ seed structural rather than probabilistic.
  Selection warm_floor_selection_;
  double warm_floor_utility_ = 0.0;
  std::unique_ptr<common::ThreadPool> pool_;  // non-null iff parallel mode

  obs::ObsContext obs_;
  // Cached instruments (registered once by set_obs; updates are lock-free).
  obs::Counter* obs_iterations_ = nullptr;
  obs::Counter* obs_accepts_ = nullptr;
  obs::Counter* obs_rejects_ = nullptr;
  obs::Counter* obs_infeasible_ = nullptr;
  obs::Counter* obs_timer_draws_ = nullptr;
  obs::Counter* obs_shares_ = nullptr;
  obs::Counter* obs_joins_ = nullptr;
  obs::Counter* obs_leaves_ = nullptr;
  obs::Gauge* obs_best_utility_ = nullptr;
};

}  // namespace mvcom::core
