#pragma once
// The online distributed Stochastic-Exploration (SE) algorithm — the paper's
// core contribution (Alg. 1–3).
//
// Markov-approximation background (§IV-B/C): associate every feasible
// selection f with stationary probability p*_f ∝ exp(β·U_f) (Eq. 6). A
// time-reversible continuous-time Markov chain over the per-cardinality
// solution spaces realizes p* with transition rates
//     q_{f,f'} = exp(−τ) · exp(½β(U_{f'} − U_f))                    (Eq. 7)
// implemented by exponential countdown timers with mean
//     exp(τ − ½β(U_{f'} − U_f)) / (|I| − n)                         (Eq. 8)
// — one timer per parallel solution f_n (n = 1..|I|−1). When a timer
// expires, its solution swaps the chosen pair (state transition) and
// broadcasts RESET, refreshing every other timer.
//
// Implementation notes:
//  * Timers race in log-space: log T_n = τ − ½βΔU_n − ln(|I|−n) + ln(−ln u),
//    which is exact (monotone transform of the exponential race) and immune
//    to exp() overflow when β·ΔU is large.
//  * Capacity (Eq. 4) is enforced throughout: initial solutions are feasible
//    (Alg. 2 lines 3–4) and candidate swaps that would exceed Ĉ are
//    resampled; a cardinality n for which no capacity-feasible subset exists
//    (Σ of the n smallest s_i > Ĉ) is marked inactive — the paper's Alg. 2
//    would spin forever on such n.
//  * N_min (Eq. 3) is enforced at selection time: the λ-argmax of Alg. 1
//    lines 22–26 only admits solutions with n ≥ N_min.
//  * Γ parallel execution threads (§IV-D, Fig. 5) are Γ independent
//    explorer instances; one scheduler iteration steps each thread once and
//    the reported utility is the best feasible solution across threads.
//  * Dynamics (Alg. 1 lines 8–12, §V): join adds a committee and the new
//    cardinality slot; leave (failure) trims every solution containing the
//    failed committee by re-initialization — the trimmed space G of Fig. 7.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"
#include "mvcom/swap_set.hpp"

namespace mvcom::core {

/// How one scheduler iteration advances the solution family {f_n}. Both
/// modes realize the same time-reversible chain with the Eq.-(6) stationary
/// distribution (the per-cardinality chains are independent, so they may be
/// advanced jointly or via the global race without changing the law).
enum class SeTransition {
  /// Every solution f_n performs one Metropolis-style transition per
  /// iteration: propose a uniform feasible swap, accept with probability
  /// min(1, exp(β·ΔU)) = min(1, q_{f,f'}/q_{f',f}). |I|−1 transitions per
  /// iteration — convergence in iterations matches the paper's figures.
  kChainParallel,
  /// Alg. 3 verbatim: each solution arms an exponential timer with the
  /// Eq.-(8) mean for one sampled candidate; the minimum timer fires, its
  /// swap applies, and RESET refreshes every timer. One transition per
  /// iteration — the literal discrete-event realization.
  kTimerRace,
};

struct SeParams {
  double beta = 2.0;   // approximation sharpness (paper default)
  double tau = 0.0;    // rate-scaling constant (paper default)
  std::size_t threads = 1;  // Γ — parallel execution threads
  SeTransition transition = SeTransition::kChainParallel;
  std::size_t max_iterations = 5000;
  /// Converged when the best utility improves by less than `tol` over this
  /// many consecutive iterations ("an empirical number of running
  /// iterations", §IV-D Check Convergence).
  std::size_t convergence_window = 300;
  double convergence_tol = 1e-9;
  /// Retries when proposing a capacity-feasible swap / initial subset.
  int feasibility_retries = 16;
  /// Every `share_interval` iterations the Γ threads exchange the best
  /// solution (§IV-D: threads communicate "a very limited state information
  /// such as the RESET signals and the current system utility"): each
  /// thread's chain at the incumbent's cardinality adopts the incumbent if
  /// it is better, so all threads polish the best candidate. 0 disables.
  std::size_t share_interval = 100;
};

/// Outcome of a (converged) run.
struct SeResult {
  Selection best;           // best feasible selection found
  double utility = 0.0;
  double valuable_degree = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  bool feasible = false;    // false when no (n >= N_min, capacity-ok) exists
  std::vector<double> utility_trace;  // best feasible utility per iteration
};

/// One independent exploration thread: the solution family {f_n} + timers.
class SeExplorer {
 public:
  SeExplorer(const EpochInstance* instance, const SeParams* params,
             common::Rng rng);

  /// One iteration: advances the family per SeParams::transition — either
  /// one Metropolis move per solution (kChainParallel) or one global timer
  /// expiry (kTimerRace; RESET implicitly refreshes all timers, which are
  /// resampled on the next call).
  void step();

  /// Rebinds to a mutated instance after a join/leave event, carrying over
  /// solutions that survive (leave: solutions containing `removed` are
  /// re-initialized; join: pass std::nullopt).
  void rebind(const EpochInstance* instance,
              std::optional<std::uint32_t> removed_index);

  /// Best solution among {f_n : n >= N_min, capacity ok}; nullopt when none.
  [[nodiscard]] std::optional<std::pair<double, const SwapSet*>> best() const;

  /// Thread cooperation: replaces this explorer's chain of the same
  /// cardinality with `incumbent` when the incumbent is strictly better.
  void adopt_if_better(const SwapSet& incumbent, double utility);

 private:
  struct SolutionState {
    SwapSet set;
    double utility = 0.0;
    std::uint64_t txs = 0;   // Σ s_i over selected — capacity bookkeeping
    bool active = false;     // false when no feasible subset of this size
  };

  void initialize_solution(SolutionState& sol, std::size_t n);
  void recompute(SolutionState& sol);

  void step_timer_race();
  void step_chain_parallel();

  /// Refreshes the flat per-committee caches from the bound instance.
  void refresh_caches();

  const EpochInstance* instance_;
  const SeParams* params_;
  common::Rng rng_;
  std::vector<SolutionState> solutions_;  // index n-1 holds f_n
  // Prefix sums of sorted s_i — O(1) "does cardinality n fit in Ĉ" test.
  std::vector<std::uint64_t> smallest_prefix_;
  // Flat copies of the instance's per-committee data — the step() race
  // touches these millions of times per run; locality matters.
  std::vector<double> gain_;
  std::vector<std::uint64_t> txs_;
  std::vector<double> log_remaining_;  // ln(|I| − n) per solution index

  friend class SeScheduler;
};

/// The full scheduler: Γ explorer threads over a mutable committee set.
class SeScheduler {
 public:
  SeScheduler(EpochInstance instance, SeParams params, std::uint64_t seed);

  /// Runs until convergence or max_iterations; fills the utility trace.
  SeResult run();

  /// One global iteration: every explorer thread performs one transition.
  void step();

  /// Best feasible utility across threads right now; NaN when none feasible.
  [[nodiscard]] double current_utility() const;
  /// Best feasible selection across threads right now (empty when none).
  [[nodiscard]] Selection current_selection() const;

  [[nodiscard]] const EpochInstance& instance() const noexcept {
    return instance_;
  }
  [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }

  /// Online dynamics (Alg. 1 lines 8–12). Both reset convergence tracking.
  void add_committee(const Committee& committee);
  /// Removes by committee id (e.g. on failure). No-op for unknown ids.
  void remove_committee(std::uint32_t committee_id);

 private:
  void rebind_all(std::optional<std::uint32_t> removed_index);

  EpochInstance instance_;
  SeParams params_;
  std::vector<SeExplorer> explorers_;
  std::size_t iteration_ = 0;
};

}  // namespace mvcom::core
