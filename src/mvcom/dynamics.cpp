#include "mvcom/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mvcom::core {

ChurnSchedule sample_churn_schedule(const ChurnRates& rates,
                                    double multiplier,
                                    double horizon_seconds,
                                    common::Rng& rng) {
  ChurnSchedule schedule;
  schedule.joins =
      static_cast<std::size_t>(rng.poisson(rates.joins_per_epoch * multiplier));
  schedule.leaves = static_cast<std::size_t>(
      rng.poisson(rates.leaves_per_epoch * multiplier));
  schedule.arrivals.reserve(schedule.joins + schedule.leaves);
  for (std::size_t k = 0; k < schedule.joins; ++k) {
    schedule.arrivals.push_back({true, rng.uniform(0.0, horizon_seconds)});
  }
  for (std::size_t k = 0; k < schedule.leaves; ++k) {
    schedule.arrivals.push_back({false, rng.uniform(0.0, horizon_seconds)});
  }
  // Stable by construction order: ties keep joins before leaves.
  std::stable_sort(schedule.arrivals.begin(), schedule.arrivals.end(),
                   [](const ChurnSchedule::Arrival& a,
                      const ChurnSchedule::Arrival& b) {
                     return a.at_seconds < b.at_seconds;
                   });
  return schedule;
}

DynamicTrace run_with_events(SeScheduler& scheduler, std::size_t iterations,
                             std::vector<DynamicEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const DynamicEvent& a, const DynamicEvent& b) {
                     return a.at_iteration < b.at_iteration;
                   });
  DynamicTrace trace;
  trace.utility.reserve(iterations);
  std::size_t next_event = 0;
  for (std::size_t it = 0; it < iterations; ++it) {
    while (next_event < events.size() &&
           events[next_event].at_iteration <= it) {
      const DynamicEvent& ev = events[next_event++];
      if (ev.kind == DynamicEvent::Kind::kJoin) {
        scheduler.add_committee(ev.committee);
      } else {
        scheduler.remove_committee(ev.committee.id);
      }
      trace.event_iterations.push_back(it);
    }
    scheduler.step();
    trace.utility.push_back(scheduler.current_utility());
  }
  trace.final_selection = scheduler.current_selection();
  trace.final_utility = trace.utility.empty()
                            ? std::numeric_limits<double>::quiet_NaN()
                            : trace.utility.back();
  return trace;
}

EpochChainResult run_epoch_chain(
    const std::vector<std::vector<Committee>>& per_epoch_fresh,
    const EpochChainParams& params, std::uint64_t seed) {
  EpochChainResult result;
  std::vector<Committee> carried;  // refused committees, latency rebased
  std::uint64_t chain_seed = seed;

  for (const std::vector<Committee>& fresh : per_epoch_fresh) {
    std::vector<Committee> committees = fresh;
    committees.insert(committees.end(), carried.begin(), carried.end());
    if (committees.empty()) continue;

    EpochInstance instance(committees, params.alpha, params.capacity,
                           params.n_min);
    SeScheduler scheduler(instance, params.se, chain_seed++);
    const SeResult se = scheduler.run();

    result.epoch_utilities.push_back(se.feasible ? se.utility : 0.0);
    carried.clear();
    if (!se.feasible) {
      // Nothing permitted: every committee carries over.
      for (const Committee& c : committees) carried.push_back(c);
    } else {
      for (std::size_t i = 0; i < committees.size(); ++i) {
        if (se.best[i]) {
          result.total_permitted_txs += committees[i].txs;
        } else {
          // Fig. 3: refused committee re-enters with latency reduced by the
          // previous epoch's deadline.
          Committee c = committees[i];
          c.latency = std::max(0.0, c.latency - instance.deadline());
          carried.push_back(c);
        }
      }
    }
    result.refused_counts.push_back(carried.size());
  }
  return result;
}

}  // namespace mvcom::core
