#pragma once
// Multi-epoch adversarial campaign: the closed loop of adversary vs.
// supervisor. Each epoch the Adversary plans faults from what it observed
// of the previous epoch, the chaos harness runs the supervised epoch on the
// DES, and the supervisor's cross-epoch carry (strikes, bans, decayed risk)
// feeds its next instantiation — so both sides adapt across the campaign.
//
// Per epoch the campaign scores:
//  * utility  — the final supervised decision's U(x);
//  * safety   — honest permitted TXs / claimed permitted TXs: a permitted
//    committee whose admitted claim differs from its honest workload count
//    contributes zero honest TXs (its shard is forged), so undetected
//    colluding misreports drive safety below 1 even when utility looks fine.
//
// Determinism: every epoch's workload is keyed (WorkloadGenerator::
// epoch_keyed), every adversary plan is a pure function of (seed, epoch,
// history), and the harness itself is seed-deterministic — the campaign's
// decision_digest is therefore a replay witness: same (config, seed) ⇒ same
// digest, bit for bit.

#include <cstdint>
#include <vector>

#include "mvcom/adversary/adversary.hpp"
#include "mvcom/fault_injection.hpp"
#include "txn/trace.hpp"
#include "txn/workload.hpp"

namespace mvcom::core {

struct CampaignConfig {
  /// Per-epoch harness template. The campaign fills in `reserve` and
  /// `carry_in` itself; everything else (supervisor, DDL, obs sinks) is
  /// taken as given.
  ChaosConfig chaos{};
  AdversaryConfig adversary{};
  txn::WorkloadConfig workload{};  // num_committees is overridden
  std::size_t epochs = 6;
  std::size_t committees = 20;
  /// Join-reserve pool size per epoch (churn-storm needs > 0).
  std::size_t reserve = 0;
};

struct EpochOutcome {
  FaultPlan plan;
  ChaosReport report;
  double utility = 0.0;
  std::uint64_t honest_permitted_txs = 0;
  std::uint64_t claimed_permitted_txs = 0;
  double safety = 1.0;
};

struct CampaignResult {
  std::vector<EpochOutcome> epochs;
  double mean_utility = 0.0;
  double mean_safety = 1.0;
  /// Any epoch's ladder reported infeasible while a feasible selection
  /// existed — must stay false under every strategy.
  bool infeasible_while_feasible = false;
  /// FNV-1a over every epoch's plan and decision — the replay witness.
  std::uint64_t decision_digest = 0;
};

/// Runs the campaign on workloads drawn from `trace`. Deterministic per
/// (trace, config, seed).
[[nodiscard]] CampaignResult run_adversarial_campaign(
    const txn::Trace& trace, const CampaignConfig& config,
    std::uint64_t seed);

}  // namespace mvcom::core
