#pragma once
// Strategic adversaries over the FaultPlan chaos harness. Where
// FaultPlan::randomized draws victims blindly, an Adversary *observes the
// run* — the SE scheduler's realized picks, the admitted claims, the ban
// list — and aims its next epoch's faults at what it saw:
//
//  * targeted-corruption — corrupt the highest-utility committees the
//    scheduler actually picked last epoch (the Blockguard threat model: the
//    adversary follows the value). Corrupted committees turn Byzantine and
//    file forged, verification-passing inflated submissions; forgeries that
//    pre-empt the honest report are undetectable, later ones are caught as
//    equivocations.
//  * colluding-misreport — a coalition coordinates verification-PASSING
//    inflated submissions (kForgeSubmission): each member commits to
//    fabricated entries, so the Merkle check holds and the forged s_i wins
//    the knapsack, crowding honest shards out of the selection.
//  * adaptive-dos — loss bursts and straggler storms concentrated on the
//    scheduler's last-epoch picks (degrade what is known to be valuable).
//  * churn-storm — join/leave churn at a multiple of the Fig. 14 baseline
//    rates, driven through dynamics::sample_churn_schedule.
//
// Determinism contract: every strategy is a pure function of (seed,
// epoch_index, observed history). All randomness comes from
// Rng::stream(seed', epoch_index) substreams, so replaying a campaign —
// or any single epoch of it — reproduces the exact fault plans and,
// through the deterministic harness, bit-identical obs event streams.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/dynamics.hpp"
#include "mvcom/fault_injection.hpp"

namespace mvcom::core {

enum class AdversaryStrategy {
  kTargetedCorruption,
  kColludingMisreport,
  kAdaptiveDos,
  kChurnStorm,
};
inline constexpr std::array<AdversaryStrategy, 4> kAllAdversaryStrategies = {
    AdversaryStrategy::kTargetedCorruption,
    AdversaryStrategy::kColludingMisreport,
    AdversaryStrategy::kAdaptiveDos,
    AdversaryStrategy::kChurnStorm,
};
[[nodiscard]] const char* to_string(AdversaryStrategy strategy) noexcept;
/// Parses the CLI spelling ("targeted-corruption", ...); nullopt on unknown.
[[nodiscard]] std::optional<AdversaryStrategy> parse_adversary_strategy(
    std::string_view name) noexcept;

struct AdversaryConfig {
  AdversaryStrategy strategy = AdversaryStrategy::kTargetedCorruption;
  /// Attack budget in [0, 1] — the fraction of the membership the adversary
  /// may strike per epoch (targeted / DoS / coalition size), and the scale
  /// on the churn multiplier (churn-storm). The degradation-curve bench
  /// sweeps this axis.
  double budget = 0.25;
  /// Forged-claim multiplier for colluding-misreport submissions.
  double inflation = 3.0;
  /// Attack window: fault times are drawn inside [0, horizon_seconds).
  double horizon_seconds = 1500.0;
  /// Churn-storm intensity at budget = 1.0, in multiples of the Fig. 14
  /// baseline rates (the ISSUE's "10× Fig. 14" regime).
  double churn_multiplier = 10.0;
};

/// What the adversary observed from the previous epoch's run. Absent at
/// epoch 0, where strategies fall back to the honest claims they can see
/// before any scheduling happened.
struct EpochObservation {
  std::vector<std::uint32_t> permitted_ids;     // realized SE picks
  std::vector<txn::ShardReport> final_reports;  // admitted claims at the DDL
  std::vector<std::uint32_t> banned_ids;        // no point striking these
  double utility = 0.0;
};

class Adversary {
 public:
  Adversary(AdversaryConfig config, std::uint64_t seed);

  /// Plans epoch `epoch_index`'s fault schedule against `committees` (the
  /// epoch's honest membership) with `reserve_size` join slots available.
  /// Pure per (seed, epoch_index, last): no state is kept between calls.
  [[nodiscard]] FaultPlan plan_epoch(
      std::size_t epoch_index, const std::vector<ChaosCommittee>& committees,
      std::size_t reserve_size,
      const std::optional<EpochObservation>& last) const;

  [[nodiscard]] const AdversaryConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Victim ids ranked most-valuable-first: last epoch's permitted ids by
  /// admitted s_i when an observation exists, else the honest claims.
  [[nodiscard]] std::vector<std::uint32_t> ranked_targets(
      const std::vector<ChaosCommittee>& committees,
      const std::optional<EpochObservation>& last) const;

  AdversaryConfig config_;
  std::uint64_t seed_;
};

}  // namespace mvcom::core
