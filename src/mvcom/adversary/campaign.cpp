#include "mvcom/adversary/campaign.hpp"

#include <algorithm>
#include <map>
#include <span>

#include "common/fnv.hpp"

namespace mvcom::core {

namespace {

/// Substream layout per epoch e off the campaign seed: 2e keys the honest
/// workload, 2e+1 the harness (the Adversary salts its own family).
constexpr std::uint64_t kWorkloadStream = 0;
constexpr std::uint64_t kHarnessStream = 1;

struct Fnv {
  std::uint64_t h = common::kFnv1aBasis;
  void byte(std::uint8_t b) { h = common::fnv1a_byte(h, b); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double d) {
    std::uint64_t bits;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    u64(bits);
  }
};

}  // namespace

CampaignResult run_adversarial_campaign(const txn::Trace& trace,
                                        const CampaignConfig& config,
                                        std::uint64_t seed) {
  txn::WorkloadConfig wc = config.workload;
  wc.num_committees = config.committees + config.reserve;
  const txn::WorkloadGenerator gen(trace, wc);
  const Adversary adversary(config.adversary, seed);

  CampaignResult result;
  result.epochs.reserve(config.epochs);
  Fnv digest;
  SupervisorCarry carry;
  std::optional<EpochObservation> last;

  for (std::size_t e = 0; e < config.epochs; ++e) {
    // Honest inputs, keyed per (seed, epoch): the first `committees`
    // reports are the epoch-start membership, the rest the join reserve.
    const txn::EpochWorkload workload =
        gen.epoch_keyed(seed, 2 * e + kWorkloadStream);
    const std::span<const txn::ShardReport> reports(workload.reports);
    const auto initial = chaos_committees_from_reports(
        reports.subspan(0, config.committees));
    const auto reserve =
        chaos_committees_from_reports(reports.subspan(config.committees));
    std::map<std::uint32_t, std::uint64_t> honest;
    for (const txn::ShardReport& r : workload.reports) {
      honest[r.committee_id] = r.tx_count;
    }

    const FaultPlan plan =
        adversary.plan_epoch(e, initial, reserve.size(), last);

    ChaosConfig chaos = config.chaos;
    chaos.reserve = reserve;
    chaos.carry_in = e > 0 ? &carry : config.chaos.carry_in;
    const std::uint64_t epoch_seed =
        common::Rng::stream(seed, 2 * e + kHarnessStream)();

    EpochOutcome outcome;
    outcome.plan = plan;
    outcome.report = run_chaos_epoch(initial, plan, chaos, epoch_seed);
    const ChaosReport& report = outcome.report;
    const SchedulingDecision& decision = report.final_decision.decision;
    outcome.utility = decision.feasible ? decision.utility : 0.0;

    // Safety: a permitted committee whose admitted claim disagrees with its
    // honest workload count shipped a forged shard — its claimed TXs count
    // toward throughput on paper but contribute nothing honest.
    std::map<std::uint32_t, std::uint64_t> claimed;
    for (const txn::ShardReport& r : report.final_reports) {
      claimed[r.committee_id] = r.tx_count;
    }
    for (const std::uint32_t id : decision.permitted_ids) {
      const auto c = claimed.find(id);
      const std::uint64_t claim = c != claimed.end() ? c->second : 0;
      outcome.claimed_permitted_txs += claim;
      const auto hline = honest.find(id);
      if (hline != honest.end() && hline->second == claim) {
        outcome.honest_permitted_txs += claim;
      }
    }
    outcome.safety =
        outcome.claimed_permitted_txs == 0
            ? 1.0
            : static_cast<double>(outcome.honest_permitted_txs) /
                  static_cast<double>(outcome.claimed_permitted_txs);

    // Fold the epoch into the replay witness: the plan the adversary chose
    // and every decision-relevant output of the run.
    digest.u64(e);
    digest.u64(plan.events.size());
    for (const FaultEvent& ev : plan.events) {
      digest.byte(static_cast<std::uint8_t>(ev.kind));
      digest.byte(static_cast<std::uint8_t>(ev.victim));
      digest.u64(ev.committee_id);
      digest.f64(ev.at_seconds);
      digest.f64(ev.duration_seconds);
      digest.f64(ev.magnitude);
    }
    digest.byte(static_cast<std::uint8_t>(report.final_decision.tier));
    digest.byte(decision.feasible ? 1 : 0);
    digest.u64(decision.permitted_ids.size());
    for (const std::uint32_t id : decision.permitted_ids) digest.u64(id);
    digest.f64(outcome.utility);
    digest.u64(report.effective_n_min);
    digest.u64(report.joins);
    digest.u64(report.leaves);
    digest.u64(report.skipped_events);
    digest.f64(report.risk_score);

    result.infeasible_while_feasible |= report.infeasible_while_feasible;
    carry = report.carry_out;
    last = EpochObservation{decision.permitted_ids, report.final_reports,
                            report.banned_ids, outcome.utility};
    result.epochs.push_back(std::move(outcome));
  }

  result.mean_utility = 0.0;
  result.mean_safety = 0.0;
  for (const EpochOutcome& o : result.epochs) {
    result.mean_utility += o.utility;
    result.mean_safety += o.safety;
  }
  if (!result.epochs.empty()) {
    result.mean_utility /= static_cast<double>(result.epochs.size());
    result.mean_safety /= static_cast<double>(result.epochs.size());
  }
  result.decision_digest = digest.h;
  return result;
}

}  // namespace mvcom::core
