#include "mvcom/adversary/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace mvcom::core {

namespace {

/// Salt separating the adversary's substream family from the workload's and
/// the harness's (all three key off the same campaign seed).
constexpr std::uint64_t kAdversarySalt = 0xadd5e6a11ULL;

std::size_t budget_victims(double budget, std::size_t membership) {
  if (membership == 0) return 0;
  const double raw = std::round(budget * static_cast<double>(membership));
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::max(raw, 0.0)),
                                 1, membership);
}

}  // namespace

const char* to_string(AdversaryStrategy strategy) noexcept {
  switch (strategy) {
    case AdversaryStrategy::kTargetedCorruption: return "targeted-corruption";
    case AdversaryStrategy::kColludingMisreport: return "colluding-misreport";
    case AdversaryStrategy::kAdaptiveDos: return "adaptive-dos";
    case AdversaryStrategy::kChurnStorm: return "churn-storm";
  }
  return "unknown";
}

std::optional<AdversaryStrategy> parse_adversary_strategy(
    std::string_view name) noexcept {
  for (const AdversaryStrategy s : kAllAdversaryStrategies) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

Adversary::Adversary(AdversaryConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

std::vector<std::uint32_t> Adversary::ranked_targets(
    const std::vector<ChaosCommittee>& committees,
    const std::optional<EpochObservation>& last) const {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> by_value;  // (txs, id)
  if (last && !last->permitted_ids.empty()) {
    // The realized picks, weighted by the s_i the scheduler admitted —
    // exactly what the adversary watched win. Banned ids are dead targets.
    std::map<std::uint32_t, std::uint64_t> claimed;
    for (const txn::ShardReport& r : last->final_reports) {
      claimed[r.committee_id] = r.tx_count;
    }
    for (const std::uint32_t id : last->permitted_ids) {
      if (std::find(last->banned_ids.begin(), last->banned_ids.end(), id) !=
          last->banned_ids.end()) {
        continue;
      }
      const auto it = claimed.find(id);
      by_value.emplace_back(it != claimed.end() ? it->second : 0, id);
    }
  }
  if (by_value.empty()) {
    // Epoch 0 (or everything banned): the honest claims are all there is.
    for (const ChaosCommittee& c : committees) {
      by_value.emplace_back(c.submission.claimed_tx_count,
                            c.submission.committee_id);
    }
  }
  std::sort(by_value.begin(), by_value.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  std::vector<std::uint32_t> ids;
  ids.reserve(by_value.size());
  for (const auto& [txs, id] : by_value) ids.push_back(id);
  return ids;
}

FaultPlan Adversary::plan_epoch(
    std::size_t epoch_index, const std::vector<ChaosCommittee>& committees,
    std::size_t reserve_size,
    const std::optional<EpochObservation>& last) const {
  common::Rng rng =
      common::Rng::stream(seed_ ^ kAdversarySalt, epoch_index);
  FaultPlan plan;
  const double horizon = config_.horizon_seconds;
  const std::vector<std::uint32_t> targets = ranked_targets(committees, last);
  const std::size_t k = budget_victims(config_.budget, committees.size());

  switch (config_.strategy) {
    case AdversaryStrategy::kTargetedCorruption: {
      // Corrupt the k most valuable realized picks: each victim turns
      // Byzantine and files a forged, verification-passing submission with
      // an inflated s_i (kForgeSubmission). Corruption times straddle the
      // victims' two-phase latencies, so some forgeries silently REPLACE
      // the honest report (undetectable — they then crowd honest shards out
      // of the capacity knapsack) while the rest land after it and are
      // struck as equivocations — the detectable fraction that feeds the
      // defender's risk score.
      for (std::size_t v = 0; v < k && v < targets.size(); ++v) {
        FaultEvent e;
        e.kind = FaultKind::kForgeSubmission;
        e.victim = FaultEvent::Victim::kById;
        e.committee_id = targets[v];
        e.at_seconds = rng.uniform(0.3, 0.9) * horizon;
        e.magnitude = config_.inflation;
        plan.events.push_back(e);
      }
      break;
    }
    case AdversaryStrategy::kColludingMisreport: {
      // The coalition: committees the scheduler did NOT pick last epoch
      // (the ones with something to gain), largest honest claim first so
      // the inflated forgeries dominate the knapsack. Every member files a
      // kForgeSubmission before its honest report would have gone out — the
      // commitment is over the fabricated entries, so verification passes
      // and only a later differing submission could expose it.
      std::vector<std::uint32_t> losers;
      for (const ChaosCommittee& c : committees) {
        const std::uint32_t id = c.submission.committee_id;
        const bool picked =
            last && std::find(last->permitted_ids.begin(),
                              last->permitted_ids.end(),
                              id) != last->permitted_ids.end();
        if (!picked) losers.push_back(id);
      }
      std::map<std::uint32_t, std::uint64_t> honest;
      for (const ChaosCommittee& c : committees) {
        honest[c.submission.committee_id] = c.submission.claimed_tx_count;
      }
      std::sort(losers.begin(), losers.end(),
                [&honest](std::uint32_t a, std::uint32_t b) {
                  return honest[a] != honest[b] ? honest[a] > honest[b]
                                                : a < b;
                });
      // Pad from the ranked targets when too few stayed unpicked.
      for (const std::uint32_t id : targets) {
        if (losers.size() >= k) break;
        if (std::find(losers.begin(), losers.end(), id) == losers.end()) {
          losers.push_back(id);
        }
      }
      for (std::size_t v = 0; v < k && v < losers.size(); ++v) {
        FaultEvent e;
        e.kind = FaultKind::kForgeSubmission;
        e.victim = FaultEvent::Victim::kById;
        e.committee_id = losers[v];
        e.at_seconds = rng.uniform(0.0, 0.04) * horizon;
        e.magnitude = config_.inflation;
        plan.events.push_back(e);
      }
      break;
    }
    case AdversaryStrategy::kAdaptiveDos: {
      // Straggler storms on the picks, plus budget-scaled network-wide loss
      // bursts: degrade what is known to be valuable without leaving the
      // permanent signature a crash would.
      for (std::size_t v = 0; v < k && v < targets.size(); ++v) {
        FaultEvent e;
        e.kind = FaultKind::kStragglerDelay;
        e.victim = FaultEvent::Victim::kById;
        e.committee_id = targets[v];
        e.at_seconds = rng.uniform(0.0, 0.3) * horizon;
        e.duration_seconds = 0.3 * horizon;
        e.magnitude = rng.uniform(3.0, 8.0);
        plan.events.push_back(e);
      }
      const std::size_t bursts = static_cast<std::size_t>(
          std::ceil(config_.budget * 4.0));
      for (std::size_t b = 0; b < bursts; ++b) {
        FaultEvent e;
        e.kind = FaultKind::kMessageLossBurst;
        e.at_seconds = rng.uniform(0.2, 0.8) * horizon;
        e.duration_seconds = 0.15 * horizon;
        e.magnitude = rng.uniform(0.4, 0.7);
        plan.events.push_back(e);
      }
      break;
    }
    case AdversaryStrategy::kChurnStorm: {
      // Membership churn at churn_multiplier × Fig. 14, scaled by budget.
      const ChurnSchedule schedule = sample_churn_schedule(
          kFig14BaselineChurn, config_.churn_multiplier * config_.budget,
          horizon, rng);
      std::uint32_t next_slot = 0;
      for (const ChurnSchedule::Arrival& a : schedule.arrivals) {
        FaultEvent e;
        e.at_seconds = a.at_seconds;
        if (a.join) {
          if (next_slot >= reserve_size) continue;  // reserve exhausted
          e.kind = FaultKind::kJoin;
          e.committee_id = next_slot++;
        } else {
          e.kind = FaultKind::kLeave;
          e.victim = FaultEvent::Victim::kByLiveRank;
          e.committee_id = static_cast<std::uint32_t>(
              rng.below(std::max<std::size_t>(1, committees.size())));
        }
        plan.events.push_back(e);
      }
      break;
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
  return plan;
}

}  // namespace mvcom::core
