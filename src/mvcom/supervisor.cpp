#include "mvcom/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/theory.hpp"
#include "baselines/greedy.hpp"
#include "baselines/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvcom::core {

namespace {

constexpr double kBoundSlack = 1e-9;  // float noise in the Theorem-2 check

/// Fills the decision fields from a selection already known feasible.
void fill_decision(SupervisedDecision& out, const EpochInstance& instance,
                   const Selection& selection, DecisionTier tier) {
  out.tier = tier;
  out.reason = InfeasibleReason::kNone;
  out.decision.feasible = true;
  out.decision.utility = instance.utility(selection);
  out.decision.valuable_degree = instance.valuable_degree(selection);
  out.decision.permitted_txs = instance.permitted_txs(selection);
  out.decision.permitted_ids.clear();
  for (std::size_t i = 0; i < selection.size(); ++i) {
    if (selection[i]) {
      out.decision.permitted_ids.push_back(instance.committees()[i].id);
    }
  }
}

/// The N_min smallest shards — the cheapest witness of Eq. (3)+(4)
/// feasibility. Empty optional when even that witness exceeds Ĉ.
std::optional<Selection> minimal_feasible(const EpochInstance& instance) {
  const std::size_t n_min = instance.n_min();
  if (n_min > instance.size()) return std::nullopt;
  if (n_min == 0) return Selection(instance.size(), 0);
  std::vector<std::size_t> order(instance.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Only the N_min smallest matter — a partial select keeps this decide()
  // fallback O(I) at 50k committees. Ties break by index so the witness is
  // deterministic.
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(n_min - 1),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     const std::uint64_t ta = instance.committees()[a].txs;
                     const std::uint64_t tb = instance.committees()[b].txs;
                     return ta != tb ? ta < tb : a < b;
                   });
  Selection x(instance.size(), 0);
  std::uint64_t txs = 0;
  for (std::size_t k = 0; k < n_min; ++k) {
    txs += instance.committees()[order[k]].txs;
    x[order[k]] = 1;
  }
  if (txs > instance.capacity()) return std::nullopt;
  return x;
}

}  // namespace

const char* to_string(Admission admission) noexcept {
  switch (admission) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kReadmitted: return "readmitted";
    case Admission::kQuarantined: return "quarantined";
    case Admission::kBanned: return "banned";
    case Admission::kDuplicate: return "duplicate";
    case Admission::kRefused: return "refused";
  }
  return "unknown";
}

const char* to_string(DecisionTier tier) noexcept {
  switch (tier) {
    case DecisionTier::kSeBest: return "se-best";
    case DecisionTier::kGreedyRepair: return "greedy-repair";
    case DecisionTier::kGreedyScratch: return "greedy-scratch";
    case DecisionTier::kPermitAll: return "permit-all";
    case DecisionTier::kInfeasible: return "infeasible";
  }
  return "unknown";
}

const char* to_string(InfeasibleReason reason) noexcept {
  switch (reason) {
    case InfeasibleReason::kNone: return "none";
    case InfeasibleReason::kNoLiveCommittees: return "no live committees";
    case InfeasibleReason::kNminUnreachable: return "N_min unreachable";
    case InfeasibleReason::kCapacityInsufficient:
      return "capacity insufficient for N_min";
  }
  return "unknown";
}

bool feasible_selection_exists(std::span<const txn::ShardReport> reports,
                               std::uint64_t capacity, std::size_t n_min) {
  if (reports.size() < n_min) return false;
  if (n_min == 0) return true;  // the empty selection satisfies both bounds
  std::vector<std::uint64_t> sizes;
  sizes.reserve(reports.size());
  for (const txn::ShardReport& r : reports) sizes.push_back(r.tx_count);
  std::nth_element(sizes.begin(),
                   sizes.begin() + static_cast<std::ptrdiff_t>(n_min - 1),
                   sizes.end());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_min; ++i) {
    if (sizes[i] > capacity - total) return false;  // overflow-safe
    total += sizes[i];
  }
  return true;
}

EpochSupervisor::EpochSupervisor(SupervisorConfig config, std::uint64_t seed)
    : config_(config),
      scheduler_(config.scheduler, seed),
      rng_(seed ^ 0x5eb0a9d5u),
      base_n_min_(scheduler_.n_min()) {
  if (config_.max_strikes <= 0) {
    throw std::invalid_argument("EpochSupervisor: max_strikes > 0");
  }
  if (config_.ping_interval_seconds <= 0.0 ||
      config_.ping_timeout_seconds <= 0.0 ||
      config_.missed_pings_before_failure <= 0 ||
      config_.ping_backoff_factor < 1.0) {
    throw std::invalid_argument("EpochSupervisor: bad monitor parameters");
  }
  if (config_.risk.enabled &&
      (config_.risk.strike_weight < 0.0 || config_.risk.failure_weight < 0.0 ||
       config_.risk.escalation_step <= 0.0 ||
       config_.risk.tighten_step <= 0.0 || config_.risk.carry_decay < 0.0 ||
       config_.risk.carry_decay > 1.0)) {
    throw std::invalid_argument("EpochSupervisor: bad risk-policy parameters");
  }
}

void EpochSupervisor::set_obs(obs::ObsContext obs) {
  obs_ = obs;
  obs_admission_.fill(nullptr);
  obs_tier_.fill(nullptr);
  obs_strikes_ = nullptr;
  obs_resizes_ = nullptr;
  obs_failures_ = nullptr;
  obs_recoveries_ = nullptr;
  obs_probe_ok_ = nullptr;
  obs_probe_missed_ = nullptr;
  obs_ping_rtt_ = nullptr;
  if (obs::MetricsRegistry* m = obs_.metrics()) {
    constexpr std::array<Admission, 6> kAdmissions = {
        Admission::kAdmitted,  Admission::kReadmitted,
        Admission::kQuarantined, Admission::kBanned,
        Admission::kDuplicate, Admission::kRefused};
    for (const Admission a : kAdmissions) {
      obs_admission_[static_cast<std::size_t>(a)] =
          &m->counter("mvcom_supervisor_submissions_total",
                      "Shard submissions by verified-admission outcome",
                      {{"outcome", to_string(a)}});
    }
    constexpr std::array<DecisionTier, 5> kTiers = {
        DecisionTier::kSeBest, DecisionTier::kGreedyRepair,
        DecisionTier::kGreedyScratch, DecisionTier::kPermitAll,
        DecisionTier::kInfeasible};
    for (const DecisionTier t : kTiers) {
      obs_tier_[static_cast<std::size_t>(t)] =
          &m->counter("mvcom_supervisor_decisions_total",
                      "Degradation-ladder decisions by winning tier",
                      {{"tier", to_string(t)}});
    }
    obs_strikes_ = &m->counter("mvcom_supervisor_strikes_total",
                               "Verification failures and equivocations");
    obs_resizes_ = &m->counter("mvcom_supervisor_resizes_total",
                               "Risk-adaptive N_min resizes applied");
    obs_failures_ = &m->counter("mvcom_supervisor_failures_total",
                                "Committee failures declared");
    obs_recoveries_ = &m->counter("mvcom_supervisor_recoveries_total",
                                  "Committee recoveries declared");
    obs_probe_ok_ = &m->counter("mvcom_supervisor_probes_total",
                                "Heartbeat probes by outcome",
                                {{"result", "ok"}});
    obs_probe_missed_ = &m->counter("mvcom_supervisor_probes_total",
                                    "Heartbeat probes by outcome",
                                    {{"result", "missed"}});
    obs_ping_rtt_ = &m->histogram(
        "mvcom_supervisor_ping_rtt_seconds",
        "Sampled heartbeat round-trip times (answered probes only)", {},
        {.lowest = 1e-3, .growth = 2.0, .count = 18});
  }
  scheduler_.set_obs(obs_);
}

Admission EpochSupervisor::on_submission(
    const sharding::ShardSubmission& submission, double formation_latency,
    double consensus_latency) {
  const auto admitted = [this, &submission](Admission a) {
    if (obs::Counter* c = obs_admission_[static_cast<std::size_t>(a)]) {
      c->inc();
    }
    if (auto* t = obs_.trace()) {
      t->instant("admission", to_string(a),
                 {{"committee_id", static_cast<double>(submission.committee_id)},
                  {"claimed_txs",
                   static_cast<double>(submission.claimed_tx_count)}});
    }
    return a;
  };
  return admitted(admit_submission(submission, formation_latency,
                                   consensus_latency));
}

Admission EpochSupervisor::admit_submission(
    const sharding::ShardSubmission& submission, double formation_latency,
    double consensus_latency) {
  CommitteeHealth& h = health_[submission.committee_id];
  if (h.banned) return Admission::kBanned;

  if (sharding::verify_submission(submission)) {
    // The claimed s_i or root disagrees with the count-binding commitment —
    // the claim must never reach the instance.
    strike(submission.committee_id, h);
    return h.banned ? Admission::kBanned : Admission::kQuarantined;
  }

  // Verified: the entries total equals the claim, so the claim is now the
  // trusted s_i.
  const std::uint64_t verified_txs = submission.claimed_tx_count;
  txn::ShardReport report;
  report.committee_id = submission.committee_id;
  report.tx_count = verified_txs;
  report.formation_latency = formation_latency;
  report.consensus_latency = consensus_latency;

  if (h.admitted) {
    if (verified_txs == h.verified_txs) return Admission::kDuplicate;
    // Equivocation: two verified submissions binding different s_i. Both
    // commitments are internally consistent, so one of them lies about the
    // actual shard — evict and strike.
    strike(submission.committee_id, h);
    return h.banned ? Admission::kBanned : Admission::kQuarantined;
  }

  const bool was_evicted = h.quarantined || h.failed ||
                           evicted_from_scheduler_[submission.committee_id];
  const bool accepted = evicted_from_scheduler_[submission.committee_id]
                            ? scheduler_.on_recovery(report)
                            : scheduler_.on_report(report);
  if (!accepted) return Admission::kRefused;

  evicted_from_scheduler_[submission.committee_id] = false;
  h.admitted = true;
  h.quarantined = false;
  h.failed = false;
  h.missed_pings = 0;
  h.verified_txs = verified_txs;
  last_verified_[submission.committee_id] = report;
  // A new live report can unlock a previously clamped N_min boost.
  update_risk_policy();
  return was_evicted ? Admission::kReadmitted : Admission::kAdmitted;
}

void EpochSupervisor::strike(std::uint32_t committee_id,
                             CommitteeHealth& health) {
  ++health.strikes;
  ++strikes_total_;
  health.quarantined = true;
  if (health.strikes >= effective_max_strikes() &&
      (!config_.risk.enabled || ban_preserves_liveness())) {
    health.banned = true;
  }
  if (obs_strikes_ != nullptr) obs_strikes_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("supervisor", "supervisor/strike",
               {{"committee_id", static_cast<double>(committee_id)},
                {"strikes", static_cast<double>(health.strikes)},
                {"banned", health.banned ? 1.0 : 0.0}});
  }
  if (health.admitted) {
    // Its previously admitted report can no longer be trusted either.
    scheduler_.on_failure(committee_id);
    evicted_from_scheduler_[committee_id] = true;
    health.admitted = false;
  }
  update_risk_policy();
}

void EpochSupervisor::on_failure(std::uint32_t committee_id) {
  CommitteeHealth& h = health_[committee_id];
  if (h.failed) return;
  h.failed = true;
  ++failures_detected_;
  if (!h.admitted) return;  // nothing contributed to the instance yet

  FailureRecord record;
  record.committee_id = committee_id;
  record.sim_time_seconds = now_seconds();
  record.utility_before = best_ladder_utility();

  scheduler_.on_failure(committee_id);
  evicted_from_scheduler_[committee_id] = true;
  h.admitted = false;

  // Theorem 2 at runtime: the stationary-utility perturbation caused by the
  // trim is bounded by max_{g∈G} U_g. The ladder's best answer on the
  // trimmed set certifies a lower bound on max_G U_g; the observed dip must
  // stay within the bound built from it.
  record.utility_after = best_ladder_utility();
  record.perturbation_bound =
      analysis::failure_perturbation_bound(record.utility_after);
  record.within_bound =
      std::abs(record.utility_before - record.utility_after) <=
      record.perturbation_bound + kBoundSlack;
  if (obs_failures_ != nullptr) obs_failures_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("supervisor", "supervisor/failure",
               {{"committee_id", static_cast<double>(committee_id)},
                {"utility_before", record.utility_before},
                {"utility_after", record.utility_after},
                {"perturbation_bound", record.perturbation_bound}});
  }
  failures_.push_back(record);
  update_risk_policy();
}

bool EpochSupervisor::on_recovery(std::uint32_t committee_id) {
  const auto it = health_.find(committee_id);
  if (it == health_.end() || !it->second.failed) return false;
  CommitteeHealth& h = it->second;
  h.failed = false;
  h.missed_pings = 0;
  ++recoveries_detected_;
  if (obs_recoveries_ != nullptr) obs_recoveries_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("supervisor", "supervisor/recovery",
               {{"committee_id", static_cast<double>(committee_id)}});
  }
  if (h.banned || h.quarantined) return false;  // alive, but not trusted
  const auto report_it = last_verified_.find(committee_id);
  if (report_it == last_verified_.end()) return false;  // never submitted
  if (!evicted_from_scheduler_[committee_id]) return false;
  const bool accepted = scheduler_.on_recovery(report_it->second);
  if (accepted) {
    evicted_from_scheduler_[committee_id] = false;
    h.admitted = true;
    update_risk_policy();
  }
  return accepted;
}

double EpochSupervisor::risk_score() const noexcept {
  return risk_carry_ +
         config_.risk.strike_weight * static_cast<double>(strikes_total_) +
         config_.risk.failure_weight * static_cast<double>(failures_detected_);
}

bool EpochSupervisor::ban_preserves_liveness() const noexcept {
  // Risk-adaptive supervisors only (the static path keeps the paper's
  // unconditional ban on budget exhaustion).
  // Bans are free while the unbanned membership still reaches N_max: the
  // scheduler stops listening at N_max reports, so excluding a member
  // beyond that line costs no throughput this epoch or the next. Below the
  // line every ban shrinks the usable membership toward infeasibility —
  // an attacker spreading offenses across the membership would be trading
  // cheap forgeries for a permanent liveness collapse. So past it, repeat
  // offenders stay quarantined (still evicted, still struck) instead.
  std::size_t unbanned = 0;
  for (const auto& [id, h] : health_) {
    (void)id;
    if (!h.banned) ++unbanned;
  }
  return unbanned > scheduler_.n_max_count();
}

int EpochSupervisor::effective_max_strikes() const noexcept {
  if (!config_.risk.enabled) return config_.max_strikes;
  const int tightened =
      config_.max_strikes -
      static_cast<int>(risk_score() / config_.risk.tighten_step);
  // Floor 2, never 1: banning first offenses under high carried risk lets a
  // broad attack convert the whole membership into bans within an epoch or
  // two (a liveness collapse the attacker would happily trade forgeries
  // for). Repeat offenders still escalate monotonically to a ban.
  return std::max(std::min(2, config_.max_strikes), tightened);
}

void EpochSupervisor::update_risk_policy() {
  if (!config_.risk.enabled) return;
  const double risk = risk_score();
  std::size_t boost = std::min<std::size_t>(
      config_.risk.boost_cap,
      static_cast<std::size_t>(risk / config_.risk.escalation_step));
  // Clamp 1 — bootstrap reachability: the online scheduler only starts
  // exploring once strictly more than N_min reports arrived, and arrivals
  // stop at N_max; a boost that pushed N_min to N_max would wedge it.
  const std::size_t n_max = scheduler_.n_max_count();
  while (boost > 0 && base_n_min_ + boost >= n_max) --boost;
  // Clamp 2 — feasibility: never raise N_min past what the live reports can
  // satisfy (Eq. (3)+(4)). The defense must not manufacture an infeasible
  // epoch that the static supervisor would have solved.
  while (boost > 0 &&
         !feasible_selection_exists(scheduler_.reports(),
                                    config_.scheduler.capacity,
                                    base_n_min_ + boost)) {
    --boost;
  }
  const std::size_t target = base_n_min_ + boost;
  const std::size_t before = scheduler_.n_min();
  if (target == before) return;

  ResizeRecord record;
  record.sim_time_seconds = now_seconds();
  record.n_min_before = before;
  record.n_min_after = target;
  record.risk_score = risk;
  record.utility_before = best_ladder_utility();
  if (!scheduler_.set_n_min(target)) return;  // refused; nothing changed
  record.utility_after = best_ladder_utility();
  // Theorem 2 extended to adaptive resizing: changing N_min swaps the
  // feasible space for a subset/superset; the stationary-optimum shift is
  // bounded by the best utility certified on the larger space.
  record.perturbation_bound = analysis::failure_perturbation_bound(
      std::max(record.utility_before, record.utility_after));
  record.within_bound =
      std::abs(record.utility_before - record.utility_after) <=
      record.perturbation_bound + kBoundSlack;
  resizes_.push_back(record);
  if (obs_resizes_ != nullptr) obs_resizes_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("supervisor", "supervisor/resize",
               {{"n_min_before", static_cast<double>(record.n_min_before)},
                {"n_min_after", static_cast<double>(record.n_min_after)},
                {"risk", record.risk_score},
                {"utility_after", record.utility_after}});
  }
}

void EpochSupervisor::adopt_carry(const SupervisorCarry& carry) {
  risk_carry_ += carry.risk;
  for (const SupervisorCarry::Entry& entry : carry.entries) {
    CommitteeHealth& h = health_[entry.committee_id];
    h.strikes = std::max(h.strikes, entry.strikes);
    // Bans are monotone across epochs: once banned, never re-admitted.
    // Carried strikes alone never ban at adoption — the membership is not
    // known yet, so the liveness guard cannot be evaluated; a repeat
    // offender with an exhausted budget is banned by strike() the moment it
    // offends again (strikes already ≥ the budget at that point).
    h.banned = h.banned || entry.banned;
  }
  update_risk_policy();
}

SupervisorCarry EpochSupervisor::export_carry() const {
  SupervisorCarry carry;
  for (const auto& [id, h] : health_) {  // std::map: ascending id
    if (h.strikes > 0 || h.banned) {
      carry.entries.push_back({id, h.strikes, h.banned});
    }
  }
  carry.risk = config_.risk.carry_decay * risk_score();
  return carry;
}

void EpochSupervisor::explore(std::size_t iterations) {
  scheduler_.explore(iterations);
}

void EpochSupervisor::attach_monitor(sim::Simulator& simulator,
                                     net::Network& network,
                                     net::NodeId observer) {
  simulator_ = &simulator;
  heartbeat_kernel_ =
      simulator.register_kernel(&EpochSupervisor::heartbeat_thunk, this);
  network_ = &network;
  observer_ = observer;
  for (const auto& [id, node] : node_of_) {
    (void)node;
    CommitteeHealth& h = health_[id];
    if (h.ping_interval_seconds <= 0.0) {
      h.ping_interval_seconds = config_.ping_interval_seconds;
    }
    schedule_probe(id, h.ping_interval_seconds);
  }
}

void EpochSupervisor::register_committee_node(std::uint32_t committee_id,
                                              net::NodeId node) {
  const bool known = node_of_.count(committee_id) != 0;
  node_of_[committee_id] = node;
  CommitteeHealth& h = health_[committee_id];
  if (h.ping_interval_seconds <= 0.0) {
    h.ping_interval_seconds = config_.ping_interval_seconds;
  }
  if (simulator_ != nullptr && !known) {
    schedule_probe(committee_id, h.ping_interval_seconds);
  }
}

void EpochSupervisor::heartbeat_thunk(void* ctx,
                                      const sim::TypedPayload* cohort,
                                      std::size_t n) {
  auto* self = static_cast<EpochSupervisor*>(ctx);
  for (std::size_t i = 0; i < n; ++i) {
    self->probe(static_cast<std::uint32_t>(cohort[i].a));
  }
}

void EpochSupervisor::schedule_probe(std::uint32_t committee_id,
                                     double delay_seconds) {
  // Probes self-reschedule and are never cancelled — the typed heartbeat
  // kernel handles them in both executor modes.
  simulator_->schedule_typed_after(common::SimTime(delay_seconds),
                                   heartbeat_kernel_,
                                   sim::TypedPayload{committee_id, 0});
}

void EpochSupervisor::probe(std::uint32_t committee_id) {
  const net::NodeId node = node_of_.at(committee_id);
  CommitteeHealth& h = health_[committee_id];
  // A probe is a real message exchange: it can be lost outright (burst
  // loss), answered late (straggler slowdown inflates the sampled RTT), or
  // never answered (failed node → infinite RTT).
  const common::SimTime rtt = network_->ping_rtt(observer_, node);
  const bool lost = rng_.bernoulli(network_->loss_probability());
  const bool missed = lost || rtt.is_infinite() ||
                      rtt.seconds() > config_.ping_timeout_seconds;
  if (missed) {
    if (obs_probe_missed_ != nullptr) obs_probe_missed_->inc();
    if (auto* t = obs_.trace()) {
      t->instant("hb", "hb/probe_missed",
                 {{"committee_id", static_cast<double>(committee_id)},
                  {"missed_pings", static_cast<double>(h.missed_pings + 1)},
                  {"lost", lost ? 1.0 : 0.0}});
    }
  } else {
    if (obs_probe_ok_ != nullptr) obs_probe_ok_->inc();
    if (obs_ping_rtt_ != nullptr) obs_ping_rtt_->observe(rtt.seconds());
  }
  if (missed) {
    ++h.missed_pings;
    if (!h.failed &&
        h.missed_pings >= config_.missed_pings_before_failure) {
      on_failure(committee_id);
    }
    if (h.failed) {
      // Down: keep checking, but back off exponentially (§V-A timeouts).
      h.ping_interval_seconds =
          std::min(h.ping_interval_seconds * config_.ping_backoff_factor,
                   config_.ping_interval_cap_seconds);
    }
  } else {
    h.missed_pings = 0;
    h.ping_interval_seconds = config_.ping_interval_seconds;
    if (h.failed) on_recovery(committee_id);
  }
  schedule_probe(committee_id, h.ping_interval_seconds);
}

double EpochSupervisor::now_seconds() const {
  return simulator_ != nullptr ? simulator_->now().seconds() : 0.0;
}

double EpochSupervisor::best_ladder_utility() const {
  // run_ladder, not decide: the Theorem-2 bookkeeping probes the ladder
  // internally and must not show up as user-visible decision events.
  const SupervisedDecision d = run_ladder();
  return d.decision.feasible ? d.decision.utility : 0.0;
}

SupervisedDecision EpochSupervisor::decide() const {
  // The ladder walk below is pure; record the winning rung on the way out.
  const auto recorded = [this](SupervisedDecision out) {
    if (obs::Counter* c = obs_tier_[static_cast<std::size_t>(out.tier)]) {
      c->inc();
    }
    if (auto* t = obs_.trace()) {
      t->instant("ladder", to_string(out.tier),
                 {{"tier", static_cast<double>(out.tier)},
                  {"feasible", out.decision.feasible ? 1.0 : 0.0},
                  {"utility", out.decision.utility},
                  {"permitted",
                   static_cast<double>(out.decision.permitted_ids.size())}});
    }
    return out;
  };
  return recorded(run_ladder());
}

SupervisedDecision EpochSupervisor::run_ladder() const {
  SupervisedDecision out;
  for (const FailureRecord& record : failures_) {
    out.perturbation_bound =
        std::max(out.perturbation_bound, record.perturbation_bound);
    out.theorem2_respected = out.theorem2_respected && record.within_bound;
  }
  for (const ResizeRecord& record : resizes_) {
    out.perturbation_bound =
        std::max(out.perturbation_bound, record.perturbation_bound);
    out.theorem2_respected = out.theorem2_respected && record.within_bound;
  }

  const std::vector<txn::ShardReport>& reports = scheduler_.reports();
  if (reports.empty()) {
    out.reason = InfeasibleReason::kNoLiveCommittees;
    return out;
  }
  const EpochInstance instance = EpochInstance::from_reports(
      reports, config_.scheduler.alpha, config_.scheduler.capacity,
      scheduler_.n_min());

  // Tier 1 — SE best: the converged stochastic-exploration answer.
  Selection se_selection;
  if (const SeScheduler* se = scheduler_.se()) {
    se_selection = se->current_selection();
    // Same id-alignment guard as OnlineCommitteeScheduler::decide().
    const auto& sched_committees = se->instance().committees();
    bool aligned = se_selection.size() == instance.size() &&
                   sched_committees.size() == instance.size();
    for (std::size_t i = 0; aligned && i < instance.size(); ++i) {
      aligned = sched_committees[i].id == instance.committees()[i].id;
    }
    if (!aligned) se_selection.clear();
    if (!se_selection.empty() && instance.feasible(se_selection)) {
      fill_decision(out, instance, se_selection, DecisionTier::kSeBest);
      return out;
    }
  }

  // Tier 2 — greedy density repair of the SE selection: a late failure may
  // have broken feasibility of an otherwise good selection; shed/fill it
  // instead of discarding the exploration work.
  if (se_selection.size() == instance.size()) {
    Selection repaired = se_selection;
    if (baselines::repair(instance, repaired) &&
        instance.feasible(repaired)) {
      fill_decision(out, instance, repaired, DecisionTier::kGreedyRepair);
      return out;
    }
  }

  // Tier 3 — greedy from scratch over the live set. When the density greedy
  // itself cannot reach feasibility, fall back to the minimal witness (the
  // N_min smallest shards): it is feasible whenever anything is, so this
  // tier only falls through when the instance is genuinely infeasible.
  {
    baselines::Greedy greedy;
    const baselines::SolverResult r = greedy.solve(instance);
    if (r.feasible) {
      fill_decision(out, instance, r.best, DecisionTier::kGreedyScratch);
      return out;
    }
    if (instance.n_min() > 0) {
      if (const auto witness = minimal_feasible(instance)) {
        fill_decision(out, instance, *witness, DecisionTier::kGreedyScratch);
        return out;
      }
    }
  }

  // Tier 4 — permit everyone (the paper's pre-bootstrap slack behavior).
  {
    Selection everyone(instance.size(), 1);
    if (instance.feasible(everyone)) {
      fill_decision(out, instance, everyone, DecisionTier::kPermitAll);
      return out;
    }
  }

  // N_min = 0: the empty selection satisfies both constraints, so an
  // over-capacity live set still yields a (degenerate, zero-throughput)
  // feasible answer rather than an infeasible epoch.
  if (instance.n_min() == 0) {
    fill_decision(out, instance, Selection(instance.size(), 0),
                  DecisionTier::kGreedyScratch);
    return out;
  }

  // Tier 5 — genuinely infeasible; say why.
  out.tier = DecisionTier::kInfeasible;
  out.reason = reports.size() < scheduler_.n_min()
                   ? InfeasibleReason::kNminUnreachable
                   : InfeasibleReason::kCapacityInsufficient;
  return out;
}

std::optional<CommitteeHealth> EpochSupervisor::health(
    std::uint32_t committee_id) const {
  const auto it = health_.find(committee_id);
  if (it == health_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint32_t> EpochSupervisor::quarantined_ids() const {
  std::vector<std::uint32_t> ids;
  for (const auto& [id, h] : health_) {
    if (h.quarantined && !h.banned) ids.push_back(id);
  }
  return ids;
}

std::vector<std::uint32_t> EpochSupervisor::banned_ids() const {
  std::vector<std::uint32_t> ids;
  for (const auto& [id, h] : health_) {
    if (h.banned) ids.push_back(id);
  }
  return ids;
}

}  // namespace mvcom::core
