#include "mvcom/ddl_policy.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/stats.hpp"

namespace mvcom::core {

Admission DdlPolicy::admit(std::span<const txn::ShardReport> reports) const {
  if (reports.empty()) {
    throw std::invalid_argument("DdlPolicy::admit: no reports");
  }
  Admission result;
  result.deadline = deadline(reports);
  for (const txn::ShardReport& r : reports) {
    if (r.two_phase_latency() <= result.deadline) {
      result.admitted.push_back(r);
    } else {
      ++result.stragglers;
    }
  }
  return result;
}

double MaxLatencyDdl::deadline(
    std::span<const txn::ShardReport> reports) const {
  assert(!reports.empty());
  double t = 0.0;
  for (const txn::ShardReport& r : reports) {
    t = std::max(t, r.two_phase_latency());
  }
  return t;
}

PercentileDdl::PercentileDdl(double quantile) : quantile_(quantile) {
  if (quantile <= 0.0 || quantile > 1.0) {
    throw std::invalid_argument("PercentileDdl: quantile in (0, 1]");
  }
}

double PercentileDdl::deadline(
    std::span<const txn::ShardReport> reports) const {
  assert(!reports.empty());
  std::vector<double> latencies;
  latencies.reserve(reports.size());
  for (const txn::ShardReport& r : reports) {
    latencies.push_back(r.two_phase_latency());
  }
  return common::percentile(latencies, quantile_);
}

std::optional<EpochInstance> make_instance_with_ddl(
    std::span<const txn::ShardReport> reports, const DdlPolicy& policy,
    double alpha, std::uint64_t capacity, std::size_t n_min) {
  const Admission admission = policy.admit(reports);
  if (admission.admitted.empty()) return std::nullopt;
  return EpochInstance::from_reports(admission.admitted, alpha, capacity,
                                     n_min, admission.deadline);
}

}  // namespace mvcom::core
