#include "mvcom/se_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvcom::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Prefix sums of the sorted (ascending) shard sizes: smallest_prefix[n] is
/// the minimum possible Σ s over any n-subset, so cardinality n admits a
/// capacity-feasible subset iff smallest_prefix[n] <= Ĉ. The accumulation is
/// exact: EpochInstance construction rejects committee sets whose total Σ s
/// would wrap std::uint64_t, and every prefix is bounded by that total.
std::vector<std::uint64_t> smallest_prefix_sums(const EpochInstance& inst) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(inst.size());
  for (const Committee& c : inst.committees()) sizes.push_back(c.txs);
  std::sort(sizes.begin(), sizes.end());
  std::vector<std::uint64_t> prefix(sizes.size() + 1, 0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    prefix[i + 1] = prefix[i] + sizes[i];
  }
  return prefix;
}

}  // namespace

// ---------------------------------------------------------------------------
// SeExplorer
// ---------------------------------------------------------------------------

SeExplorer::SeExplorer(const EpochInstance* instance, const SeParams* params,
                       common::Rng rng)
    : instance_(instance), params_(params), rng_(rng) {
  smallest_prefix_ = smallest_prefix_sums(*instance_);
  refresh_caches();
  // One solution per cardinality n = 1..|I| (slot n-1). The n = |I| slot is
  // the static full-set solution of Alg. 1 line 25.
  solutions_.resize(instance_->size());
  for (std::size_t idx = 0; idx < solutions_.size(); ++idx) {
    initialize_solution(solutions_[idx], idx + 1);
  }
}

void SeExplorer::refresh_caches() {
  const std::size_t total = instance_->size();
  gain_.resize(total);
  txs_.resize(total);
  log_remaining_.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    gain_[i] = instance_->gain(i);
    txs_[i] = instance_->committees()[i].txs;
    // ln(|I| − n) for the solution at slot i (n = i + 1); the full-set slot
    // never races, so its entry is unused.
    const auto remaining = static_cast<double>(total - (i + 1));
    log_remaining_[i] = remaining > 0.0 ? std::log(remaining) : 0.0;
  }
}

void SeExplorer::initialize_solution(SolutionState& sol, std::size_t n) {
  const std::size_t total = instance_->size();
  sol.active = smallest_prefix_[n] <= instance_->capacity();
  if (!sol.active) return;

  // Alg. 2: resample random n-subsets until Cons. (4) holds; bounded tries,
  // then fall back to the n smallest shards (feasible because active).
  Selection x(total, 0);
  bool ok = false;
  for (int attempt = 0; attempt < params_->feasibility_retries && !ok;
       ++attempt) {
    std::fill(x.begin(), x.end(), 0);
    std::uint64_t txs = 0;
    for (const std::size_t i : rng_.sample_indices(total, n)) {
      x[i] = 1;
      txs += instance_->committees()[i].txs;
    }
    ok = txs <= instance_->capacity();
  }
  if (!ok) {
    std::vector<std::size_t> order(total);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return instance_->committees()[a].txs < instance_->committees()[b].txs;
    });
    std::fill(x.begin(), x.end(), 0);
    for (std::size_t r = 0; r < n; ++r) x[order[r]] = 1;
  }
  sol.set.rebuild(x);
  recompute(sol);
}

void SeExplorer::recompute(SolutionState& sol) {
  sol.utility = 0.0;
  sol.txs = 0;
  for (const std::uint32_t i : sol.set.selected()) {
    sol.utility += gain_[i];
    sol.txs += txs_[i];
  }
}

void SeExplorer::step() {
  if (params_->transition == SeTransition::kChainParallel) {
    step_chain_parallel();
  } else {
    step_timer_race();
  }
}

void SeExplorer::step_block(std::size_t k, SeBlockStats* stats,
                            double* running_max) {
  if (stats) {
    stats->trace.clear();
    stats->snapshots.clear();
  }
  for (std::size_t t = 0; t < k; ++t) {
    step();
    if (!stats) continue;
    const auto b = best();
    const double u = b ? b->first : kNaN;
    stats->trace.push_back(u);
    if (b && running_max && u > *running_max) {
      *running_max = u;
      stats->snapshots.push_back({t, u, b->second->to_selection()});
    }
  }
}

void SeExplorer::step_chain_parallel() {
  // One Metropolis transition per solution. The per-cardinality chains are
  // independent, and the acceptance ratio min(1, exp(β·ΔU)) equals the
  // Eq.-(7) rate ratio q_{f,f'}/q_{f',f}, so each chain is reversible with
  // the Eq.-(6) stationary law — the same chain the timer race realizes,
  // advanced |I|−1 transitions per iteration.
  const double beta = params_->beta;
  const std::uint64_t capacity = instance_->capacity();
  for (SolutionState& sol : solutions_) {
    if (!sol.active) continue;
    if (sol.set.selected_count() == 0 || sol.set.unselected_count() == 0) {
      continue;  // the full-set solution has no swap moves
    }
    std::uint32_t out = 0;
    std::uint32_t in = 0;
    std::uint64_t new_txs = 0;
    bool ok = false;
    for (int attempt = 0; attempt < params_->feasibility_retries && !ok;
         ++attempt) {
      out = sol.set.sample_selected(rng_);
      in = sol.set.sample_unselected(rng_);
      new_txs = sol.txs - txs_[out] + txs_[in];
      ok = new_txs <= capacity;
    }
    if (!ok) {
      if constexpr (obs::kEnabled) ++obs_tally_.infeasible;
      continue;
    }
    const double delta = gain_[in] - gain_[out];
    if (delta < 0.0 && rng_.uniform01() >= std::exp(beta * delta)) {
      if constexpr (obs::kEnabled) ++obs_tally_.rejects;
      continue;  // rejected downhill move
    }
    if constexpr (obs::kEnabled) ++obs_tally_.accepts;
    sol.set.swap(out, in);
    sol.txs = new_txs;
    sol.utility += delta;
  }
}

void SeExplorer::step_timer_race() {
  // The exponential-timer race (Alg. 3 + State Transit of Alg. 1): every
  // active solution arms a timer for one candidate swap; the minimum timer
  // fires and its swap is applied. Comparing log-timers is an exact,
  // overflow-free monotone transform of the race.
  const double beta = params_->beta;
  const double tau = params_->tau;
  const std::uint64_t capacity = instance_->capacity();

  struct Winner {
    std::size_t n_index = 0;
    std::uint32_t out = 0;
    std::uint32_t in = 0;
    double delta = 0.0;
    std::uint64_t new_txs = 0;
    double log_timer = kInf;
  } winner;

  for (std::size_t idx = 0; idx < solutions_.size(); ++idx) {
    SolutionState& sol = solutions_[idx];
    if (!sol.active) continue;
    if (sol.set.selected_count() == 0 || sol.set.unselected_count() == 0) {
      continue;  // the full-set solution has no swap moves
    }
    // Candidate pair (ĩ, ï) — uniformly random, resampled until the swap
    // respects the capacity constraint (bounded retries).
    std::uint32_t out = 0;
    std::uint32_t in = 0;
    std::uint64_t new_txs = 0;
    bool ok = false;
    for (int attempt = 0; attempt < params_->feasibility_retries && !ok;
         ++attempt) {
      out = sol.set.sample_selected(rng_);
      in = sol.set.sample_unselected(rng_);
      new_txs = sol.txs - txs_[out] + txs_[in];
      ok = new_txs <= capacity;
    }
    if (!ok) {
      if constexpr (obs::kEnabled) ++obs_tally_.infeasible;
      continue;
    }
    if constexpr (obs::kEnabled) ++obs_tally_.timer_draws;

    const double delta = gain_[in] - gain_[out];
    // log T = τ − ½β(U_{f'} − U_f) − ln(|I| − n) + ln(Exp(1) draw). The
    // Exp(1) draw goes through detail::log_unit_exponential, which clamps
    // the uniform into (0,1): a raw u == 0 would yield log T = −∞ and win
    // the race regardless of β·ΔU.
    const double log_timer = tau - 0.5 * beta * delta - log_remaining_[idx] +
                             detail::log_unit_exponential(rng_.uniform01());
    if (log_timer < winner.log_timer) {
      winner = {idx, out, in, delta, new_txs, log_timer};
    }
  }

  if (winner.log_timer == kInf) return;  // no solution could move this round
  if constexpr (obs::kEnabled) ++obs_tally_.accepts;
  SolutionState& sol = solutions_[winner.n_index];
  sol.set.swap(winner.out, winner.in);
  sol.txs = winner.new_txs;
  sol.utility += winner.delta;
}

std::optional<std::pair<double, const SwapSet*>> SeExplorer::best() const {
  // λ-argmax of Alg. 1 lines 22–26: Ĉ holds by invariant; Cons. (3) filters
  // cardinalities below N_min.
  std::optional<std::pair<double, const SwapSet*>> best;
  for (std::size_t idx = 0; idx < solutions_.size(); ++idx) {
    const SolutionState& sol = solutions_[idx];
    if (!sol.active) continue;
    if (idx + 1 < instance_->n_min()) continue;
    if (!best || sol.utility > best->first) {
      best = {sol.utility, &sol.set};
    }
  }
  return best;
}

void SeExplorer::adopt_if_better(const SwapSet& incumbent, double utility) {
  const std::size_t n = incumbent.selected_count();
  if (n == 0 || n > solutions_.size()) return;
  SolutionState& sol = solutions_[n - 1];
  if (sol.active && sol.utility < utility) {
    sol.set = incumbent;
    recompute(sol);
  }

  // Seed the incumbent's neighbor cardinalities too: chains only move by
  // swaps (cardinality-preserving), so capacity-blocked local optima need a
  // cardinality step to escape — the family provides it.
  if (n >= 2) {
    SolutionState& below = solutions_[n - 2];
    if (below.active) {
      // Drop the incumbent's worst-gain member.
      std::uint32_t worst = incumbent.selected().front();
      for (const std::uint32_t i : incumbent.selected()) {
        if (gain_[i] < gain_[worst]) worst = i;
      }
      const double variant_utility = utility - gain_[worst];
      if (below.utility < variant_utility) {
        Selection x = incumbent.to_selection();
        x[worst] = 0;
        below.set.rebuild(x);
        recompute(below);
      }
    }
  }
  if (n < solutions_.size()) {
    SolutionState& above = solutions_[n];
    if (above.active) {
      // Add the best-gain non-member that still fits the capacity.
      std::uint64_t txs = 0;
      for (const std::uint32_t i : incumbent.selected()) txs += txs_[i];
      std::size_t pick = gain_.size();
      for (std::size_t i = 0; i < gain_.size(); ++i) {
        if (incumbent.contains(static_cast<std::uint32_t>(i))) continue;
        if (txs + txs_[i] > instance_->capacity()) continue;
        if (pick == gain_.size() || gain_[i] > gain_[pick]) pick = i;
      }
      if (pick != gain_.size() &&
          above.utility < utility + gain_[pick]) {
        Selection x = incumbent.to_selection();
        x[pick] = 1;
        above.set.rebuild(x);
        recompute(above);
      }
    }
  }
}

void SeExplorer::rebind(const EpochInstance* instance,
                        std::optional<std::uint32_t> removed_index) {
  // NB: `instance` may be the same object the explorer was already bound to
  // (SeScheduler mutates its member in place before rebinding), so the old
  // universe size must come from the surviving bitmaps, not from a pointer.
  instance_ = instance;
  smallest_prefix_ = smallest_prefix_sums(*instance_);
  refresh_caches();
  const std::size_t new_total = instance_->size();

  std::vector<SolutionState> fresh(new_total);
  const std::size_t carried = std::min(solutions_.size(), new_total);
  for (std::size_t idx = 0; idx < carried; ++idx) {
    SolutionState& old_sol = solutions_[idx];
    const std::size_t n = idx + 1;
    fresh[idx].active = smallest_prefix_[n] <= instance_->capacity();
    if (!fresh[idx].active) continue;
    const bool survivable =
        old_sol.active &&
        (!removed_index || !old_sol.set.contains(*removed_index));
    if (!survivable) {
      // Trimmed state (Fig. 7): the solution referenced the failed
      // committee — draw a fresh feasible subset of the same cardinality.
      initialize_solution(fresh[idx], n);
      continue;
    }
    // Translate the surviving bitmap into the new index space.
    Selection x(new_total, 0);
    const Selection old_x = old_sol.set.to_selection();
    std::size_t w = 0;
    for (std::size_t r = 0; r < old_x.size(); ++r) {
      if (removed_index && r == *removed_index) continue;
      if (w < new_total) x[w] = old_x[r];
      ++w;
    }
    fresh[idx].set.rebuild(x);
    recompute(fresh[idx]);
    if (fresh[idx].txs > instance_->capacity()) {
      // Cannot happen on leave (Σ only shrinks) but guard regardless.
      initialize_solution(fresh[idx], n);
    }
  }
  solutions_ = std::move(fresh);
  // Newly valid cardinalities (join events) get fresh solutions.
  for (std::size_t idx = carried; idx < new_total; ++idx) {
    initialize_solution(solutions_[idx], idx + 1);
  }
}

// ---------------------------------------------------------------------------
// SeScheduler
// ---------------------------------------------------------------------------

SeScheduler::SeScheduler(EpochInstance instance, SeParams params,
                         std::uint64_t seed)
    : instance_(std::move(instance)), params_(params) {
  if (params_.threads == 0) {
    throw std::invalid_argument("SeScheduler: threads (Γ) must be >= 1");
  }
  if (params_.beta <= 0.0) {
    throw std::invalid_argument("SeScheduler: beta must be positive");
  }
  common::Rng root(seed);
  explorers_.reserve(params_.threads);
  for (std::size_t t = 0; t < params_.threads; ++t) {
    explorers_.emplace_back(&instance_, &params_, root.fork());
  }
  if (params_.parallel_execution && params_.threads > 1) {
    // Γ−1 workers: the calling thread participates in every batch, so Γ
    // execution contexts advance the Γ explorers with no idle submitter.
    pool_ = std::make_unique<common::ThreadPool>(params_.threads - 1);
  }
}

SeScheduler::~SeScheduler() = default;

std::size_t SeScheduler::next_block_length(std::size_t remaining) const {
  if (params_.share_interval == 0) return remaining;
  const std::size_t into = iteration_ % params_.share_interval;
  return std::min(remaining, params_.share_interval - into);
}

void SeScheduler::step_explorers(std::size_t k,
                                 std::vector<SeBlockStats>* blocks,
                                 std::vector<double>* running_max) {
  const auto body = [&](std::size_t e) {
    explorers_[e].step_block(k, blocks ? &(*blocks)[e] : nullptr,
                             running_max ? &(*running_max)[e] : nullptr);
  };
  if (pool_) {
    pool_->parallel_for(explorers_.size(), body);
  } else {
    for (std::size_t e = 0; e < explorers_.size(); ++e) body(e);
  }
}

bool SeScheduler::maybe_share() {
  // Thread cooperation (§IV-D): periodically propagate the best solution so
  // every thread's matching chain polishes the incumbent. Runs on the
  // calling thread under the barrier — workers are quiescent here.
  if (explorers_.size() <= 1 || params_.share_interval == 0 ||
      iteration_ % params_.share_interval != 0) {
    return false;
  }
  double best_utility = -kInf;
  const SwapSet* incumbent = nullptr;
  for (const SeExplorer& explorer : explorers_) {
    if (const auto b = explorer.best(); b && b->first > best_utility) {
      best_utility = b->first;
      incumbent = b->second;
    }
  }
  if (!incumbent) return false;
  const SwapSet shared = *incumbent;  // copy: adopters mutate in place
  for (SeExplorer& explorer : explorers_) {
    explorer.adopt_if_better(shared, best_utility);
  }
  return true;
}

void SeScheduler::step() { advance(1); }

void SeScheduler::advance(std::size_t k) {
  while (k > 0) {
    const std::size_t block = next_block_length(k);
    step_explorers(block, nullptr, nullptr);
    iteration_ += block;
    k -= block;
    const bool shared = maybe_share();
    flush_obs(block, shared);
  }
}

void SeScheduler::set_obs(obs::ObsContext obs) {
  obs_ = obs;
  obs_iterations_ = nullptr;
  obs_accepts_ = nullptr;
  obs_rejects_ = nullptr;
  obs_infeasible_ = nullptr;
  obs_timer_draws_ = nullptr;
  obs_shares_ = nullptr;
  obs_joins_ = nullptr;
  obs_leaves_ = nullptr;
  obs_best_utility_ = nullptr;
  obs::MetricsRegistry* m = obs_.metrics();
  if (m == nullptr) return;
  obs_iterations_ = &m->counter("mvcom_se_iterations_total",
                                "SE global iterations advanced");
  obs_accepts_ =
      &m->counter("mvcom_se_transitions_total",
                  "SE chain transitions by Eq.-(7) outcome",
                  {{"result", "accept"}});
  obs_rejects_ =
      &m->counter("mvcom_se_transitions_total",
                  "SE chain transitions by Eq.-(7) outcome",
                  {{"result", "reject"}});
  obs_infeasible_ =
      &m->counter("mvcom_se_transitions_total",
                  "SE chain transitions by Eq.-(7) outcome",
                  {{"result", "infeasible"}});
  obs_timer_draws_ = &m->counter("mvcom_se_timer_draws_total",
                                 "Eq.-(8) exponential timer draws");
  obs_shares_ = &m->counter("mvcom_se_shares_total",
                            "Thread-cooperation share points executed");
  obs_joins_ = &m->counter("mvcom_se_rebinds_total",
                           "Explorer rebinds after committee dynamics",
                           {{"kind", "join"}});
  obs_leaves_ = &m->counter("mvcom_se_rebinds_total",
                            "Explorer rebinds after committee dynamics",
                            {{"kind", "leave"}});
  obs_best_utility_ = &m->gauge("mvcom_se_best_utility",
                                "Best feasible utility across Γ explorers");
}

void SeScheduler::flush_obs(std::size_t block, bool shared) {
  if (!obs_) return;
  obs::TraceRecorder* trace = obs_.trace();
  SeObsCounters total;
  for (std::size_t e = 0; e < explorers_.size(); ++e) {
    SeObsCounters& tally = explorers_[e].obs_tally_;
    total += tally;
    if (trace != nullptr) {
      // Per-Γ-thread tallies as one counter series per explorer track.
      trace->counter("se", "se/explorer",
                     {{"accepts", static_cast<double>(tally.accepts)},
                      {"rejects", static_cast<double>(tally.rejects)},
                      {"infeasible", static_cast<double>(tally.infeasible)},
                      {"timer_draws", static_cast<double>(tally.timer_draws)}},
                     static_cast<std::uint32_t>(e));
    }
    tally.reset();
  }
  if (obs_iterations_ != nullptr) {
    obs_iterations_->add(block);
    obs_accepts_->add(total.accepts);
    obs_rejects_->add(total.rejects);
    obs_infeasible_->add(total.infeasible);
    obs_timer_draws_->add(total.timer_draws);
    if (shared) obs_shares_->inc();
  }
  const double utility = current_utility();
  if (obs_best_utility_ != nullptr) obs_best_utility_->set(utility);
  if (trace != nullptr) {
    trace->counter("se", "se/progress",
                   {{"iteration", static_cast<double>(iteration_)},
                    {"best_utility", utility}});
    if (shared) {
      trace->instant("se", "se/share",
                     {{"iteration", static_cast<double>(iteration_)},
                      {"best_utility", utility}});
    }
  }
}

double SeScheduler::current_utility() const {
  double best = kNaN;
  for (const SeExplorer& explorer : explorers_) {
    if (const auto b = explorer.best(); b && !(b->first <= best)) {
      best = b->first;
    }
  }
  return best;
}

Selection SeScheduler::current_selection() const {
  double best = -kInf;
  const SwapSet* chosen = nullptr;
  for (const SeExplorer& explorer : explorers_) {
    if (const auto b = explorer.best(); b && b->first > best) {
      best = b->first;
      chosen = b->second;
    }
  }
  return chosen ? chosen->to_selection() : Selection{};
}

SeResult SeScheduler::run() {
  // Block-structured main loop: explorers advance a whole barrier-to-barrier
  // block (up to share_interval iterations) at a time — on the worker pool in
  // parallel mode, inline otherwise — then the per-iteration global trace is
  // reconstructed from the per-explorer block stats. Because chains are
  // independent between share points, the reconstruction is exactly what a
  // one-iteration-at-a-time interleaving would have observed, so serial and
  // parallel execution produce bitwise-identical results. Convergence is
  // still detected at iteration granularity (the trace is truncated there);
  // explorer state may overshoot by up to one block past the detection
  // point, which only matters to callers that keep stepping after run().
  SeResult result;
  result.utility_trace.reserve(params_.max_iterations);
  double best_utility = -kInf;
  Selection best_selection;
  std::size_t stale = 0;
  bool done = false;

  std::vector<SeBlockStats> blocks(explorers_.size());
  std::vector<double> running_max(explorers_.size(), -kInf);

  std::size_t remaining = params_.max_iterations;
  while (remaining > 0 && !done) {
    const std::size_t block = next_block_length(remaining);
    step_explorers(block, &blocks, &running_max);
    iteration_ += block;
    remaining -= block;
    const bool shared = maybe_share();
    flush_obs(block, shared);

    for (std::size_t t = 0; t < block && !done; ++t) {
      // Adoption at a share point can only raise utilities, and the serial
      // path records the trace entry after sharing — mirror that by reading
      // the post-share state for the boundary iteration.
      const bool at_share = shared && t == block - 1;
      double u = kNaN;
      if (at_share) {
        u = current_utility();
      } else {
        for (const SeBlockStats& b : blocks) {
          const double v = b.trace[t];
          if (!std::isnan(v) && !(v <= u)) u = v;
        }
      }
      result.utility_trace.push_back(u);
      if (!std::isnan(u) && u > best_utility + params_.convergence_tol) {
        best_utility = u;
        if (at_share) {
          best_selection = current_selection();
        } else {
          // The explorer that achieved the new maximum snapshotted its
          // selection at exactly this offset (a global improvement implies a
          // new per-explorer maximum); fall back to its latest snapshot at
          // or before t for sub-tolerance plateau ties.
          for (const SeBlockStats& b : blocks) {
            if (b.trace[t] != u) continue;
            const SeBlockStats::Snapshot* snap = nullptr;
            for (const SeBlockStats::Snapshot& s : b.snapshots) {
              if (s.offset > t) break;
              snap = &s;
            }
            if (snap) best_selection = snap->selection;
            break;
          }
        }
        stale = 0;
      } else {
        ++stale;
      }
      if (stale >= params_.convergence_window) {
        result.converged = true;
        done = true;
      }
    }
  }

  result.iterations = result.utility_trace.size();
  result.feasible = !best_selection.empty();
  if (result.feasible) {
    result.best = std::move(best_selection);
    result.utility = best_utility;
    result.valuable_degree = instance_.valuable_degree(result.best);
  }
  return result;
}

void SeScheduler::rebind_all(std::optional<std::uint32_t> removed_index) {
  for (SeExplorer& explorer : explorers_) {
    explorer.rebind(&instance_, removed_index);
  }
}

void SeScheduler::add_committee(const Committee& committee) {
  std::vector<Committee> committees = instance_.committees();
  committees.push_back(committee);
  // Deadline re-derives as max latency over the updated set (paper §III-A).
  instance_ = EpochInstance(std::move(committees), instance_.alpha(),
                            instance_.capacity(), instance_.n_min());
  rebind_all(std::nullopt);
  if (obs_joins_ != nullptr) obs_joins_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("se", "se/committee_join",
               {{"committees", static_cast<double>(instance_.size())},
                {"iteration", static_cast<double>(iteration_)}});
  }
}

void SeScheduler::remove_committee(std::uint32_t committee_id) {
  const auto& committees = instance_.committees();
  const auto it = std::find_if(
      committees.begin(), committees.end(),
      [committee_id](const Committee& c) { return c.id == committee_id; });
  if (it == committees.end()) return;
  const auto removed_index =
      static_cast<std::uint32_t>(std::distance(committees.begin(), it));
  std::vector<Committee> survivors = committees;
  survivors.erase(survivors.begin() + removed_index);
  if (survivors.empty()) {
    throw std::logic_error("SeScheduler: cannot remove the last committee");
  }
  instance_ = EpochInstance(std::move(survivors), instance_.alpha(),
                            instance_.capacity(), instance_.n_min());
  rebind_all(removed_index);
  if (obs_leaves_ != nullptr) obs_leaves_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("se", "se/committee_leave",
               {{"committee_id", static_cast<double>(committee_id)},
                {"committees", static_cast<double>(instance_.size())},
                {"iteration", static_cast<double>(iteration_)}});
  }
}

}  // namespace mvcom::core
