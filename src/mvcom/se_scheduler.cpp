#include "mvcom/se_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvcom::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// ---------------------------------------------------------------------------
// SeLayout
// ---------------------------------------------------------------------------

void SeLayout::rebuild(const EpochInstance& instance, const SeParams& params) {
  const std::size_t total = instance.size();
  gain.resize(total);
  txs.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    gain[i] = instance.gain(i);
    txs[i] = instance.committees()[i].txs;
  }

  // Size ordering (ascending s_i, ties by index) and its prefix sums:
  // smallest_prefix[n] is the minimum possible Σ s over any n-subset, so
  // cardinality n admits a capacity-feasible subset iff
  // smallest_prefix[n] <= Ĉ. The accumulation is exact: EpochInstance
  // construction rejects committee sets whose total Σ s would wrap
  // std::uint64_t, and every prefix is bounded by that total.
  by_size.resize(total);
  std::iota(by_size.begin(), by_size.end(), std::uint32_t{0});
  std::sort(by_size.begin(), by_size.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return txs[a] != txs[b] ? txs[a] < txs[b] : a < b;
            });
  smallest_prefix.assign(total + 1, 0);
  for (std::size_t i = 0; i < total; ++i) {
    smallest_prefix[i + 1] = smallest_prefix[i] + txs[by_size[i]];
  }

  // Gain ordering (descending, ties by index): the candidate index that lets
  // greedy seeding pick the k best/worst committees without scanning all |I|.
  by_gain.resize(total);
  std::iota(by_gain.begin(), by_gain.end(), std::uint32_t{0});
  std::sort(by_gain.begin(), by_gain.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return gain[a] != gain[b] ? gain[a] > gain[b] : a < b;
            });

  // Maintained cardinality family. At paper scale (|I| <= max_family) this
  // is the literal n = 1..|I| of Alg. 1; above it, an even stride over the
  // admissible range [max(1, N_min), n_max(Ĉ)] with both endpoints kept.
  family.clear();
  const std::uint64_t capacity = instance.capacity();
  const std::size_t cap_family = params.max_family;
  if (cap_family == 0 || total <= cap_family) {
    family.resize(total);
    std::iota(family.begin(), family.end(), std::uint32_t{1});
  } else {
    // Largest cardinality with any capacity-feasible subset. Zero means even
    // the single smallest committee exceeds Ĉ; the lone slot stays inactive.
    std::size_t n_act = 0;
    while (n_act < total && smallest_prefix[n_act + 1] <= capacity) ++n_act;
    const std::size_t lo =
        std::min(std::max<std::size_t>(instance.n_min(), 1), total);
    const std::size_t hi = std::max(n_act, lo);
    const std::size_t count = hi - lo + 1;
    if (count <= cap_family) {
      family.resize(count);
      std::iota(family.begin(), family.end(), static_cast<std::uint32_t>(lo));
    } else {
      // count > cap_family >= 2 implies a real-valued stride > 1, so the
      // rounded cardinalities are strictly increasing — no dedup needed.
      family.reserve(cap_family);
      const std::size_t span = hi - lo;
      for (std::size_t j = 0; j < cap_family; ++j) {
        const std::size_t n =
            lo + (j * span + (cap_family - 1) / 2) / (cap_family - 1);
        family.push_back(static_cast<std::uint32_t>(n));
      }
    }
  }

  log_remaining.resize(family.size());
  for (std::size_t slot = 0; slot < family.size(); ++slot) {
    // ln(|I| − n) for the Eq.-(8) rate; the full-set solution never races,
    // so its entry is unused.
    const auto remaining = static_cast<double>(total - family[slot]);
    log_remaining[slot] = remaining > 0.0 ? std::log(remaining) : 0.0;
  }

  first_admissible = static_cast<std::size_t>(
      std::lower_bound(family.begin(), family.end(),
                       static_cast<std::uint32_t>(instance.n_min())) -
      family.begin());
}

// ---------------------------------------------------------------------------
// SeExplorer
// ---------------------------------------------------------------------------

SeExplorer::SeExplorer(const EpochInstance* instance, const SeParams* params,
                       const SeLayout* layout, common::Rng rng)
    : instance_(instance), params_(params), layout_(layout), rng_(rng) {
  const std::size_t total = instance_->size();
  scratch_x_.assign(total, 0);
  scratch_pool_.resize(total);
  std::iota(scratch_pool_.begin(), scratch_pool_.end(), std::uint32_t{0});
  solutions_.resize(layout_->family.size());
  for (std::size_t slot = 0; slot < solutions_.size(); ++slot) {
    initialize_solution(solutions_[slot], layout_->family[slot]);
  }
}

void SeExplorer::initialize_solution(SolutionState& sol, std::uint32_t n) {
  const std::size_t total = instance_->size();
  const std::uint64_t capacity = instance_->capacity();
  sol.n = n;
  sol.active = layout_->smallest_prefix[n] <= capacity;
  if (!sol.active) return;

  // Alg. 2: resample random n-subsets until Cons. (4) holds; bounded tries,
  // then fall back to the n smallest shards (feasible because active). The
  // draw is a partial Fisher–Yates over the persistent scratch permutation —
  // uniform over n-subsets regardless of the permutation's current order, so
  // the pool is never re-iota'd — and aborts an attempt as soon as the
  // running Σ s exceeds Ĉ (no point completing a subset that cannot fit).
  // Resampling only pays off when a uniform n-subset has a real chance of
  // fitting: when the expected subset load n·E[s] exceeds Ĉ, concentration
  // makes every attempt fail and the retries just burn O(n·retries) work per
  // slot — at 50k committees that is the dominant construction cost. Those
  // cardinalities go straight to the deterministic fallback.
  const double mean_txs =
      static_cast<double>(layout_->smallest_prefix[total]) /
      static_cast<double>(total);
  const int budget = init_fail_streak_ > 0
                         ? std::min(1, params_->feasibility_retries)
                         : params_->feasibility_retries;
  bool ok = false;
  if (static_cast<double>(n) * mean_txs <= static_cast<double>(capacity)) {
    for (int attempt = 0; attempt < budget && !ok; ++attempt) {
      std::uint64_t txs = 0;
      std::size_t picked = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t j =
            k + static_cast<std::size_t>(rng_.below(total - k));
        std::swap(scratch_pool_[k], scratch_pool_[j]);
        txs += layout_->txs[scratch_pool_[k]];
        ++picked;
        if (txs > capacity) break;
      }
      ok = picked == n && txs <= capacity;
    }
    init_fail_streak_ = ok ? 0 : init_fail_streak_ + 1;
  }
  std::fill(scratch_x_.begin(), scratch_x_.end(), 0);
  // Accumulate utility/load while writing the bitmap — the gains/sizes are
  // already hot here, so a separate recompute() gather would just repeat the
  // random-access pass.
  const std::uint32_t* chosen =
      ok ? scratch_pool_.data() : layout_->by_size.data();
  double utility = 0.0;
  std::uint64_t load = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t i = chosen[k];
    scratch_x_[i] = 1;
    utility += layout_->gain[i];
    load += layout_->txs[i];
  }
  sol.set.rebuild(scratch_x_);
  sol.utility = utility;
  sol.txs = load;
}

void SeExplorer::recompute(SolutionState& sol) {
  sol.utility = 0.0;
  sol.txs = 0;
  for (const std::uint32_t i : sol.set.selected()) {
    sol.utility += layout_->gain[i];
    sol.txs += layout_->txs[i];
  }
  sol.n = static_cast<std::uint32_t>(sol.set.selected_count());
}

void SeExplorer::step() {
  if (params_->transition == SeTransition::kChainParallel) {
    step_chain_parallel();
  } else {
    step_timer_race();
  }
}

void SeExplorer::step_block(std::size_t k, SeBlockStats* stats,
                            double* running_max) {
  if (stats) {
    stats->trace.clear();
    stats->snapshots.clear();
  }
  for (std::size_t t = 0; t < k; ++t) {
    step();
    if (!stats) continue;
    const auto b = best();
    const double u = b ? b->first : kNaN;
    stats->trace.push_back(u);
    if (b && running_max && u > *running_max) {
      *running_max = u;
      stats->snapshots.push_back({t, u, b->second->to_selection()});
    }
  }
}

void SeExplorer::step_chain_parallel() {
  // One Metropolis transition per solution. The per-cardinality chains are
  // independent, and the acceptance ratio min(1, exp(β·ΔU)) equals the
  // Eq.-(7) rate ratio q_{f,f'}/q_{f',f}, so each chain is reversible with
  // the Eq.-(6) stationary law — the same chain the timer race realizes,
  // advanced one transition per maintained cardinality per iteration.
  const double beta = params_->beta;
  const std::uint64_t capacity = instance_->capacity();
  for (SolutionState& sol : solutions_) {
    if (!sol.active) continue;
    if (sol.set.selected_count() == 0 || sol.set.unselected_count() == 0) {
      continue;  // the full-set solution has no swap moves
    }
    std::uint32_t out = 0;
    std::uint32_t in = 0;
    std::uint64_t new_txs = 0;
    bool ok = false;
    for (int attempt = 0; attempt < params_->feasibility_retries && !ok;
         ++attempt) {
      out = sol.set.sample_selected(rng_);
      in = sol.set.sample_unselected(rng_);
      new_txs = sol.txs - layout_->txs[out] + layout_->txs[in];
      ok = new_txs <= capacity;
    }
    if (!ok) {
      if constexpr (obs::kEnabled) ++obs_tally_.infeasible;
      continue;
    }
    const double delta = layout_->gain[in] - layout_->gain[out];
    if (delta < 0.0 && rng_.uniform01() >= std::exp(beta * delta)) {
      if constexpr (obs::kEnabled) ++obs_tally_.rejects;
      continue;  // rejected downhill move
    }
    if constexpr (obs::kEnabled) ++obs_tally_.accepts;
    sol.set.swap(out, in);
    sol.txs = new_txs;
    sol.utility += delta;
  }
}

void SeExplorer::step_timer_race() {
  // The exponential-timer race (Alg. 3 + State Transit of Alg. 1): every
  // active solution arms a timer for one candidate swap; the minimum timer
  // fires and its swap is applied. Comparing log-timers is an exact,
  // overflow-free monotone transform of the race.
  const double beta = params_->beta;
  const double tau = params_->tau;
  const std::uint64_t capacity = instance_->capacity();

  // Pass 1 (engine-state sequential): sample one capacity-feasible candidate
  // pair (ĩ, ï) per active solution into the flat scratch arrays.
  cand_slot_.clear();
  cand_out_.clear();
  cand_in_.clear();
  cand_txs_.clear();
  cand_delta_.clear();
  for (std::size_t slot = 0; slot < solutions_.size(); ++slot) {
    SolutionState& sol = solutions_[slot];
    if (!sol.active) continue;
    if (sol.set.selected_count() == 0 || sol.set.unselected_count() == 0) {
      continue;  // the full-set solution has no swap moves
    }
    std::uint32_t out = 0;
    std::uint32_t in = 0;
    std::uint64_t new_txs = 0;
    bool ok = false;
    for (int attempt = 0; attempt < params_->feasibility_retries && !ok;
         ++attempt) {
      out = sol.set.sample_selected(rng_);
      in = sol.set.sample_unselected(rng_);
      new_txs = sol.txs - layout_->txs[out] + layout_->txs[in];
      ok = new_txs <= capacity;
    }
    if (!ok) {
      if constexpr (obs::kEnabled) ++obs_tally_.infeasible;
      continue;
    }
    cand_slot_.push_back(static_cast<std::uint32_t>(slot));
    cand_out_.push_back(out);
    cand_in_.push_back(in);
    cand_txs_.push_back(new_txs);
    cand_delta_.push_back(layout_->gain[in] - layout_->gain[out]);
  }
  if (cand_slot_.empty()) return;  // no solution could move this round
  if constexpr (obs::kEnabled) {
    obs_tally_.timer_draws += cand_slot_.size();
  }

  // Pass 2 (pure math): one batched Exp(1) fill, then the race
  //   log T = τ − ½β(U_{f'} − U_f) − ln(|I| − n) + ln(Exp(1) draw)
  // over the flat candidate arrays. fill_exponential draws the uniforms and
  // applies −log1p(−u) in vectorizable blocks; the max(·, DBL_MIN) clamp
  // below is the same guard detail::log_unit_exponential applies before its
  // log — a raw u == 0 would yield log T = −∞ and win the race regardless
  // of β·ΔU. (For every uniform01() output the two formulations are bitwise
  // equal: u ≥ 2⁻⁵³ makes both clamps no-ops, and at u = 0 log1p(−DBL_MIN)
  // rounds to −DBL_MIN exactly — pinned in test_rng.) With the engine state
  // out of the loop the transform + argmin vectorizes.
  cand_u_.resize(cand_slot_.size());
  rng_.fill_exponential(cand_u_, 1.0);
  std::size_t win = 0;
  double win_log_timer = kInf;
  for (std::size_t c = 0; c < cand_slot_.size(); ++c) {
    const double log_timer =
        tau - 0.5 * beta * cand_delta_[c] -
        layout_->log_remaining[cand_slot_[c]] +
        std::log(std::max(cand_u_[c], std::numeric_limits<double>::min()));
    if (log_timer < win_log_timer) {
      win_log_timer = log_timer;
      win = c;
    }
  }
  if constexpr (obs::kEnabled) ++obs_tally_.accepts;
  SolutionState& sol = solutions_[cand_slot_[win]];
  sol.set.swap(cand_out_[win], cand_in_[win]);
  sol.txs = cand_txs_[win];
  sol.utility += cand_delta_[win];
}

std::optional<std::pair<double, const SwapSet*>> SeExplorer::best() const {
  // λ-argmax of Alg. 1 lines 22–26: Ĉ holds by invariant; Cons. (3) is the
  // layout's first_admissible cutoff (the family is cardinality-ascending).
  std::optional<std::pair<double, const SwapSet*>> best;
  for (std::size_t slot = layout_->first_admissible; slot < solutions_.size();
       ++slot) {
    const SolutionState& sol = solutions_[slot];
    if (!sol.active) continue;
    if (!best || sol.utility > best->first) {
      best = {sol.utility, &sol.set};
    }
  }
  return best;
}

void SeExplorer::adopt_if_better(const SwapSet& incumbent, double utility) {
  const auto n = static_cast<std::uint32_t>(incumbent.selected_count());
  if (n == 0) return;
  if (const auto slot = layout_->slot_of(n)) {
    SolutionState& sol = solutions_[*slot];
    if (sol.active && sol.utility < utility) {
      sol.set = incumbent;
      recompute(sol);
    }
  }

  // Seed the incumbent's grid-neighbor cardinalities too: chains only move
  // by swaps (cardinality-preserving), so capacity-blocked local optima need
  // a cardinality step to escape — the family provides it. On a capped
  // family the neighbors are the nearest maintained cardinalities on each
  // side (n ∓ 1 when the family is the full paper one).
  const auto lb =
      std::lower_bound(layout_->family.begin(), layout_->family.end(), n);
  if (lb != layout_->family.begin()) {
    const auto idx =
        static_cast<std::size_t>(lb - layout_->family.begin()) - 1;
    seed_below(incumbent, utility, idx);
  }
  auto ub = lb;
  if (ub != layout_->family.end() && *ub == n) ++ub;
  if (ub != layout_->family.end()) {
    seed_above(incumbent, utility,
               static_cast<std::size_t>(ub - layout_->family.begin()));
  }
}

void SeExplorer::seed_below(const SwapSet& incumbent, double utility,
                            std::size_t slot) {
  SolutionState& target = solutions_[slot];
  if (!target.active) return;
  const auto sel = incumbent.selected();
  const std::size_t drop = sel.size() - target.n;
  assert(drop >= 1 && drop < sel.size());
  // The `drop` worst-gain members via a partial select over the member list —
  // O(n) with deterministic ties, instead of walking the global gain index
  // past every non-member.
  scratch_members_.assign(sel.begin(), sel.end());
  const auto lower_gain = [this](std::uint32_t a, std::uint32_t b) {
    return layout_->gain[a] != layout_->gain[b]
               ? layout_->gain[a] < layout_->gain[b]
               : a < b;
  };
  std::nth_element(scratch_members_.begin(),
                   scratch_members_.begin() +
                       static_cast<std::ptrdiff_t>(drop - 1),
                   scratch_members_.end(), lower_gain);
  double variant = utility;
  for (std::size_t k = 0; k < drop; ++k) {
    variant -= layout_->gain[scratch_members_[k]];
  }
  if (target.utility >= variant) return;
  incumbent.write_selection(scratch_x_);
  for (std::size_t k = 0; k < drop; ++k) scratch_x_[scratch_members_[k]] = 0;
  target.set.rebuild(scratch_x_);
  recompute(target);
}

void SeExplorer::seed_above(const SwapSet& incumbent, double utility,
                            std::size_t slot) {
  SolutionState& target = solutions_[slot];
  if (!target.active) return;
  const std::uint64_t capacity = instance_->capacity();
  std::uint64_t txs = 0;
  for (const std::uint32_t i : incumbent.selected()) txs += layout_->txs[i];
  // Grow to the target cardinality by adding the best-gain non-members that
  // still fit Ĉ, walked off the descending gain index — stops after
  // m − n additions instead of arg-maxing over all |I| per addition.
  std::size_t need = target.n - incumbent.selected_count();
  incumbent.write_selection(scratch_x_);
  double variant = utility;
  for (const std::uint32_t i : layout_->by_gain) {
    if (need == 0) break;
    if (scratch_x_[i] != 0) continue;
    if (txs + layout_->txs[i] > capacity) continue;
    scratch_x_[i] = 1;
    txs += layout_->txs[i];
    variant += layout_->gain[i];
    --need;
  }
  if (need != 0) return;  // could not reach the target cardinality under Ĉ
  if (target.utility >= variant) return;
  target.set.rebuild(scratch_x_);
  recompute(target);
}

void SeExplorer::rebind(const EpochInstance* instance, const SeLayout* layout,
                        std::optional<std::uint32_t> removed_index) {
  // NB: `instance`/`layout` may be the same objects the explorer was already
  // bound to (SeScheduler mutates its members in place before rebinding), so
  // the old universe size must come from the surviving bitmaps, not from the
  // pointers.
  instance_ = instance;
  layout_ = layout;
  const std::size_t total = instance_->size();
  scratch_x_.assign(total, 0);
  scratch_pool_.resize(total);
  std::iota(scratch_pool_.begin(), scratch_pool_.end(), std::uint32_t{0});

  // Both the old solution list and the new family are cardinality-ascending,
  // so carry-over is a two-pointer merge: every chain whose cardinality the
  // (possibly re-strided) new family still maintains survives.
  std::vector<SolutionState> fresh(layout_->family.size());
  std::size_t oi = 0;
  for (std::size_t slot = 0; slot < fresh.size(); ++slot) {
    const std::uint32_t n = layout_->family[slot];
    SolutionState& sol = fresh[slot];
    sol.n = n;
    sol.active = layout_->smallest_prefix[n] <= instance_->capacity();
    if (!sol.active) continue;
    while (oi < solutions_.size() && solutions_[oi].n < n) ++oi;
    SolutionState* old_sol =
        (oi < solutions_.size() && solutions_[oi].n == n) ? &solutions_[oi]
                                                          : nullptr;
    const bool survivable =
        old_sol != nullptr && old_sol->active &&
        (!removed_index || !old_sol->set.contains(*removed_index));
    if (!survivable) {
      // Trimmed state (Fig. 7): the solution referenced the failed committee
      // (or this cardinality is newly maintained) — draw a fresh feasible
      // subset of this cardinality.
      initialize_solution(sol, n);
      continue;
    }
    // Translate the surviving bitmap into the new index space.
    old_sol->set.write_selection(scratch_old_x_);
    std::fill(scratch_x_.begin(), scratch_x_.end(), 0);
    std::size_t w = 0;
    for (std::size_t r = 0; r < scratch_old_x_.size(); ++r) {
      if (removed_index && r == *removed_index) continue;
      if (w < total) scratch_x_[w] = scratch_old_x_[r];
      ++w;
    }
    sol.set.rebuild(scratch_x_);
    recompute(sol);
    if (sol.txs > instance_->capacity()) {
      // Cannot happen on leave (Σ only shrinks) but guard regardless.
      initialize_solution(sol, n);
    }
  }
  solutions_ = std::move(fresh);
}

// ---------------------------------------------------------------------------
// SeScheduler
// ---------------------------------------------------------------------------

SeScheduler::SeScheduler(EpochInstance instance, SeParams params,
                         std::uint64_t seed)
    : instance_(std::move(instance)), params_(params) {
  if (params_.threads == 0) {
    throw std::invalid_argument("SeScheduler: threads (Γ) must be >= 1");
  }
  if (params_.beta <= 0.0) {
    throw std::invalid_argument("SeScheduler: beta must be positive");
  }
  layout_.rebuild(instance_, params_);
  if (params_.parallel_execution && params_.threads > 1) {
    // Γ−1 workers: the calling thread participates in every batch, so Γ
    // execution contexts advance the Γ explorers with no idle submitter.
    // max_pool_workers caps the OS threads without changing any result —
    // workers claim whole explorers between barriers, so fewer workers just
    // means more explorers per worker.
    std::size_t workers = params_.threads - 1;
    if (params_.max_pool_workers > 0) {
      workers = std::min(workers, params_.max_pool_workers);
    }
    if (workers > 0) pool_ = std::make_unique<common::ThreadPool>(workers);
  }
  // The Rng forks happen serially (the fork order defines each explorer's
  // stream) but the construction itself — initializing O(max_family) chains,
  // the dominant cost of an epoch at 10k+ committees — is embarrassingly
  // parallel, so it fans out over the pool. Bitwise identical to serial
  // construction: each explorer is a pure function of its pre-forked Rng.
  common::Rng root(seed);
  std::vector<common::Rng> forks;
  forks.reserve(params_.threads);
  for (std::size_t t = 0; t < params_.threads; ++t) {
    forks.push_back(root.fork());
  }
  explorers_.reserve(params_.threads);
  if (pool_) {
    std::vector<std::optional<SeExplorer>> built(params_.threads);
    pool_->parallel_for(params_.threads, [&](std::size_t t) {
      built[t].emplace(&instance_, &params_, &layout_, forks[t]);
    });
    for (auto& b : built) explorers_.push_back(std::move(*b));
  } else {
    for (std::size_t t = 0; t < params_.threads; ++t) {
      explorers_.emplace_back(&instance_, &params_, &layout_, forks[t]);
    }
  }
}

SeScheduler::~SeScheduler() = default;

std::size_t SeScheduler::next_block_length(std::size_t remaining) const {
  if (params_.share_interval == 0) return remaining;
  const std::size_t into = iteration_ % params_.share_interval;
  return std::min(remaining, params_.share_interval - into);
}

void SeScheduler::step_explorers(std::size_t k,
                                 std::vector<SeBlockStats>* blocks,
                                 std::vector<double>* running_max) {
  const auto body = [&](std::size_t e) {
    explorers_[e].step_block(k, blocks ? &(*blocks)[e] : nullptr,
                             running_max ? &(*running_max)[e] : nullptr);
  };
  if (pool_) {
    pool_->parallel_for(explorers_.size(), body);
  } else {
    for (std::size_t e = 0; e < explorers_.size(); ++e) body(e);
  }
}

bool SeScheduler::maybe_share() {
  // Thread cooperation (§IV-D): periodically propagate the best solution so
  // every thread's matching chain polishes the incumbent. Runs on the
  // calling thread under the barrier — workers are quiescent here.
  if (explorers_.size() <= 1 || params_.share_interval == 0 ||
      iteration_ % params_.share_interval != 0) {
    return false;
  }
  double best_utility = -kInf;
  const SwapSet* incumbent = nullptr;
  for (const SeExplorer& explorer : explorers_) {
    if (const auto b = explorer.best(); b && b->first > best_utility) {
      best_utility = b->first;
      incumbent = b->second;
    }
  }
  if (!incumbent) return false;
  const SwapSet shared = *incumbent;  // copy: adopters mutate in place
  for (SeExplorer& explorer : explorers_) {
    explorer.adopt_if_better(shared, best_utility);
  }
  return true;
}

void SeScheduler::step() { advance(1); }

void SeScheduler::advance(std::size_t k) {
  while (k > 0) {
    const std::size_t block = next_block_length(k);
    step_explorers(block, nullptr, nullptr);
    iteration_ += block;
    k -= block;
    const bool shared = maybe_share();
    flush_obs(block, shared);
  }
}

void SeScheduler::set_obs(obs::ObsContext obs) {
  obs_ = obs;
  obs_iterations_ = nullptr;
  obs_accepts_ = nullptr;
  obs_rejects_ = nullptr;
  obs_infeasible_ = nullptr;
  obs_timer_draws_ = nullptr;
  obs_shares_ = nullptr;
  obs_joins_ = nullptr;
  obs_leaves_ = nullptr;
  obs_best_utility_ = nullptr;
  obs::MetricsRegistry* m = obs_.metrics();
  if (m == nullptr) return;
  obs_iterations_ = &m->counter("mvcom_se_iterations_total",
                                "SE global iterations advanced");
  obs_accepts_ =
      &m->counter("mvcom_se_transitions_total",
                  "SE chain transitions by Eq.-(7) outcome",
                  {{"result", "accept"}});
  obs_rejects_ =
      &m->counter("mvcom_se_transitions_total",
                  "SE chain transitions by Eq.-(7) outcome",
                  {{"result", "reject"}});
  obs_infeasible_ =
      &m->counter("mvcom_se_transitions_total",
                  "SE chain transitions by Eq.-(7) outcome",
                  {{"result", "infeasible"}});
  obs_timer_draws_ = &m->counter("mvcom_se_timer_draws_total",
                                 "Eq.-(8) exponential timer draws");
  obs_shares_ = &m->counter("mvcom_se_shares_total",
                            "Thread-cooperation share points executed");
  obs_joins_ = &m->counter("mvcom_se_rebinds_total",
                           "Explorer rebinds after committee dynamics",
                           {{"kind", "join"}});
  obs_leaves_ = &m->counter("mvcom_se_rebinds_total",
                            "Explorer rebinds after committee dynamics",
                            {{"kind", "leave"}});
  obs_best_utility_ = &m->gauge("mvcom_se_best_utility",
                                "Best feasible utility across Γ explorers");
}

void SeScheduler::flush_obs(std::size_t block, bool shared) {
  if (!obs_) return;
  obs::TraceRecorder* trace = obs_.trace();
  SeObsCounters total;
  for (std::size_t e = 0; e < explorers_.size(); ++e) {
    SeObsCounters& tally = explorers_[e].obs_tally_;
    total += tally;
    if (trace != nullptr) {
      // Per-Γ-thread tallies as one counter series per explorer track.
      trace->counter("se", "se/explorer",
                     {{"accepts", static_cast<double>(tally.accepts)},
                      {"rejects", static_cast<double>(tally.rejects)},
                      {"infeasible", static_cast<double>(tally.infeasible)},
                      {"timer_draws", static_cast<double>(tally.timer_draws)}},
                     static_cast<std::uint32_t>(e));
    }
    tally.reset();
  }
  if (obs_iterations_ != nullptr) {
    obs_iterations_->add(block);
    obs_accepts_->add(total.accepts);
    obs_rejects_->add(total.rejects);
    obs_infeasible_->add(total.infeasible);
    obs_timer_draws_->add(total.timer_draws);
    if (shared) obs_shares_->inc();
  }
  const double utility = current_utility();
  if (obs_best_utility_ != nullptr) obs_best_utility_->set(utility);
  if (trace != nullptr) {
    trace->counter("se", "se/progress",
                   {{"iteration", static_cast<double>(iteration_)},
                    {"best_utility", utility}});
    if (shared) {
      trace->instant("se", "se/share",
                     {{"iteration", static_cast<double>(iteration_)},
                      {"best_utility", utility}});
    }
  }
}

double SeScheduler::warm_start(const Selection& seed) {
  if (seed.size() != instance_.size()) return kNaN;
  const SelectionStats st = instance_.stats(seed);
  if (!instance_.capacity_ok(st) || !instance_.n_min_ok(st)) return kNaN;
  const double utility = instance_.utility(seed);
  const SwapSet incumbent(seed);
  for (SeExplorer& explorer : explorers_) {
    explorer.adopt_if_better(incumbent, utility);
  }
  warm_floor_selection_ = seed;
  warm_floor_utility_ = utility;
  if (auto* t = obs_.trace()) {
    t->instant("se", "se/warm_start",
               {{"utility", utility},
                {"chosen", static_cast<double>(st.chosen)},
                {"txs", static_cast<double>(st.txs)}});
  }
  return utility;
}

double SeScheduler::current_utility() const {
  double best = kNaN;
  for (const SeExplorer& explorer : explorers_) {
    if (const auto b = explorer.best(); b && !(b->first <= best)) {
      best = b->first;
    }
  }
  return best;
}

Selection SeScheduler::current_selection() const {
  double best = -kInf;
  const SwapSet* chosen = nullptr;
  for (const SeExplorer& explorer : explorers_) {
    if (const auto b = explorer.best(); b && b->first > best) {
      best = b->first;
      chosen = b->second;
    }
  }
  return chosen ? chosen->to_selection() : Selection{};
}

SeResult SeScheduler::run() {
  // Block-structured main loop: explorers advance a whole barrier-to-barrier
  // block (up to share_interval iterations) at a time — on the worker pool in
  // parallel mode, inline otherwise — then the per-iteration global trace is
  // reconstructed from the per-explorer block stats. Because chains are
  // independent between share points, the reconstruction is exactly what a
  // one-iteration-at-a-time interleaving would have observed, so serial and
  // parallel execution produce bitwise-identical results. Convergence is
  // still detected at iteration granularity (the trace is truncated there);
  // explorer state may overshoot by up to one block past the detection
  // point, which only matters to callers that keep stepping after run().
  SeResult result;
  result.utility_trace.reserve(params_.max_iterations);
  double best_utility = -kInf;
  Selection best_selection;
  if (!warm_floor_selection_.empty()) {
    // Warm start: the seed is the floor. Exploration must strictly beat it
    // (by convergence_tol) before the reported best moves off the seed.
    best_utility = warm_floor_utility_;
    best_selection = warm_floor_selection_;
  }
  std::size_t stale = 0;
  bool done = false;

  std::vector<SeBlockStats> blocks(explorers_.size());
  std::vector<double> running_max(explorers_.size(), -kInf);

  std::size_t remaining = params_.max_iterations;
  while (remaining > 0 && !done) {
    const std::size_t block = next_block_length(remaining);
    step_explorers(block, &blocks, &running_max);
    iteration_ += block;
    remaining -= block;
    const bool shared = maybe_share();
    flush_obs(block, shared);

    for (std::size_t t = 0; t < block && !done; ++t) {
      // Adoption at a share point can only raise utilities, and the serial
      // path records the trace entry after sharing — mirror that by reading
      // the post-share state for the boundary iteration.
      const bool at_share = shared && t == block - 1;
      double u = kNaN;
      if (at_share) {
        u = current_utility();
      } else {
        for (const SeBlockStats& b : blocks) {
          const double v = b.trace[t];
          if (!std::isnan(v) && !(v <= u)) u = v;
        }
      }
      result.utility_trace.push_back(u);
      if (!std::isnan(u) && u > best_utility + params_.convergence_tol) {
        best_utility = u;
        if (at_share) {
          best_selection = current_selection();
        } else {
          // The explorer that achieved the new maximum snapshotted its
          // selection at exactly this offset (a global improvement implies a
          // new per-explorer maximum); fall back to its latest snapshot at
          // or before t for sub-tolerance plateau ties.
          for (const SeBlockStats& b : blocks) {
            if (b.trace[t] != u) continue;
            const SeBlockStats::Snapshot* snap = nullptr;
            for (const SeBlockStats::Snapshot& s : b.snapshots) {
              if (s.offset > t) break;
              snap = &s;
            }
            if (snap) best_selection = snap->selection;
            break;
          }
        }
        stale = 0;
      } else {
        ++stale;
      }
      if (stale >= params_.convergence_window) {
        result.converged = true;
        done = true;
      }
    }
  }

  result.iterations = result.utility_trace.size();
  result.feasible = !best_selection.empty();
  if (result.feasible) {
    result.best = std::move(best_selection);
    result.utility = best_utility;
    result.valuable_degree = instance_.valuable_degree(result.best);
  }
  return result;
}

void SeScheduler::rebind_all(std::optional<std::uint32_t> removed_index) {
  // The warm floor is index-aligned with the pre-mutation instance; drop it.
  warm_floor_selection_.clear();
  warm_floor_utility_ = 0.0;
  layout_.rebuild(instance_, params_);
  for (SeExplorer& explorer : explorers_) {
    explorer.rebind(&instance_, &layout_, removed_index);
  }
}

void SeScheduler::add_committee(const Committee& committee) {
  std::vector<Committee> committees = instance_.committees();
  committees.push_back(committee);
  // Deadline re-derives as max latency over the updated set (paper §III-A).
  instance_ = EpochInstance(std::move(committees), instance_.alpha(),
                            instance_.capacity(), instance_.n_min());
  rebind_all(std::nullopt);
  if (obs_joins_ != nullptr) obs_joins_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("se", "se/committee_join",
               {{"committees", static_cast<double>(instance_.size())},
                {"iteration", static_cast<double>(iteration_)}});
  }
}

void SeScheduler::set_n_min(std::size_t n_min) {
  if (n_min == instance_.n_min()) return;
  std::vector<Committee> committees = instance_.committees();
  instance_ = EpochInstance(std::move(committees), instance_.alpha(),
                            instance_.capacity(), n_min);
  rebind_all(std::nullopt);
  if (auto* t = obs_.trace()) {
    t->instant("se", "se/resize",
               {{"n_min", static_cast<double>(n_min)},
                {"committees", static_cast<double>(instance_.size())},
                {"iteration", static_cast<double>(iteration_)}});
  }
}

void SeScheduler::remove_committee(std::uint32_t committee_id) {
  const auto& committees = instance_.committees();
  const auto it = std::find_if(
      committees.begin(), committees.end(),
      [committee_id](const Committee& c) { return c.id == committee_id; });
  if (it == committees.end()) return;
  const auto removed_index =
      static_cast<std::uint32_t>(std::distance(committees.begin(), it));
  std::vector<Committee> survivors = committees;
  survivors.erase(survivors.begin() + removed_index);
  if (survivors.empty()) {
    throw std::logic_error("SeScheduler: cannot remove the last committee");
  }
  instance_ = EpochInstance(std::move(survivors), instance_.alpha(),
                            instance_.capacity(), instance_.n_min());
  rebind_all(removed_index);
  if (obs_leaves_ != nullptr) obs_leaves_->inc();
  if (auto* t = obs_.trace()) {
    t->instant("se", "se/committee_leave",
               {{"committee_id", static_cast<double>(committee_id)},
                {"committees", static_cast<double>(instance_.size())},
                {"iteration", static_cast<double>(iteration_)}});
  }
}

}  // namespace mvcom::core
