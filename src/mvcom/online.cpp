#include "mvcom/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvcom::core {

OnlineCommitteeScheduler::OnlineCommitteeScheduler(
    OnlineSchedulerConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("OnlineCommitteeScheduler: capacity > 0");
  }
  if (config_.expected_committees == 0) {
    throw std::invalid_argument(
        "OnlineCommitteeScheduler: expected_committees > 0");
  }
  if (config_.n_min_fraction < 0.0 || config_.n_min_fraction > 1.0 ||
      config_.n_max_fraction <= 0.0 || config_.n_max_fraction > 1.0) {
    throw std::invalid_argument(
        "OnlineCommitteeScheduler: fractions in [0,1]");
  }
  const auto expected = static_cast<double>(config_.expected_committees);
  // Eq. (3) demands Σ x_i ≥ N_min with N_min a fraction of |I|; a selection
  // cannot include half a committee, so the fractional target rounds UP:
  // N_min = ⌈fraction·|I|⌉. (Truncating instead would let e.g. 0.5 of 5
  // expected committees pass with only 2 permitted — below the 50% floor the
  // paper's §VI-A parameterization intends.)
  n_min_ = static_cast<std::size_t>(std::ceil(config_.n_min_fraction * expected));
  n_max_count_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(config_.n_max_fraction * expected)));
  // Bootstrap (Alg. 1 line 1) requires strictly more than N_min arrivals,
  // and listening stops for good once N_max arrive (line 29) — so N_min must
  // fall strictly below the N_max cutoff or try_bootstrap is unreachable
  // (e.g. n_min_fraction = 1.0 could otherwise never start exploring).
  if (n_min_ >= n_max_count_) {
    throw std::invalid_argument(
        "OnlineCommitteeScheduler: ceil(n_min_fraction*expected) must be < "
        "the N_max listening cutoff, or bootstrap can never trigger");
  }
}

EpochInstance OnlineCommitteeScheduler::build_instance() const {
  return EpochInstance::from_reports(reports_, config_.alpha,
                                     config_.capacity, n_min_);
}

void OnlineCommitteeScheduler::try_bootstrap() {
  if (scheduler_) return;
  if (reports_.size() <= n_min_) return;
  if (total_txs_ <= config_.capacity) return;  // capacity slack: nothing yet
  // Alg. 1 line 1 satisfied: start exploring.
  scheduler_.emplace(build_instance(), config_.se, seed_);
  scheduler_->set_obs(obs_);
  if (auto* t = obs_.trace()) {
    t->instant("epoch", "epoch/bootstrap",
               {{"committees", static_cast<double>(reports_.size())},
                {"total_txs", static_cast<double>(total_txs_)}});
  }
}

void OnlineCommitteeScheduler::set_obs(obs::ObsContext obs) {
  obs_ = obs;
  obs_reports_accepted_ = nullptr;
  obs_reports_refused_ = nullptr;
  obs_failures_ = nullptr;
  obs_recoveries_ = nullptr;
  if (obs::MetricsRegistry* m = obs_.metrics()) {
    obs_reports_accepted_ =
        &m->counter("mvcom_online_reports_total",
                    "Shard reports handled by the online scheduler",
                    {{"result", "accepted"}});
    obs_reports_refused_ =
        &m->counter("mvcom_online_reports_total",
                    "Shard reports handled by the online scheduler",
                    {{"result", "refused"}});
    obs_failures_ = &m->counter("mvcom_online_failures_total",
                                "Committee failures applied (leave events)");
    obs_recoveries_ = &m->counter("mvcom_online_recoveries_total",
                                  "Committee recoveries re-admitted");
  }
  if (scheduler_) scheduler_->set_obs(obs_);
}

bool OnlineCommitteeScheduler::on_report(const txn::ShardReport& report) {
  const auto refused = [this] {
    if (obs_reports_refused_ != nullptr) obs_reports_refused_->inc();
    return false;
  };
  if (!listening_) return refused();
  const auto duplicate = std::any_of(
      reports_.begin(), reports_.end(), [&](const txn::ShardReport& r) {
        return r.committee_id == report.committee_id;
      });
  if (duplicate) return refused();
  // Refuse a report whose claimed shard size would wrap the 64-bit Σ s
  // bookkeeping (EpochInstance construction rejects such sets outright; an
  // adversarial committee must not be able to crash the listening loop).
  // total_txs_ is maintained incrementally across report/failure/recovery,
  // so admission is O(|I|) per arrival instead of O(|I|²) overall.
  if (report.tx_count >
      std::numeric_limits<std::uint64_t>::max() - total_txs_) {
    return refused();
  }
  reports_.push_back(report);
  total_txs_ += report.tx_count;
  if (obs_reports_accepted_ != nullptr) obs_reports_accepted_->inc();
  if (scheduler_) {
    scheduler_->add_committee(
        {report.committee_id, report.tx_count, report.two_phase_latency()});
    explore(config_.iterations_per_event);
  } else {
    try_bootstrap();
    if (scheduler_) explore(config_.iterations_per_event);
  }
  // Alg. 1 line 29: stop listening once N_max of the members arrived.
  if (reports_.size() >= n_max_count_) listening_ = false;
  return true;
}

void OnlineCommitteeScheduler::on_failure(std::uint32_t committee_id) {
  const auto it = std::find_if(
      reports_.begin(), reports_.end(), [&](const txn::ShardReport& r) {
        return r.committee_id == committee_id;
      });
  if (it == reports_.end()) return;
  total_txs_ -= it->tx_count;
  reports_.erase(it);
  if (obs_failures_ != nullptr) obs_failures_->inc();
  if (std::find(failed_ids_.begin(), failed_ids_.end(), committee_id) ==
      failed_ids_.end()) {
    failed_ids_.push_back(committee_id);
  }
  if (scheduler_) {
    if (reports_.empty()) {
      scheduler_.reset();  // nothing left to schedule over
    } else {
      scheduler_->remove_committee(committee_id);
      explore(config_.iterations_per_event);
    }
  }
}

bool OnlineCommitteeScheduler::on_recovery(const txn::ShardReport& report) {
  // A recovery is a (re-)join; it may arrive even after listening stopped —
  // the committee was already counted among the arrived (§VI-D, Fig. 9(a)).
  // Only ids that actually failed qualify: otherwise the recovery door would
  // admit brand-new committees past the N_max cutoff (and an equivocating
  // live committee could "recover" with a different s_i on top of its
  // standing report — the duplicate check below refuses that too).
  const auto failed_it =
      std::find(failed_ids_.begin(), failed_ids_.end(), report.committee_id);
  if (failed_it == failed_ids_.end()) return false;
  const bool was_listening = listening_;
  listening_ = true;
  const bool accepted = on_report(report);
  listening_ = was_listening && listening_;
  if (accepted) {
    failed_ids_.erase(failed_it);
    if (obs_recoveries_ != nullptr) obs_recoveries_->inc();
  }
  return accepted;
}

bool OnlineCommitteeScheduler::set_n_min(std::size_t n_min) {
  if (n_min == n_min_) return true;
  // Same invariant the constructor enforces: bootstrap needs strictly more
  // than N_min arrivals before listening stops at N_max.
  if (n_min >= n_max_count_) return false;
  n_min_ = n_min;
  if (scheduler_) scheduler_->set_n_min(n_min);
  return true;
}

void OnlineCommitteeScheduler::explore(std::size_t iterations) {
  if (!scheduler_) return;
  // Bulk advance: in parallel mode this fans each barrier-to-barrier block
  // out across the SE scheduler's worker pool instead of paying one
  // dispatch + barrier per iteration.
  scheduler_->advance(iterations);
}

SchedulingDecision OnlineCommitteeScheduler::decide() const {
  SchedulingDecision decision;
  if (reports_.empty()) return decision;

  Selection best;
  const EpochInstance instance = build_instance();
  if (scheduler_) {
    best = scheduler_->current_selection();
    // The scheduler's internal instance matches reports_ (kept in lock-step
    // by on_report/on_failure/on_recovery); guard regardless. A size-only
    // comparison cannot see id misalignment — after interleaved failures and
    // recoveries the two sets could in principle hold the same COUNT of
    // committees in different order or membership, and selection bits would
    // silently apply to the wrong committees. Compare ids element-wise.
    const auto& sched_committees = scheduler_->instance().committees();
    bool aligned = best.size() == instance.size() &&
                   sched_committees.size() == instance.size();
    for (std::size_t i = 0; aligned && i < instance.size(); ++i) {
      aligned = sched_committees[i].id == instance.committees()[i].id;
    }
    if (!aligned) best.clear();
  }
  if (best.empty()) {
    // Not bootstrapped (capacity slack): permit everything if feasible.
    Selection everyone(instance.size(), 1);
    if (instance.feasible(everyone)) best = std::move(everyone);
  }
  if (best.empty() || !instance.feasible(best)) return decision;

  decision.feasible = true;
  decision.utility = instance.utility(best);
  decision.valuable_degree = instance.valuable_degree(best);
  decision.permitted_txs = instance.permitted_txs(best);
  for (std::size_t i = 0; i < best.size(); ++i) {
    if (best[i]) {
      decision.permitted_ids.push_back(instance.committees()[i].id);
    }
  }
  return decision;
}

}  // namespace mvcom::core
