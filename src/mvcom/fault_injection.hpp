#pragma once
// FaultPlan chaos harness — schedulable fault injection for the
// EpochSupervisor, driven end to end on the discrete-event simulator:
// committee submissions arrive at their two-phase latencies, the
// supervisor's heartbeat monitor probes every committee over the simulated
// network, and a FaultPlan perturbs the run with crashes, crash-recoveries,
// straggler slowdowns, inflated-s_i misreports, verification-passing
// equivocations, and message-loss bursts. At the DDL the supervisor's
// graceful-degradation decide() produces the epoch answer; the harness
// certifies on every sample that the ladder never reports infeasible while
// a feasible selection exists, and copies out the Theorem-2 failure
// accounting.
//
// The same ChaosCommittee inputs can come from the fast calibrated workload
// path (txn::WorkloadGenerator) or from a real Elastico→PBFT epoch
// (sharding::ElasticoNetwork outcome reports) — see
// chaos_committees_from_reports.

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/supervisor.hpp"
#include "obs/context.hpp"
#include "txn/workload.hpp"

namespace mvcom::core {

enum class FaultKind {
  kCrash,            // node fails at `at` and stays down
  kCrashRecover,     // node fails at `at`, recovers after `duration`
  kStragglerDelay,   // node slows by ×magnitude; pending submission +duration
  kMisreport,        // claimed s_i inflated ×magnitude (commitment unchanged)
  kEquivocate,       // second, verification-passing submission, different s_i
  kMessageLossBurst, // loss probability = magnitude for `duration`
};
[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One scheduled fault. `committee_id` indexes the victim (ignored for
/// kMessageLossBurst, which is network-wide).
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t committee_id = 0;
  double at_seconds = 0.0;
  double duration_seconds = 0.0;  // kCrashRecover / kStragglerDelay / bursts
  double magnitude = 1.0;         // slowdown ×, inflation ×, burst loss prob
};

struct FaultPlanConfig {
  std::size_t crashes = 1;
  std::size_t crash_recovers = 1;
  std::size_t stragglers = 1;
  std::size_t misreports = 1;
  std::size_t equivocations = 0;
  std::size_t loss_bursts = 0;
  double horizon_seconds = 1500.0;  // faults drawn uniformly in [0, horizon)
  double min_downtime_seconds = 60.0;
  double max_downtime_seconds = 300.0;
  double max_slowdown = 8.0;      // straggler factor drawn in (1, max]
  double max_inflation = 4.0;     // misreport factor drawn in (1, max]
  double max_loss_probability = 0.6;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Draws a randomized schedule: victims are sampled uniformly over
  /// [0, num_committees), times over [0, horizon). Deterministic per rng
  /// state — the property tests sweep seeds.
  [[nodiscard]] static FaultPlan randomized(const FaultPlanConfig& config,
                                            std::size_t num_committees,
                                            common::Rng& rng);
};

/// One committee as the harness drives it: its honest submission plus the
/// latencies the final committee measures. The committee answers pings on
/// the node whose index equals its position in the input vector.
struct ChaosCommittee {
  sharding::ShardSubmission submission;
  double formation_latency = 0.0;
  double consensus_latency = 0.0;
};

/// Builds honest chaos inputs from shard reports (either the calibrated
/// workload generator's or a real Elastico epoch's): each submission gets a
/// single count-binding entry carrying the report's s_i.
[[nodiscard]] std::vector<ChaosCommittee> chaos_committees_from_reports(
    std::span<const txn::ShardReport> reports);

struct ChaosConfig {
  SupervisorConfig supervisor{};
  double ddl_seconds = 1800.0;         // when decide() is taken
  double explore_tick_seconds = 20.0;  // SE exploration pump + sampling
  std::size_t iterations_per_tick = 40;
  double link_latency_mean_seconds = 2.0;
  /// Observability sinks. When set, the harness wires every component
  /// (simulator, network, supervisor, SE scheduler) to them, attaches the
  /// simulated clock to the trace recorder for the duration of the run
  /// (detached again before the simulator dies), and records epoch
  /// lifecycle and fault-injection events.
  obs::ObsContext obs{};
};

/// One sampled point of the run (taken at every explore tick).
struct ChaosTimelinePoint {
  double at_seconds = 0.0;
  bool feasible = false;
  DecisionTier tier = DecisionTier::kInfeasible;
  double utility = 0.0;
};

struct ChaosReport {
  SupervisedDecision final_decision{};
  std::vector<ChaosTimelinePoint> timeline;
  std::vector<FailureRecord> failures;  // Theorem-2 accounting per failure
  // Admission statistics.
  std::uint64_t admitted = 0;
  std::uint64_t readmitted = 0;
  std::uint64_t quarantine_events = 0;
  std::uint64_t refused = 0;
  std::uint64_t dropped_submissions = 0;  // sender was down at send time
  std::vector<std::uint32_t> quarantined_ids;
  std::vector<std::uint32_t> banned_ids;
  // Detector statistics.
  std::uint64_t failures_detected = 0;
  std::uint64_t recoveries_detected = 0;
  /// True if any sampled decide() reported infeasible while
  /// feasible_selection_exists held on the live set — the acceptance
  /// criterion the ladder must never violate.
  bool infeasible_while_feasible = false;
};

/// Runs one supervised epoch under the fault plan and returns the full
/// report. Deterministic per (inputs, seed).
[[nodiscard]] ChaosReport run_chaos_epoch(
    const std::vector<ChaosCommittee>& committees, const FaultPlan& plan,
    const ChaosConfig& config, std::uint64_t seed);

}  // namespace mvcom::core
