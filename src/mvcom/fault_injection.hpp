#pragma once
// FaultPlan chaos harness — schedulable fault injection for the
// EpochSupervisor, driven end to end on the discrete-event simulator:
// committee submissions arrive at their two-phase latencies, the
// supervisor's heartbeat monitor probes every committee over the simulated
// network, and a FaultPlan perturbs the run with crashes, crash-recoveries,
// straggler slowdowns, inflated-s_i misreports, verification-passing
// equivocations, and message-loss bursts. At the DDL the supervisor's
// graceful-degradation decide() produces the epoch answer; the harness
// certifies on every sample that the ladder never reports infeasible while
// a feasible selection exists, and copies out the Theorem-2 failure
// accounting.
//
// The same ChaosCommittee inputs can come from the fast calibrated workload
// path (txn::WorkloadGenerator) or from a real Elastico→PBFT epoch
// (sharding::ElasticoNetwork outcome reports) — see
// chaos_committees_from_reports.

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/supervisor.hpp"
#include "obs/context.hpp"
#include "txn/workload.hpp"

namespace mvcom::core {

enum class FaultKind {
  kCrash,            // node fails at `at` and stays down
  kCrashRecover,     // node fails at `at`, recovers after `duration`
  kStragglerDelay,   // node slows by ×magnitude; pending submission +duration
  kMisreport,        // claimed s_i inflated ×magnitude (commitment unchanged)
  kEquivocate,       // second, verification-passing submission, different s_i
  kMessageLossBurst, // loss probability = magnitude for `duration`
  kForgeSubmission,  // verification-PASSING inflated submission: before the
                     // honest report is sent it is replaced outright (the lie
                     // is the only submission and admission cannot catch it);
                     // after, the forgery arrives as a second verified
                     // submission and is caught as an equivocation
  kJoin,             // a reserve committee joins; its report arrives at `at`
  kLeave,            // the victim leaves the membership for good at `at`
};
[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One scheduled fault. `committee_id` names the victim (ignored for
/// kMessageLossBurst, which is network-wide; for kJoin it indexes the
/// ChaosConfig::reserve pool instead). Victims are resolved against the
/// LIVE membership at `at_seconds` — not the epoch-start population — so a
/// plan can target late joiners and never mis-fires on departed committees
/// (events whose victim is gone are skipped and counted).
struct FaultEvent {
  /// How `committee_id` names the victim.
  enum class Victim {
    kById,        // a concrete committee id, looked up among the live members
    kByLiveRank,  // the rank-th live member in join order at `at_seconds`
  };
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t committee_id = 0;  // id, live rank, or reserve slot (kJoin)
  double at_seconds = 0.0;
  double duration_seconds = 0.0;  // kCrashRecover / kStragglerDelay / bursts
  double magnitude = 1.0;         // slowdown ×, inflation ×, burst loss prob
  Victim victim = Victim::kById;  // last: scripted {k,id,t,d,m} plans keep
                                  // their historical by-id aggregate shape
};

struct FaultPlanConfig {
  std::size_t crashes = 1;
  std::size_t crash_recovers = 1;
  std::size_t stragglers = 1;
  std::size_t misreports = 1;
  std::size_t equivocations = 0;
  std::size_t loss_bursts = 0;
  std::size_t forgeries = 0;  // kForgeSubmission
  std::size_t joins = 0;      // drawn only when the run provides a reserve
  std::size_t leaves = 0;
  double horizon_seconds = 1500.0;  // faults drawn uniformly in [0, horizon)
  double min_downtime_seconds = 60.0;
  double max_downtime_seconds = 300.0;
  double max_slowdown = 8.0;      // straggler factor drawn in (1, max]
  double max_inflation = 4.0;     // misreport factor drawn in (1, max]
  double max_loss_probability = 0.6;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Draws a randomized schedule: victims are sampled uniformly as live
  /// ranks over [0, num_committees), times over [0, horizon). With no churn
  /// the live order equals the input order, so rank targeting reproduces the
  /// historical by-index behavior bit-for-bit. Join events draw reserve
  /// slots over [0, num_reserve) (none are drawn when num_reserve == 0).
  /// Deterministic per rng state — the property tests sweep seeds.
  [[nodiscard]] static FaultPlan randomized(const FaultPlanConfig& config,
                                            std::size_t num_committees,
                                            common::Rng& rng,
                                            std::size_t num_reserve = 0);
};

/// One committee as the harness drives it: its honest submission plus the
/// latencies the final committee measures. The committee answers pings on
/// the node whose index equals its position in the input vector.
struct ChaosCommittee {
  sharding::ShardSubmission submission;
  double formation_latency = 0.0;
  double consensus_latency = 0.0;
};

/// Builds honest chaos inputs from shard reports (either the calibrated
/// workload generator's or a real Elastico epoch's): each submission gets a
/// single count-binding entry carrying the report's s_i.
[[nodiscard]] std::vector<ChaosCommittee> chaos_committees_from_reports(
    std::span<const txn::ShardReport> reports);

struct ChaosConfig {
  SupervisorConfig supervisor{};
  double ddl_seconds = 1800.0;         // when decide() is taken
  double explore_tick_seconds = 20.0;  // SE exploration pump + sampling
  std::size_t iterations_per_tick = 40;
  double link_latency_mean_seconds = 2.0;
  /// Committees available to kJoin events. FaultEvent::committee_id indexes
  /// this pool by position; each reserve committee answers pings on the node
  /// after the initial members' (allocated up front — Network's node count
  /// is fixed at construction).
  std::vector<ChaosCommittee> reserve{};
  /// Cross-epoch supervision state adopted before any admission (strikes,
  /// bans, decayed risk). nullptr = fresh supervisor.
  const SupervisorCarry* carry_in = nullptr;
  /// Observability sinks. When set, the harness wires every component
  /// (simulator, network, supervisor, SE scheduler) to them, attaches the
  /// simulated clock to the trace recorder for the duration of the run
  /// (detached again before the simulator dies), and records epoch
  /// lifecycle and fault-injection events.
  obs::ObsContext obs{};
};

/// One sampled point of the run (taken at every explore tick).
struct ChaosTimelinePoint {
  double at_seconds = 0.0;
  bool feasible = false;
  DecisionTier tier = DecisionTier::kInfeasible;
  double utility = 0.0;
};

struct ChaosReport {
  SupervisedDecision final_decision{};
  std::vector<ChaosTimelinePoint> timeline;
  std::vector<FailureRecord> failures;  // Theorem-2 accounting per failure
  // Admission statistics.
  std::uint64_t admitted = 0;
  std::uint64_t readmitted = 0;
  std::uint64_t quarantine_events = 0;
  std::uint64_t refused = 0;
  std::uint64_t dropped_submissions = 0;  // sender was down at send time
  std::vector<std::uint32_t> quarantined_ids;
  std::vector<std::uint32_t> banned_ids;
  // Detector statistics.
  std::uint64_t failures_detected = 0;
  std::uint64_t recoveries_detected = 0;
  // Churn statistics.
  std::uint64_t joins = 0;   // kJoin events that delivered a report
  std::uint64_t leaves = 0;  // kLeave events applied
  /// Events whose victim was not live at fire time (already left, not yet
  /// joined, unknown id/rank) — skipped instead of hitting a stale index.
  std::uint64_t skipped_events = 0;
  /// The live reports backing the final decision (claims as admitted — an
  /// undetected forgery shows up here with its inflated s_i).
  std::vector<txn::ShardReport> final_reports;
  // Risk-adaptive sizing outcome (empty/static when the policy is off).
  std::vector<ResizeRecord> resizes;
  std::size_t effective_n_min = 0;  // scheduler floor at the DDL
  double risk_score = 0.0;
  /// Supervision state the next epoch should adopt (ChaosConfig::carry_in).
  SupervisorCarry carry_out{};
  /// True if any sampled decide() reported infeasible while
  /// feasible_selection_exists held on the live set — the acceptance
  /// criterion the ladder must never violate.
  bool infeasible_while_feasible = false;
};

/// Runs one supervised epoch under the fault plan and returns the full
/// report. Deterministic per (inputs, seed).
[[nodiscard]] ChaosReport run_chaos_epoch(
    const std::vector<ChaosCommittee>& committees, const FaultPlan& plan,
    const ChaosConfig& config, std::uint64_t seed);

}  // namespace mvcom::core
