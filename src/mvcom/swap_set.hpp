#pragma once
// SwapSet — the index structure behind every Markov-chain solution f_n:
// a partition of {0..I-1} into selected / unselected with O(1) uniform
// sampling from either side and O(1) swap (the state transition of Alg. 3,
// which flips exactly one x_i from 1 to 0 and another from 0 to 1).
//
// Layout: one permutation array `items_` whose first n entries are the
// selected committees and whose remaining I−n entries are the unselected
// ones, plus the inverse permutation `pos_`. A swap exchanges one entry on
// each side of the n boundary — two stores per array, no push/pop — and a
// side-membership test is a single comparison (pos_[i] < n). Two flat
// arrays instead of the previous four keeps a 50k-committee solution at
// 8 bytes per committee, which is what lets an SeExplorer hold hundreds of
// parallel solutions at I = 50'000 without blowing the cache or the heap.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"

namespace mvcom::core {

class SwapSet {
 public:
  SwapSet() = default;

  /// Builds from a selection bitmap.
  explicit SwapSet(const Selection& x) { rebuild(x); }

  /// Rebuilds from a bitmap, reusing the existing buffers (no allocation
  /// when the universe size is unchanged). Both sides keep ascending index
  /// order, so rebuild order is deterministic.
  void rebuild(const Selection& x) {
    const auto total = static_cast<std::uint32_t>(x.size());
    items_.resize(total);
    pos_.resize(total);
    n_ = 0;
    for (std::uint32_t i = 0; i < total; ++i) {
      if (x[i]) ++n_;
    }
    std::uint32_t sel = 0;
    std::uint32_t unsel = n_;
    for (std::uint32_t i = 0; i < total; ++i) {
      const std::uint32_t p = x[i] ? sel++ : unsel++;
      items_[p] = i;
      pos_[i] = p;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t selected_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t unselected_count() const noexcept {
    return items_.size() - n_;
  }
  [[nodiscard]] bool contains(std::uint32_t i) const {
    return pos_[i] < n_;
  }

  /// Uniform random selected element. Precondition: selected_count() > 0.
  [[nodiscard]] std::uint32_t sample_selected(common::Rng& rng) const {
    assert(n_ > 0);
    return items_[rng.below(n_)];
  }
  /// Uniform random unselected element. Precondition: unselected_count() > 0.
  [[nodiscard]] std::uint32_t sample_unselected(common::Rng& rng) const {
    assert(n_ < items_.size());
    return items_[n_ + rng.below(items_.size() - n_)];
  }

  /// Applies the transition x_out: 1→0, x_in: 0→1.
  void swap(std::uint32_t out, std::uint32_t in) {
    const std::uint32_t po = pos_[out];
    const std::uint32_t pi = pos_[in];
    assert(po < n_ && pi >= n_);
    items_[po] = in;
    items_[pi] = out;
    pos_[in] = po;
    pos_[out] = pi;
  }

  /// Materializes the bitmap.
  [[nodiscard]] Selection to_selection() const {
    Selection x(items_.size(), 0);
    write_selection(x);
    return x;
  }

  /// Writes the bitmap into a caller-owned buffer (resized as needed) —
  /// the allocation-free variant for hot paths with a scratch Selection.
  void write_selection(Selection& x) const {
    x.assign(items_.size(), 0);
    for (std::uint32_t k = 0; k < n_; ++k) x[items_[k]] = 1;
  }

  [[nodiscard]] std::span<const std::uint32_t> selected() const noexcept {
    return {items_.data(), n_};
  }

 private:
  std::vector<std::uint32_t> items_;  // permutation; [0, n_) = selected
  std::vector<std::uint32_t> pos_;    // inverse permutation
  std::uint32_t n_ = 0;               // selected count / side boundary
};

}  // namespace mvcom::core
