#pragma once
// SwapSet — the index structure behind every Markov-chain solution f_n:
// a partition of {0..I-1} into selected / unselected with O(1) uniform
// sampling from either side and O(1) swap (the state transition of Alg. 3,
// which flips exactly one x_i from 1 to 0 and another from 0 to 1).

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"

namespace mvcom::core {

class SwapSet {
 public:
  SwapSet() = default;

  /// Builds from a selection bitmap.
  explicit SwapSet(const Selection& x) { rebuild(x); }

  void rebuild(const Selection& x) {
    selected_.clear();
    unselected_.clear();
    pos_.assign(x.size(), 0);
    side_.assign(x.size(), 0);
    for (std::uint32_t i = 0; i < x.size(); ++i) {
      auto& list = x[i] ? selected_ : unselected_;
      pos_[i] = static_cast<std::uint32_t>(list.size());
      side_[i] = x[i] ? 1 : 0;
      list.push_back(i);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return pos_.size();
  }
  [[nodiscard]] std::size_t selected_count() const noexcept {
    return selected_.size();
  }
  [[nodiscard]] std::size_t unselected_count() const noexcept {
    return unselected_.size();
  }
  [[nodiscard]] bool contains(std::uint32_t i) const {
    return side_[i] != 0;
  }

  /// Uniform random selected element. Precondition: selected_count() > 0.
  [[nodiscard]] std::uint32_t sample_selected(common::Rng& rng) const {
    assert(!selected_.empty());
    return selected_[rng.below(selected_.size())];
  }
  /// Uniform random unselected element. Precondition: unselected_count() > 0.
  [[nodiscard]] std::uint32_t sample_unselected(common::Rng& rng) const {
    assert(!unselected_.empty());
    return unselected_[rng.below(unselected_.size())];
  }

  /// Applies the transition x_out: 1→0, x_in: 0→1.
  void swap(std::uint32_t out, std::uint32_t in) {
    assert(side_[out] == 1 && side_[in] == 0);
    remove_from(selected_, out);
    remove_from(unselected_, in);
    side_[out] = 0;
    pos_[out] = static_cast<std::uint32_t>(unselected_.size());
    unselected_.push_back(out);
    side_[in] = 1;
    pos_[in] = static_cast<std::uint32_t>(selected_.size());
    selected_.push_back(in);
  }

  /// Materializes the bitmap.
  [[nodiscard]] Selection to_selection() const {
    Selection x(pos_.size(), 0);
    for (const std::uint32_t i : selected_) x[i] = 1;
    return x;
  }

  [[nodiscard]] const std::vector<std::uint32_t>& selected() const noexcept {
    return selected_;
  }

 private:
  void remove_from(std::vector<std::uint32_t>& list, std::uint32_t value) {
    const std::uint32_t p = pos_[value];
    assert(p < list.size() && list[p] == value);
    const std::uint32_t last = list.back();
    list[p] = last;
    pos_[last] = p;
    list.pop_back();
  }

  std::vector<std::uint32_t> selected_;
  std::vector<std::uint32_t> unselected_;
  std::vector<std::uint32_t> pos_;   // position of i within its current list
  std::vector<std::uint8_t> side_;   // 1 = selected, 0 = unselected
};

}  // namespace mvcom::core
