#pragma once
// Deadline (DDL) policies for the final committee (§III-A).
//
// The paper deliberately does not prescribe how the DDL is set: "this paper
// is not trying to tell how to set such the DDL. ... In practice, the DDL
// can be set to the moment when a predefined percentage of committees
// submit their shards" — and Alg. 1 line 29 stops listening once N_max of
// the member committees have arrived. This module provides the policy
// family and the admission step (a committee whose two-phase latency
// exceeds the deadline is a straggler and never enters I_j), so benches can
// ablate the DDL choice — a knob the paper leaves open.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mvcom/problem.hpp"
#include "txn/workload.hpp"

namespace mvcom::core {

/// Result of applying a DDL policy to the arrived committee reports.
struct Admission {
  double deadline = 0.0;                   // t_j
  std::vector<txn::ShardReport> admitted;  // l_i <= t_j, arrival order kept
  std::size_t stragglers = 0;              // reports refused by the DDL
};

/// A deadline policy. Implementations must be deterministic.
class DdlPolicy {
 public:
  virtual ~DdlPolicy() = default;
  /// Computes t_j from the arrived reports. Precondition: non-empty.
  [[nodiscard]] virtual double deadline(
      std::span<const txn::ShardReport> reports) const = 0;

  /// Applies the policy: computes t_j and drops stragglers.
  [[nodiscard]] Admission admit(
      std::span<const txn::ShardReport> reports) const;
};

/// The paper's default: t_j = max_i l_i — everyone is admitted.
class MaxLatencyDdl final : public DdlPolicy {
 public:
  [[nodiscard]] double deadline(
      std::span<const txn::ShardReport> reports) const override;
};

/// N_max-style policy: t_j is the q-quantile of the two-phase latencies
/// (q = 0.8 reproduces the paper's "N_max is set to 80%"). Committees
/// slower than t_j are stragglers.
class PercentileDdl final : public DdlPolicy {
 public:
  explicit PercentileDdl(double quantile);
  [[nodiscard]] double deadline(
      std::span<const txn::ShardReport> reports) const override;

 private:
  double quantile_;
};

/// A fixed wall-clock deadline (e.g. a protocol constant).
class FixedDdl final : public DdlPolicy {
 public:
  explicit FixedDdl(double deadline_seconds) : deadline_(deadline_seconds) {}
  [[nodiscard]] double deadline(
      std::span<const txn::ShardReport>) const override {
    return deadline_;
  }

 private:
  double deadline_;
};

/// Convenience: policy → admission → EpochInstance in one step.
/// Returns std::nullopt when no committee meets the deadline.
[[nodiscard]] std::optional<EpochInstance> make_instance_with_ddl(
    std::span<const txn::ShardReport> reports, const DdlPolicy& policy,
    double alpha, std::uint64_t capacity, std::size_t n_min);

}  // namespace mvcom::core
