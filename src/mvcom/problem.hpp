#pragma once
// The MVCom utility-maximization problem (paper §III).
//
// Given member-committee reports (s_i TXs, l_i two-phase latency) and a
// deadline t = max_i l_i, select x ∈ {0,1}^I maximizing
//     U(x) = Σ_i ( α · x_i · s_i  −  Π_i ),   Π_i = x_i (t − l_i)     (Eq. 1–2)
// subject to  Σ x_i ≥ N_min (Eq. 3)  and  Σ x_i s_i ≤ Ĉ (Eq. 4).
//
// The problem is NP-hard (Lemma 1, reduction from 0/1 knapsack); this header
// defines the instance, selections, and O(1)-delta utility evaluation that
// every solver in src/mvcom and src/baselines shares.

#include <cstdint>
#include <span>
#include <vector>

#include "txn/workload.hpp"

namespace mvcom::core {

/// One member committee as seen by the final committee.
struct Committee {
  std::uint32_t id = 0;
  std::uint64_t txs = 0;       // s_i
  double latency = 0.0;        // l_i, seconds
};

/// x ∈ {0,1}^I — index-aligned with EpochInstance::committees().
using Selection = std::vector<std::uint8_t>;

/// Aggregates a solver maintains incrementally alongside a Selection.
struct SelectionStats {
  std::size_t chosen = 0;       // Σ x_i
  std::uint64_t txs = 0;        // Σ x_i s_i
};

/// An immutable problem instance for one epoch.
class EpochInstance {
 public:
  /// `deadline` < 0 means "derive t = max_i latency" (the paper's default
  /// t_j = max_{i∈I_j} l_i).
  EpochInstance(std::vector<Committee> committees, double alpha,
                std::uint64_t capacity, std::size_t n_min,
                double deadline = -1.0);

  /// Builds an instance from workload reports.
  static EpochInstance from_reports(std::span<const txn::ShardReport> reports,
                                    double alpha, std::uint64_t capacity,
                                    std::size_t n_min, double deadline = -1.0);

  [[nodiscard]] const std::vector<Committee>& committees() const noexcept {
    return committees_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return committees_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t n_min() const noexcept { return n_min_; }
  [[nodiscard]] double deadline() const noexcept { return deadline_; }

  /// Cumulative age of committee i's shard if permitted: Π_i = t − l_i.
  /// Non-negative whenever the deadline is the max latency.
  [[nodiscard]] double age(std::size_t i) const {
    return deadline_ - committees_[i].latency;
  }

  /// Marginal utility of permitting committee i: α·s_i − (t − l_i).
  [[nodiscard]] double gain(std::size_t i) const {
    return alpha_ * static_cast<double>(committees_[i].txs) - age(i);
  }

  /// Full utility U(x). Precondition: x.size() == size().
  [[nodiscard]] double utility(const Selection& x) const;

  /// U(x') − U(x) where x' swaps `out` (currently 1) for `in` (currently 0)
  /// — the Markov-chain transition of Alg. 3 in O(1).
  [[nodiscard]] double swap_delta(std::size_t out, std::size_t in) const {
    return gain(in) - gain(out);
  }

  [[nodiscard]] SelectionStats stats(const Selection& x) const;
  [[nodiscard]] bool capacity_ok(const SelectionStats& st) const noexcept {
    return st.txs <= capacity_;
  }
  [[nodiscard]] bool n_min_ok(const SelectionStats& st) const noexcept {
    return st.chosen >= n_min_;
  }
  [[nodiscard]] bool feasible(const Selection& x) const {
    const SelectionStats st = stats(x);
    return capacity_ok(st) && n_min_ok(st);
  }

  /// Valuable Degree of a selection (paper §VI-E): Σ x_i · s_i / Π_i.
  /// Π_i = 0 for the latest-arriving shard; `age_floor` (seconds) guards the
  /// division — shared by all algorithms, so rankings are ε-insensitive.
  [[nodiscard]] double valuable_degree(const Selection& x,
                                       double age_floor = 1.0) const;

  /// Total TXs permitted — the throughput component of the objective.
  [[nodiscard]] std::uint64_t permitted_txs(const Selection& x) const;

  /// Σ s_i over ALL committees. Guaranteed not to have wrapped: construction
  /// rejects committee sets whose total exceeds 2^64−1, so every subset sum
  /// computed anywhere downstream (prefix sums, incremental swap
  /// bookkeeping) is exact.
  [[nodiscard]] std::uint64_t total_txs() const noexcept { return total_txs_; }

  /// Cumulative age Σ Π_i over permitted shards.
  [[nodiscard]] double cumulative_age(const Selection& x) const;

  /// Bootstrap condition of Alg. 1 line 1: scheduling is only worth running
  /// when enough committees arrived and the capacity actually binds.
  [[nodiscard]] bool scheduling_worthwhile() const;

 private:
  std::vector<Committee> committees_;
  double alpha_;
  std::uint64_t capacity_;
  std::size_t n_min_;
  double deadline_;
  std::uint64_t total_txs_ = 0;
};

}  // namespace mvcom::core
