#include "mvcom/problem.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mvcom::core {

EpochInstance::EpochInstance(std::vector<Committee> committees, double alpha,
                             std::uint64_t capacity, std::size_t n_min,
                             double deadline)
    : committees_(std::move(committees)),
      alpha_(alpha),
      capacity_(capacity),
      n_min_(n_min),
      deadline_(deadline) {
  if (committees_.empty()) {
    throw std::invalid_argument("EpochInstance: no committees");
  }
  if (alpha_ <= 0.0) {
    throw std::invalid_argument("EpochInstance: alpha must be positive");
  }
  // Reject adversarial shard sizes whose total would wrap std::uint64_t:
  // downstream bookkeeping (smallest-prefix feasibility tests, incremental
  // Σ s maintenance in the SE solvers, scheduling_worthwhile) sums subsets
  // unchecked and a wrapped total could mark infeasible cardinalities
  // active.
  for (const Committee& c : committees_) {
    if (c.txs > std::numeric_limits<std::uint64_t>::max() - total_txs_) {
      throw std::invalid_argument(
          "EpochInstance: total shard size overflows 64-bit accounting");
    }
    total_txs_ += c.txs;
  }
  if (deadline_ < 0.0) {
    // t_j = max_{i∈I_j} l_i (paper §III-A).
    deadline_ = 0.0;
    for (const Committee& c : committees_) {
      deadline_ = std::max(deadline_, c.latency);
    }
  }
}

EpochInstance EpochInstance::from_reports(
    std::span<const txn::ShardReport> reports, double alpha,
    std::uint64_t capacity, std::size_t n_min, double deadline) {
  std::vector<Committee> committees;
  committees.reserve(reports.size());
  for (const txn::ShardReport& r : reports) {
    committees.push_back({r.committee_id, r.tx_count, r.two_phase_latency()});
  }
  return EpochInstance(std::move(committees), alpha, capacity, n_min, deadline);
}

double EpochInstance::utility(const Selection& x) const {
  assert(x.size() == committees_.size());
  double u = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i]) u += gain(i);
  }
  return u;
}

SelectionStats EpochInstance::stats(const Selection& x) const {
  assert(x.size() == committees_.size());
  SelectionStats st;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i]) {
      ++st.chosen;
      st.txs += committees_[i].txs;
    }
  }
  return st;
}

double EpochInstance::valuable_degree(const Selection& x,
                                      double age_floor) const {
  assert(x.size() == committees_.size());
  assert(age_floor > 0.0);
  double degree = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!x[i]) continue;
    degree += static_cast<double>(committees_[i].txs) /
              std::max(age(i), age_floor);
  }
  return degree;
}

std::uint64_t EpochInstance::permitted_txs(const Selection& x) const {
  assert(x.size() == committees_.size());
  std::uint64_t txs = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i]) txs += committees_[i].txs;
  }
  return txs;
}

double EpochInstance::cumulative_age(const Selection& x) const {
  assert(x.size() == committees_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i]) total += age(i);
  }
  return total;
}

bool EpochInstance::scheduling_worthwhile() const {
  // total_txs_ is overflow-checked at construction, so the comparison with
  // the capacity cannot be fooled by a wrapped sum.
  return committees_.size() > n_min_ && total_txs_ > capacity_;
}

}  // namespace mvcom::core
