#include "analysis/spectral.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace mvcom::analysis {

double SpectralResult::t_mix_upper(double epsilon) const {
  assert(epsilon > 0.0 && epsilon < 1.0);
  return relaxation_time * std::log(1.0 / (epsilon * pi_min));
}

double SpectralResult::t_mix_lower(double epsilon) const {
  assert(epsilon > 0.0 && epsilon < 0.5);
  return std::max(0.0, relaxation_time - 1.0) *
         std::log(1.0 / (2.0 * epsilon));
}

SpectralResult spectral_gap(const SolutionSpace& space, double beta,
                            double tau, std::size_t iterations) {
  const std::size_t n = space.states.size();
  if (n < 2) {
    throw std::invalid_argument("spectral_gap: need at least two states");
  }
  if (n > 5000) {
    throw std::invalid_argument("spectral_gap: space too large (dense O(n^2))");
  }

  // Generator Q: q_ij per Eq. (7) for swap neighbors, diagonal = −row sum.
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t s = 0; s < n; ++s) index.emplace(space.states[s], s);
  std::vector<double> q(n * n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t mask = space.states[s];
    double exit = 0.0;
    for (std::uint32_t out = 0; out < 32; ++out) {
      if (!(mask & (std::uint32_t{1} << out))) continue;
      for (std::uint32_t in = 0; in < 32; ++in) {
        if (mask & (std::uint32_t{1} << in)) continue;
        const std::uint32_t next =
            (mask & ~(std::uint32_t{1} << out)) | (std::uint32_t{1} << in);
        const auto it = index.find(next);
        if (it == index.end()) continue;
        const double rate = std::exp(
            -tau + 0.5 * beta * (space.utilities[it->second] -
                                 space.utilities[s]));
        q[s * n + it->second] = rate;
        exit += rate;
      }
    }
    q[s * n + s] = -exit;
  }

  // Stationary law and the symmetrization S = D^{1/2} Q D^{-1/2}; for a
  // reversible chain S is symmetric with the same spectrum as Q.
  const std::vector<double> pi = stationary_distribution(space, beta);
  std::vector<double> sym(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sym[i * n + j] = std::sqrt(pi[i]) * q[i * n + j] / std::sqrt(pi[j]);
    }
  }

  // Shift: by Gershgorin the spectrum of S lies in [−2·max_exit, 0], so
  // A = S + cI with c = 2·max_exit is positive semidefinite; its top
  // eigenpair is (c, √π). Deflate it and power-iterate for the second
  // eigenvalue c − λ_gap.
  double shift = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shift = std::max(shift, -sym[i * n + i]);
  }
  shift *= 2.0;
  std::vector<double> top(n);
  for (std::size_t i = 0; i < n; ++i) top[i] = std::sqrt(pi[i]);

  // Deterministic start vector, deflated against `top`.
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 + static_cast<double>(i % 7);
  }
  auto deflate = [&](std::vector<double>& x) {
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += x[i] * top[i];
    for (std::size_t i = 0; i < n; ++i) x[i] -= dot * top[i];
  };
  auto normalize = [&](std::vector<double>& x) {
    double norm = 0.0;
    for (const double e : x) norm += e * e;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& e : x) e /= norm;
    }
    return norm;
  };
  deflate(v);
  normalize(v);

  std::vector<double> w(n);
  double eigen = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    // w = (S + shift·I) v
    for (std::size_t i = 0; i < n; ++i) {
      double acc = shift * v[i];
      const double* row = &sym[i * n];
      for (std::size_t j = 0; j < n; ++j) acc += row[j] * v[j];
      w[i] = acc;
    }
    deflate(w);
    const double norm = normalize(w);
    v.swap(w);
    if (it + 1 == iterations) eigen = norm;
  }

  SpectralResult result;
  result.max_exit_rate = 0.5 * shift;  // shift was set to 2·max_exit
  result.gap = std::max(0.0, shift - eigen);
  result.relaxation_time =
      result.gap > 0.0 ? 1.0 / result.gap
                       : std::numeric_limits<double>::infinity();
  result.pi_min = *std::min_element(pi.begin(), pi.end());
  return result;
}

}  // namespace mvcom::analysis
