#pragma once
// Exact and simulated analysis of the SE Markov chain on small instances.
//
// For |I| small enough to enumerate (≤ 20 committees):
//  * enumerate the capacity-feasible solution space F (all subsets, the
//    paper's space; Alg. 2 keeps only Cons.-(4)-feasible states);
//  * compute the closed-form stationary distribution p*_f ∝ exp(β U_f)
//    (Eq. 6);
//  * simulate the continuous-time chain with rates
//    q_{f,f'} = exp(−τ + ½β(U_{f'} − U_f)) (Eq. 7) by the Gillespie method
//    and report time-weighted state occupancy — property tests check this
//    converges to p*, which is precisely the detailed-balance claim of
//    Lemma 3;
//  * evaluate Lemma 4 (d_TV between the trimmed-space stationary q* and the
//    at-failure distribution q̃) and Theorem 2 (utility perturbation)
//    exactly, no i.i.d. assumption needed.
//
// Transitions here are the paper's swap moves (condition a/b of §IV-C.1):
// states of equal cardinality differing in exactly one swapped pair.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"

namespace mvcom::analysis {

using core::EpochInstance;

/// The enumerated solution space of one cardinality class n (the SE chain
/// decomposes into per-cardinality components; swaps preserve |f|).
struct SolutionSpace {
  std::size_t cardinality = 0;
  std::vector<std::uint32_t> states;  // bitmasks, capacity-feasible only
  std::vector<double> utilities;      // aligned with states
};

/// Enumerates all capacity-feasible cardinality-n subsets.
/// Precondition: instance.size() <= 20.
[[nodiscard]] SolutionSpace enumerate_space(const EpochInstance& instance,
                                            std::size_t cardinality);

/// Enumerates the paper's full space F (all cardinalities, every subset) —
/// the space of Lemma 4/Theorem 2, which ignore the capacity constraint.
/// Precondition: instance.size() <= 20.
[[nodiscard]] SolutionSpace enumerate_full_space(const EpochInstance& instance);

/// Eq. (6): p*_f = exp(βU_f) / Σ exp(βU_f'), computed with the max-shift
/// trick for numerical stability.
[[nodiscard]] std::vector<double> stationary_distribution(
    const SolutionSpace& space, double beta);

/// Gillespie simulation of the CTMC with Eq.-(7) rates over `space` for
/// `transitions` jumps; returns time-weighted occupancy per state.
[[nodiscard]] std::vector<double> simulate_occupancy(
    const SolutionSpace& space, double beta, double tau,
    std::size_t transitions, common::Rng& rng);

/// Total-variation distance ½ Σ |p_i − q_i|.
[[nodiscard]] double total_variation(const std::vector<double>& p,
                                     const std::vector<double>& q);

/// Lemma-4 evaluation on a concrete instance: d_TV(q*, q̃) where G is the
/// subspace of `space` avoiding committee `failed`, q* is Eq. (6) on G, and
/// q̃ is Eq. (6) on F restricted to G (renormalized as in Eq. 16).
struct FailurePerturbation {
  double tv_distance = 0.0;        // d_TV(q*, q̃)
  double utility_shift = 0.0;      // |q*uᵀ − q̃uᵀ| (Theorem 2 LHS)
  double max_trimmed_utility = 0.0;  // max_{g∈G} U_g (Theorem 2 RHS)
  double trimmed_fraction = 0.0;   // |F\G| / |F|
};
[[nodiscard]] FailurePerturbation failure_perturbation(
    const SolutionSpace& space, double beta, std::uint32_t failed);

}  // namespace mvcom::analysis
