#include "analysis/markov.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace mvcom::analysis {
namespace {

constexpr std::size_t kMaxEnumerable = 20;

double utility_of_mask(const EpochInstance& instance, std::uint32_t mask) {
  double u = 0.0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (mask & (std::uint32_t{1} << i)) u += instance.gain(i);
  }
  return u;
}

bool capacity_ok(const EpochInstance& instance, std::uint32_t mask) {
  std::uint64_t txs = 0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (mask & (std::uint32_t{1} << i)) txs += instance.committees()[i].txs;
  }
  return txs <= instance.capacity();
}

}  // namespace

SolutionSpace enumerate_space(const EpochInstance& instance,
                              std::size_t cardinality) {
  if (instance.size() > kMaxEnumerable) {
    throw std::invalid_argument("enumerate_space: instance too large");
  }
  SolutionSpace space;
  space.cardinality = cardinality;
  const auto limit = std::uint32_t{1} << instance.size();
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) != cardinality) continue;
    if (!capacity_ok(instance, mask)) continue;
    space.states.push_back(mask);
    space.utilities.push_back(utility_of_mask(instance, mask));
  }
  return space;
}

SolutionSpace enumerate_full_space(const EpochInstance& instance) {
  if (instance.size() > kMaxEnumerable) {
    throw std::invalid_argument("enumerate_full_space: instance too large");
  }
  SolutionSpace space;
  space.cardinality = 0;  // mixed cardinalities
  const auto limit = std::uint32_t{1} << instance.size();
  space.states.reserve(limit);
  space.utilities.reserve(limit);
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    space.states.push_back(mask);
    space.utilities.push_back(utility_of_mask(instance, mask));
  }
  return space;
}

std::vector<double> stationary_distribution(const SolutionSpace& space,
                                            double beta) {
  assert(!space.states.empty());
  const double shift =
      *std::max_element(space.utilities.begin(), space.utilities.end());
  std::vector<double> p(space.states.size());
  double z = 0.0;
  for (std::size_t s = 0; s < p.size(); ++s) {
    p[s] = std::exp(beta * (space.utilities[s] - shift));
    z += p[s];
  }
  for (double& v : p) v /= z;
  return p;
}

std::vector<double> simulate_occupancy(const SolutionSpace& space, double beta,
                                       double tau, std::size_t transitions,
                                       common::Rng& rng) {
  assert(!space.states.empty());
  std::unordered_map<std::uint32_t, std::size_t> index;
  index.reserve(space.states.size());
  for (std::size_t s = 0; s < space.states.size(); ++s) {
    index.emplace(space.states[s], s);
  }

  // Shift all rate exponents so none overflows; a global rate rescale only
  // rescales time, leaving time-weighted occupancy proportions intact.
  const auto [umin_it, umax_it] =
      std::minmax_element(space.utilities.begin(), space.utilities.end());
  const double shift = 0.5 * beta * (*umax_it - *umin_it);

  std::vector<double> occupancy(space.states.size(), 0.0);
  std::size_t current = rng.below(space.states.size());

  std::vector<std::size_t> neighbor_state;
  std::vector<double> neighbor_rate;
  for (std::size_t jump = 0; jump < transitions; ++jump) {
    neighbor_state.clear();
    neighbor_rate.clear();
    const std::uint32_t mask = space.states[current];
    const double u_here = space.utilities[current];
    double total_rate = 0.0;
    for (std::uint32_t out = 0; out < 32; ++out) {
      if (!(mask & (std::uint32_t{1} << out))) continue;
      for (std::uint32_t in = 0; in < 32; ++in) {
        if (mask & (std::uint32_t{1} << in)) continue;
        const std::uint32_t next =
            (mask & ~(std::uint32_t{1} << out)) | (std::uint32_t{1} << in);
        const auto it = index.find(next);
        if (it == index.end()) continue;  // infeasible neighbor: rate 0
        const double rate = std::exp(
            -tau + 0.5 * beta * (space.utilities[it->second] - u_here) - shift);
        neighbor_state.push_back(it->second);
        neighbor_rate.push_back(rate);
        total_rate += rate;
      }
    }
    if (total_rate <= 0.0 || neighbor_state.empty()) {
      // Absorbing under swap moves (shouldn't happen in connected spaces).
      occupancy[current] += 1.0;
      break;
    }
    occupancy[current] += rng.exponential(1.0 / total_rate);
    // Pick the jump target proportional to rate.
    double pick = rng.uniform01() * total_rate;
    std::size_t chosen = neighbor_state.back();
    for (std::size_t k = 0; k < neighbor_state.size(); ++k) {
      pick -= neighbor_rate[k];
      if (pick <= 0.0) {
        chosen = neighbor_state[k];
        break;
      }
    }
    current = chosen;
  }

  double total = 0.0;
  for (const double t : occupancy) total += t;
  if (total > 0.0) {
    for (double& t : occupancy) t /= total;
  }
  return occupancy;
}

double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q) {
  assert(p.size() == q.size());
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) d += std::abs(p[i] - q[i]);
  return 0.5 * d;
}

FailurePerturbation failure_perturbation(const SolutionSpace& space,
                                         double beta, std::uint32_t failed) {
  assert(!space.states.empty());
  const std::uint32_t failed_bit = std::uint32_t{1} << failed;

  // Split F into the trimmed space G (states avoiding the failed committee)
  // and F\G. Distributions computed with a shared max-shift.
  const double shift =
      *std::max_element(space.utilities.begin(), space.utilities.end());
  double z_full = 0.0;
  double z_trimmed = 0.0;
  std::size_t trimmed_states = 0;
  for (std::size_t s = 0; s < space.states.size(); ++s) {
    const double w = std::exp(beta * (space.utilities[s] - shift));
    z_full += w;
    if (!(space.states[s] & failed_bit)) {
      z_trimmed += w;
      ++trimmed_states;
    }
  }
  if (trimmed_states == 0) {
    throw std::invalid_argument(
        "failure_perturbation: no state avoids the failed committee");
  }

  FailurePerturbation result;
  double expected_q = 0.0;    // Σ q*_g U_g over G (Eq. 15)
  double expected_qt = 0.0;   // Σ q̃_g U_g over G (Eq. 16)
  for (std::size_t s = 0; s < space.states.size(); ++s) {
    if (space.states[s] & failed_bit) continue;
    const double w = std::exp(beta * (space.utilities[s] - shift));
    const double q_star = w / z_trimmed;   // stationary on G (Eq. 15)
    const double q_tilde = w / z_full;     // at-failure distribution (Eq. 16)
    result.tv_distance += std::abs(q_star - q_tilde);
    expected_q += q_star * space.utilities[s];
    expected_qt += q_tilde * space.utilities[s];
    result.max_trimmed_utility =
        std::max(result.max_trimmed_utility, space.utilities[s]);
  }
  result.tv_distance *= 0.5;
  result.utility_shift = std::abs(expected_q - expected_qt);
  result.trimmed_fraction =
      static_cast<double>(space.states.size() - trimmed_states) /
      static_cast<double>(space.states.size());
  return result;
}

}  // namespace mvcom::analysis
