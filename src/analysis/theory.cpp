#include "analysis/theory.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mvcom::analysis {

MixingTimeBounds mixing_time_bounds(std::size_t num_committees, double beta,
                                    double tau, double utility_spread,
                                    double epsilon) {
  assert(num_committees >= 2);
  assert(beta > 0.0);
  assert(utility_spread >= 0.0);
  assert(epsilon > 0.0 && epsilon < 0.5);

  const auto I = static_cast<double>(num_committees);
  const double spread_term = beta * utility_spread;
  const double pair_count = I * I - I;  // |I|² − |I|
  const double ln_inv_2eps = std::log(1.0 / (2.0 * epsilon));

  MixingTimeBounds bounds{};
  // Eq. (12): exp[τ − ½β(Umax−Umin)] / (|I|²−|I|) · ln(1/2ε).
  bounds.log_lower =
      tau - 0.5 * spread_term - std::log(pair_count) + std::log(ln_inv_2eps);
  // Eq. (13): 4^|I| (|I|²−|I|) exp[(3/2)β(Umax−Umin) + τ] ·
  //           [ln(1/2ε) + ½|I| ln2 + ½β(Umax−Umin)].
  const double bracket =
      ln_inv_2eps + 0.5 * I * std::numbers::ln2 + 0.5 * spread_term;
  bounds.log_upper = I * std::log(4.0) + std::log(pair_count) +
                     1.5 * spread_term + tau + std::log(bracket);
  return bounds;
}

double log_sum_exp_optimality_loss(std::size_t num_committees, double beta) {
  assert(beta > 0.0);
  return static_cast<double>(num_committees) * std::numbers::ln2 / beta;
}

double failure_perturbation_bound(double max_utility_trimmed) {
  return max_utility_trimmed;
}

}  // namespace mvcom::analysis
