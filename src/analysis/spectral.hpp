#pragma once
// Spectral analysis of the SE Markov chain on enumerable instances — the
// machinery behind the paper's citation [19] (Diaconis & Stroock,
// "Geometric bounds for eigenvalues of Markov chains"), which Theorem 1's
// proof leans on.
//
// For a reversible CTMC with generator Q and stationary law π, the mixing
// time obeys the relaxation-time sandwich
//     (t_rel − 1)·ln(1/2ε)  ≤  t_mix(ε)  ≤  t_rel · ln(1/(ε·π_min)),
// where t_rel = 1/λ_gap and λ_gap is the smallest positive eigenvalue of
// −Q (the spectral gap). We compute the gap exactly: reversibility lets us
// symmetrize S = D^{1/2} Q D^{-1/2} (D = diag(π)) and run deflated power
// iteration on a shifted S — no external linear-algebra dependency.

#include <cstddef>
#include <vector>

#include "analysis/markov.hpp"

namespace mvcom::analysis {

struct SpectralResult {
  double gap = 0.0;              // λ_gap of −Q (> 0 iff irreducible)
  double relaxation_time = 0.0;  // 1/λ_gap
  double pi_min = 0.0;           // smallest stationary mass
  double max_exit_rate = 0.0;    // uniformization constant Λ = max_i |Q_ii|
  /// Gap of the uniformized (discrete, per-transition) chain P = I + Q/Λ —
  /// the per-iteration mixing speed, which is what slows down as β grows
  /// (Remark 2): absolute rates explode with β, transitions don't.
  [[nodiscard]] double uniformized_gap() const {
    return max_exit_rate > 0.0 ? gap / max_exit_rate : 0.0;
  }
  /// Mixing-time bounds at accuracy ε via the relaxation-time sandwich.
  [[nodiscard]] double t_mix_upper(double epsilon) const;
  [[nodiscard]] double t_mix_lower(double epsilon) const;
};

/// Computes the spectral gap of the Eq.-(7) chain on `space`. Intended for
/// enumerated spaces of at most a few thousand states.
/// `iterations` controls the power-iteration budget (default ample).
[[nodiscard]] SpectralResult spectral_gap(const SolutionSpace& space,
                                          double beta, double tau,
                                          std::size_t iterations = 3000);

}  // namespace mvcom::analysis
