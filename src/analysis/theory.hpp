#pragma once
// Closed-form theoretical quantities from the paper's analysis sections:
//  * Theorem 1 — mixing-time lower/upper bounds (Eq. 12–13);
//  * Remark 1 — log-sum-exp optimality loss (1/β)·log|F|;
//  * Lemma 4 — total-variation bound (≤ 1/2) on committee failure;
//  * Theorem 2 — utility-perturbation bound on committee failure.
// The upper bound of Eq. 13 contains a 4^|I| factor, so everything is
// computed in log-space.

#include <cstddef>

namespace mvcom::analysis {

struct MixingTimeBounds {
  double log_lower;  // ln of Eq. (12)'s right-hand side
  double log_upper;  // ln of Eq. (13)'s right-hand side
};

/// Theorem 1. `utility_spread` = U_max − U_min over the solution space,
/// `epsilon` the target total-variation gap (0 < ε < 1/2).
[[nodiscard]] MixingTimeBounds mixing_time_bounds(std::size_t num_committees,
                                                  double beta, double tau,
                                                  double utility_spread,
                                                  double epsilon);

/// Remark 1: the approximation loss of MVCom(β) is (1/β)·log|F| with
/// |F| = 2^|I|, i.e. (|I|·ln 2)/β.
[[nodiscard]] double log_sum_exp_optimality_loss(std::size_t num_committees,
                                                 double beta);

/// Lemma 4: d_TV(q*, q̃) = |F\G| / |F| = 1/2 for a single committee failure
/// (under the paper's i.i.d.-utility assumption). Returned for symmetry.
[[nodiscard]] constexpr double failure_tv_bound() noexcept { return 0.5; }

/// Theorem 2: ‖q*uᵀ − q̃uᵀ‖ ≤ max_{g∈G} U_g.
[[nodiscard]] double failure_perturbation_bound(double max_utility_trimmed);

}  // namespace mvcom::analysis
