#include "analysis/convergence.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace mvcom::analysis {

MixingEstimate estimate_mixing_time(const SolutionSpace& space, double beta,
                                    double tau, double epsilon, double horizon,
                                    std::size_t trajectories,
                                    std::size_t checkpoints,
                                    common::Rng& rng) {
  if (space.states.empty() || trajectories == 0 || checkpoints == 0) {
    throw std::invalid_argument("estimate_mixing_time: degenerate inputs");
  }

  // Precompute the rate graph (Eq. 7) in natural units. Intended for small
  // enumerable instances where beta * utility spread stays well within
  // double range.
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t s = 0; s < space.states.size(); ++s) {
    index.emplace(space.states[s], s);
  }
  struct Edge {
    std::size_t to;
    double rate;
  };
  std::vector<std::vector<Edge>> edges(space.states.size());
  std::vector<double> exit_rate(space.states.size(), 0.0);
  for (std::size_t s = 0; s < space.states.size(); ++s) {
    const std::uint32_t mask = space.states[s];
    for (std::uint32_t out = 0; out < 32; ++out) {
      if (!(mask & (std::uint32_t{1} << out))) continue;
      for (std::uint32_t in = 0; in < 32; ++in) {
        if (mask & (std::uint32_t{1} << in)) continue;
        const std::uint32_t next =
            (mask & ~(std::uint32_t{1} << out)) | (std::uint32_t{1} << in);
        const auto it = index.find(next);
        if (it == index.end()) continue;
        const double rate = std::exp(
            -tau + 0.5 * beta * (space.utilities[it->second] -
                                 space.utilities[s]));
        edges[s].push_back({it->second, rate});
        exit_rate[s] += rate;
      }
    }
  }

  // Worst-case start per the Theorem-1 intuition: the minimum-utility state.
  const std::size_t start = static_cast<std::size_t>(
      std::min_element(space.utilities.begin(), space.utilities.end()) -
      space.utilities.begin());

  // Geometric checkpoint grid.
  MixingEstimate estimate;
  estimate.checkpoint_times.resize(checkpoints);
  const double first = horizon / std::pow(2.0, static_cast<double>(checkpoints - 1));
  for (std::size_t c = 0; c < checkpoints; ++c) {
    estimate.checkpoint_times[c] =
        first * std::pow(2.0, static_cast<double>(c));
  }

  std::vector<std::vector<double>> occupancy(
      checkpoints, std::vector<double>(space.states.size(), 0.0));

  for (std::size_t run = 0; run < trajectories; ++run) {
    std::size_t state = start;
    double t = 0.0;
    std::size_t next_checkpoint = 0;
    while (next_checkpoint < checkpoints) {
      if (edges[state].empty()) break;  // absorbing (cannot happen if connected)
      const double dwell = rng.exponential(1.0 / exit_rate[state]);
      // Record every checkpoint the dwell interval covers.
      while (next_checkpoint < checkpoints &&
             estimate.checkpoint_times[next_checkpoint] <= t + dwell) {
        occupancy[next_checkpoint][state] += 1.0;
        ++next_checkpoint;
      }
      t += dwell;
      double pick = rng.uniform01() * exit_rate[state];
      std::size_t chosen = edges[state].back().to;
      for (const Edge& e : edges[state]) {
        pick -= e.rate;
        if (pick <= 0.0) {
          chosen = e.to;
          break;
        }
      }
      state = chosen;
    }
  }

  const auto p_star = stationary_distribution(space, beta);
  estimate.tv_distance.resize(checkpoints);
  for (std::size_t c = 0; c < checkpoints; ++c) {
    for (double& v : occupancy[c]) v /= static_cast<double>(trajectories);
    estimate.tv_distance[c] = total_variation(occupancy[c], p_star);
    if (estimate.t_mix < 0.0 && estimate.tv_distance[c] <= epsilon) {
      estimate.t_mix = estimate.checkpoint_times[c];
    }
  }
  return estimate;
}

}  // namespace mvcom::analysis
