#pragma once
// Empirical mixing-time measurement for the SE Markov chain on enumerable
// instances — the experimental counterpart of Theorem 1.
//
// t_mix(ε) is defined (Eq. 11) as the first time the total-variation
// distance between the time-t distribution and the stationary law drops
// below ε, maximized over starting states. We estimate the distribution
// H_t(f) by running many independent Gillespie trajectories from the
// worst-case start (the minimum-utility state — the paper's bounds are
// driven by U_max − U_min) and measuring d_TV against Eq. (6) on a grid of
// time checkpoints.

#include <cstddef>
#include <vector>

#include "analysis/markov.hpp"
#include "common/rng.hpp"

namespace mvcom::analysis {

struct MixingEstimate {
  std::vector<double> checkpoint_times;
  std::vector<double> tv_distance;   // d_TV(H_t, p*) per checkpoint
  /// First checkpoint time with d_TV <= epsilon; negative when not reached.
  double t_mix = -1.0;
};

/// Estimates mixing of the Eq.-(7) CTMC on `space`. `trajectories`
/// independent runs, each sampled at `checkpoints` geometrically spaced
/// instants up to `horizon` (simulated chain-time units).
[[nodiscard]] MixingEstimate estimate_mixing_time(
    const SolutionSpace& space, double beta, double tau, double epsilon,
    double horizon, std::size_t trajectories, std::size_t checkpoints,
    common::Rng& rng);

}  // namespace mvcom::analysis
