#include "pipeline/epoch_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "consensus/pbft.hpp"
#include "crypto/merkle.hpp"
#include "crypto/pow.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "txn/age.hpp"
#include "txn/workload.hpp"

namespace mvcom::pipeline {

namespace {

using common::Rng;
using common::SimTime;

constexpr std::uint64_t kDigestBasis = common::kFnv1aBasis;
using common::fnv1a_mix;

std::uint64_t bits_of(double v) noexcept {
  std::uint64_t u = 0;
  static_assert(sizeof u == sizeof v);
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Per-epoch RNG stream slots. Every engine the pipeline uses is derived as
/// Rng::stream(seed, 4·epoch + slot) — a pure function of (seed, epoch) —
/// so overlapped epochs never share or reorder a stream (DESIGN.md §13).
enum StreamSlot : std::uint64_t {
  kFormationSlot = 0,  // dealing + two-phase latency sampling (+ PoW grind)
  kSeSeedSlot = 1,     // SE scheduler seed
  kFinalNetSlot = 2,   // stage-4 network fabric
  kFinalPbftSlot = 3,  // stage-4 PBFT protocol randomness
};

std::uint64_t stream_index(std::size_t epoch, StreamSlot slot) noexcept {
  return 4 * static_cast<std::uint64_t>(epoch) + slot;
}

std::string epoch_randomness(std::uint64_t seed, std::size_t epoch) {
  return "serve|" + std::to_string(seed) + "|" + std::to_string(epoch);
}

/// Greedy cross-epoch warm seed: descending-gain fill under Ĉ, then a
/// smallest-shards top-up toward N_min. Deterministic (ties broken by
/// index) and O(I log I) — cheap next to one SE iteration block.
core::Selection greedy_seed(const core::EpochInstance& instance) {
  const std::size_t n = instance.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ga = instance.gain(a);
    const double gb = instance.gain(b);
    if (ga != gb) return ga > gb;
    return a < b;
  });
  core::Selection sel(n, 0);
  std::uint64_t used = 0;
  std::size_t chosen = 0;
  for (const std::uint32_t i : order) {
    const std::uint64_t txs = instance.committees()[i].txs;
    if (instance.gain(i) <= 0.0 && chosen >= instance.n_min()) break;
    if (used + txs > instance.capacity()) continue;
    sel[i] = 1;
    used += txs;
    ++chosen;
  }
  if (chosen < instance.n_min()) {
    // Top up with the smallest remaining shards; bail out (empty seed) when
    // even that cannot reach N_min — the instance is then infeasible for
    // the SE scheduler too.
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const std::uint64_t ta = instance.committees()[a].txs;
                const std::uint64_t tb = instance.committees()[b].txs;
                if (ta != tb) return ta < tb;
                return a < b;
              });
    for (const std::uint32_t i : order) {
      if (chosen >= instance.n_min()) break;
      if (sel[i] != 0) continue;
      const std::uint64_t txs = instance.committees()[i].txs;
      if (used + txs > instance.capacity()) continue;
      sel[i] = 1;
      used += txs;
      ++chosen;
    }
    if (chosen < instance.n_min()) return {};
  }
  if (chosen == 0) return {};
  return sel;
}

}  // namespace

EpochPipeline::EpochPipeline(const txn::Trace& trace, PipelineConfig config)
    : trace_(&trace), config_(std::move(config)) {
  if (trace.blocks.empty()) {
    throw std::invalid_argument("EpochPipeline: trace is empty");
  }
  if (config_.epochs == 0 || config_.committees == 0) {
    throw std::invalid_argument(
        "EpochPipeline: epochs and committees must be >= 1");
  }
  trace_start_ = trace.blocks.front().btime;
  const double span = trace.blocks.back().btime - trace_start_ + 1.0;
  window_ = span / static_cast<double>(config_.epochs);
  if (config_.account_mode) {
    // Align the account model and the assembler with the pipeline's shape:
    // one shard per member committee, windows matching the epoch slicing.
    config_.account.num_shards =
        static_cast<std::uint32_t>(config_.committees);
    config_.account.start_time = trace_start_;
    config_.account.window_seconds = window_;
    config_.xshard.num_shards = static_cast<std::uint32_t>(config_.committees);
    account_gen_.emplace(config_.account);
  }
}

void EpochPipeline::set_obs(obs::ObsContext obs) {
  obs_ = obs;
  obs_epochs_ = nullptr;
  obs_committed_ = nullptr;
  obs_carried_ = nullptr;
  obs_utility_ = nullptr;
  obs_commit_time_ = nullptr;
  obs_xshard_intra_ = nullptr;
  obs_xshard_cross_ = nullptr;
  obs_xshard_deferred_ = nullptr;
  obs::MetricsRegistry* m = obs_.metrics();
  if (m == nullptr) return;
  obs_epochs_ = &m->counter("mvcom_pipeline_epochs_total",
                            "Epochs the streaming pipeline committed");
  obs_committed_ = &m->counter("mvcom_pipeline_txs_total",
                               "TXs by scheduling outcome per epoch",
                               {{"result", "committed"}});
  obs_carried_ = &m->counter("mvcom_pipeline_txs_total",
                             "TXs by scheduling outcome per epoch",
                             {{"result", "carried"}});
  obs_utility_ = &m->gauge("mvcom_pipeline_epoch_utility",
                           "Eq.-(2) utility of the latest committed epoch");
  obs_commit_time_ = &m->gauge("mvcom_pipeline_commit_time_seconds",
                               "Commit instant of the latest final block");
  if (config_.account_mode) {
    obs_xshard_intra_ = &m->counter("mvcom_xshard_txs_total",
                                    "Account TXs by x-shard classification",
                                    {{"class", "intra"}});
    obs_xshard_cross_ = &m->counter("mvcom_xshard_txs_total",
                                    "Account TXs by x-shard classification",
                                    {{"class", "cross"}});
    obs_xshard_deferred_ = &m->counter("mvcom_xshard_txs_total",
                                       "Account TXs by x-shard classification",
                                       {{"class", "deferred"}});
  }
}

EpochPipeline::FormedEpoch EpochPipeline::form_epoch(std::size_t epoch) const {
  if (config_.account_mode) return form_epoch_accounts(epoch);
  FormedEpoch out;
  out.epoch = epoch;
  out.window_end =
      trace_start_ + static_cast<double>(epoch + 1) * window_;
  const double window_begin =
      trace_start_ + static_cast<double>(epoch) * window_;

  // The trace is btime-sorted, so the epoch window is a contiguous slice —
  // found by binary search, not a shared cursor, which is what lets stage A
  // run for any epoch independently of every other.
  const auto& blocks = trace_->blocks;
  const auto by_btime = [](const txn::BlockRecord& b, double t) {
    return b.btime < t;
  };
  const auto first =
      epoch == 0 ? blocks.begin()
                 : std::lower_bound(blocks.begin(), blocks.end(), window_begin,
                                    by_btime);
  const auto last = std::lower_bound(blocks.begin(), blocks.end(),
                                     out.window_end, by_btime);

  // Deal fresh blocks round-robin over this epoch's member committees.
  std::vector<PendingShard> dealt(config_.committees);
  std::size_t position = 0;
  for (auto it = first; it != last; ++it, ++position) {
    dealt[position % config_.committees].block_indices.push_back(
        static_cast<std::size_t>(it - blocks.begin()));
  }

  Rng rng = Rng::stream(config_.seed,
                        stream_index(epoch, kFormationSlot));
  txn::WorkloadConfig wc;
  wc.num_committees = config_.committees;
  const std::string randomness = epoch_randomness(config_.seed, epoch);

  out.formation_digest = kDigestBasis;
  for (std::size_t c = 0; c < dealt.size(); ++c) {
    PendingShard& s = dealt[c];
    if (s.block_indices.empty()) continue;
    // Committees form as soon as the window closes; submission is absolute
    // so later carries rebase exactly, however far stage 4 overran.
    s.submit_time = txn::sample_submit_instant(rng, wc, out.window_end);
    s.id = static_cast<std::uint32_t>(epoch * config_.committees + c);
    s.txs = 0;
    crypto::Sha256 h;
    h.update("shard|");
    h.update(randomness);
    for (const std::size_t b : s.block_indices) {
      s.txs += blocks[b].tx_count;
      h.update("|");
      h.update(blocks[b].bhash);
    }
    s.root = h.finalize();

    std::uint64_t nonce = 0;
    if (config_.pow_grind_bits > 0) {
      // Real PoW grinding through the cached midstate — stage A becomes
      // genuinely CPU-bound, and the winning nonce witnesses the work in
      // the epoch digest. The difficulty is a model knob, so a bounded
      // give-up keeps the pipeline deterministic either way.
      const auto target =
          crypto::PowTarget::from_difficulty_bits(config_.pow_grind_bits);
      const std::uint64_t budget =
          64 * (std::uint64_t{1} << std::min(config_.pow_grind_bits, 24));
      const auto solution =
          crypto::solve(randomness, "committee-" + std::to_string(s.id),
                        target, budget);
      if (solution) nonce = solution->nonce + 1;  // +1: distinguish "none"
    }
    out.formation_digest = fnv1a_mix(out.formation_digest, s.id);
    out.formation_digest = fnv1a_mix(out.formation_digest, s.txs);
    out.formation_digest =
        fnv1a_mix(out.formation_digest, bits_of(s.submit_time));
    out.formation_digest = fnv1a_mix(out.formation_digest, nonce);
    out.shards.push_back(std::move(s));
  }
  return out;
}

EpochPipeline::FormedEpoch EpochPipeline::form_epoch_accounts(
    std::size_t epoch) const {
  FormedEpoch out;
  out.epoch = epoch;
  out.window_end = trace_start_ + static_cast<double>(epoch + 1) * window_;

  // Per-epoch account traffic through the x-shard assembler + scheduler —
  // all keyed streams, so this stage stays a pure function of (seed, epoch)
  // and the pipeline's overlap determinism contract holds unchanged.
  const txn::AccountEpoch traffic =
      account_gen_->epoch_keyed(config_.seed, epoch);
  const txn::XShardEpoch xse =
      txn::run_epoch(traffic, config_.xshard, config_.seed);
  out.xshard_intra = xse.outcome.intra_txs;
  out.xshard_cross = xse.outcome.cross_txs;
  out.xshard_deferred = xse.outcome.deferred_txs;

  // Σ committed-TX timestamps per committee, for commit-time age accounting.
  std::vector<double> ts_sum(config_.committees, 0.0);
  for (std::size_t t = 0; t < traffic.txs.size(); ++t) {
    const txn::TxOutcome& o = xse.outcome.tx_outcomes[t];
    if (o.cls != txn::TxClass::kDeferred) {
      ts_sum[o.shard] += traffic.txs[t].timestamp;
    }
  }

  Rng rng = Rng::stream(config_.seed, stream_index(epoch, kFormationSlot));
  txn::WorkloadConfig wc;
  wc.mode = txn::WorkloadMode::kAccountModel;
  wc.num_committees = config_.committees;
  const std::string randomness = epoch_randomness(config_.seed, epoch);

  out.formation_digest = kDigestBasis;
  out.formation_digest =
      fnv1a_mix(out.formation_digest, xse.outcome.ledger_digest);
  for (std::size_t c = 0; c < config_.committees; ++c) {
    const txn::ShardTally& tally = xse.outcome.shards[c];
    if (tally.committed() == 0) continue;  // nothing to submit this window
    PendingShard s;
    s.id = static_cast<std::uint32_t>(epoch * config_.committees + c);
    s.txs = tally.committed();  // effective s_i: deferrals already gone
    s.ts_sum = ts_sum[c];
    s.submit_time = txn::sample_submit_instant(rng, wc, out.window_end);
    crypto::Sha256 h;
    h.update("xshard|");
    h.update(randomness);
    h.update("|" + std::to_string(c));
    h.update("|" + std::to_string(tally.committed()));
    h.update("|" + std::to_string(xse.outcome.ledger_digest));
    s.root = h.finalize();
    out.formation_digest = fnv1a_mix(out.formation_digest, s.id);
    out.formation_digest = fnv1a_mix(out.formation_digest, s.txs);
    out.formation_digest =
        fnv1a_mix(out.formation_digest, bits_of(s.submit_time));
    out.shards.push_back(std::move(s));
  }
  return out;
}

EpochReport EpochPipeline::schedule_epoch(FormedEpoch&& formed) {
  EpochReport report;
  report.epoch = formed.epoch;
  report.window_end = formed.window_end;
  report.warm_seed_utility = std::numeric_limits<double>::quiet_NaN();

  // Realized boundary: the final committee cannot start this epoch before
  // its previous block committed. Every latency below is relative to here.
  const double start = std::max(formed.window_end, prev_commit_);
  report.start = start;

  std::vector<PendingShard> shards = std::move(carried_);
  carried_.clear();
  for (PendingShard& s : formed.shards) {
    totals_.ingested_txs += s.txs;
    shards.push_back(std::move(s));
  }
  report.shards_pending = shards.size();
  report.xshard_intra_txs = formed.xshard_intra;
  report.xshard_cross_txs = formed.xshard_cross;
  report.xshard_deferred_txs = formed.xshard_deferred;
  totals_.xshard_deferred_txs += formed.xshard_deferred;

  core::Selection keep(shards.size(), 0);
  std::uint64_t se_iterations = 0;
  if (!shards.empty()) {
    std::uint64_t pending_txs = 0;
    for (const PendingShard& s : shards) pending_txs += s.txs;
    std::vector<core::Committee> committees;
    committees.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const double effective =
          std::max(0.0, shards[i].submit_time - start);
      committees.push_back({static_cast<std::uint32_t>(i), shards[i].txs,
                            effective});
    }
    const auto capacity = static_cast<std::uint64_t>(
        config_.capacity_fraction * static_cast<double>(pending_txs));
    const core::EpochInstance instance(std::move(committees), config_.alpha,
                                       capacity, config_.n_min);
    const std::uint64_t se_seed =
        Rng::stream(config_.seed, stream_index(formed.epoch, kSeSeedSlot))();
    core::SeScheduler scheduler(instance, config_.se, se_seed);
    if (config_.warm_start) {
      const core::Selection seed_sel = greedy_seed(instance);
      if (!seed_sel.empty()) {
        report.warm_seed_utility = scheduler.warm_start(seed_sel);
      }
    }
    const core::SeResult result = scheduler.run();
    se_iterations = result.iterations;
    if (result.feasible) {
      keep = result.best;
      report.feasible = true;
      report.utility = result.utility;
    }
  }
  report.se_iterations = se_iterations;

  // DDL = slowest selected submission, relative to the realized boundary.
  double ddl = 0.0;
  std::vector<crypto::Digest> selected_roots;
  std::uint64_t committed_txs = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i < keep.size() && keep[i] != 0) {
      ddl = std::max(ddl, std::max(0.0, shards[i].submit_time - start));
      selected_roots.push_back(shards[i].root);
      committed_txs += shards[i].txs;
    }
  }

  // Stage 4 — final consensus as a real discrete-event PBFT round over the
  // Merkle root of the selected shard roots. Its event-order digest is the
  // epoch's determinism witness.
  sim::Simulator des;
  const auto link = std::make_shared<net::LognormalLatency>(SimTime(0.15),
                                                            SimTime(0.05));
  net::Network network(
      des, Rng::stream(config_.seed, stream_index(formed.epoch, kFinalNetSlot)),
      link, config_.final_replicas);
  std::vector<net::NodeId> members(config_.final_replicas);
  std::iota(members.begin(), members.end(), net::NodeId{0});
  consensus::PbftCluster cluster(
      des, network, consensus::PbftConfig{},
      Rng::stream(config_.seed, stream_index(formed.epoch, kFinalPbftSlot)),
      members);
  const crypto::Digest payload = crypto::MerkleTree(selected_roots).root();
  consensus::PbftResult final_result;
  cluster.start_consensus(payload,
                          [&](const consensus::PbftResult& r) {
                            final_result = r;
                          });
  des.run();
  const double final_latency =
      final_result.committed ? final_result.latency.seconds()
                             : consensus::PbftConfig{}.horizon.seconds();
  report.des_events = des.events_executed();

  const double commit = start + ddl + final_latency;
  report.commit = commit;
  prev_commit_ = commit;

  // Per-TX age accounting for the committed shards; refused shards carry
  // forward with their absolute submission instants intact.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i < keep.size() && keep[i] != 0) {
      if (shards[i].block_indices.empty()) {
        // Account-mode shard: ages from the committed TXs' own arrival
        // instants — Σ (commit − timestamp) = txs·commit − ts_sum.
        report.total_age +=
            static_cast<double>(shards[i].txs) * commit - shards[i].ts_sum;
      } else {
        txn::ShardBlocks provenance;
        provenance.committee_id = shards[i].id;
        provenance.block_indices = shards[i].block_indices;
        const txn::AgeProfile age =
            txn::shard_age_profile(*trace_, provenance, commit);
        report.total_age += age.total_age;
      }
      ++report.shards_committed;
    } else {
      PendingShard& s = shards[i];
      s.carries += 1;
      totals_.max_shard_carries =
          std::max(totals_.max_shard_carries, s.carries);
      report.carried_txs += s.txs;
      carried_.push_back(std::move(s));
    }
  }
  report.committed_txs = committed_txs;
  totals_.committed_txs += committed_txs;
  totals_.total_age += report.total_age;

  chain_.extend(std::move(selected_roots), committed_txs, commit,
                "final-committee", epoch_randomness(config_.seed, formed.epoch));

  // Epoch digest: formation draws + DES event order + the selection itself.
  std::uint64_t digest = kDigestBasis;
  digest = fnv1a_mix(digest, formed.formation_digest);
  digest = fnv1a_mix(digest, des.order_digest());
  digest = fnv1a_mix(digest, report.des_events);
  digest = fnv1a_mix(digest, bits_of(report.utility));
  digest = fnv1a_mix(digest, bits_of(commit));
  digest = fnv1a_mix(digest, committed_txs);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] != 0) digest = fnv1a_mix(digest, i);
  }
  report.event_order_digest = digest;
  totals_.digest = fnv1a_mix(totals_.digest, digest);

  if (obs_epochs_ != nullptr) {
    obs_epochs_->inc();
    obs_committed_->add(committed_txs);
    obs_carried_->add(report.carried_txs);
    obs_utility_->set(report.utility);
    obs_commit_time_->set(commit);
  }
  if (obs_xshard_intra_ != nullptr) {
    obs_xshard_intra_->add(report.xshard_intra_txs);
    obs_xshard_cross_->add(report.xshard_cross_txs);
    obs_xshard_deferred_->add(report.xshard_deferred_txs);
  }
  if (auto* t = obs_.trace()) {
    t->complete("pipeline", "pipeline/epoch", commit - start,
                {{"epoch", static_cast<double>(report.epoch)},
                 {"utility", report.utility},
                 {"committed_txs", static_cast<double>(committed_txs)},
                 {"carried_txs", static_cast<double>(report.carried_txs)}});
  }
  return report;
}

PipelineTotals EpochPipeline::run(
    const std::function<void(const EpochReport&)>& on_epoch) {
  totals_ = PipelineTotals{};
  totals_.digest = kDigestBasis;
  carried_.clear();
  prev_commit_ = 0.0;
  chain_ = chain::RootChain();

  const std::size_t depth = std::max<std::size_t>(1, config_.overlap_depth);
  std::vector<std::optional<FormedEpoch>> formed(config_.epochs);
  std::unique_ptr<common::ThreadPool> pool;
  if (depth > 1 && config_.workers > 0) {
    pool = std::make_unique<common::ThreadPool>(config_.workers);
  }

  // Pipeline prologue: pre-form the first depth−1 epochs so every steady
  // step can pair one stage B with one lookahead stage A.
  for (std::size_t e = 0; e + 1 < depth && e < config_.epochs; ++e) {
    formed[e] = form_epoch(e);
  }

  for (std::size_t k = 0; k < config_.epochs; ++k) {
    if (stop_requested()) {
      totals_.stopped_early = true;
      break;
    }
    EpochReport report;
    if (depth == 1) {
      // Sequential reference: form-then-schedule, one epoch at a time.
      report = schedule_epoch(form_epoch(k));
    } else {
      // One software-pipelined step: {B(k), A(k+depth−1)} as a single
      // thread-pool batch. Stage A is pure and stage B is the only writer
      // of cross-epoch state, so the batch is data-race-free and the
      // results match the sequential reference bit for bit.
      const std::size_t ahead = k + depth - 1;
      const bool has_ahead = ahead < config_.epochs;
      const auto body = [&](std::size_t which) {
        if (which == 0) {
          report = schedule_epoch(std::move(*formed[k]));
        } else {
          formed[ahead] = form_epoch(ahead);
        }
      };
      const std::size_t tasks = has_ahead ? 2 : 1;
      if (pool) {
        pool->parallel_for(tasks, body);
      } else {
        for (std::size_t i = 0; i < tasks; ++i) body(i);
      }
      formed[k].reset();
    }
    ++totals_.epochs_run;
    if (on_epoch) on_epoch(report);
  }

  for (const PendingShard& s : carried_) totals_.pending_txs += s.txs;
  return totals_;
}

}  // namespace mvcom::pipeline
