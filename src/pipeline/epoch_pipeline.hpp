#pragma once
// The streaming epoch pipeline — consecutive MVCom epochs over a continuous
// transaction stream, with software-pipelined epoch overlap (DESIGN.md §13).
//
// The paper's throughput story (Eq. (2), Figs. 10–14) is about *consecutive*
// epochs: cumulative TX age only matters because the system keeps running.
// This module drives exactly that regime. Each epoch is split into two
// stages:
//
//   Stage A — formation. Window the incoming trace, deal fresh blocks to the
//     epoch's member committees, sample their two-phase (PoW formation +
//     intra-committee PBFT) completion times, optionally grind real PoW
//     midstates, and compute each shard's root digest. Stage A is a *pure
//     function* of (trace, config, epoch index): its randomness comes from
//     Rng::stream(seed, slot(e)) — per-epoch stream roots derived from
//     (seed, epoch index), never from a shared forking engine — so epoch
//     e+1's formation can run concurrently with anything without perturbing
//     a single draw.
//
//   Stage B — scheduling + final consensus. Rebase carried shards against
//     the *realized* epoch boundary (max of the nominal window edge and the
//     previous final block's commit instant), build the EpochInstance, run
//     the SE scheduler (warm-started from a greedy cross-epoch seed), decide
//     the DDL, run stage-4 final consensus as a real discrete-event PBFT
//     round, account committed per-TX ages, extend the root chain, and
//     carry the refused shards forward. Stage B mutates all cross-epoch
//     state and therefore executes strictly in epoch order.
//
// Overlap: with overlap_depth d >= 2, step k runs {B(k), A(k+d-1)} as one
// thread-pool batch — the root chain never idles waiting for formation.
// Because stage A is pure and only one stage B is in flight per batch, the
// pipelined schedule is *bitwise identical* to the sequential reference
// (overlap_depth = 1) for any worker count: same per-epoch event-order
// digests, same utilities, same committed/deferred accounting. That is the
// determinism contract the test_pipeline matrix enforces, mirroring the
// PR-5 serial-fork/ordered-merge discipline of the Elastico lanes.

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "chain/root_chain.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "mvcom/se_scheduler.hpp"
#include "obs/context.hpp"
#include "txn/trace.hpp"
#include "txn/xshard/scheduler.hpp"

namespace mvcom::obs {
class Counter;
class Gauge;
}  // namespace mvcom::obs

namespace mvcom::pipeline {

struct PipelineConfig {
  std::size_t committees = 20;     // member committees formed per epoch
  std::size_t epochs = 6;          // epoch windows spanning the trace
  /// 1 = strictly sequential (the bitwise-determinism reference);
  /// d >= 2 overlaps epoch e's stage B with epoch e+d-1's stage A.
  std::size_t overlap_depth = 1;
  /// Thread-pool workers for the overlap batch (0 = run batches inline on
  /// the calling thread; results are identical either way).
  std::size_t workers = 0;
  double alpha = 1.5;              // Eq.-(2) throughput weight
  double capacity_fraction = 0.6;  // Ĉ as a fraction of pending TXs
  std::size_t n_min = 0;           // Eq.-(3) lower bound
  core::SeParams se;               // SE scheduler knobs (threads, iterations…)
  /// Seed epoch e+1's explorers from a greedy cross-epoch selection via
  /// SeScheduler::warm_start; the reported utility can then never fall
  /// below the seed's.
  bool warm_start = true;
  /// > 0: stage A really grinds PoW midstates at this difficulty (bits of
  /// leading zeros) per committee — makes formation genuinely CPU-bound and
  /// folds the winning nonces into the epoch digest. 0 uses the calibrated
  /// latency model only.
  int pow_grind_bits = 0;
  std::size_t final_replicas = 4;  // stage-4 mini-DES committee size
  std::uint64_t seed = 1;          // root of every per-epoch Rng stream
  /// Account-model mode (DESIGN.md §15): stage A generates account-based
  /// traffic for the epoch window, runs the conflict-aware x-shard
  /// assembler + scheduler, and each committee's shard carries its
  /// *effective committed* TX count — the scheduler's deferred cross-shard
  /// legs shrink s_i before the SE scheduler ever sees it. The assembly is
  /// per-epoch pure (keyed streams, no cross-epoch state), so the stage-A
  /// purity contract — and with it bitwise determinism across overlap
  /// depths and worker counts — is preserved. `account.num_shards`,
  /// `xshard.num_shards`, window and start are overridden to match the
  /// pipeline's committees and epoch windows.
  bool account_mode = false;
  txn::AccountModelConfig account;
  txn::XShardConfig xshard;
};

/// What stage B decided for one epoch.
struct EpochReport {
  std::size_t epoch = 0;
  double window_end = 0.0;   // nominal window edge
  double start = 0.0;        // realized boundary: max(window_end, prev commit)
  double commit = 0.0;       // final-block commit instant
  bool feasible = false;     // SE found an admissible selection
  double utility = 0.0;      // Eq.-(2) utility of the committed selection
  /// Utility of the greedy warm-start seed (NaN when cold or infeasible).
  double warm_seed_utility = 0.0;
  std::size_t shards_pending = 0;    // instance size (carried + fresh)
  std::size_t shards_committed = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t carried_txs = 0;     // refused, still pending after this epoch
  double total_age = 0.0;            // Σ per-TX (commit − btime), committed
  std::uint64_t se_iterations = 0;
  std::uint64_t des_events = 0;          // stage-4 simulator events
  std::uint64_t event_order_digest = 0;  // formation + DES + selection fold
  // Account-mode only: this epoch's x-shard classification tallies.
  std::uint64_t xshard_intra_txs = 0;
  std::uint64_t xshard_cross_txs = 0;
  std::uint64_t xshard_deferred_txs = 0;  // dropped from s_i by the scheduler
};

/// Aggregates over a whole run (possibly stopped early).
struct PipelineTotals {
  std::size_t epochs_run = 0;
  bool stopped_early = false;
  std::uint64_t ingested_txs = 0;   // TXs that entered scheduling
  std::uint64_t committed_txs = 0;
  std::uint64_t pending_txs = 0;    // still carried at exit
  /// Account mode: TXs the x-shard scheduler deferred at stage A — they
  /// never reached SE scheduling (the next window brings fresh traffic).
  std::uint64_t xshard_deferred_txs = 0;
  double total_age = 0.0;
  std::size_t max_shard_carries = 0;  // most times any one shard was deferred
  std::uint64_t digest = 0;           // fold of the per-epoch digests
};

class EpochPipeline {
 public:
  /// `trace` must outlive the pipeline and be btime-sorted (the generator's
  /// postcondition).
  EpochPipeline(const txn::Trace& trace, PipelineConfig config);

  /// Attaches observability: per-epoch metrics and sim-clocked trace spans.
  void set_obs(obs::ObsContext obs);

  /// Requests a graceful stop: the current step finishes, the loop exits
  /// before the next epoch. Safe to call from another thread or a signal
  /// handler (single relaxed atomic store).
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// Also honor an external stop flag polled between epochs — `mvcom serve`
  /// points this at the atomic its SIGINT handler flips.
  void bind_external_stop(const std::atomic<bool>* flag) noexcept {
    external_stop_ = flag;
  }

  /// Drives every epoch (or until stopped). `on_epoch`, when set, fires
  /// after each epoch's stage B, in epoch order, on the driving thread.
  PipelineTotals run(
      const std::function<void(const EpochReport&)>& on_epoch = {});

  [[nodiscard]] const chain::RootChain& chain() const noexcept {
    return chain_;
  }

 private:
  /// One shard awaiting selection: fresh this epoch or carried from earlier.
  struct PendingShard {
    std::uint32_t id = 0;   // stable across carries (epoch-qualified)
    std::vector<std::size_t> block_indices;
    std::uint64_t txs = 0;
    double submit_time = 0.0;  // absolute two-phase completion instant
    crypto::Digest root{};     // shard root committed by the final block
    std::size_t carries = 0;   // number of epochs this shard was deferred
    /// Account mode (block_indices empty): Σ committed-TX timestamps, so
    /// per-TX ages at commit are txs·commit − ts_sum without re-walking the
    /// account trace.
    double ts_sum = 0.0;
  };

  /// Stage A's output: everything epoch e's scheduling needs from formation.
  struct FormedEpoch {
    std::size_t epoch = 0;
    double window_end = 0.0;
    std::vector<PendingShard> shards;      // fresh shards, committee order
    std::uint64_t formation_digest = 0;    // latency bits + PoW nonces fold
    // Account-mode classification tallies (zero in block-trace mode).
    std::uint64_t xshard_intra = 0;
    std::uint64_t xshard_cross = 0;
    std::uint64_t xshard_deferred = 0;
  };

  [[nodiscard]] FormedEpoch form_epoch(std::size_t epoch) const;
  [[nodiscard]] FormedEpoch form_epoch_accounts(std::size_t epoch) const;
  EpochReport schedule_epoch(FormedEpoch&& formed);

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed) ||
           (external_stop_ != nullptr &&
            external_stop_->load(std::memory_order_relaxed));
  }

  const txn::Trace* trace_;
  PipelineConfig config_;
  double trace_start_ = 0.0;
  double window_ = 0.0;  // nominal epoch window length
  /// Account mode: the per-epoch traffic generator (const + pure keyed
  /// epochs, so concurrent stage-A calls are safe).
  std::optional<txn::AccountTxGenerator> account_gen_;

  // Cross-epoch state — touched exclusively by stage B, in epoch order.
  std::vector<PendingShard> carried_;
  double prev_commit_ = 0.0;
  chain::RootChain chain_;
  PipelineTotals totals_;

  std::atomic<bool> stop_{false};
  const std::atomic<bool>* external_stop_ = nullptr;

  obs::ObsContext obs_;
  obs::Counter* obs_epochs_ = nullptr;
  obs::Counter* obs_committed_ = nullptr;
  obs::Counter* obs_carried_ = nullptr;
  obs::Gauge* obs_utility_ = nullptr;
  obs::Gauge* obs_commit_time_ = nullptr;
  // Account-mode conflict counters: TXs by x-shard classification.
  obs::Counter* obs_xshard_intra_ = nullptr;
  obs::Counter* obs_xshard_cross_ = nullptr;
  obs::Counter* obs_xshard_deferred_ = nullptr;
};

}  // namespace mvcom::pipeline
