#include "pipeline/serve.hpp"

#include <fstream>
#include <utility>

#include "chain/checkpoint.hpp"
#include "common/rng.hpp"
#include "obs/export.hpp"

namespace mvcom::pipeline {

ServeSession::ServeSession(ServeConfig config) : config_(std::move(config)) {}

bool ServeSession::flush_artifacts() {
  bool ok = true;
  if (!config_.metrics_out.empty()) {
    const std::string text = obs::to_prometheus_text(metrics_);
    if (obs::validate_prometheus_text(text)) {
      std::ofstream out(config_.metrics_out, std::ios::trunc);
      out << text;
      ok = ok && static_cast<bool>(out);
    } else {
      ok = false;
    }
  }
  if (!config_.metrics_csv_out.empty()) {
    obs::write_metrics_csv(metrics_, config_.metrics_csv_out);
  }
  if (!config_.trace_out.empty()) {
    const auto events = trace_.snapshot();
    const std::string json = obs::to_chrome_trace_json(events);
    if (obs::validate_json(json)) {
      std::ofstream out(config_.trace_out, std::ios::trunc);
      out << json;
      ok = ok && static_cast<bool>(out);
    } else {
      ok = false;
    }
  }
  return ok;
}

ServeSummary ServeSession::run(
    const std::function<void(const EpochReport&)>& on_epoch) {
  ServeSummary summary;
  common::Rng stream_rng(config_.stream_seed);
  const txn::Trace trace = txn::generate_trace(config_.stream, stream_rng);

  EpochPipeline pipe(trace, config_.pipeline);
  pipe.bind_external_stop(&stop_);
  pipe.set_obs(obs::ObsContext(&metrics_, &trace_));

  try {
    summary.totals = pipe.run([&](const EpochReport& report) {
      if (!config_.checkpoint_out.empty() && config_.checkpoint_every > 0 &&
          (report.epoch + 1) % config_.checkpoint_every == 0) {
        if (chain::write_checkpoint_file(pipe.chain(),
                                         config_.checkpoint_out)) {
          ++summary.checkpoints_written;
        }
      }
      if (on_epoch) on_epoch(report);
    });
  } catch (...) {
    // Even a crashed run must leave valid artifacts behind — the flush
    // validators make a truncated export indistinguishable from a clean one
    // structurally (fewer samples, same grammar).
    flush_artifacts();
    throw;
  }

  // Final checkpoint so a stopped daemon resumes from its last commit.
  if (!config_.checkpoint_out.empty()) {
    if (chain::write_checkpoint_file(pipe.chain(), config_.checkpoint_out)) {
      ++summary.checkpoints_written;
    }
  }
  summary.chain_valid = pipe.chain().validate_full();
  summary.artifacts_valid = flush_artifacts();
  return summary;
}

}  // namespace mvcom::pipeline
