#pragma once
// ServeSession — the long-running "daemon mode" harness around the streaming
// epoch pipeline: synthesizes (or accepts) an ingest trace, attaches
// observability, writes periodic root-chain checkpoints, and — critically —
// flushes every exporter through a scope-exit guard, so a SIGINT, a thrown
// exception, or an early stop still leaves *valid* Prometheus / CSV /
// Chrome-trace artifacts on disk (the strict self-check validators run on
// every export and their verdict is reported in the summary).

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/epoch_pipeline.hpp"
#include "txn/trace_generator.hpp"

namespace mvcom::pipeline {

struct ServeConfig {
  PipelineConfig pipeline;
  /// The synthetic ingest stream (ignored when an external trace is given).
  txn::TraceGeneratorConfig stream;
  std::uint64_t stream_seed = 2016;

  /// Export destinations; empty string skips that exporter.
  std::string metrics_out;      // Prometheus text exposition
  std::string metrics_csv_out;  // CSV snapshot
  std::string trace_out;        // Chrome trace-event JSON
  std::string checkpoint_out;   // root-chain checkpoint
  /// Write a checkpoint every N committed epochs (0 = only the final one).
  std::size_t checkpoint_every = 1;
};

struct ServeSummary {
  PipelineTotals totals;
  std::size_t checkpoints_written = 0;
  /// True when every requested artifact was written AND passed its strict
  /// validator — including on a truncated (stopped-early) run.
  bool artifacts_valid = false;
  bool chain_valid = false;  // RootChain::validate_full() at exit
};

class ServeSession {
 public:
  explicit ServeSession(ServeConfig config);

  /// Runs the stream to completion or until request_stop(). Exporters are
  /// flushed on every exit path.
  ServeSummary run(
      const std::function<void(const EpochReport&)>& on_epoch = {});

  /// Async-signal-safe stop: one lock-free atomic store. The pipeline polls
  /// it between epochs.
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

 private:
  /// Writes + validates every configured artifact; returns overall verdict.
  bool flush_artifacts();

  ServeConfig config_;
  std::atomic<bool> stop_{false};
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder trace_;
};

}  // namespace mvcom::pipeline
