#pragma once
// ProcessFabric — the coordinator side of the multi-process shard fabric
// (DESIGN.md §17).
//
// The fabric reuses `ElasticoNetwork::run_epoch`'s determinism contract one
// level up: the coordinator (running stages 1, 2-closed-form, 4 and 5)
// draws every lane's RNG seeds serially in committee order BEFORE any
// dispatch, ships each worker its committees (committee_id mod workers) as
// one binary TaskBatch frame, and merges the returned LaneResults back in
// committee order. Workers share nothing — no memory, no RNG, no clock —
// so a 2-process epoch is bitwise-identical to the in-process lane pool,
// `event_order_digest` included.
//
// Crash recovery is replay, not checkpointing: lanes are pure functions of
// their task, so when a worker dies (EOF on its pipe, or an epoch
// timeout), the coordinator reaps it, forks a replacement, resends the SAME
// TaskBatch, and the replacement reproduces the dead worker's results
// exactly. `inject_kill` schedules a deliberate SIGKILL after dispatch of a
// chosen epoch — the chaos-test hook proving recovery preserves digests.
//
// Fork discipline: workers are forked WITHOUT exec, so the coordinator
// must be effectively single-threaded at spawn time (run_epoch joins its
// lane pool before returning, and the fabric replaces the pool anyway).
// Children close every inherited fabric descriptor except their own pipe —
// otherwise a sibling's death would never surface as EOF.

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "fabric/transport.hpp"
#include "obs/context.hpp"
#include "sharding/elastico.hpp"

namespace mvcom::fabric {

struct FabricConfig {
  /// Worker processes. Committee c runs on worker (c % workers).
  std::size_t workers = 2;
  /// Deadline for one worker's epoch reply; past it the worker is declared
  /// dead and its batch replayed on a fresh fork.
  int epoch_timeout_ms = 120000;
  /// Replacement-fork budget across the fabric's lifetime; exceeding it
  /// throws (a worker crashing deterministically would loop forever).
  std::size_t max_respawns = 16;
  /// When non-empty, every worker re-exports its private registry to
  /// `<metrics_dir>/fabric-worker-<index>.prom` after each epoch.
  std::string metrics_dir;
};

class ProcessFabric {
 public:
  /// Forks the worker fleet immediately; blocks until every worker says
  /// hello. `obs` receives coordinator-side fabric counters and the folded
  /// worker counter deltas.
  explicit ProcessFabric(FabricConfig config, obs::ObsContext obs = {});
  ProcessFabric(const ProcessFabric&) = delete;
  ProcessFabric& operator=(const ProcessFabric&) = delete;
  ~ProcessFabric();

  /// The LaneExecutor to install on an ElasticoNetwork: ships `tasks` to
  /// the fleet, fills `results` (1:1, by committee id). Throws only when
  /// the respawn budget is exhausted.
  void execute(std::vector<sharding::LaneTask>& tasks,
               std::vector<sharding::LaneResult>& results);

  /// Convenience adapter for ElasticoNetwork::set_lane_executor.
  [[nodiscard]] sharding::LaneExecutor executor() {
    return [this](std::vector<sharding::LaneTask>& tasks,
                  std::vector<sharding::LaneResult>& results) {
      execute(tasks, results);
    };
  }

  /// Schedules a SIGKILL of worker `worker_index` right after the dispatch
  /// of epoch `epoch` (0-based execute() call count) — deterministic chaos
  /// for the recovery tests and `mvcom fabric --kill-epoch`.
  void inject_kill(std::size_t worker_index, std::uint64_t epoch);

  /// Graceful teardown: shutdown frames, close pipes, reap children.
  /// Idempotent; the destructor calls it.
  void shutdown() noexcept;

  [[nodiscard]] std::size_t workers() const noexcept {
    return members_.size();
  }
  [[nodiscard]] std::uint64_t epochs_run() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t respawns() const noexcept { return respawns_; }

 private:
  struct Member {
    pid_t pid = -1;
    Channel channel;
    bool alive = false;
  };

  void spawn(std::size_t index);
  void reap(std::size_t index) noexcept;
  /// Sends `payload` (a complete TaskBatch body) to member `index`.
  [[nodiscard]] bool send_batch(std::size_t index,
                                std::span<const std::uint8_t> payload);
  /// Waits for member `index`'s ResultBatch for `epoch`; false = dead.
  [[nodiscard]] bool collect(std::size_t index, std::uint64_t epoch,
                             ResultBatch& reply);
  void fold_obs(const ResultBatch& reply);
  [[nodiscard]] bool await_hello(std::size_t index);

  FabricConfig config_;
  obs::ObsContext obs_;
  std::vector<Member> members_;
  std::vector<std::pair<std::size_t, std::uint64_t>> pending_kills_;
  std::uint64_t epoch_ = 0;
  std::uint64_t respawns_ = 0;
};

}  // namespace mvcom::fabric
