#pragma once
// Binary wire format for the process fabric (DESIGN.md §17).
//
// Everything that crosses a coordinator↔worker pipe is a *frame*:
//
//   offset  size  field
//   0       4     payload length (u32, little-endian) — excludes the header
//   4       1     frame type (FrameType)
//   5       8     FNV-1a checksum of the payload bytes (u64, little-endian)
//   13      n     payload
//
// The payload encoding is a flat little-endian scalar stream: no field tags,
// no varints, no text. Strings and vectors are length-prefixed (u32).
// Doubles cross as their IEEE-754 bit patterns (bit_cast), so a decoded
// LaneTask is *bitwise*-equal to the encoded one — which is exactly what the
// determinism contract needs: a lane must not be able to tell whether its
// task took a pipe to get to it.
//
// Decoding is zero-copy at the framing layer: a Reader walks a span over the
// receive buffer; only leaf strings/vectors copy out (they outlive the
// buffer). Every read is bounds-checked and every decoder returns false on
// the first violation — truncation at ANY byte offset, a corrupted
// checksum, or an oversized length prefix must never crash or over-read
// (test_fabric fuzzes all three).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sharding/elastico.hpp"
#include "sharding/lane.hpp"
#include "txn/workload.hpp"

namespace mvcom::fabric {

/// Frame header: 4 (length) + 1 (type) + 8 (checksum) bytes.
inline constexpr std::size_t kFrameHeaderBytes = 13;
/// Upper bound on a frame payload. A length prefix beyond this is treated
/// as corruption (it would otherwise let one flipped bit demand a 4 GiB
/// allocation).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,        // worker → coordinator: alive, payload = worker index
  kTaskBatch = 2,    // coordinator → worker: one epoch's lane tasks
  kResultBatch = 3,  // worker → coordinator: lane results + obs deltas
  kShutdown = 4,     // coordinator → worker: drain and exit
};

/// Per-(counter, labels) increment accumulated by a worker over one epoch.
/// The coordinator folds deltas into its own registry, so fleet-wide
/// counters equal the in-process run's — including after a crash-replay,
/// because a killed worker's partial epoch is never sent.
struct CounterDelta {
  std::string name;
  std::string help;
  std::vector<std::pair<std::string, std::string>> labels;
  std::uint64_t delta = 0;
};

/// One epoch's work for one worker: the subset of lane tasks it owns.
struct TaskBatch {
  std::uint64_t epoch = 0;
  std::vector<sharding::LaneTask> tasks;
};

/// The worker's reply: results aligned 1:1 with the batch's tasks, plus the
/// epoch's counter deltas.
struct ResultBatch {
  std::uint64_t epoch = 0;
  std::vector<sharding::LaneResult> results;
  std::vector<CounterDelta> obs_deltas;
};

// --- encoding -------------------------------------------------------------

/// Appends scalars to a byte buffer (little-endian, packed). The buffer is
/// caller-owned so workers reuse one arena across epochs.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked cursor over a received payload. All take_* methods return
/// false (and leave the output untouched or partially written — callers
/// must discard on failure) once the cursor would pass the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool u8(std::uint8_t& v);
  [[nodiscard]] bool u32(std::uint32_t& v);
  [[nodiscard]] bool u64(std::uint64_t& v);
  [[nodiscard]] bool f64(double& v);
  [[nodiscard]] bool str(std::string& s);
  [[nodiscard]] bool done() const noexcept { return at_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - at_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

// Frame assembly: appends a complete frame (header + payload) to `out`.
// `payload` may alias a scratch buffer; the checksum is computed here.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload);

/// A frame parsed out of a receive buffer. `payload` points INTO the buffer
/// (zero-copy) — decode before the buffer is reused.
struct FrameView {
  FrameType type = FrameType::kHello;
  std::span<const std::uint8_t> payload;
};

enum class ParseStatus : std::uint8_t {
  kOk,          // frame extracted; *consumed advanced past it
  kNeedMore,    // buffer holds a prefix of a frame — read more bytes
  kCorrupt,     // bad length prefix, unknown type, or checksum mismatch
};

/// Attempts to parse one frame from `buf` starting at `*consumed`.
/// On kOk advances `*consumed` past the frame.
[[nodiscard]] ParseStatus parse_frame(std::span<const std::uint8_t> buf,
                                      std::size_t* consumed, FrameView* frame);

// --- payload codecs -------------------------------------------------------
// encode_* appends the payload for one frame body to `out` (no header).
// decode_* consumes the entire payload and returns false on any violation
// (truncation, trailing bytes, oversized inner length).

void encode_task(Writer& w, const sharding::LaneTask& task);
[[nodiscard]] bool decode_task(Reader& r, sharding::LaneTask& task);

void encode_result(Writer& w, const sharding::LaneResult& result);
[[nodiscard]] bool decode_result(Reader& r, sharding::LaneResult& result);

void encode_task_batch(std::vector<std::uint8_t>& out, const TaskBatch& batch);
[[nodiscard]] bool decode_task_batch(std::span<const std::uint8_t> payload,
                                     TaskBatch& batch);

void encode_result_batch(std::vector<std::uint8_t>& out,
                         const ResultBatch& batch);
[[nodiscard]] bool decode_result_batch(std::span<const std::uint8_t> payload,
                                       ResultBatch& batch);

// ShardReport / EpochOutcome codecs — the fabric CLI's binary outcome dump
// and the round-trip tests use these; the epoch loop itself ships only
// tasks and results.
void encode_reports(std::vector<std::uint8_t>& out,
                    const std::vector<txn::ShardReport>& reports);
[[nodiscard]] bool decode_reports(std::span<const std::uint8_t> payload,
                                  std::vector<txn::ShardReport>& reports);

void encode_epoch_outcome(std::vector<std::uint8_t>& out,
                          const sharding::EpochOutcome& outcome);
[[nodiscard]] bool decode_epoch_outcome(std::span<const std::uint8_t> payload,
                                        sharding::EpochOutcome& outcome);

}  // namespace mvcom::fabric
