#include "fabric/wire.hpp"

#include <bit>
#include <cstring>

#include "common/fnv.hpp"

namespace mvcom::fabric {

using common::SimTime;

namespace {

// Inner length prefixes (strings, vectors) share the frame-level cap: a
// single flipped length byte must fail decode, not provoke a giant reserve.
constexpr std::uint32_t kMaxInnerLength = kMaxFramePayload;

std::uint64_t payload_checksum(std::span<const std::uint8_t> payload) {
  return common::fnv1a_bytes(common::kFnv1aBasis, payload);
}

}  // namespace

// --- Writer ---------------------------------------------------------------

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

// --- Reader ---------------------------------------------------------------

bool Reader::u8(std::uint8_t& v) {
  if (at_ + 1 > data_.size()) return false;
  v = data_[at_++];
  return true;
}

bool Reader::u32(std::uint32_t& v) {
  if (at_ + 4 > data_.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[at_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  at_ += 4;
  return true;
}

bool Reader::u64(std::uint64_t& v) {
  if (at_ + 8 > data_.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[at_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  at_ += 8;
  return true;
}

bool Reader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

bool Reader::str(std::string& s) {
  std::uint32_t n = 0;
  if (!u32(n)) return false;
  if (n > kMaxInnerLength || at_ + n > data_.size()) return false;
  s.assign(reinterpret_cast<const char*>(data_.data() + at_), n);
  at_ += n;
  return true;
}

// --- framing --------------------------------------------------------------

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(payload_checksum(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

ParseStatus parse_frame(std::span<const std::uint8_t> buf,
                        std::size_t* consumed, FrameView* frame) {
  const std::span<const std::uint8_t> rest = buf.subspan(*consumed);
  if (rest.size() < kFrameHeaderBytes) return ParseStatus::kNeedMore;
  Reader header(rest.first(kFrameHeaderBytes));
  std::uint32_t length = 0;
  std::uint8_t type = 0;
  std::uint64_t checksum = 0;
  // The header reads cannot fail (span is exactly kFrameHeaderBytes).
  (void)header.u32(length);
  (void)header.u8(type);
  (void)header.u64(checksum);
  if (length > kMaxFramePayload) return ParseStatus::kCorrupt;
  if (type != static_cast<std::uint8_t>(FrameType::kHello) &&
      type != static_cast<std::uint8_t>(FrameType::kTaskBatch) &&
      type != static_cast<std::uint8_t>(FrameType::kResultBatch) &&
      type != static_cast<std::uint8_t>(FrameType::kShutdown)) {
    return ParseStatus::kCorrupt;
  }
  if (rest.size() < kFrameHeaderBytes + length) return ParseStatus::kNeedMore;
  const std::span<const std::uint8_t> payload =
      rest.subspan(kFrameHeaderBytes, length);
  if (payload_checksum(payload) != checksum) return ParseStatus::kCorrupt;
  frame->type = static_cast<FrameType>(type);
  frame->payload = payload;
  *consumed += kFrameHeaderBytes + length;
  return ParseStatus::kOk;
}

// --- LaneTask / LaneResult ------------------------------------------------

void encode_task(Writer& w, const sharding::LaneTask& task) {
  w.u32(task.committee_id);
  w.u32(task.member_committees);
  w.u8(task.armed ? 1 : 0);
  w.u8(task.message_level_overlay ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(task.kernel_mode));
  w.u32(task.num_nodes);
  w.f64(task.link_latency_mean.seconds());
  w.f64(task.message_loss_probability);
  w.f64(task.overlay_identity_processing.seconds());
  w.f64(task.pbft.view_change_timeout.seconds());
  w.f64(task.pbft.verification_mean.seconds());
  w.f64(task.pbft.horizon.seconds());
  w.str(task.randomness);
  w.u64(task.overlay_seed);
  w.u64(task.net_seed);
  w.u64(task.cluster_seed);
  w.f64(task.formation.seconds());
  w.u64(task.shard_txs);
  w.u32(static_cast<std::uint32_t>(task.participants.size()));
  for (const net::NodeId node : task.participants) w.u32(node);
  w.u32(static_cast<std::uint32_t>(task.ready_at.size()));
  for (const SimTime t : task.ready_at) w.f64(t.seconds());
  w.u32(static_cast<std::uint32_t>(task.verify_speeds.size()));
  for (const double v : task.verify_speeds) w.f64(v);
  w.u32(static_cast<std::uint32_t>(task.failed.size()));
  for (const std::uint8_t f : task.failed) w.u8(f);
}

bool decode_task(Reader& r, sharding::LaneTask& task) {
  std::uint8_t armed = 0;
  std::uint8_t overlay = 0;
  std::uint8_t kernel = 0;
  double link_mean = 0.0;
  double identity = 0.0;
  double view_change = 0.0;
  double verification = 0.0;
  double horizon = 0.0;
  double formation = 0.0;
  if (!r.u32(task.committee_id) || !r.u32(task.member_committees) ||
      !r.u8(armed) || !r.u8(overlay) || !r.u8(kernel) ||
      !r.u32(task.num_nodes) || !r.f64(link_mean) ||
      !r.f64(task.message_loss_probability) || !r.f64(identity) ||
      !r.f64(view_change) || !r.f64(verification) || !r.f64(horizon) ||
      !r.str(task.randomness) || !r.u64(task.overlay_seed) ||
      !r.u64(task.net_seed) || !r.u64(task.cluster_seed) ||
      !r.f64(formation) || !r.u64(task.shard_txs)) {
    return false;
  }
  task.armed = armed != 0;
  task.message_level_overlay = overlay != 0;
  task.kernel_mode = static_cast<sim::KernelMode>(kernel);
  task.link_latency_mean = SimTime(link_mean);
  task.overlay_identity_processing = SimTime(identity);
  task.pbft.view_change_timeout = SimTime(view_change);
  task.pbft.verification_mean = SimTime(verification);
  task.pbft.horizon = SimTime(horizon);
  task.formation = SimTime(formation);

  std::uint32_t n = 0;
  if (!r.u32(n) || n > kMaxInnerLength || r.remaining() < n * 4u) return false;
  task.participants.clear();
  task.participants.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    net::NodeId node = 0;
    if (!r.u32(node)) return false;
    task.participants.push_back(node);
  }
  if (!r.u32(n) || n > kMaxInnerLength || r.remaining() < n * 8u) return false;
  task.ready_at.clear();
  task.ready_at.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double t = 0.0;
    if (!r.f64(t)) return false;
    task.ready_at.push_back(SimTime(t));
  }
  if (!r.u32(n) || n > kMaxInnerLength || r.remaining() < n * 8u) return false;
  task.verify_speeds.clear();
  task.verify_speeds.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double v = 0.0;
    if (!r.f64(v)) return false;
    task.verify_speeds.push_back(v);
  }
  if (!r.u32(n) || n > kMaxInnerLength || r.remaining() < n) return false;
  task.failed.clear();
  task.failed.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t f = 0;
    if (!r.u8(f)) return false;
    task.failed.push_back(f);
  }
  return true;
}

void encode_result(Writer& w, const sharding::LaneResult& result) {
  w.u32(result.committee_id);
  w.u8(result.formed ? 1 : 0);
  w.u8(result.committed ? 1 : 0);
  w.f64(result.formation.seconds());
  w.f64(result.consensus_latency.seconds());
  w.u64(result.view_changes);
  w.u64(result.order_digest);
  w.u64(result.events_executed);
}

bool decode_result(Reader& r, sharding::LaneResult& result) {
  std::uint8_t formed = 0;
  std::uint8_t committed = 0;
  double formation = 0.0;
  double latency = 0.0;
  if (!r.u32(result.committee_id) || !r.u8(formed) || !r.u8(committed) ||
      !r.f64(formation) || !r.f64(latency) || !r.u64(result.view_changes) ||
      !r.u64(result.order_digest) || !r.u64(result.events_executed)) {
    return false;
  }
  result.formed = formed != 0;
  result.committed = committed != 0;
  result.formation = SimTime(formation);
  result.consensus_latency = SimTime(latency);
  return true;
}

// --- batches --------------------------------------------------------------

void encode_task_batch(std::vector<std::uint8_t>& out, const TaskBatch& batch) {
  Writer w(out);
  w.u64(batch.epoch);
  w.u32(static_cast<std::uint32_t>(batch.tasks.size()));
  for (const sharding::LaneTask& task : batch.tasks) encode_task(w, task);
}

bool decode_task_batch(std::span<const std::uint8_t> payload,
                       TaskBatch& batch) {
  Reader r(payload);
  std::uint32_t n = 0;
  if (!r.u64(batch.epoch) || !r.u32(n) || n > kMaxInnerLength) return false;
  batch.tasks.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!decode_task(r, batch.tasks[i])) return false;
  }
  return r.done();
}

void encode_result_batch(std::vector<std::uint8_t>& out,
                         const ResultBatch& batch) {
  Writer w(out);
  w.u64(batch.epoch);
  w.u32(static_cast<std::uint32_t>(batch.results.size()));
  for (const sharding::LaneResult& result : batch.results) {
    encode_result(w, result);
  }
  w.u32(static_cast<std::uint32_t>(batch.obs_deltas.size()));
  for (const CounterDelta& d : batch.obs_deltas) {
    w.str(d.name);
    w.str(d.help);
    w.u32(static_cast<std::uint32_t>(d.labels.size()));
    for (const auto& [key, value] : d.labels) {
      w.str(key);
      w.str(value);
    }
    w.u64(d.delta);
  }
}

bool decode_result_batch(std::span<const std::uint8_t> payload,
                         ResultBatch& batch) {
  Reader r(payload);
  std::uint32_t n = 0;
  if (!r.u64(batch.epoch) || !r.u32(n) || n > kMaxInnerLength) return false;
  batch.results.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!decode_result(r, batch.results[i])) return false;
  }
  if (!r.u32(n) || n > kMaxInnerLength) return false;
  batch.obs_deltas.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CounterDelta& d = batch.obs_deltas[i];
    std::uint32_t labels = 0;
    if (!r.str(d.name) || !r.str(d.help) || !r.u32(labels) ||
        labels > kMaxInnerLength) {
      return false;
    }
    d.labels.resize(labels);
    for (std::uint32_t j = 0; j < labels; ++j) {
      if (!r.str(d.labels[j].first) || !r.str(d.labels[j].second)) {
        return false;
      }
    }
    if (!r.u64(d.delta)) return false;
  }
  return r.done();
}

// --- ShardReport / EpochOutcome -------------------------------------------

void encode_reports(std::vector<std::uint8_t>& out,
                    const std::vector<txn::ShardReport>& reports) {
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(reports.size()));
  for (const txn::ShardReport& report : reports) {
    w.u32(report.committee_id);
    w.u64(report.tx_count);
    w.f64(report.formation_latency);
    w.f64(report.consensus_latency);
  }
}

bool decode_reports(std::span<const std::uint8_t> payload,
                    std::vector<txn::ShardReport>& reports) {
  Reader r(payload);
  std::uint32_t n = 0;
  if (!r.u32(n) || n > kMaxInnerLength) return false;
  reports.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    txn::ShardReport& report = reports[i];
    if (!r.u32(report.committee_id) || !r.u64(report.tx_count) ||
        !r.f64(report.formation_latency) ||
        !r.f64(report.consensus_latency)) {
      return false;
    }
  }
  return r.done();
}

void encode_epoch_outcome(std::vector<std::uint8_t>& out,
                          const sharding::EpochOutcome& outcome) {
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(outcome.committees.size()));
  for (const sharding::CommitteeOutcome& co : outcome.committees) {
    w.u32(co.committee_id);
    w.u64(co.member_count);
    w.f64(co.formation_latency.seconds());
    w.f64(co.consensus_latency.seconds());
    w.u8(co.committed ? 1 : 0);
    w.u64(co.view_changes);
    w.u64(co.tx_count);
  }
  w.u32(static_cast<std::uint32_t>(outcome.selected.size()));
  for (const std::uint32_t id : outcome.selected) w.u32(id);
  w.u8(outcome.final_committed ? 1 : 0);
  w.f64(outcome.final_consensus_latency.seconds());
  w.f64(outcome.epoch_makespan.seconds());
  w.u64(outcome.final_block_txs);
  w.str(outcome.next_epoch_randomness);
  w.u64(outcome.event_order_digest);
  w.u64(outcome.events_executed);
}

bool decode_epoch_outcome(std::span<const std::uint8_t> payload,
                          sharding::EpochOutcome& outcome) {
  Reader r(payload);
  std::uint32_t n = 0;
  if (!r.u32(n) || n > kMaxInnerLength) return false;
  outcome.committees.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sharding::CommitteeOutcome& co = outcome.committees[i];
    std::uint64_t members = 0;
    double formation = 0.0;
    double latency = 0.0;
    std::uint8_t committed = 0;
    if (!r.u32(co.committee_id) || !r.u64(members) || !r.f64(formation) ||
        !r.f64(latency) || !r.u8(committed) || !r.u64(co.view_changes) ||
        !r.u64(co.tx_count)) {
      return false;
    }
    co.member_count = members;
    co.formation_latency = SimTime(formation);
    co.consensus_latency = SimTime(latency);
    co.committed = committed != 0;
  }
  if (!r.u32(n) || n > kMaxInnerLength || r.remaining() < n * 4u) return false;
  outcome.selected.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!r.u32(outcome.selected[i])) return false;
  }
  std::uint8_t final_committed = 0;
  double final_latency = 0.0;
  double makespan = 0.0;
  if (!r.u8(final_committed) || !r.f64(final_latency) || !r.f64(makespan) ||
      !r.u64(outcome.final_block_txs) || !r.str(outcome.next_epoch_randomness) ||
      !r.u64(outcome.event_order_digest) || !r.u64(outcome.events_executed)) {
    return false;
  }
  outcome.final_committed = final_committed != 0;
  outcome.final_consensus_latency = SimTime(final_latency);
  outcome.epoch_makespan = SimTime(makespan);
  return r.done();
}

}  // namespace mvcom::fabric
