#include "fabric/worker.hpp"

#include <map>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sharding/lane.hpp"

namespace mvcom::fabric {

namespace {

/// Stable identity of a counter family instance for delta tracking.
std::string counter_key(const obs::MetricsRegistry::MetricSnapshot& snap) {
  std::string key = snap.name;
  for (const obs::Label& label : snap.labels) {
    key += '\0';
    key += label.key;
    key += '\0';
    key += label.value;
  }
  return key;
}

}  // namespace

int run_worker_loop(Channel& channel, const WorkerOptions& options) noexcept {
  obs::MetricsRegistry registry;
  const obs::ObsContext obs(&registry, nullptr);
  // Last-sent absolute value per counter — deltas are "what this epoch
  // added", so the coordinator's fold equals one shared registry's totals.
  std::map<std::string, std::uint64_t> sent;

  // Arenas reused across epochs.
  TaskBatch batch;
  ResultBatch reply;
  std::vector<std::uint8_t> payload;

  // Announce readiness; the coordinator blocks on this before dispatching.
  {
    payload.clear();
    Writer w(payload);
    w.u32(options.index);
    channel.queue_frame(FrameType::kHello, payload);
    if (!channel.flush()) return 1;
  }

  for (;;) {
    FrameView frame;
    const RecvStatus status = channel.recv_frame(&frame, /*timeout_ms=*/-1);
    if (status == RecvStatus::kEof) return 0;  // coordinator went away
    if (status != RecvStatus::kOk) return 1;
    if (frame.type == FrameType::kShutdown) return 0;
    if (frame.type != FrameType::kTaskBatch) return 1;
    if (!decode_task_batch(frame.payload, batch)) return 1;

    reply.epoch = batch.epoch;
    reply.results.resize(batch.tasks.size());
    for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
      // Serial on purpose: the worker process IS the parallelism unit.
      reply.results[i] = sharding::run_committee_lane(batch.tasks[i], obs);
    }
    if (auto* m = obs.metrics()) {
      m->counter("fabric_worker_epochs_total",
                 "Epochs this worker processed",
                 {{"worker", std::to_string(options.index)}})
          .inc();
      m->counter("fabric_worker_lanes_total",
                 "Committee lanes this worker ran",
                 {{"worker", std::to_string(options.index)}})
          .add(batch.tasks.size());
    }

    // Counter deltas since the last reply. Gauges/histograms stay local
    // (they are not additive across processes); the per-process Prometheus
    // file below still exposes them.
    reply.obs_deltas.clear();
    for (const auto& snap : registry.snapshot()) {
      if (snap.type != obs::MetricsRegistry::Type::kCounter) continue;
      const auto value = static_cast<std::uint64_t>(snap.value);
      std::uint64_t& last = sent[counter_key(snap)];
      if (value == last) continue;
      CounterDelta delta;
      delta.name = snap.name;
      delta.help = snap.help;
      for (const obs::Label& label : snap.labels) {
        delta.labels.emplace_back(label.key, label.value);
      }
      delta.delta = value - last;
      last = value;
      reply.obs_deltas.push_back(std::move(delta));
    }

    payload.clear();
    encode_result_batch(payload, reply);
    channel.queue_frame(FrameType::kResultBatch, payload);
    if (!channel.flush()) return 0;  // coordinator died mid-epoch

    if (!options.metrics_path.empty()) {
      obs::write_prometheus_text(registry, options.metrics_path);
    }
  }
}

}  // namespace mvcom::fabric
