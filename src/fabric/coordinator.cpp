#include "fabric/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fabric/worker.hpp"
#include "obs/metrics.hpp"

namespace mvcom::fabric {

namespace {
constexpr int kHelloTimeoutMs = 30000;
}

ProcessFabric::ProcessFabric(FabricConfig config, obs::ObsContext obs)
    : config_(config), obs_(obs) {
  if (config_.workers == 0) {
    throw std::invalid_argument("ProcessFabric: workers >= 1");
  }
  members_.resize(config_.workers);
  for (std::size_t i = 0; i < members_.size(); ++i) spawn(i);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!await_hello(i)) {
      shutdown();
      throw std::runtime_error("ProcessFabric: worker failed to start");
    }
  }
}

ProcessFabric::~ProcessFabric() { shutdown(); }

void ProcessFabric::spawn(std::size_t index) {
  auto [coordinator_end, worker_end] = make_channel_pair();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("ProcessFabric: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Drop every inherited fabric descriptor except our own pipe:
    // holding a sibling's worker-end open would mask its death (the
    // coordinator would never see EOF).
    coordinator_end.close();
    for (Member& member : members_) member.channel.close();
    WorkerOptions options;
    options.index = static_cast<std::uint32_t>(index);
    if (!config_.metrics_dir.empty()) {
      options.metrics_path = config_.metrics_dir + "/fabric-worker-" +
                             std::to_string(index) + ".prom";
    }
    const int rc = run_worker_loop(worker_end, options);
    // _exit, not exit: the child shares the parent's stdio buffers and
    // atexit registrations; flushing them here would duplicate output.
    ::_exit(rc);
  }
  worker_end.close();
  members_[index].pid = pid;
  members_[index].channel = std::move(coordinator_end);
  members_[index].alive = true;
}

bool ProcessFabric::await_hello(std::size_t index) {
  FrameView frame;
  const RecvStatus status =
      members_[index].channel.recv_frame(&frame, kHelloTimeoutMs);
  return status == RecvStatus::kOk && frame.type == FrameType::kHello;
}

void ProcessFabric::reap(std::size_t index) noexcept {
  Member& member = members_[index];
  member.channel.close();
  if (member.pid > 0) {
    ::kill(member.pid, SIGKILL);  // no-op if already gone
    int wstatus = 0;
    while (::waitpid(member.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    member.pid = -1;
  }
  member.alive = false;
}

void ProcessFabric::inject_kill(std::size_t worker_index,
                                std::uint64_t epoch) {
  if (worker_index >= members_.size()) {
    throw std::invalid_argument("ProcessFabric::inject_kill: bad worker");
  }
  pending_kills_.emplace_back(worker_index, epoch);
}

bool ProcessFabric::send_batch(std::size_t index,
                               std::span<const std::uint8_t> payload) {
  Member& member = members_[index];
  if (!member.alive) return false;
  member.channel.queue_frame(FrameType::kTaskBatch, payload);
  return member.channel.flush();
}

bool ProcessFabric::collect(std::size_t index, std::uint64_t epoch,
                            ResultBatch& reply) {
  Member& member = members_[index];
  if (!member.alive) return false;
  FrameView frame;
  const RecvStatus status =
      member.channel.recv_frame(&frame, config_.epoch_timeout_ms);
  if (status != RecvStatus::kOk || frame.type != FrameType::kResultBatch) {
    return false;
  }
  if (!decode_result_batch(frame.payload, reply)) return false;
  return reply.epoch == epoch;
}

void ProcessFabric::fold_obs(const ResultBatch& reply) {
  auto* metrics = obs_.metrics();
  if (metrics == nullptr) return;
  for (const CounterDelta& delta : reply.obs_deltas) {
    std::vector<obs::Label> labels;
    labels.reserve(delta.labels.size());
    for (const auto& [key, value] : delta.labels) {
      labels.push_back({key, value});
    }
    metrics->counter(delta.name, delta.help, std::move(labels))
        .add(delta.delta);
  }
}

void ProcessFabric::execute(std::vector<sharding::LaneTask>& tasks,
                            std::vector<sharding::LaneResult>& results) {
  const std::uint64_t epoch = epoch_++;
  const std::size_t fleet = members_.size();
  results.resize(tasks.size());

  // Partition: worker w owns every ARMED committee with id % fleet == w.
  // Unarmed lanes are no-ops — their default LaneResult (digest 0) is
  // synthesized here instead of burning wire bytes, exactly matching what
  // run_committee_lane returns for them.
  std::vector<TaskBatch> batches(fleet);
  std::vector<std::vector<std::uint8_t>> payloads(fleet);
  for (std::size_t c = 0; c < tasks.size(); ++c) {
    results[c] = sharding::LaneResult{};
    results[c].committee_id = tasks[c].committee_id;
    if (!tasks[c].armed) continue;
    batches[tasks[c].committee_id % fleet].tasks.push_back(tasks[c]);
  }
  for (std::size_t w = 0; w < fleet; ++w) {
    batches[w].epoch = epoch;
    encode_task_batch(payloads[w], batches[w]);
  }

  // Dispatch the whole epoch — one flush per worker — before collecting
  // anything, so the fleet computes concurrently.
  std::vector<std::uint8_t> dead(fleet, 0);
  for (std::size_t w = 0; w < fleet; ++w) {
    if (!send_batch(w, payloads[w])) dead[w] = 1;
  }

  // Deliberate chaos, armed by inject_kill: SIGKILL after dispatch, so the
  // victim dies holding (or mid-way through) this epoch's batch.
  for (auto it = pending_kills_.begin(); it != pending_kills_.end();) {
    if (it->second == epoch) {
      const std::size_t victim = it->first;
      if (members_[victim].alive && members_[victim].pid > 0) {
        ::kill(members_[victim].pid, SIGKILL);
      }
      it = pending_kills_.erase(it);
    } else {
      ++it;
    }
  }

  ResultBatch reply;
  for (std::size_t w = 0; w < fleet; ++w) {
    bool ok = dead[w] == 0 && collect(w, epoch, reply);
    while (!ok) {
      // Crash path: reap, respawn, replay the identical batch. Lanes are
      // pure in their task, so the replacement's results are bitwise-equal
      // to what the dead worker would have sent.
      if (respawns_ >= config_.max_respawns) {
        throw std::runtime_error(
            "ProcessFabric: worker respawn budget exhausted");
      }
      reap(w);
      spawn(w);
      ++respawns_;
      if (auto* m = obs_.metrics()) {
        m->counter("fabric_worker_respawns_total",
                   "Workers re-forked after death or timeout")
            .inc();
      }
      ok = await_hello(w) && send_batch(w, payloads[w]) &&
           collect(w, epoch, reply);
    }
    if (reply.results.size() != batches[w].tasks.size()) {
      throw std::runtime_error("ProcessFabric: result batch misaligned");
    }
    for (const sharding::LaneResult& result : reply.results) {
      if (result.committee_id >= results.size()) {
        throw std::runtime_error("ProcessFabric: result for unknown lane");
      }
      results[result.committee_id] = result;
    }
    fold_obs(reply);
  }
  if (auto* m = obs_.metrics()) {
    m->counter("fabric_epochs_total", "Epochs executed on the fabric").inc();
  }
}

void ProcessFabric::shutdown() noexcept {
  for (Member& member : members_) {
    if (!member.alive) continue;
    member.channel.queue_frame(FrameType::kShutdown, {});
    (void)member.channel.flush();
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].alive || members_[i].pid > 0) reap(i);
  }
}

}  // namespace mvcom::fabric
