#include "fabric/transport.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mvcom::fabric {

Channel::Channel(Channel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      tx_(std::move(other.tx_)),
      rx_(std::move(other.rx_)),
      rx_consumed_(std::exchange(other.rx_consumed_, 0)) {}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    tx_ = std::move(other.tx_);
    rx_ = std::move(other.rx_);
    rx_consumed_ = std::exchange(other.rx_consumed_, 0);
  }
  return *this;
}

Channel::~Channel() { close(); }

void Channel::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::queue_frame(FrameType type,
                          std::span<const std::uint8_t> payload) {
  append_frame(tx_, type, payload);
}

bool Channel::flush() {
  std::size_t sent = 0;
  while (sent < tx_.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE here, not SIGPIPE —
    // the coordinator treats it as worker death and replays.
    const ssize_t n = ::send(fd_, tx_.data() + sent, tx_.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      tx_.clear();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  tx_.clear();
  return true;
}

void Channel::compact() {
  // Drop fully-parsed bytes once they dominate the buffer; keeps the rx
  // arena bounded without a memmove per frame.
  if (rx_consumed_ > 0 &&
      (rx_consumed_ == rx_.size() || rx_consumed_ >= 4096)) {
    rx_.erase(rx_.begin(),
              rx_.begin() + static_cast<std::ptrdiff_t>(rx_consumed_));
    rx_consumed_ = 0;
  }
}

RecvStatus Channel::recv_frame(FrameView* frame, int timeout_ms) {
  for (;;) {
    // A complete frame may already be buffered from a previous gulp.
    const ParseStatus parsed =
        parse_frame(std::span<const std::uint8_t>(rx_), &rx_consumed_, frame);
    if (parsed == ParseStatus::kOk) return RecvStatus::kOk;
    if (parsed == ParseStatus::kCorrupt) return RecvStatus::kCorrupt;

    compact();
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (ready == 0) return RecvStatus::kTimeout;

    std::uint8_t chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (n == 0) return RecvStatus::kEof;
    rx_.insert(rx_.end(), chunk, chunk + n);
  }
}

std::pair<Channel, Channel> make_channel_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error(std::string("fabric: socketpair failed: ") +
                             std::strerror(errno));
  }
  return {Channel(fds[0]), Channel(fds[1])};
}

}  // namespace mvcom::fabric
