#pragma once
// Worker-side half of the process fabric (DESIGN.md §17).
//
// A worker is a forked child running `run_worker_loop` on its end of the
// socketpair: receive one epoch's TaskBatch, run every lane serially with
// `run_committee_lane` (serially on purpose — the child must stay
// single-threaded so a SIGKILL'd sibling or a sanitizer build never sees a
// forked thread), reply with one ResultBatch carrying the lane results and
// the epoch's observability counter deltas, repeat until kShutdown or EOF.
//
// The loop reuses its decode/encode arenas across epochs: the TaskBatch's
// vectors are resized in place and the tx/rx buffers grow to the high-water
// mark once, so steady-state epochs allocate nothing on the framing path.

#include <cstdint>
#include <string>

#include "fabric/transport.hpp"

namespace mvcom::fabric {

struct WorkerOptions {
  std::uint32_t index = 0;
  /// When non-empty, the worker re-exports its private registry here after
  /// every epoch (Prometheus text) — the per-process scrape surface.
  std::string metrics_path;
};

/// Runs the worker protocol until shutdown (returns 0), coordinator EOF
/// (returns 0 — a vanished coordinator is a normal teardown), or a protocol
/// violation (returns 1). Never throws across the fork boundary.
[[nodiscard]] int run_worker_loop(Channel& channel,
                                  const WorkerOptions& options) noexcept;

}  // namespace mvcom::fabric
