#pragma once
// Batched frame transport over a local stream socket (DESIGN.md §17).
//
// A Channel owns one end of a socketpair. Sends are buffered: callers
// append any number of frames, then flush() pushes the whole batch with as
// few write(2) calls as the kernel accepts — the coordinator's per-epoch
// traffic to a worker is exactly one flush (header + payloads coalesced in
// one contiguous buffer, the writev-equivalent without the iovec
// bookkeeping, since frames are already packed back-to-back).
//
// Receives are poll(2)-bounded: recv_frame() returns kEof the instant the
// peer closes (worker death) and kTimeout when the deadline passes with no
// complete frame — the two signals the coordinator's crash-replay logic is
// built on. The receive buffer persists across frames (arena reuse): bytes
// of a following frame read in the same gulp stay buffered for the next
// call, and the buffer compacts instead of reallocating.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fabric/wire.hpp"

namespace mvcom::fabric {

enum class RecvStatus : std::uint8_t {
  kOk,       // a complete, checksum-verified frame was delivered
  kEof,      // peer closed (worker died or coordinator shut the pipe)
  kTimeout,  // deadline expired without a complete frame
  kCorrupt,  // framing violation — the stream is unrecoverable
  kError,    // I/O error on the descriptor
};

class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  ~Channel();

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Appends one frame to the send buffer; nothing hits the socket yet.
  void queue_frame(FrameType type, std::span<const std::uint8_t> payload);

  /// Writes the whole queued batch. Returns false on EPIPE/other errors
  /// (the peer is gone — callers treat it like kEof). Blocks until the
  /// kernel accepts every byte; local socketpairs drain fast and the
  /// per-epoch batch is bounded.
  [[nodiscard]] bool flush();

  /// Blocks up to `timeout_ms` (< 0 = forever) for one complete frame.
  /// On kOk `frame->payload` points into the receive buffer and stays
  /// valid until the next recv_frame() call.
  [[nodiscard]] RecvStatus recv_frame(FrameView* frame, int timeout_ms);

 private:
  void compact();

  int fd_ = -1;
  std::vector<std::uint8_t> tx_;
  std::vector<std::uint8_t> rx_;
  std::size_t rx_consumed_ = 0;
};

/// socketpair(AF_UNIX, SOCK_STREAM) as two Channels: first = coordinator
/// side, second = worker side. Throws on resource exhaustion.
[[nodiscard]] std::pair<Channel, Channel> make_channel_pair();

}  // namespace mvcom::fabric
