#pragma once
// Point-to-point message fabric over the discrete-event simulator.
//
// Delivery semantics: sends between live nodes always arrive, after a delay
// drawn from the link's latency model scaled by both endpoints' slowdown
// factors. Sends to or from a failed node are dropped — this is how a
// committee under DoS attack (paper §V-A) manifests: its pings never return,
// so its measured latency reads as infinity.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "net/latency.hpp"
#include "obs/context.hpp"
#include "sim/simulator.hpp"

namespace mvcom::obs {
class Counter;
class LogHistogram;
}  // namespace mvcom::obs

namespace mvcom::net {

using NodeId = std::uint32_t;

/// The simulated network connecting `node_count` nodes.
class Network {
 public:
  /// Takes a private RNG (fork one from the experiment's root engine) and a
  /// latency model shared by all links.
  Network(sim::Simulator& simulator, Rng rng,
          std::shared_ptr<const LatencyModel> link_model,
          std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return factors_.size();
  }

  /// Per-node delay multiplier (>= 1 slow node, < 1 fast node). Models
  /// heterogeneous connectivity. Precondition: factor > 0.
  void set_node_factor(NodeId node, double factor);
  [[nodiscard]] double node_factor(NodeId node) const;

  /// Marks a node failed/recovered. Failed nodes neither send nor receive.
  void set_failed(NodeId node, bool failed);
  [[nodiscard]] bool is_failed(NodeId node) const;

  /// Independent per-message loss probability (0 = reliable, the default).
  /// Lost messages count as dropped in the telemetry. Quorum-based
  /// protocols (PBFT) survive moderate loss through their redundancy and
  /// view-change retries — tested in test_pbft_adversarial.
  void set_loss_probability(double p);
  [[nodiscard]] double loss_probability() const noexcept { return loss_; }

  /// Samples the one-way delay from `from` to `to` without sending.
  [[nodiscard]] SimTime sample_delay(NodeId from, NodeId to);

  /// Sends a message: schedules `on_deliver` after a sampled delay, unless
  /// either endpoint is failed (then the message is silently dropped).
  /// Returns true if the message was accepted into the network.
  /// Accepts any callable and forwards it straight into the simulator's
  /// inline event storage — the hot PBFT message path stays allocation-free.
  template <typename F>
  bool send(NodeId from, NodeId to, F&& on_deliver) {
    const SendPlan plan = plan_send(from, to);
    if (!plan.deliver) return false;
    if (obs_.trace() != nullptr) {
      // Wrap delivery so the trace shows the in-flight span: an 'X' event of
      // `delay` seconds recorded at delivery time (the exporter rewinds the
      // start timestamp by the duration).
      simulator_.schedule_after(
          plan.delay, [this, from, to, delay = plan.delay,
                       cb = std::forward<F>(on_deliver)]() mutable {
            trace_delivery(from, to, delay);
            cb();
          });
    } else {
      simulator_.schedule_after(plan.delay, std::forward<F>(on_deliver));
    }
    return true;
  }

  /// Typed-kernel counterpart of send(): identical drop/loss bookkeeping and
  /// RNG consumption, but the delivery is a 16-byte TypedPayload dispatched
  /// to `kernel` (sim/kernel.hpp) instead of a type-erased callback — the
  /// batched executor groups same-timestamp deliveries into one SoA kernel
  /// call. Typed deliveries are non-cancellable and are counted in the
  /// message counters and delay histogram but, unlike send(), do not emit a
  /// per-message in-flight trace span (the hot path stays branch-free; drops
  /// and pings still trace).
  bool send_event(NodeId from, NodeId to, sim::KernelId kernel,
                  sim::TypedPayload payload) {
    const SendPlan plan = plan_send(from, to);
    if (!plan.deliver) return false;
    simulator_.schedule_typed_after(plan.delay, kernel, payload);
    return true;
  }

  /// Convenience broadcast from `from` to every other live node.
  /// `make_handler(to)` constructs the per-recipient delivery action.
  void broadcast(NodeId from,
                 const std::function<std::function<void()>(NodeId)>& make_handler);

  /// Ping round-trip estimate: 2x one-way mean for live nodes, infinity for
  /// failed ones. This is the failure detector the final committee runs.
  [[nodiscard]] SimTime ping_rtt(NodeId from, NodeId to);

  // Telemetry.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return dropped_;
  }

  /// Attaches observability: message counters, a one-way delay histogram,
  /// and per-message deliver/drop trace events (sim-clocked).
  void set_obs(obs::ObsContext obs);

 private:
  /// Outcome of the pre-delivery bookkeeping shared by every send: drop
  /// decisions, counters, and the sampled delay.
  struct SendPlan {
    bool deliver;
    SimTime delay;
  };
  SendPlan plan_send(NodeId from, NodeId to);
  void trace_delivery(NodeId from, NodeId to, SimTime delay);

  sim::Simulator& simulator_;
  Rng rng_;
  std::shared_ptr<const LatencyModel> link_model_;
  std::vector<double> factors_;
  std::vector<bool> failed_;
  double loss_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;

  obs::ObsContext obs_;
  obs::Counter* obs_sent_ = nullptr;
  obs::Counter* obs_pings_ = nullptr;
  obs::Counter* obs_dropped_failed_ = nullptr;
  obs::Counter* obs_dropped_loss_ = nullptr;
  obs::LogHistogram* obs_delay_ = nullptr;
};

}  // namespace mvcom::net
