#pragma once
// Link-latency models. Committees in the paper have heterogeneous network
// connections; the simulator expresses that heterogeneity as per-link delay
// distributions plus per-node slowdown factors.

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace mvcom::net {

using common::Rng;
using common::SimTime;

/// A distribution of one-way link delays.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// Draws one delay. Must be non-negative.
  [[nodiscard]] virtual SimTime sample(Rng& rng) const = 0;
  /// Mean of the distribution (used by closed-form latency models).
  [[nodiscard]] virtual SimTime mean() const noexcept = 0;
};

/// Constant delay.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimTime delay) noexcept : delay_(delay) {}
  [[nodiscard]] SimTime sample(Rng&) const override { return delay_; }
  [[nodiscard]] SimTime mean() const noexcept override { return delay_; }

 private:
  SimTime delay_;
};

/// Uniform delay over [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) noexcept : lo_(lo), hi_(hi) {}
  [[nodiscard]] SimTime sample(Rng& rng) const override {
    return SimTime(rng.uniform(lo_.seconds(), hi_.seconds()));
  }
  [[nodiscard]] SimTime mean() const noexcept override {
    return SimTime(0.5 * (lo_.seconds() + hi_.seconds()));
  }

 private:
  SimTime lo_;
  SimTime hi_;
};

/// Exponential delay with given mean.
class ExponentialLatency final : public LatencyModel {
 public:
  explicit ExponentialLatency(SimTime mean_delay) noexcept : mean_(mean_delay) {}
  [[nodiscard]] SimTime sample(Rng& rng) const override {
    return SimTime(rng.exponential(mean_.seconds()));
  }
  [[nodiscard]] SimTime mean() const noexcept override { return mean_; }

 private:
  SimTime mean_;
};

/// Log-normal delay (heavy right tail — the usual WAN shape) parameterized
/// by its own mean and standard deviation. The underlying normal parameters
/// are solved once at construction — the same arithmetic (and therefore the
/// same doubles) as Rng::lognormal_mean_sd recomputing them per draw, but a
/// sample on the hot PBFT message path is just exp(normal(mu, sigma)).
class LognormalLatency final : public LatencyModel {
 public:
  LognormalLatency(SimTime mean_delay, SimTime sd) noexcept
      : mean_(mean_delay), sd_(sd) {
    const double m = mean_delay.seconds();
    const double variance = sd.seconds() * sd.seconds();
    const double sigma2 = std::log1p(variance / (m * m));
    mu_ = std::log(m) - 0.5 * sigma2;
    sigma_ = std::sqrt(sigma2);
  }
  [[nodiscard]] SimTime sample(Rng& rng) const override {
    return SimTime(std::exp(rng.normal(mu_, sigma_)));
  }
  [[nodiscard]] SimTime mean() const noexcept override { return mean_; }

 private:
  SimTime mean_;
  SimTime sd_;
  double mu_ = 0.0;
  double sigma_ = 0.0;
};

}  // namespace mvcom::net
