#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

namespace mvcom::net {

Network::Network(sim::Simulator& simulator, Rng rng,
                 std::shared_ptr<const LatencyModel> link_model,
                 std::size_t node_count)
    : simulator_(simulator),
      rng_(rng),
      link_model_(std::move(link_model)),
      factors_(node_count, 1.0),
      failed_(node_count, false) {
  if (!link_model_) {
    throw std::invalid_argument("Network: link model must not be null");
  }
}

void Network::set_node_factor(NodeId node, double factor) {
  assert(factor > 0.0);
  factors_.at(node) = factor;
}

double Network::node_factor(NodeId node) const { return factors_.at(node); }

void Network::set_failed(NodeId node, bool failed) {
  failed_.at(node) = failed;
}

bool Network::is_failed(NodeId node) const { return failed_.at(node); }

SimTime Network::sample_delay(NodeId from, NodeId to) {
  const double scale = factors_.at(from) * factors_.at(to);
  return SimTime(scale * link_model_->sample(rng_).seconds());
}

void Network::set_loss_probability(double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("Network: loss probability in [0, 1)");
  }
  loss_ = p;
}

bool Network::send(NodeId from, NodeId to, std::function<void()> on_deliver) {
  if (failed_.at(from) || failed_.at(to)) {
    ++dropped_;
    return false;
  }
  if (loss_ > 0.0 && rng_.bernoulli(loss_)) {
    ++dropped_;
    return false;
  }
  ++sent_;
  simulator_.schedule_after(sample_delay(from, to), std::move(on_deliver));
  return true;
}

void Network::broadcast(
    NodeId from,
    const std::function<std::function<void()>(NodeId)>& make_handler) {
  for (NodeId to = 0; to < factors_.size(); ++to) {
    if (to == from) continue;
    send(from, to, make_handler(to));
  }
}

SimTime Network::ping_rtt(NodeId from, NodeId to) {
  if (failed_.at(from) || failed_.at(to)) return SimTime::infinity();
  return sample_delay(from, to) + sample_delay(to, from);
}

}  // namespace mvcom::net
