#include "net/network.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvcom::net {

void Network::set_obs(obs::ObsContext obs) {
  obs_ = obs;
  obs_sent_ = nullptr;
  obs_pings_ = nullptr;
  obs_dropped_failed_ = nullptr;
  obs_dropped_loss_ = nullptr;
  obs_delay_ = nullptr;
  if (obs::MetricsRegistry* m = obs_.metrics()) {
    obs_sent_ = &m->counter("mvcom_net_messages_total",
                            "Network messages by outcome",
                            {{"outcome", "sent"}});
    obs_pings_ = &m->counter("mvcom_net_pings_total",
                             "Round-trip probes sampled via ping_rtt");
    obs_dropped_failed_ =
        &m->counter("mvcom_net_messages_total", "Network messages by outcome",
                    {{"outcome", "dropped_endpoint_failed"}});
    obs_dropped_loss_ =
        &m->counter("mvcom_net_messages_total", "Network messages by outcome",
                    {{"outcome", "dropped_loss"}});
    obs_delay_ = &m->histogram("mvcom_net_delay_seconds",
                               "Sampled one-way message delays", {},
                               {.lowest = 1e-3, .growth = 2.0, .count = 18});
  }
}

Network::Network(sim::Simulator& simulator, Rng rng,
                 std::shared_ptr<const LatencyModel> link_model,
                 std::size_t node_count)
    : simulator_(simulator),
      rng_(rng),
      link_model_(std::move(link_model)),
      factors_(node_count, 1.0),
      failed_(node_count, false) {
  if (!link_model_) {
    throw std::invalid_argument("Network: link model must not be null");
  }
}

void Network::set_node_factor(NodeId node, double factor) {
  assert(factor > 0.0);
  factors_.at(node) = factor;
}

double Network::node_factor(NodeId node) const { return factors_.at(node); }

void Network::set_failed(NodeId node, bool failed) {
  failed_.at(node) = failed;
}

bool Network::is_failed(NodeId node) const { return failed_.at(node); }

SimTime Network::sample_delay(NodeId from, NodeId to) {
  assert(from < factors_.size() && to < factors_.size());
  const double scale = factors_[from] * factors_[to];
  return SimTime(scale * link_model_->sample(rng_).seconds());
}

void Network::set_loss_probability(double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("Network: loss probability in [0, 1)");
  }
  loss_ = p;
}

Network::SendPlan Network::plan_send(NodeId from, NodeId to) {
  const auto dropped = [&](obs::Counter* counter, const char* why) {
    ++dropped_;
    if (counter != nullptr) counter->inc();
    if (auto* t = obs_.trace()) {
      t->instant("net", why,
                 {{"from", static_cast<double>(from)},
                  {"to", static_cast<double>(to)}});
    }
    return SendPlan{false, SimTime::zero()};
  };
  assert(from < failed_.size() && to < failed_.size());
  if (failed_[from] || failed_[to]) {
    return dropped(obs_dropped_failed_, "net/drop_endpoint_failed");
  }
  if (loss_ > 0.0 && rng_.bernoulli(loss_)) {
    return dropped(obs_dropped_loss_, "net/drop_loss");
  }
  ++sent_;
  if (obs_sent_ != nullptr) obs_sent_->inc();
  const SimTime delay = sample_delay(from, to);
  if (obs_delay_ != nullptr) obs_delay_->observe(delay.seconds());
  return SendPlan{true, delay};
}

void Network::trace_delivery(NodeId from, NodeId to, SimTime delay) {
  if (auto* t = obs_.trace()) {
    t->complete("net", "net/deliver", delay.seconds(),
                {{"from", static_cast<double>(from)},
                 {"to", static_cast<double>(to)},
                 {"delay_s", delay.seconds()}});
  }
}

void Network::broadcast(
    NodeId from,
    const std::function<std::function<void()>(NodeId)>& make_handler) {
  for (NodeId to = 0; to < factors_.size(); ++to) {
    if (to == from) continue;
    send(from, to, make_handler(to));
  }
}

SimTime Network::ping_rtt(NodeId from, NodeId to) {
  const auto traced = [&](SimTime rtt) {
    if (obs_pings_ != nullptr) obs_pings_->inc();
    if (auto* t = obs_.trace()) {
      t->instant("net", "net/ping",
                 {{"from", static_cast<double>(from)},
                  {"to", static_cast<double>(to)},
                  {"rtt_s", rtt.is_infinite() ? -1.0 : rtt.seconds()}});
    }
    return rtt;
  };
  assert(from < failed_.size() && to < failed_.size());
  if (failed_[from] || failed_[to]) {
    return traced(SimTime::infinity());
  }
  return traced(sample_delay(from, to) + sample_delay(to, from));
}

}  // namespace mvcom::net
