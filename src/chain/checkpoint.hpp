#pragma once
// Root-chain checkpointing for the streaming pipeline's daemon mode.
//
// `mvcom serve` runs indefinitely; a crash or SIGINT must not cost the whole
// run, so the serve loop periodically snapshots the root chain to a
// checksummed text file. The format stores every block's full header and
// shard roots; loading replays the blocks through RootChain::append, so a
// restored chain has passed exactly the same hash-link / Merkle / timestamp
// validation as the live one — corruption shows up as a load failure, never
// as a silently-diverged chain. A trailing FNV-1a checksum over the payload
// catches truncation (the classic torn-write failure of a killed daemon)
// before the structural checks even run.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "chain/root_chain.hpp"

namespace mvcom::chain {

/// Serializes `chain` to `out`. Returns false only on stream failure.
bool write_checkpoint(const RootChain& chain, std::ostream& out);

/// Convenience: write_checkpoint to a file via an atomic rename-free
/// best-effort (write then flush); returns false on any I/O failure.
bool write_checkpoint_file(const RootChain& chain, const std::string& path);

/// Parses a checkpoint and replays it into a fresh RootChain. Returns
/// nullopt when the checksum, the format, or any append-time validation
/// (hash link, Merkle root, timestamp monotonicity) fails.
[[nodiscard]] std::optional<RootChain> load_checkpoint(std::istream& in);

/// File-path convenience for load_checkpoint.
[[nodiscard]] std::optional<RootChain> load_checkpoint_file(
    const std::string& path);

}  // namespace mvcom::chain
