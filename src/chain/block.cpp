#include "chain/block.hpp"

#include <array>

namespace mvcom::chain {
namespace {

/// Length-prefixed field encoding — no two distinct headers share an
/// encoding, so the hash is collision-safe at the format level.
void feed(crypto::Sha256& h, std::string_view field) {
  h.update(std::to_string(field.size()));
  h.update(":");
  h.update(field);
  h.update("|");
}

void feed(crypto::Sha256& h, const Digest& digest) {
  h.update(std::span<const std::uint8_t>(digest.data(), digest.size()));
  h.update("|");
}

}  // namespace

Digest BlockHeader::hash() const {
  crypto::Sha256 h;
  feed(h, std::to_string(height));
  feed(h, prev_hash);
  feed(h, shard_merkle_root);
  feed(h, std::to_string(timestamp));
  feed(h, std::to_string(tx_count));
  feed(h, proposer);
  feed(h, epoch_randomness);
  return h.finalize();
}

Block Block::assemble(const BlockHeader* prev, std::vector<Digest> shard_roots,
                      std::uint64_t tx_count, double timestamp,
                      std::string proposer, std::string epoch_randomness) {
  Block block;
  block.header.height = prev ? prev->height + 1 : 0;
  block.header.prev_hash = prev ? prev->hash() : Digest{};
  block.header.timestamp = timestamp;
  block.header.tx_count = tx_count;
  block.header.proposer = std::move(proposer);
  block.header.epoch_randomness = std::move(epoch_randomness);
  block.shard_roots = std::move(shard_roots);
  block.header.shard_merkle_root =
      crypto::MerkleTree(block.shard_roots).root();
  return block;
}

bool Block::merkle_consistent() const {
  return crypto::MerkleTree(shard_roots).root() == header.shard_merkle_root;
}

crypto::MerkleProof Block::prove_shard(std::size_t index) const {
  return crypto::MerkleTree(shard_roots).prove(index);
}

}  // namespace mvcom::chain
