#include "chain/checkpoint.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fnv.hpp"
#include "crypto/sha256.hpp"

namespace mvcom::chain {

namespace {

constexpr std::uint64_t kFnvBasis = common::kFnv1aBasis;

std::uint64_t fnv1a(std::uint64_t h, std::string_view bytes) noexcept {
  return common::fnv1a_bytes(h, bytes);
}

/// Percent-escapes whitespace and '%' so free-form strings (proposer,
/// epoch randomness) survive the space-tokenized format.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == ' ' || c == '%' || c == '\n' || c == '\r' || c == '\t') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::optional<std::string> unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return std::nullopt;
    const auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nibble(s[i + 1]);
    const int lo = nibble(s[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

std::optional<Digest> digest_from_hex(std::string_view hex) {
  Digest d{};
  if (hex.size() != 2 * d.size()) return std::nullopt;
  for (std::size_t i = 0; i < d.size(); ++i) {
    unsigned byte = 0;
    for (int half = 0; half < 2; ++half) {
      const char c = hex[2 * i + static_cast<std::size_t>(half)];
      byte <<= 4;
      if (c >= '0' && c <= '9') {
        byte |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        byte |= static_cast<unsigned>(c - 'a' + 10);
      } else {
        return std::nullopt;
      }
    }
    d[i] = static_cast<std::uint8_t>(byte);
  }
  return d;
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

bool write_checkpoint(const RootChain& chain, std::ostream& out) {
  std::ostringstream payload;
  payload << "mvcom-checkpoint v1\n";
  payload << "blocks " << chain.size() << "\n";
  for (std::uint64_t h = 0; h < chain.size(); ++h) {
    const Block& b = chain.at(h);
    payload << "block " << b.header.height << " "
            << format_double(b.header.timestamp) << " " << b.header.tx_count
            << " " << escape(b.header.proposer) << " "
            << escape(b.header.epoch_randomness) << " "
            << crypto::to_hex(b.header.hash()) << " " << b.shard_roots.size();
    for (const Digest& root : b.shard_roots) {
      payload << " " << crypto::to_hex(root);
    }
    payload << "\n";
  }
  const std::string body = payload.str();
  char checksum[24];
  std::snprintf(checksum, sizeof checksum, "%016llx",
                static_cast<unsigned long long>(fnv1a(kFnvBasis, body)));
  out << body << "checksum " << checksum << "\n";
  out.flush();
  return static_cast<bool>(out);
}

bool write_checkpoint_file(const RootChain& chain, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  return write_checkpoint(chain, out);
}

std::optional<RootChain> load_checkpoint(std::istream& in) {
  // Slurp and split the checksum line off the payload first: a truncated
  // file (daemon killed mid-write) must fail here, before any parsing.
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();
  const std::size_t checksum_at = text.rfind("checksum ");
  if (checksum_at == std::string::npos) return std::nullopt;
  // The file must end exactly with "checksum <16 hex>\n" — a file cut even
  // one byte short (torn write) is rejected outright.
  constexpr std::size_t kChecksumLine = 9 + 16 + 1;
  if (text.size() != checksum_at + kChecksumLine || text.back() != '\n') {
    return std::nullopt;
  }
  const std::string body = text.substr(0, checksum_at);
  std::string tag;
  const std::string stored_checksum = text.substr(checksum_at + 9, 16);
  char computed[24];
  std::snprintf(computed, sizeof computed, "%016llx",
                static_cast<unsigned long long>(fnv1a(kFnvBasis, body)));
  if (stored_checksum != computed) return std::nullopt;

  std::istringstream lines(body);
  std::string magic;
  std::string version;
  lines >> magic >> version;
  if (magic != "mvcom-checkpoint" || version != "v1") return std::nullopt;
  std::size_t count = 0;
  lines >> tag >> count;
  if (tag != "blocks" || count == 0) return std::nullopt;

  std::optional<RootChain> chain;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t height = 0;
    double timestamp = 0.0;
    std::uint64_t tx_count = 0;
    std::string proposer_esc;
    std::string randomness_esc;
    std::string hash_hex;
    std::size_t num_roots = 0;
    lines >> tag >> height >> timestamp >> tx_count >> proposer_esc >>
        randomness_esc >> hash_hex >> num_roots;
    if (!lines || tag != "block" || height != i) return std::nullopt;
    std::vector<Digest> roots;
    roots.reserve(num_roots);
    for (std::size_t r = 0; r < num_roots; ++r) {
      std::string root_hex;
      lines >> root_hex;
      const auto root = digest_from_hex(root_hex);
      if (!lines || !root) return std::nullopt;
      roots.push_back(*root);
    }
    const auto proposer = unescape(proposer_esc);
    const auto randomness = unescape(randomness_esc);
    const auto stored_hash = digest_from_hex(hash_hex);
    if (!proposer || !randomness || !stored_hash) return std::nullopt;

    if (i == 0) {
      // Replaying RootChain's own genesis construction must land on the
      // stored header hash — this pins every genesis field at once.
      chain.emplace(*randomness);
      if (chain->at(0).header.hash() != *stored_hash) return std::nullopt;
      continue;
    }
    Block block = Block::assemble(&chain->tip().header, std::move(roots),
                                  tx_count, timestamp, *proposer, *randomness);
    if (block.header.hash() != *stored_hash) return std::nullopt;
    if (chain->append(std::move(block)).has_value()) return std::nullopt;
  }
  return chain;
}

std::optional<RootChain> load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_checkpoint(in);
}

}  // namespace mvcom::chain
