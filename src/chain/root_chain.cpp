#include "chain/root_chain.hpp"

#include <stdexcept>

namespace mvcom::chain {

const char* to_string(AppendError error) noexcept {
  switch (error) {
    case AppendError::kWrongHeight: return "wrong height";
    case AppendError::kBrokenHashLink: return "broken hash link";
    case AppendError::kMerkleMismatch: return "merkle mismatch";
    case AppendError::kNonMonotonicTimestamp: return "non-monotonic timestamp";
  }
  return "unknown";
}

RootChain::RootChain(std::string genesis_randomness) {
  blocks_.push_back(Block::assemble(nullptr, {}, 0, 0.0, "genesis",
                                    std::move(genesis_randomness)));
}

const Block& RootChain::at(std::uint64_t block_height) const {
  if (block_height >= blocks_.size()) {
    throw std::out_of_range("RootChain::at: height beyond tip");
  }
  return blocks_[block_height];
}

std::optional<AppendError> RootChain::check(const Block& block) const {
  const BlockHeader& tip_header = blocks_.back().header;
  if (block.header.height != tip_header.height + 1) {
    return AppendError::kWrongHeight;
  }
  if (block.header.prev_hash != tip_header.hash()) {
    return AppendError::kBrokenHashLink;
  }
  if (!block.merkle_consistent()) {
    return AppendError::kMerkleMismatch;
  }
  if (block.header.timestamp < tip_header.timestamp) {
    return AppendError::kNonMonotonicTimestamp;
  }
  return std::nullopt;
}

std::optional<AppendError> RootChain::append(Block block) {
  if (const auto error = check(block)) return error;
  blocks_.push_back(std::move(block));
  return std::nullopt;
}

const Block& RootChain::extend(std::vector<Digest> shard_roots,
                               std::uint64_t tx_count, double timestamp,
                               std::string proposer,
                               std::string epoch_randomness) {
  Block block = Block::assemble(&blocks_.back().header,
                                std::move(shard_roots), tx_count,
                                std::max(timestamp,
                                         blocks_.back().header.timestamp),
                                std::move(proposer),
                                std::move(epoch_randomness));
  const auto error = append(std::move(block));
  if (error) {
    throw std::logic_error(std::string("RootChain::extend: ") +
                           to_string(*error));
  }
  return blocks_.back();
}

bool RootChain::validate_full() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& block = blocks_[i];
    if (!block.merkle_consistent()) return false;
    if (block.header.height != i) return false;
    if (i == 0) continue;
    const BlockHeader& prev = blocks_[i - 1].header;
    if (block.header.prev_hash != prev.hash()) return false;
    if (block.header.timestamp < prev.timestamp) return false;
  }
  return true;
}

std::uint64_t RootChain::total_txs() const noexcept {
  std::uint64_t total = 0;
  for (const Block& block : blocks_) total += block.header.tx_count;
  return total;
}

}  // namespace mvcom::chain
