#pragma once
// The root chain — the append-only ledger of global blocks the final
// committee produces, one per epoch. Append validates the candidate block
// against the tip (height, hash link, Merkle consistency, timestamp
// monotonicity); the chain can also re-validate itself from genesis, which
// integration tests use as the end-to-end integrity check of the whole
// Elastico pipeline.

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/block.hpp"

namespace mvcom::chain {

enum class AppendError {
  kWrongHeight,
  kBrokenHashLink,
  kMerkleMismatch,
  kNonMonotonicTimestamp,
};

[[nodiscard]] const char* to_string(AppendError error) noexcept;

class RootChain {
 public:
  /// Starts a chain with a genesis block carrying no shards.
  explicit RootChain(std::string genesis_randomness = "genesis");

  [[nodiscard]] const Block& tip() const noexcept { return blocks_.back(); }
  [[nodiscard]] std::uint64_t height() const noexcept {
    return blocks_.back().header.height;
  }
  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }
  [[nodiscard]] const Block& at(std::uint64_t block_height) const;

  /// Validates and appends; returns the rejection reason on failure (the
  /// chain is unchanged then).
  [[nodiscard]] std::optional<AppendError> append(Block block);

  /// Convenience: assemble-on-tip + append (cannot fail structurally).
  const Block& extend(std::vector<Digest> shard_roots, std::uint64_t tx_count,
                      double timestamp, std::string proposer,
                      std::string epoch_randomness);

  /// Full revalidation from genesis — every link, root, and timestamp.
  [[nodiscard]] bool validate_full() const;

  /// Total transactions committed across all blocks.
  [[nodiscard]] std::uint64_t total_txs() const noexcept;

 private:
  [[nodiscard]] std::optional<AppendError> check(const Block& block) const;

  std::vector<Block> blocks_;
};

}  // namespace mvcom::chain
