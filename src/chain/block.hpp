#pragma once
// Root-chain blocks. Each epoch's final consensus "yields a new global
// block for the root chain" (§I stage 4); a block commits to the selected
// committee shards through a Merkle root over their shard roots and links
// to its predecessor by hash.

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace mvcom::chain {

using crypto::Digest;

struct BlockHeader {
  std::uint64_t height = 0;
  Digest prev_hash{};
  Digest shard_merkle_root{};   // root over the included shard roots
  double timestamp = 0.0;       // simulated seconds
  std::uint64_t tx_count = 0;   // TXs packed across the included shards
  std::string proposer;         // final-committee identifier
  std::string epoch_randomness; // stage-5 beacon output used this epoch

  /// Canonical header hash: SHA-256 over a length-unambiguous encoding.
  [[nodiscard]] Digest hash() const;
};

struct Block {
  BlockHeader header;
  std::vector<Digest> shard_roots;  // leaves behind header.shard_merkle_root

  /// Builds a block on `prev` (pass nullptr for the genesis block).
  [[nodiscard]] static Block assemble(const BlockHeader* prev,
                                      std::vector<Digest> shard_roots,
                                      std::uint64_t tx_count, double timestamp,
                                      std::string proposer,
                                      std::string epoch_randomness);

  /// Structural self-check: the header's Merkle root matches the shard
  /// roots actually carried.
  [[nodiscard]] bool merkle_consistent() const;

  /// Inclusion proof that `shard_roots[index]` is committed by this block.
  [[nodiscard]] crypto::MerkleProof prove_shard(std::size_t index) const;
};

}  // namespace mvcom::chain
