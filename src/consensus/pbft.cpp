#include "consensus/pbft.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvcom::consensus {

namespace {
constexpr const char* kPhaseNames[] = {"preprepare", "prepare", "commit",
                                       "view_change", "new_view"};
}  // namespace

void PbftCluster::set_obs(obs::ObsContext obs) {
  obs_ = obs;
  obs_msg_.fill(nullptr);
  obs_view_changes_ = nullptr;
  obs_committed_ = nullptr;
  obs_aborted_ = nullptr;
  if (obs::MetricsRegistry* m = obs_.metrics()) {
    for (std::size_t p = 0; p < obs_msg_.size(); ++p) {
      obs_msg_[p] = &m->counter("mvcom_pbft_messages_total",
                                "PBFT protocol messages sent, by phase",
                                {{"phase", kPhaseNames[p]}});
    }
    obs_view_changes_ =
        &m->counter("mvcom_pbft_view_changes_total",
                    "NEW-VIEW activations across all instances", {});
    obs_committed_ =
        &m->counter("mvcom_pbft_instances_total",
                    "Consensus instances by outcome", {{"result", "committed"}});
    obs_aborted_ =
        &m->counter("mvcom_pbft_instances_total",
                    "Consensus instances by outcome", {{"result", "aborted"}});
  }
}

PbftCluster::PbftCluster(sim::Simulator& simulator, net::Network& network,
                         PbftConfig config, Rng rng,
                         std::vector<NodeId> members)
    : simulator_(simulator),
      network_(network),
      config_(config),
      rng_(rng),
      members_(std::move(members)),
      replicas_(members_.size()) {
  if (members_.empty()) {
    throw std::invalid_argument("PbftCluster: need at least one replica");
  }
  if (members_.size() > 0xffff) {
    throw std::invalid_argument(
        "PbftCluster: replica indices must fit the 16-bit payload fields");
  }
  for (const NodeId m : members_) {
    if (m >= network_.node_count()) {
      throw std::invalid_argument("PbftCluster: member outside the network");
    }
  }
  deliver_kernel_ = simulator_.register_kernel(&PbftCluster::deliver_thunk, this);
  phase_kernel_ = simulator_.register_kernel(&PbftCluster::phase_thunk, this);
}

void PbftCluster::deliver_thunk(void* ctx, const sim::TypedPayload* cohort,
                                std::size_t n) {
  static_cast<PbftCluster*>(ctx)->on_deliver_cohort(cohort, n);
}

void PbftCluster::phase_thunk(void* ctx, const sim::TypedPayload* cohort,
                              std::size_t n) {
  static_cast<PbftCluster*>(ctx)->on_phase_cohort(cohort, n);
}

void PbftCluster::on_deliver_cohort(const sim::TypedPayload* cohort,
                                    std::size_t n) {
  // Network-delivery kernel: filter silent receivers, then draw every
  // verification delay (signature checks + payload validation, scaled by
  // the replica's processing speed — the heterogeneous capability of paper
  // §I) as one batch. Silent receivers draw nothing, so the engine sequence
  // is exactly the per-event sequence of the reference interpreter; the
  // phase-advance events are then scheduled in cohort order, preserving the
  // relative sequence numbers a one-at-a-time execution would assign.
  live_scratch_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (replicas_[receiver_of(cohort[i])].fault != FaultMode::kSilent) {
      live_scratch_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  verify_scratch_.resize(live_scratch_.size());
  rng_.fill_exponential(verify_scratch_,
                        config_.verification_mean.seconds());
  for (std::size_t j = 0; j < live_scratch_.size(); ++j) {
    const sim::TypedPayload p = cohort[live_scratch_[j]];
    const SimTime verify = SimTime(
        replicas_[receiver_of(p)].speed_factor * verify_scratch_[j]);
    simulator_.schedule_typed_after(verify, phase_kernel_, p);
  }
}

void PbftCluster::on_phase_cohort(const sim::TypedPayload* cohort,
                                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    handle(receiver_of(cohort[i]), message_of(cohort[i]));
  }
}

bool PbftCluster::committed_digests_consistent() const {
  const Digest* agreed = nullptr;
  for (const Replica& rep : replicas_) {
    if (!rep.committed) continue;
    if (agreed && *agreed != rep.committed_digest) return false;
    agreed = &rep.committed_digest;
  }
  return true;
}

void PbftCluster::set_fault(std::size_t r, FaultMode mode) {
  replicas_.at(r).fault = mode;
}

void PbftCluster::set_speed_factor(std::size_t r, double factor) {
  assert(factor > 0.0);
  replicas_.at(r).speed_factor = factor;
}

void PbftCluster::send(std::size_t from, std::size_t to, Message msg) {
  if (replicas_[from].fault == FaultMode::kSilent) return;
  ++result_.messages;
  if (obs::Counter* c = obs_msg_[static_cast<std::size_t>(msg.phase)]) {
    c->inc();
  }
  // Every protocol message rides the typed path: network delivery, then a
  // verification-delay event, then the phase handler — two typed events per
  // message in both kernel modes (the reference interpreter runs the same
  // kernels one event at a time).
  network_.send_event(node_of(from), node_of(to), deliver_kernel_,
                      encode(to, msg));
}

void PbftCluster::broadcast(std::size_t from, const Message& msg) {
  for (std::size_t to = 0; to < replicas_.size(); ++to) {
    if (to != from) send(from, to, msg);
  }
}

void PbftCluster::propose(std::size_t leader) {
  Replica& rep = replicas_[leader];
  if (rep.fault == FaultMode::kSilent) return;  // crashed leader: stall
  const std::uint64_t view = rep.view;
  if (rep.fault == FaultMode::kEquivocate) {
    // Send payload A to the first half and payload B to the second half.
    for (std::size_t to = 0; to < replicas_.size(); ++to) {
      if (to == leader) continue;
      const std::uint8_t d =
          (to < replicas_.size() / 2) ? std::uint8_t{0} : std::uint8_t{1};
      send(leader, to, Message{Phase::kPrePrepare, view, d, leader});
    }
    return;
  }
  // Honest leader: pre-prepare own slot, then broadcast.
  view_state(rep, view).preprepared = 0;
  broadcast(leader, Message{Phase::kPrePrepare, view, 0, leader});
  try_prepare(leader);
}

void PbftCluster::handle(std::size_t r, const Message& msg) {
  if (instance_done_) return;
  switch (msg.phase) {
    case Phase::kPrePrepare: on_preprepare(r, msg); break;
    case Phase::kPrepare: on_prepare(r, msg); break;
    case Phase::kCommit: on_commit(r, msg); break;
    case Phase::kViewChange: on_view_change(r, msg); break;
    case Phase::kNewView: on_new_view(r, msg); break;
  }
}

void PbftCluster::on_preprepare(std::size_t r, const Message& msg) {
  Replica& rep = replicas_[r];
  if (msg.view != rep.view || msg.sender != leader_of(msg.view)) return;
  ViewState& vs = view_state(rep, msg.view);
  if (vs.preprepared >= 0) return;  // accept only the first per view
  vs.preprepared = static_cast<std::int8_t>(msg.digest_idx);
  try_prepare(r);
}

void PbftCluster::try_prepare(std::size_t r) {
  Replica& rep = replicas_[r];
  ViewState& vs = view_state(rep, rep.view);
  if (vs.preprepared < 0 || vs.sent_prepare) return;
  vs.sent_prepare = true;
  const auto d = static_cast<std::uint8_t>(vs.preprepared);
  const Message prepare{Phase::kPrepare, rep.view, d, r};
  // A replica's own PREPARE counts toward its quorum.
  vs.prepares[d].insert(r);
  broadcast(r, prepare);
  try_commit(r);
}

void PbftCluster::on_prepare(std::size_t r, const Message& msg) {
  Replica& rep = replicas_[r];
  if (msg.view != rep.view) return;
  view_state(rep, msg.view).prepares[msg.digest_idx].insert(msg.sender);
  try_commit(r);
}

void PbftCluster::try_commit(std::size_t r) {
  Replica& rep = replicas_[r];
  ViewState& vs = view_state(rep, rep.view);
  if (vs.preprepared < 0 || !vs.sent_prepare || vs.sent_commit) return;
  // prepared(): matching pre-prepare plus 2f PREPAREs (own included above,
  // so the threshold here is 2f+1 entries in the set).
  const auto d = static_cast<std::uint8_t>(vs.preprepared);
  if (vs.prepares[d].size() < quorum()) return;
  vs.prepared = true;
  vs.sent_commit = true;
  const Message commit{Phase::kCommit, rep.view, d, r};
  vs.commits[d].insert(r);
  broadcast(r, commit);
  // Own commit may already complete the quorum in tiny clusters.
  on_commit(r, commit);
}

void PbftCluster::on_commit(std::size_t r, const Message& msg) {
  Replica& rep = replicas_[r];
  if (rep.committed || msg.view != rep.view) return;
  ViewState& vs = view_state(rep, msg.view);
  vs.commits[msg.digest_idx].insert(msg.sender);
  if (!vs.prepared || vs.preprepared != static_cast<std::int8_t>(msg.digest_idx)) {
    return;
  }
  if (vs.commits[msg.digest_idx].size() < quorum()) return;
  // committed-local: prepared plus 2f+1 matching COMMITs.
  rep.committed = true;
  rep.committed_digest = digest_of(msg.digest_idx);
  rep.commit_time = simulator_.now();
  simulator_.cancel(rep.view_timer);
  note_replica_committed(r);
}

void PbftCluster::note_replica_committed(std::size_t r) {
  ++committed_replicas_;
  if (!instance_done_ && committed_replicas_ >= quorum()) {
    finalize(true, replicas_[r].committed_digest);
  }
}

void PbftCluster::finalize(bool committed_quorum, const Digest& digest) {
  instance_done_ = true;
  result_.committed = committed_quorum;
  if (committed_quorum) {
    result_.committed_digest = digest;
    result_.latency = simulator_.now() - instance_start_;
  }
  if (obs::Counter* c = committed_quorum ? obs_committed_ : obs_aborted_) {
    c->inc();
  }
  if (auto* t = obs_.trace()) {
    // Span covers start_consensus -> decision (the exporter rewinds the
    // start timestamp by the duration).
    t->complete("pbft", committed_quorum ? "pbft/instance" : "pbft/abort",
                (simulator_.now() - instance_start_).seconds(),
                {{"committed", committed_quorum ? 1.0 : 0.0},
                 {"view_changes", static_cast<double>(result_.view_changes)},
                 {"messages", static_cast<double>(result_.messages)}});
  }
  simulator_.cancel(horizon_event_);
  for (Replica& rep : replicas_) simulator_.cancel(rep.view_timer);
  result_.replica_commit_times.clear();
  result_.replica_commit_times.reserve(replicas_.size());
  for (const Replica& rep : replicas_) {
    result_.replica_commit_times.push_back(
        rep.commit_time.is_infinite() ? SimTime::infinity()
                                      : rep.commit_time - instance_start_);
  }
  if (on_decided_) {
    // Move out first: the callback may start a new instance on this cluster.
    auto cb = std::move(on_decided_);
    on_decided_ = nullptr;
    cb(result_);
  }
}

void PbftCluster::arm_view_timer(std::size_t r) {
  Replica& rep = replicas_[r];
  if (rep.fault == FaultMode::kSilent) return;
  simulator_.cancel(rep.view_timer);
  rep.view_timer = simulator_.schedule_after(
      config_.view_change_timeout, [this, r] {
        Replica& self = replicas_[r];
        if (self.committed || instance_done_) return;
        // Escalate: first timeout votes view+1; if that view's leader also
        // stalls, the next timeout votes one higher, and so on.
        const std::uint64_t target =
            std::max(self.view + 1, self.view_change_target + 1);
        self.view_change_target = target;
        view_change_set(self, target).insert(r);
        broadcast(r, Message{Phase::kViewChange, target, 0, r});
        arm_view_timer(r);  // keep escalating if the next view stalls too
      });
}

void PbftCluster::on_view_change(std::size_t r, const Message& msg) {
  Replica& rep = replicas_[r];
  const std::uint64_t target = msg.view;
  if (target <= rep.view) return;
  SenderBitset& vc = view_change_set(rep, target);
  vc.insert(msg.sender);
  // Join rule: f+1 votes for a higher view prove at least one honest
  // replica timed out — join the view change instead of waiting out our
  // own timer (keeps the targets of honest replicas in sync).
  if (!rep.committed && target > rep.view_change_target &&
      vc.size() >= max_faulty() + 1) {
    rep.view_change_target = target;
    vc.insert(r);
    broadcast(r, Message{Phase::kViewChange, target, 0, r});
  }
  if (leader_of(target) != r) return;
  if (vc.size() < quorum()) return;
  // New leader activates the view and re-proposes.
  ++result_.view_changes;
  if (obs_view_changes_ != nullptr) obs_view_changes_->inc();
  enter_view(r, target, 0);
  broadcast(r, Message{Phase::kNewView, target, 0, r});
  try_prepare(r);
}

void PbftCluster::on_new_view(std::size_t r, const Message& msg) {
  Replica& rep = replicas_[r];
  if (msg.view <= rep.view || msg.sender != leader_of(msg.view)) return;
  enter_view(r, msg.view, msg.digest_idx);
  try_prepare(r);
}

void PbftCluster::enter_view(std::size_t r, std::uint64_t view,
                             std::uint8_t digest_idx) {
  Replica& rep = replicas_[r];
  rep.view = view;
  rep.view_change_target = std::max(rep.view_change_target, view);
  ViewState& vs = view_state(rep, view);
  if (vs.preprepared < 0) {
    vs.preprepared = static_cast<std::int8_t>(digest_idx);
  }
  arm_view_timer(r);
}

void PbftCluster::start_consensus(
    const Digest& payload, std::function<void(const PbftResult&)> on_decided) {
  payload_ = payload;
  // The equivocation payload is derived, distinct from the honest one.
  equivocation_payload_ = crypto::Sha256::hash(crypto::to_hex(payload));
  result_ = PbftResult{};
  committed_replicas_ = 0;
  instance_done_ = false;
  on_decided_ = std::move(on_decided);
  instance_start_ = simulator_.now();
  for (Replica& rep : replicas_) {
    rep.view = 0;
    rep.views.clear();
    rep.view_changes.clear();
    rep.committed = false;
    rep.commit_time = SimTime::infinity();
    rep.view_change_target = 0;
  }
  horizon_event_ = simulator_.schedule_after(config_.horizon, [this] {
    if (!instance_done_) finalize(false, Digest{});
  });
  for (std::size_t r = 0; r < replicas_.size(); ++r) arm_view_timer(r);
  propose(leader_of(0));
}

PbftResult PbftCluster::run_consensus(const Digest& payload) {
  bool decided = false;
  PbftResult out;
  start_consensus(payload, [&](const PbftResult& r) {
    decided = true;
    out = r;
  });
  // The horizon event bounds this loop even if the protocol stalls.
  while (!decided && simulator_.run(1) == 1) {
  }
  return out;
}

}  // namespace mvcom::consensus
