#pragma once
// Message-level PBFT (Castro & Liskov, OSDI'99) simulation — the
// intra-committee consensus of Elastico stage 3.
//
// Each committee runs one PBFT instance per epoch to agree on its shard
// block. The simulation is faithful at the message level:
//   * three phases: PRE-PREPARE (leader), PREPARE, COMMIT;
//   * quorums: a replica is *prepared* after a matching pre-prepare plus 2f
//     PREPAREs, *committed-local* after being prepared plus 2f+1 COMMITs;
//   * view change: replicas that fail to commit before a timeout broadcast
//     VIEW-CHANGE for the next view; the new leader, on collecting 2f+1,
//     issues NEW-VIEW and re-proposes (we re-propose the original payload —
//     a simplification of the prepared-certificate transfer that preserves
//     both safety and liveness for the single-slot instances used here);
//   * faults: silent (crashed) replicas, and an equivocating leader that
//     proposes two different payloads to two halves of the committee —
//     quorum intersection must prevent conflicting commits (property-tested).
//
// Latency realism: every delivered message incurs a per-replica verification
// delay (exponential, scaled by the replica's speed factor) on top of the
// network link delay — this is where the heterogeneous processing
// capability of committees (paper §I) enters the two-phase latency.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"
#include "obs/context.hpp"
#include "sim/simulator.hpp"

namespace mvcom::obs {
class Counter;
}  // namespace mvcom::obs

namespace mvcom::consensus {

using common::Rng;
using common::SimTime;
using crypto::Digest;
using net::NodeId;

/// How a faulty replica misbehaves.
enum class FaultMode {
  kNone,
  kSilent,       // crashed: never sends, never processes
  kEquivocate,   // as leader, proposes payload A to one half and B to the other
};

struct PbftConfig {
  SimTime view_change_timeout = SimTime(60.0);
  /// Mean of the per-message verification delay for a speed-1 replica.
  SimTime verification_mean = SimTime(0.5);
  /// Hard horizon: consensus aborts (committed=false) past this point.
  SimTime horizon = SimTime(3600.0);
};

/// Outcome of one consensus instance.
struct PbftResult {
  bool committed = false;          // did a quorum commit?
  Digest committed_digest{};       // the agreed payload (when committed)
  SimTime latency = SimTime::zero();  // time until 2f+1 replicas committed
  std::uint64_t view_changes = 0;  // number of NEW-VIEW activations
  std::uint64_t messages = 0;      // protocol messages accepted by the network
  /// Per-replica commit instants; SimTime::infinity() for never-committed.
  std::vector<SimTime> replica_commit_times;
};

/// One PBFT committee. Owns its replicas' protocol state; network and
/// simulator are borrowed — the Elastico layer gives each committee a
/// private simulator lane + network, so a cluster only ever sees its own
/// fabric (DESIGN.md §12).
class PbftCluster {
 public:
  /// `members` maps replica index r to its network node id — committee
  /// membership is scattered over the global node-id space (assigned by
  /// PoW hash), so the mapping is explicit. n = members.size().
  PbftCluster(sim::Simulator& simulator, net::Network& network,
              PbftConfig config, Rng rng, std::vector<NodeId> members);

  /// Marks replica `r` faulty. Must be called before run_consensus.
  void set_fault(std::size_t r, FaultMode mode);

  /// Processing-speed factor of replica `r` (>1 = slower verification).
  void set_speed_factor(std::size_t r, double factor);

  /// f — the number of Byzantine replicas the quorum sizes tolerate.
  [[nodiscard]] std::size_t max_faulty() const noexcept {
    return (members_.size() - 1) / 3;
  }
  [[nodiscard]] std::size_t num_replicas() const noexcept {
    return members_.size();
  }

  /// 2f+1 — the prepare/commit quorum size.
  [[nodiscard]] std::size_t quorum_size() const noexcept {
    return 2 * max_faulty() + 1;
  }

  /// Safety introspection: true when every replica that committed in the
  /// last instance committed the same digest. Adversarial tests (e.g.
  /// equivocating leader) assert this after every run.
  [[nodiscard]] bool committed_digests_consistent() const;

  /// Arms one single-slot consensus instance on `payload` without driving
  /// the simulator — the Elastico pipeline starts many committees this way
  /// and lets them progress concurrently. `on_decided` fires exactly once:
  /// when a quorum commits, or at the horizon with committed=false.
  void start_consensus(const Digest& payload,
                       std::function<void(const PbftResult&)> on_decided);

  /// Blocking convenience: start_consensus + drive the simulator until the
  /// instance decides. Other pending simulator events run too.
  PbftResult run_consensus(const Digest& payload);

  /// Attaches observability: per-phase message counters, view-change and
  /// instance-outcome counters, and a sim-clocked consensus span per
  /// instance ('X' trace event covering start_consensus -> quorum commit).
  void set_obs(obs::ObsContext obs);

 private:
  enum class Phase : std::uint8_t {
    kPrePrepare,
    kPrepare,
    kCommit,
    kViewChange,
    kNewView,
  };

  struct Message {
    Phase phase;
    std::uint64_t view;
    Digest digest;
    std::size_t sender;  // replica index within the cluster
  };

  /// Per-view protocol bookkeeping of one replica.
  struct ViewState {
    std::optional<Digest> preprepared;
    std::map<Digest, std::set<std::size_t>> prepares;
    std::map<Digest, std::set<std::size_t>> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
  };

  struct Replica {
    FaultMode fault = FaultMode::kNone;
    double speed_factor = 1.0;
    std::uint64_t view = 0;
    std::map<std::uint64_t, ViewState> views;
    std::map<std::uint64_t, std::set<std::size_t>> view_changes;  // target->senders
    bool committed = false;
    Digest committed_digest{};
    SimTime commit_time = SimTime::infinity();
    sim::EventId view_timer{};
    /// Highest view this replica has voted a VIEW-CHANGE for. Escalates by
    /// one on every timeout without progress, so a run of faulty leaders
    /// cannot stall the protocol forever (liveness under repeated leader
    /// failure).
    std::uint64_t view_change_target = 0;
  };

  [[nodiscard]] std::size_t leader_of(std::uint64_t view) const noexcept {
    return view % members_.size();
  }
  [[nodiscard]] std::size_t quorum() const noexcept {
    return 2 * max_faulty() + 1;
  }
  [[nodiscard]] NodeId node_of(std::size_t r) const noexcept {
    return members_[r];
  }

  void send(std::size_t from, std::size_t to, Message msg);
  void broadcast(std::size_t from, const Message& msg);
  void handle(std::size_t r, const Message& msg);
  void on_preprepare(std::size_t r, const Message& msg);
  void on_prepare(std::size_t r, const Message& msg);
  void on_commit(std::size_t r, const Message& msg);
  void on_view_change(std::size_t r, const Message& msg);
  void on_new_view(std::size_t r, const Message& msg);
  void try_prepare(std::size_t r);
  void try_commit(std::size_t r);
  void enter_view(std::size_t r, std::uint64_t view, const Digest& digest);
  void arm_view_timer(std::size_t r);
  void propose(std::size_t leader);
  void note_replica_committed(std::size_t r);
  void finalize(bool committed_quorum, const Digest& digest);

  sim::Simulator& simulator_;
  net::Network& network_;
  PbftConfig config_;
  Rng rng_;
  std::vector<NodeId> members_;
  std::vector<Replica> replicas_;
  Digest payload_{};
  Digest equivocation_payload_{};
  std::size_t committed_replicas_ = 0;
  PbftResult result_;
  bool instance_done_ = false;
  SimTime instance_start_ = SimTime::zero();
  sim::EventId horizon_event_{};
  std::function<void(const PbftResult&)> on_decided_;

  obs::ObsContext obs_;
  // Indexed by static_cast<std::size_t>(Phase).
  std::array<obs::Counter*, 5> obs_msg_{};
  obs::Counter* obs_view_changes_ = nullptr;
  obs::Counter* obs_committed_ = nullptr;
  obs::Counter* obs_aborted_ = nullptr;
};

}  // namespace mvcom::consensus
