#pragma once
// Message-level PBFT (Castro & Liskov, OSDI'99) simulation — the
// intra-committee consensus of Elastico stage 3.
//
// Each committee runs one PBFT instance per epoch to agree on its shard
// block. The simulation is faithful at the message level:
//   * three phases: PRE-PREPARE (leader), PREPARE, COMMIT;
//   * quorums: a replica is *prepared* after a matching pre-prepare plus 2f
//     PREPAREs, *committed-local* after being prepared plus 2f+1 COMMITs;
//   * view change: replicas that fail to commit before a timeout broadcast
//     VIEW-CHANGE for the next view; the new leader, on collecting 2f+1,
//     issues NEW-VIEW and re-proposes (we re-propose the original payload —
//     a simplification of the prepared-certificate transfer that preserves
//     both safety and liveness for the single-slot instances used here);
//   * faults: silent (crashed) replicas, and an equivocating leader that
//     proposes two different payloads to two halves of the committee —
//     quorum intersection must prevent conflicting commits (property-tested).
//
// Latency realism: every delivered message incurs a per-replica verification
// delay (exponential, scaled by the replica's speed factor) on top of the
// network link delay — this is where the heterogeneous processing
// capability of committees (paper §I) enters the two-phase latency.

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"
#include "obs/context.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace mvcom::obs {
class Counter;
}  // namespace mvcom::obs

namespace mvcom::consensus {

using common::Rng;
using common::SimTime;
using crypto::Digest;
using net::NodeId;

/// How a faulty replica misbehaves.
enum class FaultMode {
  kNone,
  kSilent,       // crashed: never sends, never processes
  kEquivocate,   // as leader, proposes payload A to one half and B to the other
};

struct PbftConfig {
  SimTime view_change_timeout = SimTime(60.0);
  /// Mean of the per-message verification delay for a speed-1 replica.
  SimTime verification_mean = SimTime(0.5);
  /// Hard horizon: consensus aborts (committed=false) past this point.
  SimTime horizon = SimTime(3600.0);
};

/// Outcome of one consensus instance.
struct PbftResult {
  bool committed = false;          // did a quorum commit?
  Digest committed_digest{};       // the agreed payload (when committed)
  SimTime latency = SimTime::zero();  // time until 2f+1 replicas committed
  std::uint64_t view_changes = 0;  // number of NEW-VIEW activations
  std::uint64_t messages = 0;      // protocol messages accepted by the network
  /// Per-replica commit instants; SimTime::infinity() for never-committed.
  std::vector<SimTime> replica_commit_times;
};

/// One PBFT committee. Owns its replicas' protocol state; network and
/// simulator are borrowed — the Elastico layer gives each committee a
/// private simulator lane + network, so a cluster only ever sees its own
/// fabric (DESIGN.md §12).
class PbftCluster {
 public:
  /// `members` maps replica index r to its network node id — committee
  /// membership is scattered over the global node-id space (assigned by
  /// PoW hash), so the mapping is explicit. n = members.size().
  PbftCluster(sim::Simulator& simulator, net::Network& network,
              PbftConfig config, Rng rng, std::vector<NodeId> members);

  /// Marks replica `r` faulty. Must be called before run_consensus.
  void set_fault(std::size_t r, FaultMode mode);

  /// Processing-speed factor of replica `r` (>1 = slower verification).
  void set_speed_factor(std::size_t r, double factor);

  /// f — the number of Byzantine replicas the quorum sizes tolerate.
  [[nodiscard]] std::size_t max_faulty() const noexcept {
    return (members_.size() - 1) / 3;
  }
  [[nodiscard]] std::size_t num_replicas() const noexcept {
    return members_.size();
  }

  /// 2f+1 — the prepare/commit quorum size.
  [[nodiscard]] std::size_t quorum_size() const noexcept {
    return 2 * max_faulty() + 1;
  }

  /// Safety introspection: true when every replica that committed in the
  /// last instance committed the same digest. Adversarial tests (e.g.
  /// equivocating leader) assert this after every run.
  [[nodiscard]] bool committed_digests_consistent() const;

  /// Arms one single-slot consensus instance on `payload` without driving
  /// the simulator — the Elastico pipeline starts many committees this way
  /// and lets them progress concurrently. `on_decided` fires exactly once:
  /// when a quorum commits, or at the horizon with committed=false.
  void start_consensus(const Digest& payload,
                       std::function<void(const PbftResult&)> on_decided);

  /// Blocking convenience: start_consensus + drive the simulator until the
  /// instance decides. Other pending simulator events run too.
  PbftResult run_consensus(const Digest& payload);

  /// Attaches observability: per-phase message counters, view-change and
  /// instance-outcome counters, and a sim-clocked consensus span per
  /// instance ('X' trace event covering start_consensus -> quorum commit).
  void set_obs(obs::ObsContext obs);

 private:
  enum class Phase : std::uint8_t {
    kPrePrepare,
    kPrepare,
    kCommit,
    kViewChange,
    kNewView,
  };

  /// An instance only ever circulates two digests — the honest payload and
  /// the equivocation payload — so messages carry a 1-bit interned index
  /// instead of a 32-byte Digest, and quorum tallies are flat bitsets
  /// indexed by it. digest_of() recovers the full digest.
  struct Message {
    Phase phase;
    std::uint64_t view;
    std::uint8_t digest_idx;  // 0 = payload_, 1 = equivocation_payload_
    std::size_t sender;       // replica index within the cluster
  };

  /// Flat replica-id set with a running count — replaces
  /// std::set<std::size_t> on the per-(view, digest) quorum-counting hot
  /// path. One inline word covers committees up to 64 replicas (every
  /// configuration in this repo); larger memberships spill into a vector.
  class SenderBitset {
   public:
    /// Returns true when `r` was newly inserted.
    bool insert(std::size_t r) {
      std::uint64_t* w = &word0_;
      if (r >= 64) {
        const std::size_t idx = r / 64 - 1;
        if (spill_.size() <= idx) spill_.resize(idx + 1, 0);
        w = &spill_[idx];
      }
      const std::uint64_t bit = std::uint64_t{1} << (r % 64);
      if ((*w & bit) != 0) return false;
      *w |= bit;
      ++count_;
      return true;
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }

   private:
    std::uint64_t word0_ = 0;
    std::vector<std::uint64_t> spill_;
    std::uint16_t count_ = 0;
  };

  /// Per-view protocol bookkeeping of one replica.
  struct ViewState {
    /// Interned index of the digest accepted in this view's pre-prepare;
    /// -1 while no pre-prepare has been accepted.
    std::int8_t preprepared = -1;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    std::array<SenderBitset, 2> prepares;  // indexed by digest_idx
    std::array<SenderBitset, 2> commits;
  };

  struct Replica {
    FaultMode fault = FaultMode::kNone;
    double speed_factor = 1.0;
    std::uint64_t view = 0;
    std::vector<ViewState> views;            // indexed by view, grown on use
    std::vector<SenderBitset> view_changes;  // indexed by target view
    bool committed = false;
    Digest committed_digest{};
    SimTime commit_time = SimTime::infinity();
    sim::EventId view_timer{};
    /// Highest view this replica has voted a VIEW-CHANGE for. Escalates by
    /// one on every timeout without progress, so a run of faulty leaders
    /// cannot stall the protocol forever (liveness under repeated leader
    /// failure).
    std::uint64_t view_change_target = 0;
  };

  [[nodiscard]] std::size_t leader_of(std::uint64_t view) const noexcept {
    return view % members_.size();
  }
  [[nodiscard]] std::size_t quorum() const noexcept {
    return 2 * max_faulty() + 1;
  }
  [[nodiscard]] NodeId node_of(std::size_t r) const noexcept {
    return members_[r];
  }
  [[nodiscard]] const Digest& digest_of(std::uint8_t idx) const noexcept {
    return idx == 0 ? payload_ : equivocation_payload_;
  }
  [[nodiscard]] ViewState& view_state(Replica& rep, std::uint64_t view) {
    if (rep.views.size() <= view) {
      rep.views.resize(static_cast<std::size_t>(view) + 1);
    }
    return rep.views[static_cast<std::size_t>(view)];
  }
  [[nodiscard]] SenderBitset& view_change_set(Replica& rep,
                                              std::uint64_t target) {
    if (rep.view_changes.size() <= target) {
      rep.view_changes.resize(static_cast<std::size_t>(target) + 1);
    }
    return rep.view_changes[static_cast<std::size_t>(target)];
  }

  // Typed-event packing: a message in flight is (receiver, sender, phase,
  // digest_idx) in word a and the view in word b — 16 bytes against the
  // 56-byte digest-carrying Message of the callback era.
  static sim::TypedPayload encode(std::size_t to, const Message& msg) noexcept {
    return {static_cast<std::uint64_t>(to) |
                (static_cast<std::uint64_t>(msg.sender) << 16) |
                (static_cast<std::uint64_t>(msg.phase) << 32) |
                (static_cast<std::uint64_t>(msg.digest_idx) << 40),
            msg.view};
  }
  static std::size_t receiver_of(sim::TypedPayload p) noexcept {
    return static_cast<std::size_t>(p.a & 0xffff);
  }
  static Message message_of(sim::TypedPayload p) noexcept {
    return Message{static_cast<Phase>((p.a >> 32) & 0xff), p.b,
                   static_cast<std::uint8_t>((p.a >> 40) & 0x1),
                   static_cast<std::size_t>((p.a >> 16) & 0xffff)};
  }

  static void deliver_thunk(void* ctx, const sim::TypedPayload* cohort,
                            std::size_t n);
  static void phase_thunk(void* ctx, const sim::TypedPayload* cohort,
                          std::size_t n);
  void on_deliver_cohort(const sim::TypedPayload* cohort, std::size_t n);
  void on_phase_cohort(const sim::TypedPayload* cohort, std::size_t n);

  void send(std::size_t from, std::size_t to, Message msg);
  void broadcast(std::size_t from, const Message& msg);
  void handle(std::size_t r, const Message& msg);
  void on_preprepare(std::size_t r, const Message& msg);
  void on_prepare(std::size_t r, const Message& msg);
  void on_commit(std::size_t r, const Message& msg);
  void on_view_change(std::size_t r, const Message& msg);
  void on_new_view(std::size_t r, const Message& msg);
  void try_prepare(std::size_t r);
  void try_commit(std::size_t r);
  void enter_view(std::size_t r, std::uint64_t view, std::uint8_t digest_idx);
  void arm_view_timer(std::size_t r);
  void propose(std::size_t leader);
  void note_replica_committed(std::size_t r);
  void finalize(bool committed_quorum, const Digest& digest);

  sim::Simulator& simulator_;
  net::Network& network_;
  PbftConfig config_;
  Rng rng_;
  std::vector<NodeId> members_;
  std::vector<Replica> replicas_;
  Digest payload_{};
  Digest equivocation_payload_{};
  std::size_t committed_replicas_ = 0;
  PbftResult result_;
  bool instance_done_ = false;
  SimTime instance_start_ = SimTime::zero();
  sim::EventId horizon_event_{};
  std::function<void(const PbftResult&)> on_decided_;

  // Typed kernels (registered at construction): network delivery schedules
  // the per-receiver verification delay; phase advance runs the protocol
  // handler. The cancellable view/horizon timers stay on the callback path.
  sim::KernelId deliver_kernel_{};
  sim::KernelId phase_kernel_{};
  std::vector<std::uint32_t> live_scratch_;  // cohort indices, silent filtered
  std::vector<double> verify_scratch_;       // batched verification draws

  obs::ObsContext obs_;
  // Indexed by static_cast<std::size_t>(Phase).
  std::array<obs::Counter*, 5> obs_msg_{};
  obs::Counter* obs_view_changes_ = nullptr;
  obs::Counter* obs_committed_ = nullptr;
  obs::Counter* obs_aborted_ = nullptr;
};

}  // namespace mvcom::consensus
