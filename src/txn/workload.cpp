#include "txn/workload.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mvcom::txn {

std::uint64_t EpochWorkload::total_txs() const noexcept {
  return std::accumulate(reports.begin(), reports.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const ShardReport& r) {
                           return acc + r.tx_count;
                         });
}

double EpochWorkload::max_latency() const noexcept {
  double best = 0.0;
  for (const ShardReport& r : reports) {
    best = std::max(best, r.two_phase_latency());
  }
  return best;
}

namespace {

/// Erlang(k, mean/k): sum of k exponentials — mean preserved, variance
/// mean²/k.
double erlang(common::Rng& rng, double mean, int stages) {
  double total = 0.0;
  const double stage_mean = mean / static_cast<double>(stages);
  for (int s = 0; s < stages; ++s) total += rng.exponential(stage_mean);
  return total;
}

}  // namespace

TwoPhaseLatency sample_two_phase_latency(common::Rng& rng,
                                         const WorkloadConfig& config) {
  TwoPhaseLatency out;
  out.formation =
      erlang(rng, config.formation_mean_seconds, config.formation_stages);
  out.consensus =
      erlang(rng, config.consensus_mean_seconds, config.consensus_stages);
  return out;
}

double sample_submit_instant(common::Rng& rng, const WorkloadConfig& config,
                             double window_close) {
  // Summed left-to-right from window_close: bitwise-identical to the
  // historical inline `window_close + lat.formation + lat.consensus`, so
  // adopting the helper never moves a digest or a baseline.
  const TwoPhaseLatency lat = sample_two_phase_latency(rng, config);
  return window_close + lat.formation + lat.consensus;
}

WorkloadGenerator::WorkloadGenerator(Trace trace, WorkloadConfig config)
    : trace_(std::move(trace)), config_(config) {
  if (config_.num_committees == 0) {
    throw std::invalid_argument("WorkloadGenerator: need at least 1 committee");
  }
  if (config_.num_committees > trace_.blocks.size()) {
    throw std::invalid_argument(
        "WorkloadGenerator: more committees than trace blocks — every shard "
        "must contain at least one block");
  }
  if (config_.consensus_stages < 1 || config_.formation_stages < 1) {
    throw std::invalid_argument(
        "WorkloadGenerator: latency Erlang stages must be >= 1");
  }
}

EpochWorkload WorkloadGenerator::epoch(common::Rng& rng) const {
  const std::size_t m = config_.num_committees;
  EpochWorkload workload;
  workload.reports.resize(m);
  for (std::size_t c = 0; c < m; ++c) {
    workload.reports[c].committee_id = static_cast<std::uint32_t>(c);
  }

  // Deal blocks: a random permutation guarantees one block per committee in
  // the first round; in kDealAllBlocks mode the remainder is assigned
  // uniformly at random, otherwise the remaining blocks stay unused this
  // epoch.
  std::vector<std::size_t> order(trace_.blocks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(order));
  const std::size_t dealt = config_.fill == ShardFill::kOneBlockPerCommittee
                                ? m
                                : order.size();
  for (std::size_t rank = 0; rank < dealt; ++rank) {
    const std::size_t committee =
        rank < m ? rank : static_cast<std::size_t>(rng.below(m));
    workload.reports[committee].tx_count +=
        trace_.blocks[order[rank]].tx_count;
  }

  for (ShardReport& r : workload.reports) {
    const TwoPhaseLatency lat = sample_two_phase_latency(rng, config_);
    r.formation_latency = lat.formation;
    r.consensus_latency = lat.consensus;
  }
  return workload;
}

EpochWorkload WorkloadGenerator::epoch_keyed(std::uint64_t seed,
                                             std::size_t epoch_index) const {
  common::Rng rng = common::Rng::stream(seed, epoch_index);
  return epoch(rng);
}

EpochWorkload WorkloadGenerator::epoch_from_window(std::size_t epoch_index,
                                                   double window_seconds,
                                                   common::Rng& rng) const {
  if (window_seconds <= 0.0) {
    throw std::invalid_argument("epoch_from_window: window must be positive");
  }
  const double trace_start = trace_.blocks.front().btime;
  const double window_start =
      trace_start + static_cast<double>(epoch_index) * window_seconds;
  const double window_end = window_start + window_seconds;
  if (window_start > trace_.blocks.back().btime) {
    throw std::out_of_range("epoch_from_window: window beyond the trace");
  }

  // Blocks are btime-sorted: binary-search the window.
  const auto lower = std::lower_bound(
      trace_.blocks.begin(), trace_.blocks.end(), window_start,
      [](const BlockRecord& b, double t) { return b.btime < t; });
  const auto upper = std::lower_bound(
      lower, trace_.blocks.end(), window_end,
      [](const BlockRecord& b, double t) { return b.btime < t; });

  const std::size_t m = config_.num_committees;
  EpochWorkload workload;
  workload.reports.resize(m);
  for (std::size_t c = 0; c < m; ++c) {
    workload.reports[c].committee_id = static_cast<std::uint32_t>(c);
  }
  // Deal the window's blocks; committees may be empty in quiet windows.
  for (auto it = lower; it != upper; ++it) {
    workload.reports[rng.below(m)].tx_count += it->tx_count;
  }
  for (ShardReport& r : workload.reports) {
    const TwoPhaseLatency lat = sample_two_phase_latency(rng, config_);
    r.formation_latency = lat.formation;
    r.consensus_latency = lat.consensus;
  }
  return workload;
}

}  // namespace mvcom::txn
