#include "txn/xshard/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/fnv.hpp"

namespace mvcom::txn {

namespace {

using common::fnv1a_mix;
using common::kFnv1aBasis;

/// Keyed stream salts for the end-to-end paths. Far from both the
/// pipeline's 4·epoch+slot indices and the account generator's 2^40 band.
constexpr std::uint64_t kObliviousStreamBase = std::uint64_t{1} << 41;
constexpr std::uint64_t kLatencyStreamBase = std::uint64_t{1} << 42;

}  // namespace

const char* to_string(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kGreedyColoring:
      return "greedy-coloring";
    case SchedulerPolicy::kDynamicDeadline:
      return "dynamic-deadline";
  }
  return "unknown";
}

ScheduleOutcome schedule(const AccountEpoch& epoch, const Assembly& assembly,
                         const XShardConfig& config) {
  const std::uint32_t s_count = config.num_shards;
  const std::uint32_t rounds = config.rounds_per_epoch;
  if (s_count == 0 || rounds == 0 || config.shard_round_capacity == 0) {
    throw std::invalid_argument(
        "schedule: shards, rounds, and capacity must be >= 1");
  }
  if (assembly.placement.size() != epoch.txs.size()) {
    throw std::invalid_argument(
        "schedule: assembly does not match the epoch (placement size)");
  }

  ScheduleOutcome out;
  out.tx_outcomes.resize(epoch.txs.size());
  out.shards.resize(s_count);
  for (std::uint32_t i = 0; i < s_count; ++i) {
    out.shards[i].committee_id = i;
  }

  // Reader-shared / writer-exclusive lock table, indexed by account id.
  // write_free[a]: first round past the last write lock; read_high[a]:
  // first round past the last read lock. A write needs both clear, a read
  // only write_free.
  std::uint32_t max_account = 0;
  for (const AccountTx& tx : epoch.txs) {
    tx.for_each_account([&](std::uint32_t account, bool /*write*/) {
      max_account = std::max(max_account, account);
    });
  }
  std::vector<std::uint32_t> write_free(max_account + 1, 0);
  std::vector<std::uint32_t> read_high(max_account + 1, 0);
  // Legs executed per (shard, round).
  std::vector<std::uint64_t> used(static_cast<std::size_t>(s_count) * rounds, 0);
  const auto used_at = [&](std::uint32_t shard, std::uint32_t r)
      -> std::uint64_t& { return used[static_cast<std::size_t>(shard) * rounds + r]; };

  std::vector<std::uint32_t> remotes;  // distinct non-placement shards, per TX
  const bool online = config.scheduler == SchedulerPolicy::kDynamicDeadline;
  out.ledger_digest = kFnv1aBasis;

  for (std::size_t t = 0; t < epoch.txs.size(); ++t) {
    const AccountTx& tx = epoch.txs[t];
    const std::uint32_t placement = assembly.placement[t];
    ShardTally& tally = out.shards[placement];

    remotes.clear();
    std::uint32_t lock_bound = 0;  // earliest round every account is free
    tx.for_each_account([&](std::uint32_t account, bool write) {
      const std::uint32_t shard = home_shard(account, s_count);
      if (shard != placement &&
          std::find(remotes.begin(), remotes.end(), shard) == remotes.end()) {
        remotes.push_back(shard);
      }
      std::uint32_t free_at = write_free[account];
      if (write) free_at = std::max(free_at, read_high[account]);
      lock_bound = std::max(lock_bound, free_at);
    });
    const bool cross = !remotes.empty();
    const std::uint32_t span = cross ? 2 : 1;

    // Schedulable window: the greedy colorer sees the whole budget; the
    // dynamic scheduler starts at the TX's arrival round and gives up
    // `deadline_slack_rounds` later.
    std::uint32_t arrival = 0;
    if (online) {
      const double frac =
          (tx.timestamp - epoch.window_start) /
          (epoch.window_end - epoch.window_start);
      arrival = static_cast<std::uint32_t>(
          std::clamp(frac, 0.0, 1.0) * static_cast<double>(rounds));
      arrival = std::min(arrival, rounds - 1);
    }
    bool committed = false;
    std::uint32_t r = std::max(arrival, lock_bound);
    // The home leg must leave room for the full span: a cross TX cannot
    // start in the budget's last round.
    const std::uint32_t last_start = span <= rounds ? rounds - span : 0;
    std::uint32_t deadline = last_start;
    if (online && arrival + config.deadline_slack_rounds < deadline) {
      deadline = arrival + config.deadline_slack_rounds;
    }
    for (; span <= rounds && r <= deadline; ++r) {
      if (used_at(placement, r) >= config.shard_round_capacity) continue;
      bool fits = true;
      for (const std::uint32_t q : remotes) {
        if (used_at(q, r + 1) >= config.shard_round_capacity) {
          fits = false;
          break;
        }
      }
      if (fits) {
        committed = true;
        break;
      }
    }

    TxOutcome& result = out.tx_outcomes[t];
    result.shard = placement;
    if (committed) {
      result.cls = cross ? TxClass::kCross : TxClass::kIntra;
      result.round = r;
      used_at(placement, r) += 1;
      tally.legs_used += 1;
      for (const std::uint32_t q : remotes) {
        used_at(q, r + 1) += 1;
        out.shards[q].legs_used += 1;
      }
      tx.for_each_account([&](std::uint32_t account, bool write) {
        if (write) {
          write_free[account] = std::max(write_free[account], r + span);
        } else {
          read_high[account] = std::max(read_high[account], r + span);
        }
      });
      if (cross) {
        ++tally.cross_committed;
        ++out.cross_txs;
      } else {
        ++tally.intra_committed;
        ++out.intra_txs;
      }
      ++out.committed_txs;
      out.rounds_used = std::max(out.rounds_used, r + span);
    } else {
      result.cls = TxClass::kDeferred;
      ++tally.deferred;
      ++out.deferred_txs;
    }

    out.ledger_digest = fnv1a_mix(out.ledger_digest, tx.tx_id);
    out.ledger_digest =
        fnv1a_mix(out.ledger_digest, static_cast<std::uint64_t>(result.cls));
    out.ledger_digest = fnv1a_mix(out.ledger_digest, result.shard);
    out.ledger_digest = fnv1a_mix(out.ledger_digest, result.round);
  }
  return out;
}

XShardEpoch run_epoch(const AccountEpoch& epoch, const XShardConfig& config,
                      std::uint64_t seed) {
  common::Rng oblivious = common::Rng::stream(
      seed, kObliviousStreamBase + static_cast<std::uint64_t>(epoch.epoch_index));
  XShardEpoch out;
  out.assembly =
      assemble(epoch, config.num_shards, config.assembler, oblivious);
  out.outcome = schedule(epoch, out.assembly, config);
  return out;
}

AccountWorkloadGenerator::AccountWorkloadGenerator(AccountModelConfig model,
                                                   XShardConfig xshard,
                                                   WorkloadConfig latency)
    : generator_(model), xshard_(xshard), latency_(latency) {
  if (latency_.mode != WorkloadMode::kAccountModel) {
    throw std::invalid_argument(
        "AccountWorkloadGenerator: WorkloadConfig.mode must be kAccountModel");
  }
  if (model.num_shards != xshard_.num_shards ||
      latency_.num_committees != xshard_.num_shards) {
    throw std::invalid_argument(
        "AccountWorkloadGenerator: model, assembler, and latency configs "
        "disagree on the shard/committee count");
  }
}

AccountWorkloadGenerator::EpochResult AccountWorkloadGenerator::epoch_keyed(
    std::uint64_t seed, std::size_t epoch_index) const {
  EpochResult out;
  out.traffic = generator_.epoch_keyed(seed, epoch_index);
  out.xshard = run_epoch(out.traffic, xshard_, seed);

  common::Rng latency_rng = common::Rng::stream(
      seed, kLatencyStreamBase + static_cast<std::uint64_t>(epoch_index));
  out.workload.reports.resize(xshard_.num_shards);
  for (std::uint32_t c = 0; c < xshard_.num_shards; ++c) {
    ShardReport& r = out.workload.reports[c];
    r.committee_id = c;
    r.tx_count = out.xshard.outcome.shards[c].committed();  // effective s_i
    const TwoPhaseLatency lat = sample_two_phase_latency(latency_rng, latency_);
    r.formation_latency = lat.formation;
    r.consensus_latency = lat.consensus;
  }
  return out;
}

}  // namespace mvcom::txn
