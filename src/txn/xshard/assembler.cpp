#include "txn/xshard/assembler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvcom::txn {

const char* to_string(AssemblerPolicy policy) noexcept {
  switch (policy) {
    case AssemblerPolicy::kConflictAware:
      return "conflict-aware";
    case AssemblerPolicy::kRandomOblivious:
      return "random-oblivious";
  }
  return "unknown";
}

Assembly assemble(const AccountEpoch& epoch, std::uint32_t num_shards,
                  AssemblerPolicy policy, common::Rng& rng) {
  if (num_shards == 0) {
    throw std::invalid_argument("assemble: need at least one shard");
  }
  Assembly out;
  out.placement.resize(epoch.txs.size());

  // Scratch reused across TXs: touched-shard tallies this TX (sparse reset
  // via the touched list) and running per-shard load for tie-breaking.
  std::vector<std::uint32_t> tally(num_shards, 0);
  std::vector<std::uint32_t> touched;
  std::vector<std::uint64_t> load(num_shards, 0);

  for (std::size_t t = 0; t < epoch.txs.size(); ++t) {
    const AccountTx& tx = epoch.txs[t];
    touched.clear();
    tx.for_each_account([&](std::uint32_t account, bool /*write*/) {
      const std::uint32_t shard = home_shard(account, num_shards);
      if (tally[shard]++ == 0) touched.push_back(shard);
    });

    std::uint32_t placement = 0;
    if (policy == AssemblerPolicy::kRandomOblivious) {
      placement = static_cast<std::uint32_t>(rng.below(num_shards));
    } else {
      // Majority home shard; ties by lighter current load, then lower id —
      // all three keys deterministic, so the arm needs no rng at all.
      std::uint32_t best = touched.front();
      for (const std::uint32_t shard : touched) {
        if (tally[shard] > tally[best] ||
            (tally[shard] == tally[best] &&
             (load[shard] < load[best] ||
              (load[shard] == load[best] && shard < best)))) {
          best = shard;
        }
      }
      placement = best;
    }
    out.placement[t] = placement;
    load[placement] += 1;

    // Legs: the home leg plus one per distinct foreign shard homing an
    // accessed account. A random placement off every account's home still
    // pays the home leg itself plus all the account shards as remotes.
    const bool placement_touched = tally[placement] != 0;
    const std::uint64_t legs =
        static_cast<std::uint64_t>(touched.size()) + (placement_touched ? 0 : 1);
    out.total_legs += legs;
    if (legs > 1) ++out.cross_txs;

    for (const std::uint32_t shard : touched) tally[shard] = 0;
  }
  return out;
}

}  // namespace mvcom::txn
