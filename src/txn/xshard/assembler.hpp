#pragma once
// Conflict-aware shard assembly — mapping each epoch's account TXs onto the
// member committees' shards. A TX "lives" at its placement shard (where its
// home leg executes); every *other* shard that homes one of its accounts
// costs a remote leg in the 2-phase commit. Placement therefore decides how
// much cross-shard traffic the scheduler must pay for:
//
//   kConflictAware — place each TX at the home shard owning the most of its
//     accessed accounts (ties → lighter-loaded, then lower id). Minimizes
//     that TX's remote legs and co-locates TXs that share hot accounts, so
//     their conflicts serialize inside one committee instead of holding
//     cross-shard locks.
//   kRandomOblivious — place uniformly at random, ignoring account homes:
//     the conflict-oblivious control arm of the bench_cross_shard sweeps.
//
// Assembly is a pure function of (epoch, num_shards, policy[, rng]); the
// only randomness is the oblivious arm's placement draw, fed by an explicit
// keyed stream so both arms replay bit-for-bit.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "txn/accounts/model.hpp"

namespace mvcom::txn {

enum class AssemblerPolicy {
  kConflictAware,
  kRandomOblivious,
};

[[nodiscard]] const char* to_string(AssemblerPolicy policy) noexcept;

/// Per-epoch placement, parallel to AccountEpoch::txs.
struct Assembly {
  std::vector<std::uint32_t> placement;  // placement shard per TX
  std::uint64_t total_legs = 0;  // Σ per-TX legs (home + distinct remotes)
  std::uint64_t cross_txs = 0;   // TXs needing more than the home leg
};

/// Maps every TX of `epoch` onto a shard. `rng` is consumed only by
/// kRandomOblivious (exactly one draw per TX); kConflictAware never touches
/// it, so the conflict-aware arm is rng-free and trivially bitwise-stable.
[[nodiscard]] Assembly assemble(const AccountEpoch& epoch,
                                std::uint32_t num_shards,
                                AssemblerPolicy policy, common::Rng& rng);

}  // namespace mvcom::txn
