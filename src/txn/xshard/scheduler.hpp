#pragma once
// Cross-shard transaction scheduling baselines, after Adhikari & Busch
// ("Fast Transaction Scheduling in Blockchain Sharding"; "On the Efficiency
// of Dynamic Transaction Scheduling in Blockchain Sharding").
//
// Model: an epoch is a budget of R rounds; each shard executes at most C
// transaction *legs* per round. An intra-shard TX costs one leg at its
// placement shard and holds its accounts for one round. A cross-shard TX is
// 2-phase: the home leg at round r, the remote legs at round r+1, with
// account locks held for both rounds — the lock-amplification that makes
// cross-shard traffic expensive. Accounts are reader-shared / writer-
// exclusive. A TX that cannot be scheduled inside the epoch's budget (or,
// for the dynamic scheduler, inside its deadline slack) is *deferred* —
// it consumes no capacity and shrinks its committee's effective s_i.
//
//   kGreedyColoring — the batch baseline: greedily "color" TXs in arrival
//     order with the smallest feasible round, deadline-blind, the whole
//     round budget available. Packs densely; freshness-oblivious.
//   kDynamicDeadline — the online baseline: a TX becomes schedulable at its
//     arrival round and must commit within `deadline_slack_rounds`; later
//     feasible slots are abandoned as deferrals. Respects freshness; defers
//     more under contention.
//
// Every scheduler is a pure deterministic function of (epoch, assembly,
// config): TXs are processed in timestamp order (ties by tx_id), the lock
// table and capacity grids are plain arrays, and the per-TX outcome ledger
// folds into an FNV-1a digest — the replay witness, same contract as
// EpochReport::event_order_digest.

#include <cstdint>
#include <vector>

#include "txn/accounts/model.hpp"
#include "txn/workload.hpp"
#include "txn/xshard/assembler.hpp"

namespace mvcom::txn {

enum class SchedulerPolicy {
  kGreedyColoring,
  kDynamicDeadline,
};

[[nodiscard]] const char* to_string(SchedulerPolicy policy) noexcept;

/// How one TX left the epoch.
enum class TxClass : std::uint8_t {
  kIntra = 0,     // committed, single leg
  kCross = 1,     // committed, 2-phase home/remote legs
  kDeferred = 2,  // no feasible slot — carries to a later epoch
};

struct XShardConfig {
  std::uint32_t num_shards = 20;
  std::uint32_t rounds_per_epoch = 64;
  /// TX legs one shard can execute per round (Ĉ at round granularity).
  std::uint64_t shard_round_capacity = 64;
  /// Dynamic scheduler: rounds past arrival before a TX is abandoned.
  std::uint32_t deadline_slack_rounds = 16;
  AssemblerPolicy assembler = AssemblerPolicy::kConflictAware;
  SchedulerPolicy scheduler = SchedulerPolicy::kDynamicDeadline;
};

struct TxOutcome {
  TxClass cls = TxClass::kDeferred;
  std::uint32_t shard = 0;  // placement shard
  std::uint32_t round = 0;  // home-leg commit round (0 when deferred)
};

/// Per-committee commit/defer tally — the bridge back to ShardReport: a
/// committee's *effective* s_i is committed(), not everything assembled.
struct ShardTally {
  std::uint32_t committee_id = 0;
  std::uint64_t intra_committed = 0;
  std::uint64_t cross_committed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t legs_used = 0;  // capacity actually consumed here

  [[nodiscard]] std::uint64_t committed() const noexcept {
    return intra_committed + cross_committed;
  }
};

struct ScheduleOutcome {
  std::vector<TxOutcome> tx_outcomes;  // parallel to AccountEpoch::txs
  std::vector<ShardTally> shards;      // one per committee
  std::uint64_t committed_txs = 0;
  std::uint64_t intra_txs = 0;
  std::uint64_t cross_txs = 0;
  std::uint64_t deferred_txs = 0;
  std::uint32_t rounds_used = 0;  // last occupied round + 1
  /// FNV-1a over (tx_id, class, shard, round) in TX order — the commit/
  /// abort/defer ledger's replay witness.
  std::uint64_t ledger_digest = 0;
};

/// Schedules one assembled epoch. Pure and allocation-bounded: O(TXs + S·R).
[[nodiscard]] ScheduleOutcome schedule(const AccountEpoch& epoch,
                                       const Assembly& assembly,
                                       const XShardConfig& config);

/// One epoch end-to-end: assemble under config.assembler (the oblivious
/// arm's placement stream is keyed off (seed, epoch index)), then schedule
/// under config.scheduler.
struct XShardEpoch {
  Assembly assembly;
  ScheduleOutcome outcome;
};
[[nodiscard]] XShardEpoch run_epoch(const AccountEpoch& epoch,
                                    const XShardConfig& config,
                                    std::uint64_t seed);

/// The account-model workload path: WorkloadConfig::mode == kAccountModel
/// feeds EpochWorkload through here instead of WorkloadGenerator. Committee
/// i's tx_count is its *effective committed* TX count — the scheduler's
/// deferrals shrink s_i, which is exactly what makes the SE utility
/// workload-dependent. Latencies come from the shared two-phase model.
class AccountWorkloadGenerator {
 public:
  /// Requires latency.mode == kAccountModel and a consistent shard count
  /// across all three configs (model.num_shards == xshard.num_shards ==
  /// latency.num_committees); throws std::invalid_argument otherwise.
  AccountWorkloadGenerator(AccountModelConfig model, XShardConfig xshard,
                           WorkloadConfig latency);

  struct EpochResult {
    AccountEpoch traffic;
    XShardEpoch xshard;
    EpochWorkload workload;
  };

  /// Pure function of (seed, epoch_index), like WorkloadGenerator's keyed
  /// variant — replayable in any order, under any pipeline overlap.
  [[nodiscard]] EpochResult epoch_keyed(std::uint64_t seed,
                                        std::size_t epoch_index) const;

  [[nodiscard]] const AccountModelConfig& model() const noexcept {
    return generator_.config();
  }
  [[nodiscard]] const XShardConfig& xshard() const noexcept { return xshard_; }

 private:
  AccountTxGenerator generator_;
  XShardConfig xshard_;
  WorkloadConfig latency_;
};

}  // namespace mvcom::txn
