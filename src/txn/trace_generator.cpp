#include "txn/trace_generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace mvcom::txn {

Trace generate_trace(const TraceGeneratorConfig& config, common::Rng& rng) {
  if (config.num_blocks == 0) {
    throw std::invalid_argument("generate_trace: num_blocks must be positive");
  }
  if (config.target_total_txs < config.num_blocks) {
    throw std::invalid_argument(
        "generate_trace: need at least one transaction per block");
  }

  const auto n = config.num_blocks;
  const double mean_txs = static_cast<double>(config.target_total_txs) /
                          static_cast<double>(n);

  // Draw raw right-skewed counts, then rescale to pin the total.
  std::vector<double> raw(n);
  double raw_sum = 0.0;
  for (auto& r : raw) {
    r = rng.lognormal_mean_sd(mean_txs, config.tx_count_cv * mean_txs);
    raw_sum += r;
  }

  Trace trace;
  trace.blocks.reserve(n);
  double t = config.start_time;
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    t += rng.exponential(config.mean_interblock_seconds);
    BlockRecord block;
    block.block_id = i;
    block.btime = t;
    const double scaled =
        raw[i] / raw_sum * static_cast<double>(config.target_total_txs);
    block.tx_count = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(scaled));
    assigned += block.tx_count;
    // bhash = double-SHA256 over the block header fields, Bitcoin-style.
    block.bhash = crypto::to_hex(crypto::Sha256::double_hash(
        std::to_string(block.block_id) + "|" + std::to_string(block.btime)));
    trace.blocks.push_back(std::move(block));
  }

  // Rounding left a small residue; settle it on the last block so the total
  // is exact. The residue is O(num_blocks), tiny relative to any block.
  auto& last = trace.blocks.back();
  if (assigned < config.target_total_txs) {
    last.tx_count += config.target_total_txs - assigned;
  } else if (assigned > config.target_total_txs) {
    const std::uint64_t excess = assigned - config.target_total_txs;
    last.tx_count = last.tx_count > excess ? last.tx_count - excess : 1;
  }

  assert(std::is_sorted(trace.blocks.begin(), trace.blocks.end(),
                        [](const BlockRecord& a, const BlockRecord& b) {
                          return a.btime < b.btime;
                        }));
  return trace;
}

}  // namespace mvcom::txn
