#include "txn/trace_io.hpp"

#include <charconv>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/csv.hpp"

namespace mvcom::txn {
namespace {

std::uint64_t parse_u64(const std::string& s, const char* field) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("trace CSV: bad ") + field + ": " + s);
  }
  return v;
}

double parse_f64(const std::string& s, const char* field) {
  try {
    std::size_t idx = 0;
    const double v = std::stod(s, &idx);
    if (idx != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace CSV: bad ") + field + ": " + s);
  }
}

}  // namespace

void write_trace_csv(const Trace& trace, const std::filesystem::path& path) {
  common::CsvWriter writer(path);
  writer.write_row({"blockID", "bhash", "btime", "txs"});
  for (const BlockRecord& b : trace.blocks) {
    writer.write_row({std::to_string(b.block_id), b.bhash,
                      std::to_string(b.btime), std::to_string(b.tx_count)});
  }
}

Trace load_trace_csv(const std::filesystem::path& path) {
  const common::CsvFile file = common::read_csv(path, /*expect_header=*/true);
  if (file.header != common::CsvRow{"blockID", "bhash", "btime", "txs"}) {
    throw std::runtime_error("trace CSV: unexpected header in " + path.string());
  }
  Trace trace;
  trace.blocks.reserve(file.rows.size());
  for (const auto& row : file.rows) {
    BlockRecord b;
    b.block_id = parse_u64(row[0], "blockID");
    b.bhash = row[1];
    b.btime = parse_f64(row[2], "btime");
    b.tx_count = parse_u64(row[3], "txs");
    trace.blocks.push_back(std::move(b));
  }
  return trace;
}

namespace {

std::uint32_t parse_u32(const std::string& s, const char* field) {
  const std::uint64_t v = parse_u64(s, field);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error(std::string("trace CSV: bad ") + field + ": " + s);
  }
  return static_cast<std::uint32_t>(v);
}

std::string join_accounts(const std::vector<std::uint32_t>& accounts) {
  std::string out;
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(accounts[i]);
  }
  return out;
}

std::vector<std::uint32_t> split_accounts(const std::string& s,
                                          const char* field) {
  std::vector<std::uint32_t> out;
  if (s.empty()) return out;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t end = s.find(';', begin);
    const std::string item = s.substr(
        begin, end == std::string::npos ? std::string::npos : end - begin);
    out.push_back(parse_u32(item, field));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out;
}

}  // namespace

void write_account_txs_csv(const std::vector<AccountTx>& txs,
                           const std::filesystem::path& path) {
  common::CsvWriter writer(path);
  writer.write_row({"txID", "ts", "sender", "writes", "reads"});
  for (const AccountTx& tx : txs) {
    writer.write_row({std::to_string(tx.tx_id), std::to_string(tx.timestamp),
                      std::to_string(tx.sender), join_accounts(tx.writes),
                      join_accounts(tx.reads)});
  }
}

std::vector<AccountTx> load_account_txs_csv(const std::filesystem::path& path) {
  const common::CsvFile file = common::read_csv(path, /*expect_header=*/true);
  if (file.header != common::CsvRow{"txID", "ts", "sender", "writes", "reads"}) {
    throw std::runtime_error("trace CSV: unexpected header in " + path.string());
  }
  std::vector<AccountTx> txs;
  txs.reserve(file.rows.size());
  for (const auto& row : file.rows) {
    AccountTx tx;
    tx.tx_id = parse_u64(row[0], "txID");
    tx.timestamp = parse_f64(row[1], "ts");
    tx.sender = parse_u32(row[2], "sender");
    tx.writes = split_accounts(row[3], "writes");
    tx.reads = split_accounts(row[4], "reads");
    txs.push_back(std::move(tx));
  }
  return txs;
}

}  // namespace mvcom::txn
