#include "txn/trace_io.hpp"

#include <charconv>
#include <stdexcept>
#include <string>

#include "common/csv.hpp"

namespace mvcom::txn {
namespace {

std::uint64_t parse_u64(const std::string& s, const char* field) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("trace CSV: bad ") + field + ": " + s);
  }
  return v;
}

double parse_f64(const std::string& s, const char* field) {
  try {
    std::size_t idx = 0;
    const double v = std::stod(s, &idx);
    if (idx != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace CSV: bad ") + field + ": " + s);
  }
}

}  // namespace

void write_trace_csv(const Trace& trace, const std::filesystem::path& path) {
  common::CsvWriter writer(path);
  writer.write_row({"blockID", "bhash", "btime", "txs"});
  for (const BlockRecord& b : trace.blocks) {
    writer.write_row({std::to_string(b.block_id), b.bhash,
                      std::to_string(b.btime), std::to_string(b.tx_count)});
  }
}

Trace load_trace_csv(const std::filesystem::path& path) {
  const common::CsvFile file = common::read_csv(path, /*expect_header=*/true);
  if (file.header != common::CsvRow{"blockID", "bhash", "btime", "txs"}) {
    throw std::runtime_error("trace CSV: unexpected header in " + path.string());
  }
  Trace trace;
  trace.blocks.reserve(file.rows.size());
  for (const auto& row : file.rows) {
    BlockRecord b;
    b.block_id = parse_u64(row[0], "blockID");
    b.bhash = row[1];
    b.btime = parse_f64(row[2], "btime");
    b.tx_count = parse_u64(row[3], "txs");
    trace.blocks.push_back(std::move(b));
  }
  return trace;
}

}  // namespace mvcom::txn
