#pragma once
// Per-transaction cumulative-age accounting.
//
// The paper measures a shard's cumulative age coarsely as Π_i = x_i(t − l_i)
// — the wait between the shard's submission and the deadline. This module
// provides the finer per-transaction view the metric abstracts: every TX in
// a shard has been waiting since its own creation time (btime of its
// block), so the *true* cumulative age of a shard committed at instant T is
// Σ_tx (T − arrival_tx). Benches use it to show that MVCom's selections
// reduce the real per-TX waiting, not just the proxy.

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "txn/trace.hpp"

namespace mvcom::txn {

/// Age profile of one shard's transactions at a reference instant.
struct AgeProfile {
  std::uint64_t tx_count = 0;
  double total_age = 0.0;   // Σ_tx (T − arrival), seconds
  double max_age = 0.0;
  [[nodiscard]] double mean_age() const noexcept {
    return tx_count ? total_age / static_cast<double>(tx_count) : 0.0;
  }
};

/// A shard as a set of trace blocks (each block's TXs share its btime).
struct ShardBlocks {
  std::uint32_t committee_id = 0;
  std::vector<std::size_t> block_indices;  // indices into the trace
};

/// Deals trace blocks to `shards` committees (one per committee first, the
/// rest uniform) and records which blocks each shard holds — the
/// provenance-preserving version of deal_blocks().
[[nodiscard]] std::vector<ShardBlocks> deal_blocks_with_provenance(
    const Trace& trace, std::size_t shards, common::Rng& rng);

/// Per-TX cumulative age of `shard` if its transactions commit at absolute
/// time `commit_time` (same clock as the trace's btime).
[[nodiscard]] AgeProfile shard_age_profile(const Trace& trace,
                                           const ShardBlocks& shard,
                                           double commit_time);

/// Aggregate age over a set of shards committed at one instant (the final
/// block's commit).
[[nodiscard]] AgeProfile total_age_profile(
    const Trace& trace, std::span<const ShardBlocks> shards,
    double commit_time);

}  // namespace mvcom::txn
