#pragma once
// Synthetic Bitcoin-like trace generator — the documented substitution for
// the paper's proprietary January-2016 snapshot (see DESIGN.md §3).
//
// Calibration targets, all taken from the paper or public Bitcoin stats:
//  * 1378 blocks, ~1.5M transactions total (mean ≈ 1088 TXs/block);
//  * inter-block time exponential with mean 600 s (PoW difficulty target);
//  * per-block transaction counts right-skewed (log-normal), then rescaled
//    so the total matches the target exactly — the MVCom utility depends on
//    absolute TX counts, so the total is pinned rather than approximate.

#include "common/rng.hpp"
#include "txn/trace.hpp"

namespace mvcom::txn {

struct TraceGeneratorConfig {
  std::uint64_t num_blocks = 1378;
  std::uint64_t target_total_txs = 1'500'000;
  double mean_interblock_seconds = 600.0;
  /// Coefficient of variation of per-block TX counts before rescaling.
  double tx_count_cv = 0.45;
  /// Trace epoch start — 2016-01-01T00:00:00Z, matching the paper's snapshot.
  double start_time = 1451606400.0;
};

/// Generates a deterministic trace for the given seed-carrying engine.
/// Postconditions: blocks sorted by btime; total_txs() == target_total_txs
/// (plus/minus nothing — rounding remainder is assigned to the last block);
/// every block has tx_count >= 1.
[[nodiscard]] Trace generate_trace(const TraceGeneratorConfig& config,
                                   common::Rng& rng);

}  // namespace mvcom::txn
