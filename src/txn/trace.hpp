#pragma once
// Transaction-trace schema. The paper samples 1378 blocks from the first
// 1.5M Bitcoin transactions of January 2016; each record carries exactly the
// four fields the paper names: blockID, bhash, btime, txs (§VI-A).

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace mvcom::txn {

/// One block of the (synthetic) Bitcoin trace.
struct BlockRecord {
  std::uint64_t block_id = 0;
  std::string bhash;        // hex-encoded SHA-256, as in the Bitcoin snapshot
  double btime = 0.0;       // creation timestamp, Unix seconds
  std::uint64_t tx_count = 0;  // number of transactions in the block
};

/// A full trace: blocks ordered by btime.
struct Trace {
  std::vector<BlockRecord> blocks;

  [[nodiscard]] std::uint64_t total_txs() const noexcept {
    return std::accumulate(blocks.begin(), blocks.end(), std::uint64_t{0},
                           [](std::uint64_t acc, const BlockRecord& b) {
                             return acc + b.tx_count;
                           });
  }
};

}  // namespace mvcom::txn
