#include "txn/age.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace mvcom::txn {

std::vector<ShardBlocks> deal_blocks_with_provenance(const Trace& trace,
                                                     std::size_t shards,
                                                     common::Rng& rng) {
  if (shards == 0) {
    throw std::invalid_argument("deal_blocks_with_provenance: shards > 0");
  }
  if (shards > trace.blocks.size()) {
    throw std::invalid_argument(
        "deal_blocks_with_provenance: more shards than blocks");
  }
  std::vector<ShardBlocks> out(shards);
  for (std::size_t c = 0; c < shards; ++c) {
    out[c].committee_id = static_cast<std::uint32_t>(c);
  }
  std::vector<std::size_t> order(trace.blocks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(order));
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t shard =
        rank < shards ? rank : static_cast<std::size_t>(rng.below(shards));
    out[shard].block_indices.push_back(order[rank]);
  }
  return out;
}

AgeProfile shard_age_profile(const Trace& trace, const ShardBlocks& shard,
                             double commit_time) {
  AgeProfile profile;
  for (const std::size_t b : shard.block_indices) {
    const BlockRecord& block = trace.blocks.at(b);
    // All TXs of a block share its creation time; negative waits (blocks
    // "created" after the commit instant) clamp to zero.
    const double age = std::max(0.0, commit_time - block.btime);
    profile.tx_count += block.tx_count;
    profile.total_age += age * static_cast<double>(block.tx_count);
    profile.max_age = std::max(profile.max_age, age);
  }
  return profile;
}

AgeProfile total_age_profile(const Trace& trace,
                             std::span<const ShardBlocks> shards,
                             double commit_time) {
  AgeProfile total;
  for (const ShardBlocks& shard : shards) {
    const AgeProfile p = shard_age_profile(trace, shard, commit_time);
    total.tx_count += p.tx_count;
    total.total_age += p.total_age;
    total.max_age = std::max(total.max_age, p.max_age);
  }
  return total;
}

}  // namespace mvcom::txn
