#pragma once
// Account-based transaction workloads — the contention regime the paper
// never stresses. The block-trace path (txn/workload.hpp) treats every TX as
// independent and intra-shard, so a committee's s_i is workload-free. Real
// sharded traffic is account-structured: a few hot accounts absorb most of
// the access mass (Zipf), arrivals come in bursts, and a tunable fraction of
// TXs touch accounts homed on *other* shards — the cross-shard 2-phase
// traffic that Adhikari & Busch's scheduling papers ("Fast Transaction
// Scheduling in Blockchain Sharding", "On the Efficiency of Dynamic
// Transaction Scheduling in Blockchain Sharding") are built around.
//
// The generator here produces AccountTx traces per epoch, keyed off
// Rng::stream substreams: epoch k's traffic is a pure function of
// (seed, k), reproducible in any order and under any pipeline overlap —
// the same purity contract stage A of the streaming pipeline relies on
// (DESIGN.md §13, §15).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace mvcom::txn {

/// One account-based transaction. The sender is always written; `reads` and
/// `writes` are the extra accounts the TX touches (deduplicated, never
/// containing the sender). Which shards the TX spans is not a property of
/// the TX itself — it falls out of home_shard() over its account set, so the
/// same trace can be assembled onto any committee count.
struct AccountTx {
  std::uint64_t tx_id = 0;
  double timestamp = 0.0;  // arrival instant, trace clock (Unix seconds)
  std::uint32_t sender = 0;
  std::vector<std::uint32_t> reads;
  std::vector<std::uint32_t> writes;

  /// Visits sender + writes + reads, in that fixed order (write set first —
  /// the locking order every scheduler in txn/xshard uses).
  template <typename Fn>
  void for_each_account(Fn&& fn) const {
    fn(sender, /*write=*/true);
    for (const std::uint32_t a : writes) fn(a, /*write=*/true);
    for (const std::uint32_t a : reads) fn(a, /*write=*/false);
  }
};

/// Home-shard mapping shared by the generator and the assembler. Plain
/// modulo keeps it trivially invertible: snapping account a onto shard t is
/// a − a%S + t, which preserves the account's Zipf rank band — the property
/// the generator's intra-shard partner selection depends on.
[[nodiscard]] constexpr std::uint32_t home_shard(
    std::uint32_t account, std::uint32_t num_shards) noexcept {
  return account % num_shards;
}

struct AccountModelConfig {
  std::uint32_t num_accounts = 100'000;
  /// Shard count the cross_shard_ratio knob is calibrated against; must
  /// match the assembler's committee count for the knob to mean anything.
  std::uint32_t num_shards = 20;
  std::uint64_t txs_per_epoch = 20'000;
  /// Zipf skew s of account popularity: P(rank k) ∝ 1/(k+1)^s. 0 = uniform,
  /// ~1.1 matches measured Ethereum hot-account skew.
  double zipf_skew = 1.1;
  /// Probability that a partner account is drawn placement-free (Zipf over
  /// all accounts, so almost surely homed elsewhere) instead of being
  /// snapped onto the sender's home shard. The knob of the ratio sweeps.
  double cross_shard_ratio = 0.1;
  /// Extra read / write accounts per TX, each uniform in [0, max].
  std::size_t max_extra_reads = 2;
  std::size_t max_extra_writes = 1;
  /// Burst arrival: this fraction of the epoch's TXs lands inside
  /// `bursts_per_epoch` sub-windows each `burst_width_fraction` of the
  /// window wide; the rest arrives uniformly.
  double burst_fraction = 0.2;
  std::size_t bursts_per_epoch = 3;
  double burst_width_fraction = 0.02;
  /// Epoch window length (seconds) and trace start — epoch k spans
  /// [start + k·W, start + (k+1)·W).
  double window_seconds = 1500.0;
  double start_time = 1451606400.0;  // 2016-01-01T00:00:00Z, as the trace
};

/// One epoch's account-based traffic, timestamp-sorted (ties by tx_id).
struct AccountEpoch {
  std::size_t epoch_index = 0;
  double window_start = 0.0;
  double window_end = 0.0;
  std::vector<AccountTx> txs;
};

/// Deterministic per-epoch AccountTx generator. epoch_keyed(seed, k) is a
/// pure function of (seed, k): internally it derives three Rng::stream
/// substreams (arrival shape, account identity, set sizes) at salted
/// indices, so account-model streams never alias the pipeline's 4-slot
/// per-epoch streams even under a shared top-level seed.
class AccountTxGenerator {
 public:
  explicit AccountTxGenerator(AccountModelConfig config);

  [[nodiscard]] AccountEpoch epoch_keyed(std::uint64_t seed,
                                         std::size_t epoch_index) const;

  [[nodiscard]] const AccountModelConfig& config() const noexcept {
    return config_;
  }

 private:
  AccountModelConfig config_;
  common::ZipfSampler zipf_;
};

}  // namespace mvcom::txn
