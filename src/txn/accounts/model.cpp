#include "txn/accounts/model.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvcom::txn {

namespace {

/// Substream slots of one account-model epoch. Salted far away from the
/// pipeline's 4·epoch+slot indices (which stay < 2^32 for any realistic
/// run) so a shared top-level seed never aliases the two families.
constexpr std::uint64_t kAccountStreamBase = std::uint64_t{1} << 40;
enum Slot : std::uint64_t {
  kArrivalSlot = 0,   // burst membership + timestamps
  kIdentitySlot = 1,  // Zipf account draws + cross/intra coin
  kShapeSlot = 2,     // read/write set sizes
};

std::uint64_t slot_index(std::size_t epoch, Slot slot) noexcept {
  return kAccountStreamBase + 3 * static_cast<std::uint64_t>(epoch) + slot;
}

}  // namespace

AccountTxGenerator::AccountTxGenerator(AccountModelConfig config)
    : config_(config),
      zipf_(config.num_accounts, std::max(0.0, config.zipf_skew)) {
  if (config_.num_accounts == 0 || config_.num_shards == 0) {
    throw std::invalid_argument(
        "AccountTxGenerator: accounts and shards must be >= 1");
  }
  if (config_.num_accounts < 2 * config_.num_shards) {
    throw std::invalid_argument(
        "AccountTxGenerator: need >= 2 accounts per shard so intra-shard "
        "partner snapping has a target on every shard");
  }
  if (config_.cross_shard_ratio < 0.0 || config_.cross_shard_ratio > 1.0 ||
      config_.burst_fraction < 0.0 || config_.burst_fraction > 1.0) {
    throw std::invalid_argument(
        "AccountTxGenerator: ratio knobs must lie in [0, 1]");
  }
  if (config_.window_seconds <= 0.0) {
    throw std::invalid_argument("AccountTxGenerator: window must be positive");
  }
}

AccountEpoch AccountTxGenerator::epoch_keyed(std::uint64_t seed,
                                             std::size_t epoch_index) const {
  common::Rng arrival =
      common::Rng::stream(seed, slot_index(epoch_index, kArrivalSlot));
  common::Rng identity =
      common::Rng::stream(seed, slot_index(epoch_index, kIdentitySlot));
  common::Rng shape =
      common::Rng::stream(seed, slot_index(epoch_index, kShapeSlot));

  AccountEpoch epoch;
  epoch.epoch_index = epoch_index;
  epoch.window_start = config_.start_time +
                       static_cast<double>(epoch_index) * config_.window_seconds;
  epoch.window_end = epoch.window_start + config_.window_seconds;

  // Burst sub-windows: centers drawn once per epoch, wide enough to stay
  // inside the window.
  const double width =
      config_.burst_width_fraction * config_.window_seconds;
  std::vector<double> burst_starts(config_.bursts_per_epoch);
  for (double& b : burst_starts) {
    b = epoch.window_start +
        arrival.uniform01() * (config_.window_seconds - width);
  }

  const std::uint32_t s = config_.num_shards;
  const auto snap_to = [&](std::uint32_t account,
                           std::uint32_t shard) -> std::uint32_t {
    // a − a%S + shard lands on `shard` while preserving the Zipf rank band;
    // fold back by one stride when it falls off the account range.
    std::uint32_t snapped = account - home_shard(account, s) + shard;
    if (snapped >= config_.num_accounts) snapped -= s;
    return snapped;
  };

  epoch.txs.resize(config_.txs_per_epoch);
  for (std::uint64_t t = 0; t < config_.txs_per_epoch; ++t) {
    AccountTx& tx = epoch.txs[t];
    tx.tx_id = static_cast<std::uint64_t>(epoch_index) * config_.txs_per_epoch + t;

    if (!burst_starts.empty() && arrival.bernoulli(config_.burst_fraction)) {
      const std::size_t burst = arrival.below(burst_starts.size());
      tx.timestamp = burst_starts[burst] + arrival.uniform01() * width;
    } else {
      tx.timestamp =
          epoch.window_start + arrival.uniform01() * config_.window_seconds;
    }

    tx.sender = zipf_(identity);
    const std::uint32_t home = home_shard(tx.sender, s);

    const std::size_t extra_reads = shape.below(config_.max_extra_reads + 1);
    const std::size_t extra_writes = shape.below(config_.max_extra_writes + 1);
    const auto add_partner = [&](std::vector<std::uint32_t>& set) {
      std::uint32_t partner = zipf_(identity);
      if (!identity.bernoulli(config_.cross_shard_ratio)) {
        partner = snap_to(partner, home);
      }
      if (partner == tx.sender) return;  // dedupe, fixed draw count
      const auto dup = [partner](const std::vector<std::uint32_t>& v) {
        return std::find(v.begin(), v.end(), partner) != v.end();
      };
      if (dup(tx.reads) || dup(tx.writes)) return;
      set.push_back(partner);
    };
    for (std::size_t i = 0; i < extra_writes; ++i) add_partner(tx.writes);
    for (std::size_t i = 0; i < extra_reads; ++i) add_partner(tx.reads);
  }

  std::sort(epoch.txs.begin(), epoch.txs.end(),
            [](const AccountTx& a, const AccountTx& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.tx_id < b.tx_id;
            });
  return epoch;
}

}  // namespace mvcom::txn
