#pragma once
// CSV persistence for traces. Two schemas:
//   * block traces — the four-column schema of the paper's dataset:
//     blockID,bhash,btime,txs;
//   * account-TX traces — txID,ts,sender,writes,reads, where writes/reads
//     are ';'-joined account ids inside one CSV field (empty field = empty
//     set). The account schema is what `mvcom xshard --trace-out` emits and
//     what replayed contention experiments load back.

#include <filesystem>
#include <vector>

#include "txn/accounts/model.hpp"
#include "txn/trace.hpp"

namespace mvcom::txn {

/// Writes `trace` as CSV with header "blockID,bhash,btime,txs".
void write_trace_csv(const Trace& trace, const std::filesystem::path& path);

/// Loads a trace written by write_trace_csv (or any file with the same
/// schema). Throws std::runtime_error on malformed input.
[[nodiscard]] Trace load_trace_csv(const std::filesystem::path& path);

/// Writes account TXs as CSV with header "txID,ts,sender,writes,reads".
void write_account_txs_csv(const std::vector<AccountTx>& txs,
                           const std::filesystem::path& path);

/// Loads account TXs written by write_account_txs_csv. Throws
/// std::runtime_error on malformed input (bad header, arity, or numeric
/// field — the error names the offending field, as the block loader does).
[[nodiscard]] std::vector<AccountTx> load_account_txs_csv(
    const std::filesystem::path& path);

}  // namespace mvcom::txn
