#pragma once
// CSV persistence for traces — the on-disk format mirrors the four-column
// schema of the paper's dataset: blockID,bhash,btime,txs.

#include <filesystem>

#include "txn/trace.hpp"

namespace mvcom::txn {

/// Writes `trace` as CSV with header "blockID,bhash,btime,txs".
void write_trace_csv(const Trace& trace, const std::filesystem::path& path);

/// Loads a trace written by write_trace_csv (or any file with the same
/// schema). Throws std::runtime_error on malformed input.
[[nodiscard]] Trace load_trace_csv(const std::filesystem::path& path);

}  // namespace mvcom::txn
