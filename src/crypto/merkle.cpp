#include "crypto/merkle.hpp"

#include <cassert>

namespace mvcom::crypto {

Digest MerkleTree::combine(const Digest& left, const Digest& right) noexcept {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(left.data(), left.size()));
  h.update(std::span<const std::uint8_t>(right.data(), right.size()));
  return h.finalize();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Sha256::hash(std::string_view{});
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      const Digest& left = below[i];
      const Digest& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      above.push_back(combine(left, right));
    }
    levels_.push_back(std::move(above));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  assert(index < leaf_count_);
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling =
        (pos % 2 == 0) ? (pos + 1 < nodes.size() ? pos + 1 : pos) : pos - 1;
    proof.push_back({nodes[sibling], /*sibling_is_left=*/pos % 2 == 1});
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& leaf, const MerkleProof& proof,
                        const Digest& root) noexcept {
  Digest running = leaf;
  for (const ProofStep& step : proof) {
    running = step.sibling_is_left ? combine(step.sibling, running)
                                   : combine(running, step.sibling);
  }
  return running == root;
}

}  // namespace mvcom::crypto
