#pragma once
// Merkle tree over transaction digests, Bitcoin-style (odd level entries are
// paired with themselves). Shard blocks commit to their transaction set via
// the Merkle root; proofs let tests verify inclusion without the full set.

#include <cstddef>
#include <vector>

#include "crypto/sha256.hpp"

namespace mvcom::crypto {

/// One step of a Merkle inclusion proof.
struct ProofStep {
  Digest sibling;
  bool sibling_is_left;  // true when the sibling precedes the running hash
};

using MerkleProof = std::vector<ProofStep>;

/// Immutable Merkle tree built over a list of leaf digests.
class MerkleTree {
 public:
  /// Builds the tree. An empty leaf set yields the digest of the empty
  /// string as root (a fixed, documented convention).
  explicit MerkleTree(std::vector<Digest> leaves);

  [[nodiscard]] const Digest& root() const noexcept { return root_; }
  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

  /// Inclusion proof for the leaf at `index`. Precondition: index < leaf_count.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verifies that `leaf` at the proof's implied position hashes up to `root`.
  [[nodiscard]] static bool verify(const Digest& leaf, const MerkleProof& proof,
                                   const Digest& root) noexcept;

  /// Hash of an interior node: SHA256(left || right).
  [[nodiscard]] static Digest combine(const Digest& left,
                                      const Digest& right) noexcept;

 private:
  // levels_[0] = leaves (possibly duplicated-last), levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
  std::size_t leaf_count_ = 0;
};

}  // namespace mvcom::crypto
