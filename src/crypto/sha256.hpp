#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch with no external
// dependencies. The Elastico substrate uses it for block hashes, Merkle
// roots, and the PoW committee-election puzzle; the trace generator uses it
// to synthesize Bitcoin-like block hashes.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mvcom::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update(data1); h.update(data2);
///   Digest d = h.finalize();
///
/// finalize() may be called exactly once; the object is then spent.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs `data` into the hash state.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Pads, finishes, and returns the digest.
  [[nodiscard]] Digest finalize() noexcept;

  /// One-shot helpers.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Digest hash(std::string_view text) noexcept;
  /// Bitcoin-style double hash: SHA256(SHA256(x)).
  [[nodiscard]] static Digest double_hash(std::string_view text) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// Lowercase hex encoding of a digest.
[[nodiscard]] std::string to_hex(const Digest& d);

/// Interprets the first 8 bytes of the digest as a big-endian integer —
/// the quantity compared against a PoW target.
[[nodiscard]] std::uint64_t leading64(const Digest& d) noexcept;

/// Number of leading zero bits in the digest.
[[nodiscard]] int leading_zero_bits(const Digest& d) noexcept;

}  // namespace mvcom::crypto
