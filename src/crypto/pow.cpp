#include "crypto/pow.hpp"

#include <cassert>
#include <charconv>
#include <limits>
#include <string_view>

namespace mvcom::crypto {
namespace {

/// Formats `nonce` in decimal into `buf` (no allocation); returns the view.
/// 20 chars hold the largest uint64.
std::string_view format_nonce(std::uint64_t nonce,
                              char (&buf)[20]) noexcept {
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), nonce);
  assert(ec == std::errc{});
  (void)ec;
  return {buf, static_cast<std::size_t>(end - buf)};
}

}  // namespace

PowTarget PowTarget::from_difficulty_bits(int bits) noexcept {
  assert(bits >= 0 && bits < 64);
  return PowTarget{std::numeric_limits<std::uint64_t>::max() >> bits};
}

double PowTarget::expected_attempts() const noexcept {
  if (leading64_below == 0) return std::numeric_limits<double>::infinity();
  // Success probability per attempt is target / 2^64.
  return 0x1.0p64 / static_cast<double>(leading64_below);
}

Digest pow_digest(std::string_view epoch_randomness, std::string_view identity,
                  std::uint64_t nonce) noexcept {
  return PowMidstate(epoch_randomness, identity).digest(nonce);
}

PowMidstate::PowMidstate(std::string_view epoch_randomness,
                         std::string_view identity) noexcept {
  prefix_.update(epoch_randomness);
  prefix_.update("|");
  prefix_.update(identity);
  prefix_.update("|");
}

Digest PowMidstate::digest(std::uint64_t nonce) const noexcept {
  char buf[20];
  Sha256 h = prefix_;  // midstate copy: the prefix is never re-absorbed
  h.update(format_nonce(nonce, buf));
  return h.finalize();
}

std::optional<PowSolution> solve(std::string_view epoch_randomness,
                                 std::string_view identity, PowTarget target,
                                 std::uint64_t max_attempts,
                                 std::uint64_t start_nonce) {
  const PowMidstate midstate(epoch_randomness, identity);
  for (std::uint64_t i = 0; i < max_attempts; ++i) {
    const std::uint64_t nonce = start_nonce + i;
    Digest d = midstate.digest(nonce);
    if (leading64(d) < target.leading64_below) {
      return PowSolution{nonce, d};
    }
  }
  return std::nullopt;
}

bool verify(std::string_view epoch_randomness, std::string_view identity,
            PowTarget target, const PowSolution& solution) noexcept {
  const Digest d = pow_digest(epoch_randomness, identity, solution.nonce);
  return d == solution.digest && leading64(d) < target.leading64_below;
}

std::uint32_t committee_of(const Digest& digest, int committee_bits) noexcept {
  assert(committee_bits > 0 && committee_bits <= 32);
  std::uint32_t tail = 0;
  for (std::size_t i = digest.size() - 4; i < digest.size(); ++i) {
    tail = (tail << 8) | digest[i];
  }
  return tail & ((1u << committee_bits) - 1u);
}

common::SimTime model_solve_latency(common::Rng& rng,
                                    common::SimTime expected_solve_time,
                                    double relative_hash_rate) {
  assert(relative_hash_rate > 0.0);
  return common::SimTime(
      rng.exponential(expected_solve_time.seconds() / relative_hash_rate));
}

}  // namespace mvcom::crypto
