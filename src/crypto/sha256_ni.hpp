// Runtime-dispatched x86 SHA-extension compression function. sha256.cpp is
// the only intended caller: it probes sha_ni_available() once and routes
// whole runs of 64-byte blocks through sha_ni_compress, falling back to the
// portable C++ rounds otherwise. Both paths produce identical digests.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mvcom::crypto {

/// True when the CPU implements the SHA extension (sha256rnds2 et al.).
[[nodiscard]] bool sha_ni_available() noexcept;

/// Absorbs `blocks` consecutive 64-byte blocks into `state` (8 words, the
/// working variables a..h). Must only be called when sha_ni_available().
void sha_ni_compress(std::uint32_t* state, const std::uint8_t* data,
                     std::size_t blocks) noexcept;

}  // namespace mvcom::crypto
