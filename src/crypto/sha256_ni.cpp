// SHA-NI compression function — the x86 SHA extension computes the SHA-256
// round function in hardware (sha256rnds2 retires two rounds per
// instruction). This translation unit is the only one compiled with -msha;
// callers reach it through sha_ni_compress after checking sha_ni_available()
// once, so the binary still runs on CPUs without the extension. Output is
// bit-identical to the portable block function in sha256.cpp — SHA-256 is
// SHA-256 — which the differential test in test_crypto pins across paths.

#include "crypto/sha256_ni.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>

namespace mvcom::crypto {

bool sha_ni_available() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("sha") != 0;
#else
  return false;
#endif
}

// Canonical SHA-NI schedule: state is carried in the ABEF/CDGH register
// pairing the sha256rnds2 instruction expects.
void sha_ni_compress(std::uint32_t* state, const std::uint8_t* data,
                     std::size_t blocks) noexcept {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  static const std::uint32_t kRound[64] = {
      0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
      0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
      0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
      0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
      0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
      0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
      0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
      0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
      0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
      0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
      0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
  const auto* k = reinterpret_cast<const __m128i*>(kRound);

  // Repack {a..h} into ABEF / CDGH.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    const auto* block = reinterpret_cast<const __m128i*>(data);

    __m128i msg0 = _mm_shuffle_epi8(_mm_loadu_si128(block + 0), kShuffle);
    __m128i msg1 = _mm_shuffle_epi8(_mm_loadu_si128(block + 1), kShuffle);
    __m128i msg2 = _mm_shuffle_epi8(_mm_loadu_si128(block + 2), kShuffle);
    __m128i msg3 = _mm_shuffle_epi8(_mm_loadu_si128(block + 3), kShuffle);

    __m128i msg;
    // Rounds 0-15: raw message words.
    msg = _mm_add_epi32(msg0, _mm_loadu_si128(k + 0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    msg = _mm_add_epi32(msg1, _mm_loadu_si128(k + 1));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    msg = _mm_add_epi32(msg2, _mm_loadu_si128(k + 2));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    msg = _mm_add_epi32(msg3, _mm_loadu_si128(k + 3));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-63: four schedule/round quads per 16 rounds.
    for (int quad = 1; quad < 4; ++quad) {
      msg = _mm_add_epi32(msg0, _mm_loadu_si128(k + 4 * quad + 0));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg3 = _mm_sha256msg1_epu32(msg3, msg0);

      msg = _mm_add_epi32(msg1, _mm_loadu_si128(k + 4 * quad + 1));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);

      msg = _mm_add_epi32(msg2, _mm_loadu_si128(k + 4 * quad + 2));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg1 = _mm_sha256msg1_epu32(msg1, msg2);

      msg = _mm_add_epi32(msg3, _mm_loadu_si128(k + 4 * quad + 3));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
      msg0 = _mm_sha256msg2_epu32(msg0, msg3);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  // Repack ABEF / CDGH back into {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);    // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

}  // namespace mvcom::crypto

#else  // non-x86 targets: the portable block function is the only path

namespace mvcom::crypto {

bool sha_ni_available() noexcept { return false; }

void sha_ni_compress(std::uint32_t*, const std::uint8_t*,
                     std::size_t) noexcept {}

}  // namespace mvcom::crypto

#endif
