#pragma once
// Proof-of-Work puzzle used by Elastico's committee-formation stage: each
// node searches for a nonce such that SHA256(epoch_randomness || identity ||
// nonce) falls below a difficulty target. The low-order bits of the solution
// hash assign the node to a committee (Elastico §committee formation).
//
// Two facets are provided:
//  * an *actual* solver (`solve`) that grinds real SHA-256 — used by unit
//    tests and the quickstart example to demonstrate the mechanism; and
//  * a *latency model* (`model_solve_latency`) used by the large-scale
//    simulator, where grinding billions of hashes is pointless: solve time
//    for a Poisson-process puzzle is exponentially distributed with mean
//    (expected_attempts / hash_rate), exactly the paper's Exp(600 s) model.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "crypto/sha256.hpp"

namespace mvcom::crypto {

/// Difficulty expressed as "the leading 64 bits of the digest must be below
/// this target". Smaller target = harder puzzle.
struct PowTarget {
  std::uint64_t leading64_below;

  /// Target for which a single hash succeeds with probability 2^-bits.
  [[nodiscard]] static PowTarget from_difficulty_bits(int bits) noexcept;

  /// Expected number of hash attempts to find a solution.
  [[nodiscard]] double expected_attempts() const noexcept;
};

/// A found PoW solution.
struct PowSolution {
  std::uint64_t nonce;
  Digest digest;
};

/// Preimage convention shared by solver and verifier:
/// SHA256(epoch_randomness || '|' || identity || '|' || decimal(nonce)).
[[nodiscard]] Digest pow_digest(std::string_view epoch_randomness,
                                std::string_view identity,
                                std::uint64_t nonce) noexcept;

/// Cached SHA-256 midstate over the constant `randomness|identity|` prefix.
/// The grinding loop re-hashes only the decimal nonce per attempt (formatted
/// into a stack buffer — no allocation): one midstate copy + <= 20 tail
/// bytes instead of re-absorbing the whole preimage. Produces digests
/// bit-identical to pow_digest for every nonce.
class PowMidstate {
 public:
  PowMidstate(std::string_view epoch_randomness,
              std::string_view identity) noexcept;

  /// Digest of the full preimage for `nonce`.
  [[nodiscard]] Digest digest(std::uint64_t nonce) const noexcept;

 private:
  Sha256 prefix_;  // absorbed "randomness|identity|", copied per attempt
};

/// Grinds nonces from `start_nonce`; gives up after `max_attempts`.
[[nodiscard]] std::optional<PowSolution> solve(std::string_view epoch_randomness,
                                               std::string_view identity,
                                               PowTarget target,
                                               std::uint64_t max_attempts,
                                               std::uint64_t start_nonce = 0);

/// Checks a claimed solution against the target.
[[nodiscard]] bool verify(std::string_view epoch_randomness,
                          std::string_view identity, PowTarget target,
                          const PowSolution& solution) noexcept;

/// Committee index = last `committee_bits` bits of the solution digest —
/// the Elastico rule that a node's PoW randomly assigns its committee.
[[nodiscard]] std::uint32_t committee_of(const Digest& digest,
                                         int committee_bits) noexcept;

/// Simulated solve latency for a node with `relative_hash_rate` (1.0 =
/// reference node) on a puzzle whose reference-node expected solve time is
/// `expected_solve_time`. Memoryless search => exponential distribution.
[[nodiscard]] common::SimTime model_solve_latency(
    common::Rng& rng, common::SimTime expected_solve_time,
    double relative_hash_rate);

}  // namespace mvcom::crypto
