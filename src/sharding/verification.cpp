#include "sharding/verification.hpp"

namespace mvcom::sharding {

crypto::Digest ShardEntry::leaf() const {
  crypto::Sha256 h;
  h.update(block_hash);
  h.update("#");
  h.update(std::to_string(tx_count));
  return h.finalize();
}

const char* to_string(SubmissionError error) noexcept {
  switch (error) {
    case SubmissionError::kEmpty: return "empty shard";
    case SubmissionError::kRootMismatch: return "merkle root mismatch";
    case SubmissionError::kCountMismatch: return "tx count mismatch";
  }
  return "unknown";
}

namespace {

crypto::Digest root_of(const std::vector<ShardEntry>& entries) {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(entries.size());
  for (const ShardEntry& e : entries) leaves.push_back(e.leaf());
  return crypto::MerkleTree(std::move(leaves)).root();
}

}  // namespace

ShardSubmission build_submission(std::uint32_t committee_id,
                                 std::vector<ShardEntry> entries) {
  ShardSubmission s;
  s.committee_id = committee_id;
  s.entries = std::move(entries);
  s.claimed_root = root_of(s.entries);
  for (const ShardEntry& e : s.entries) s.claimed_tx_count += e.tx_count;
  return s;
}

ShardSubmission build_submission_from_trace(
    std::uint32_t committee_id, const txn::Trace& trace,
    std::span<const std::size_t> block_indices) {
  std::vector<ShardEntry> entries;
  entries.reserve(block_indices.size());
  for (const std::size_t b : block_indices) {
    const txn::BlockRecord& block = trace.blocks.at(b);
    entries.push_back({block.bhash, block.tx_count});
  }
  return build_submission(committee_id, std::move(entries));
}

std::optional<SubmissionError> verify_submission(
    const ShardSubmission& submission) {
  if (submission.entries.empty()) return SubmissionError::kEmpty;
  if (root_of(submission.entries) != submission.claimed_root) {
    return SubmissionError::kRootMismatch;
  }
  std::uint64_t total = 0;
  for (const ShardEntry& e : submission.entries) total += e.tx_count;
  if (total != submission.claimed_tx_count) {
    return SubmissionError::kCountMismatch;
  }
  return std::nullopt;
}

}  // namespace mvcom::sharding
