#pragma once
// Epoch-randomness refreshing — Elastico's stage 5.
//
// "The final committee generates a set of random strings, which are used to
// help other committees form new ones in the next epoch" (§I). The standard
// construction is commit-reveal: every final-committee member commits
// H(r_i), then reveals r_i; the beacon output is H(r_1 ‖ r_2 ‖ ...) over
// the reveals whose commitments verify. With at least one honest
// contributor the output is unpredictable to any coalition that fixed its
// values before seeing the honest reveal.
//
// The protocol here runs over the simulated network: COMMIT messages to the
// beacon leader, then REVEAL after the leader announces the commit set is
// closed, with a reveal deadline so withholding members are simply excluded
// (their committed entropy is dropped — the classic last-revealer caveat is
// documented and tested, not hidden).

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mvcom::sharding {

struct BeaconConfig {
  /// Wall-clock budget for the reveal phase after commits close.
  common::SimTime reveal_timeout = common::SimTime(30.0);
};

struct BeaconResult {
  std::string randomness;               // hex output of the beacon
  std::size_t commits = 0;              // members whose commitment arrived
  std::size_t reveals = 0;              // verified reveals folded in
  std::vector<bool> revealed;           // per-member participation
  common::SimTime completed_at = common::SimTime::zero();
};

/// One commit-reveal round among `members` (network nodes); members[0]
/// coordinates. `withholding[i]` = member i commits but never reveals.
/// Drives the simulator to quiescence before returning.
[[nodiscard]] BeaconResult run_commit_reveal_beacon(
    sim::Simulator& simulator, net::Network& network, common::Rng& rng,
    const std::vector<net::NodeId>& members,
    const std::vector<bool>& withholding, const BeaconConfig& config = {});

}  // namespace mvcom::sharding
