#pragma once
// Elastico-style sharded-blockchain substrate (Luu et al., CCS'16) — the
// system whose per-epoch two-phase latency motivates MVCom.
//
// One epoch runs the paper's five stages (§I):
//   1. Committee formation — every node solves a PoW puzzle seeded with the
//      previous epoch randomness; the solution hash's low bits assign the
//      node to a committee. A committee is *formed* when its
//      `committee_size`-th member has solved.
//   2. Overlay configuration — members discover each other by exchanging
//      identities through the directory; cost grows linearly with the
//      network size (this is why Fig. 2(a)'s formation latency scales
//      linearly with the number of nodes).
//   3. Intra-committee consensus — each committee runs message-level PBFT
//      (consensus/pbft) on the Merkle root of its shard's blocks. The
//      committees are mutually independent until the final committee, so
//      each one runs on its own simulator *lane* (private event fabric,
//      private network, pre-forked RNG substream); lanes execute serially
//      or on a worker pool — bitwise-identical results either way (the
//      determinism contract, DESIGN.md §12).
//   4. Final consensus — the designated final committee waits for shard
//      submissions up to a deadline policy, then runs PBFT over the
//      selected union to produce the global block. A pluggable
//      `CommitteeScheduler` decides *which* submissions to include — this
//      is the seam MVCom plugs into.
//   5. Epoch randomness — the final committee derives the next epoch's
//      randomness from the final block.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/root_chain.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "consensus/pbft.hpp"
#include "net/network.hpp"
#include "obs/context.hpp"
#include "sharding/lane.hpp"
#include "sim/simulator.hpp"
#include "txn/trace.hpp"
#include "txn/workload.hpp"

namespace mvcom::sharding {

using common::Rng;
using common::SimTime;

struct ElasticoConfig {
  std::size_t num_nodes = 256;
  /// Nodes per committee (Elastico's c). The first `committee_size` solvers
  /// of each committee run its PBFT instance.
  std::size_t committee_size = 8;
  /// Number of committees = 2^committee_bits; the last one is the final
  /// committee, the rest are member committees processing shards.
  int committee_bits = 4;
  /// Expected PoW solve latency of a reference node (paper §VI-A: 600 s).
  SimTime pow_expected_solve = SimTime(600.0);
  /// Overlay identity-exchange cost per network node — formation latency
  /// includes `num_nodes * overlay_cost_per_node` (linear in network size).
  SimTime overlay_cost_per_node = SimTime(0.08);
  /// Dispersion of per-node hash rates and processing speeds (log-normal
  /// coefficient of variation); the source of straggler committees.
  double node_heterogeneity_cv = 0.35;
  /// Mean one-way link latency between any two nodes.
  SimTime link_latency_mean = SimTime(2.0);
  consensus::PbftConfig pbft{};
  /// Run stage 2 as the actual directory JOIN/membership exchange
  /// (sharding/overlay) instead of the closed-form linear model. Slower but
  /// message-accurate; the directory is each committee's first solver.
  bool message_level_overlay = false;
  /// Per-identity verification cost of the directory (message-level mode).
  SimTime overlay_identity_processing = SimTime(0.05);
  /// Run stage 5 as the commit-reveal beacon among the final committee
  /// (sharding/randomness) instead of hashing the tip directly.
  bool beacon_randomness = false;
  /// Per-epoch probability that a node is offline for the whole epoch
  /// (DoS'd or partitioned, §V-A). Its messages drop; committees whose
  /// working quorum breaks simply fail to commit that epoch.
  double node_failure_probability = 0.0;
  /// Per-message loss probability on every link.
  double message_loss_probability = 0.0;
  /// Worker threads for the stage-2/3 committee lanes. 0 runs the lanes
  /// serially on the calling thread (the single-simulator reference path);
  /// k >= 1 spawns a k-worker pool (the caller participates too). The
  /// worker count NEVER changes results — every lane draws from an RNG
  /// substream forked in committee order before any lane runs, and lane
  /// outcomes merge back in committee order (same contract as
  /// SeParams::max_pool_workers).
  std::size_t lane_workers = 0;
  /// DES executor for every lane fabric (sim/kernel.hpp): kReference fires
  /// one event at a time through the slab, kBatched dispatches typed-event
  /// cohorts to SoA kernels. Like lane_workers, this knob NEVER changes
  /// results — both executors fire the same events in the same order, which
  /// the kernel differential suite asserts digest-for-digest.
  sim::KernelMode kernel_mode = sim::KernelMode::kReference;
};

/// Per-committee outcome of one epoch.
struct CommitteeOutcome {
  std::uint32_t committee_id = 0;
  std::size_t member_count = 0;
  SimTime formation_latency = SimTime::zero();   // stage 1+2
  SimTime consensus_latency = SimTime::zero();   // stage 3
  bool committed = false;
  std::uint64_t view_changes = 0;
  std::uint64_t tx_count = 0;                    // TXs packaged in its shard

  /// l_i of the paper — formation plus intra-committee consensus.
  [[nodiscard]] SimTime two_phase_latency() const noexcept {
    return formation_latency + consensus_latency;
  }
};

/// A scheduler decides which submitted shards join the final consensus.
/// Input: all committee reports that committed (sorted by committee id).
/// Output: selected committee ids. The default waits for everything.
using CommitteeScheduler =
    std::function<std::vector<std::uint32_t>(const std::vector<CommitteeOutcome>&)>;

/// Runs a whole epoch's lane tasks and fills `results` (one slot per task,
/// same index). The default executor dispatches `run_committee_lane` on an
/// in-process thread pool; src/fabric installs one that ships the tasks to
/// worker processes over the binary wire format. Every executor must fill
/// `results[c]` from tasks[c] alone — the coordinator merges in committee
/// order, so any conforming executor produces bitwise-identical epochs.
using LaneExecutor =
    std::function<void(std::vector<LaneTask>&, std::vector<LaneResult>&)>;

struct EpochOutcome {
  std::vector<CommitteeOutcome> committees;  // member committees only
  std::vector<std::uint32_t> selected;       // shards included in final block
  bool final_committed = false;
  SimTime final_consensus_latency = SimTime::zero();
  /// Absolute simulated time when the final block was committed.
  SimTime epoch_makespan = SimTime::zero();
  std::uint64_t final_block_txs = 0;
  std::string next_epoch_randomness;
  /// Per-lane Simulator::order_digest values folded in committee order
  /// (members first, then the final-consensus fabric) — equal across any
  /// lane_workers setting iff every lane fired the same events in the same
  /// order. The determinism matrix test diffs this across worker counts
  /// and across MVCOM_OBS=ON/OFF builds.
  std::uint64_t event_order_digest = 0;
  /// Total DES events executed across all lanes this epoch.
  std::uint64_t events_executed = 0;

  /// Bridges to the MVCom problem input: one ShardReport per committed
  /// member committee.
  [[nodiscard]] std::vector<txn::ShardReport> reports() const;
};

/// The whole sharded network. Construct once; run epochs.
class ElasticoNetwork {
 public:
  ElasticoNetwork(ElasticoConfig config, Rng rng);

  /// Runs one full epoch over the given trace blocks. `scheduler` selects
  /// the shards for final consensus (nullptr = include all committed).
  EpochOutcome run_epoch(const txn::Trace& trace,
                         CommitteeScheduler scheduler = nullptr);

  [[nodiscard]] std::size_t num_committees() const noexcept {
    return std::size_t{1} << committee_bits_unsigned();
  }
  [[nodiscard]] std::size_t num_member_committees() const noexcept {
    return num_committees() - 1;
  }
  [[nodiscard]] const std::string& epoch_randomness() const noexcept {
    return randomness_;
  }
  [[nodiscard]] const ElasticoConfig& config() const noexcept { return config_; }

  /// The root chain this network extends — one global block per epoch whose
  /// final consensus committed (stage 4's output, §I).
  [[nodiscard]] const chain::RootChain& root_chain() const noexcept {
    return chain_;
  }

  /// Attaches observability to every lane's simulator, network, and PBFT
  /// cluster from the next run_epoch on. Counters are sharded atomics and
  /// the trace ring append is mutex-protected, so parallel lanes may emit
  /// concurrently; only the interleaving of trace events (never any epoch
  /// result) depends on the worker count.
  void set_obs(obs::ObsContext obs) noexcept { obs_ = obs; }

  /// Replaces the in-process lane pool with a custom executor (the process
  /// fabric). Pass nullptr to restore the default. The executor never
  /// affects seed draws or merge order, so results stay bitwise-identical
  /// to the in-process path — test_fabric diffs the digests to prove it.
  void set_lane_executor(LaneExecutor executor) {
    lane_executor_ = std::move(executor);
  }

 private:
  [[nodiscard]] unsigned committee_bits_unsigned() const noexcept {
    return static_cast<unsigned>(config_.committee_bits);
  }

  ElasticoConfig config_;
  Rng rng_;
  obs::ObsContext obs_;
  LaneExecutor lane_executor_;
  std::vector<double> hash_rates_;    // per-node relative PoW speed
  std::vector<double> verify_speeds_; // per-node PBFT verification factor
  std::string randomness_;            // current epoch randomness
  std::uint64_t epoch_index_ = 0;
  chain::RootChain chain_;
};

/// Deals `trace` blocks into `shards` groups (one per member committee),
/// guaranteeing each shard at least one block.
/// Shared by the Elastico pipeline and tests.
[[nodiscard]] std::vector<std::uint64_t> deal_blocks(const txn::Trace& trace,
                                                     std::size_t shards,
                                                     Rng& rng);

}  // namespace mvcom::sharding
