#include "sharding/elastico.hpp"

#include "sharding/overlay.hpp"
#include "sharding/randomness.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "common/fnv.hpp"
#include "common/thread_pool.hpp"
#include "crypto/merkle.hpp"
#include "crypto/pow.hpp"
#include "crypto/sha256.hpp"

namespace mvcom::sharding {
namespace {

/// Minimum PBFT committee: n = 4 tolerates f = 1.
constexpr std::size_t kMinBftMembers = 4;

/// FNV-1a fold used to merge per-lane order digests in committee order.
constexpr std::uint64_t kDigestBasis = common::kFnv1aBasis;
using common::fnv1a_mix;

}  // namespace

std::vector<txn::ShardReport> EpochOutcome::reports() const {
  std::vector<txn::ShardReport> out;
  out.reserve(committees.size());
  for (const CommitteeOutcome& c : committees) {
    if (!c.committed) continue;
    txn::ShardReport r;
    r.committee_id = c.committee_id;
    r.tx_count = c.tx_count;
    r.formation_latency = c.formation_latency.seconds();
    r.consensus_latency = c.consensus_latency.seconds();
    out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> deal_blocks(const txn::Trace& trace,
                                       std::size_t shards, Rng& rng) {
  if (shards == 0) throw std::invalid_argument("deal_blocks: shards > 0");
  if (shards > trace.blocks.size()) {
    throw std::invalid_argument("deal_blocks: more shards than blocks");
  }
  std::vector<std::uint64_t> txs(shards, 0);
  std::vector<std::size_t> order(trace.blocks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(order));
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t shard =
        rank < shards ? rank : static_cast<std::size_t>(rng.below(shards));
    txs[shard] += trace.blocks[order[rank]].tx_count;
  }
  return txs;
}

ElasticoNetwork::ElasticoNetwork(ElasticoConfig config, Rng rng)
    : config_(config), rng_(rng) {
  if (config_.committee_bits < 1 || config_.committee_bits > 16) {
    throw std::invalid_argument("ElasticoNetwork: committee_bits in [1,16]");
  }
  if (config_.committee_size < kMinBftMembers) {
    throw std::invalid_argument("ElasticoNetwork: committee_size >= 4 (BFT)");
  }
  if (config_.num_nodes < num_committees() * kMinBftMembers) {
    throw std::invalid_argument(
        "ElasticoNetwork: too few nodes to populate every committee");
  }
  if (config_.node_failure_probability < 0.0 ||
      config_.node_failure_probability >= 1.0 ||
      config_.message_loss_probability < 0.0 ||
      config_.message_loss_probability >= 1.0) {
    throw std::invalid_argument("ElasticoNetwork: probabilities in [0, 1)");
  }
  // Node heterogeneity — fixed per node for the network's lifetime.
  hash_rates_.reserve(config_.num_nodes);
  verify_speeds_.reserve(config_.num_nodes);
  const double cv = config_.node_heterogeneity_cv;
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    hash_rates_.push_back(cv > 0 ? rng_.lognormal_mean_sd(1.0, cv) : 1.0);
    verify_speeds_.push_back(cv > 0 ? rng_.lognormal_mean_sd(1.0, cv) : 1.0);
  }
  randomness_ = crypto::to_hex(crypto::Sha256::hash("genesis"));
}

EpochOutcome ElasticoNetwork::run_epoch(const txn::Trace& trace,
                                        CommitteeScheduler scheduler) {
  const std::size_t committees = num_committees();
  const std::size_t member_committees = committees - 1;
  const std::uint32_t final_id = static_cast<std::uint32_t>(member_committees);

  // --- Stage 1: committee formation via PoW ------------------------------
  // Each node grinds the puzzle; the solution digest assigns its committee
  // and the solve latency follows the exponential model (memoryless search).
  struct Solve {
    net::NodeId node;
    SimTime at;
  };
  std::vector<std::vector<Solve>> assignment(committees);
  for (net::NodeId node = 0; node < config_.num_nodes; ++node) {
    const std::uint64_t nonce = rng_();
    const crypto::Digest digest = crypto::pow_digest(
        randomness_, "node-" + std::to_string(node), nonce);
    const auto committee =
        crypto::committee_of(digest, config_.committee_bits);
    const SimTime solve = crypto::model_solve_latency(
        rng_, config_.pow_expected_solve, hash_rates_[node]);
    assignment[committee].push_back({node, solve});
  }

  // --- Stage 2: overlay configuration ------------------------------------
  // Directory-mediated identity exchange; cost linear in network size.
  const SimTime overlay = SimTime(
      static_cast<double>(config_.num_nodes) *
      config_.overlay_cost_per_node.seconds() * rng_.uniform(0.9, 1.1));

  auto link = std::make_shared<net::LognormalLatency>(
      config_.link_latency_mean, SimTime(0.5 * config_.link_latency_mean.seconds()));

  // Per-epoch node failures, drawn once up front. Each lane marks only its
  // own participants on its private network — PBFT traffic never leaves the
  // committee, so the other nodes' flags cannot influence the lane.
  std::vector<std::uint8_t> node_failed(config_.num_nodes, 0);
  for (net::NodeId node = 0; node < config_.num_nodes; ++node) {
    if (config_.node_failure_probability > 0.0 &&
        rng_.bernoulli(config_.node_failure_probability)) {
      node_failed[node] = 1;
    }
  }

  // Shard workload for member committees.
  const std::vector<std::uint64_t> shard_txs =
      deal_blocks(trace, member_committees, rng_);

  EpochOutcome outcome;
  outcome.committees.resize(member_committees);

  // --- Membership, per-lane RNG seeds, and lane tasks (serial, committee
  // order) -----------------------------------------------------------------
  std::vector<std::vector<net::NodeId>> participants(committees);
  std::vector<SimTime> formation(committees, SimTime::infinity());

  std::vector<LaneTask> tasks(committees);
  for (std::size_t c = 0; c < committees; ++c) {
    auto& solves = assignment[c];
    std::sort(solves.begin(), solves.end(),
              [](const Solve& a, const Solve& b) { return a.at < b.at; });
    const std::size_t take = std::min(config_.committee_size, solves.size());
    LaneTask& task = tasks[c];
    task.committee_id = static_cast<std::uint32_t>(c);
    task.member_committees = static_cast<std::uint32_t>(member_committees);
    if (take < kMinBftMembers) continue;  // under-populated: cannot run BFT
    for (std::size_t r = 0; r < take; ++r) {
      participants[c].push_back(solves[r].node);
    }
    if (!config_.message_level_overlay) {
      // Formed when the last participant finished PoW, plus the closed-form
      // overlay exchange.
      formation[c] = solves[take - 1].at + overlay;
    }
    // Draw every lane's substream seeds here — serially, in committee order,
    // before any lane runs. This is the whole determinism contract: a lane
    // consumes only its own pre-drawn seeds, so execution order across
    // worker threads — or worker *processes* (src/fabric) — cannot change
    // what any lane draws. Rng(rng_()) is exactly rng_.fork(), so these
    // draws are bit-compatible with the pre-task closure implementation.
    if (config_.message_level_overlay) task.overlay_seed = rng_();
    task.net_seed = rng_();
    task.cluster_seed = rng_();
    task.armed = true;
    task.message_level_overlay = config_.message_level_overlay;
    task.kernel_mode = config_.kernel_mode;
    task.num_nodes = static_cast<std::uint32_t>(config_.num_nodes);
    task.link_latency_mean = config_.link_latency_mean;
    task.message_loss_probability = config_.message_loss_probability;
    task.overlay_identity_processing = config_.overlay_identity_processing;
    task.pbft = config_.pbft;
    task.randomness = randomness_;
    task.formation = formation[c];
    task.shard_txs = c < member_committees ? shard_txs[c] : 0;
    task.participants = participants[c];
    if (config_.message_level_overlay) {
      task.ready_at.reserve(take);
      for (std::size_t r = 0; r < take; ++r) {
        task.ready_at.push_back(solves[r].at);
      }
    }
    task.verify_speeds.reserve(take);
    task.failed.reserve(take);
    for (const net::NodeId node : participants[c]) {
      task.verify_speeds.push_back(verify_speeds_[node]);
      task.failed.push_back(node_failed[node]);
    }
  }

  // --- Stages 2 (message-level) + 3: one private lane per committee ------
  // Committees are mutually independent until the final consensus (§I), so
  // each formed committee gets a private event fabric + network driven to
  // quiescence inside its lane. The final committee's lane performs only
  // its overlay exchange; its PBFT waits for stage 4. Lane results land in
  // per-committee slots and merge below in committee order, so results are
  // bitwise-identical for any lane_workers value — and for any executor: a
  // fabric of worker processes runs the same pure tasks and merges the same
  // way (DESIGN.md §17).
  std::vector<LaneResult> results(committees);
  if (lane_executor_) {
    lane_executor_(tasks, results);
  } else {
    // lane_workers == 0 builds a worker-less pool: parallel_for degenerates
    // to an inline loop on this thread — the serial reference path.
    common::ThreadPool pool(config_.lane_workers);
    pool.parallel_for(committees, [&](std::size_t c) {
      results[c] = run_committee_lane(tasks[c], obs_);
    });
  }

  // --- Merge lane results, in committee order -----------------------------
  outcome.event_order_digest = kDigestBasis;
  for (std::size_t c = 0; c < committees; ++c) {
    const LaneResult& lane = results[c];
    if (tasks[c].armed && !lane.formed) {
      participants[c].clear();  // overlay exchange failed: unformed
    }
    if (lane.formed) formation[c] = lane.formation;
    if (c < member_committees) {
      CommitteeOutcome& co = outcome.committees[c];
      co.committee_id = static_cast<std::uint32_t>(c);
      co.member_count = participants[c].size();
      co.tx_count = shard_txs[c];
      if (lane.formed) {
        co.formation_latency = lane.formation;
        co.committed = lane.committed;
        co.consensus_latency = lane.consensus_latency;
        co.view_changes = lane.view_changes;
      }
    }
    outcome.event_order_digest =
        fnv1a_mix(outcome.event_order_digest, lane.order_digest);
    outcome.events_executed += lane.events_executed;
  }

  // --- Stage 4: final consensus -------------------------------------------
  std::vector<CommitteeOutcome> committed;
  for (const CommitteeOutcome& co : outcome.committees) {
    if (co.committed) committed.push_back(co);
  }
  if (scheduler) {
    outcome.selected = scheduler(committed);
  } else {
    for (const CommitteeOutcome& co : committed) {
      outcome.selected.push_back(co.committee_id);
    }
  }

  if (!outcome.selected.empty() && participants[final_id].size() >= kMinBftMembers) {
    // DDL: the final committee can start once the last selected shard has
    // been submitted (its two-phase latency) — and no earlier than its own
    // formation.
    SimTime start = formation[final_id];
    std::uint64_t total_txs = 0;
    std::vector<crypto::Digest> leaves;
    for (const std::uint32_t id : outcome.selected) {
      const CommitteeOutcome& co = outcome.committees.at(id);
      start = std::max(start, co.two_phase_latency());
      total_txs += co.tx_count;
      leaves.push_back(crypto::Sha256::hash("shard-root-" + std::to_string(id)));
    }
    const crypto::MerkleTree tree(std::move(leaves));

    // The final committee runs on its own fresh fabric with the seeds
    // pre-drawn for it above, so its numbers are identical whether the
    // member lanes ran serially, on a pool, or on worker processes.
    sim::Simulator final_sim(sim::SimConfig{config_.kernel_mode});
    final_sim.set_obs(obs_);
    net::Network final_net(final_sim, Rng(tasks[final_id].net_seed), link,
                           config_.num_nodes);
    final_net.set_obs(obs_);
    final_net.set_loss_probability(config_.message_loss_probability);
    for (const net::NodeId node : participants[final_id]) {
      if (node_failed[node] != 0) final_net.set_failed(node, true);
    }
    consensus::PbftCluster final_cluster(final_sim, final_net, config_.pbft,
                                         Rng(tasks[final_id].cluster_seed),
                                         participants[final_id]);
    final_cluster.set_obs(obs_);
    for (std::size_t r = 0; r < participants[final_id].size(); ++r) {
      final_cluster.set_speed_factor(r,
                                     verify_speeds_[participants[final_id][r]]);
    }
    bool done = false;
    final_sim.schedule_at(start, [&, root = tree.root()] {
      final_cluster.start_consensus(
          root, [&](const consensus::PbftResult& res) {
            outcome.final_committed = res.committed;
            outcome.final_consensus_latency = res.latency;
            done = true;
          });
    });
    final_sim.run();
    assert(done);
    outcome.event_order_digest =
        fnv1a_mix(outcome.event_order_digest, final_sim.order_digest());
    outcome.events_executed += final_sim.events_executed();
    outcome.final_block_txs = total_txs;
    outcome.epoch_makespan = start + outcome.final_consensus_latency;
  }

  // --- Root chain: the final block joins the ledger ------------------------
  if (outcome.final_committed) {
    std::vector<crypto::Digest> roots;
    roots.reserve(outcome.selected.size());
    for (const std::uint32_t id : outcome.selected) {
      roots.push_back(
          crypto::Sha256::hash("shard-root-" + std::to_string(id)));
    }
    chain_.extend(std::move(roots), outcome.final_block_txs,
                  outcome.epoch_makespan.seconds(),
                  "final-committee-" + std::to_string(final_id), randomness_);
  }

  // --- Stage 5: epoch randomness refreshing -------------------------------
  // The next epoch's randomness binds the epoch index and the current tip —
  // an adversary cannot precompute committee assignments before the final
  // block settles. With beacon_randomness the final committee additionally
  // runs the commit-reveal beacon and its output is folded in.
  std::string beacon_entropy;
  if (config_.beacon_randomness &&
      participants[final_id].size() >= kMinBftMembers) {
    sim::Simulator beacon_sim(sim::SimConfig{config_.kernel_mode});
    net::Network beacon_net(beacon_sim, rng_.fork(), link, config_.num_nodes);
    const BeaconResult beacon = run_commit_reveal_beacon(
        beacon_sim, beacon_net, rng_, participants[final_id],
        std::vector<bool>(participants[final_id].size(), false));
    beacon_entropy = beacon.randomness;
  }
  randomness_ = crypto::to_hex(crypto::Sha256::hash(
      randomness_ + "|epoch|" + std::to_string(epoch_index_++) + "|" +
      crypto::to_hex(chain_.tip().header.hash()) + "|" + beacon_entropy));
  outcome.next_epoch_randomness = randomness_;
  return outcome;
}

}  // namespace mvcom::sharding
