#pragma once
// Overlay configuration — Elastico's stage 2, at the message level.
//
// After PoW assigns nodes to committees, "processors are configured to
// discover and identify each other by exchanging the committee membership"
// (§I). The canonical mechanism is a directory: every elected node sends a
// JOIN carrying its identity to the directory node; once the directory has
// heard from everyone it pushes the full membership list back out, and a
// node is *configured* when its list arrives. The directory's inbound and
// outbound message counts are both linear in the network size — this is the
// mechanism behind Fig. 2(a)'s linear growth of formation latency.
//
// ElasticoNetwork uses the closed-form linear model by default (fast); this
// module provides the real exchange for validation and the Fig. 2 bench.

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mvcom::sharding {

struct OverlayResult {
  /// Instant each participant became configured (received the membership
  /// list), indexed like the `ready_at` argument; infinity = never (failed).
  std::vector<common::SimTime> configured_at;
  /// The directory's completion instant (all JOINs received).
  common::SimTime directory_complete = common::SimTime::infinity();
};

/// Runs one directory-mediated identity exchange over the simulator.
///
/// `participants[i]` is a network node; `ready_at[i]` is when it finished
/// PoW and sends its JOIN (absolute simulated time). `directory` is the
/// node collecting identities (typically the first solver). `per_identity
/// _processing` is the directory's handling cost per JOIN — the linear term.
/// Drives the simulator to quiescence before returning.
[[nodiscard]] OverlayResult run_overlay_configuration(
    sim::Simulator& simulator, net::Network& network,
    const std::vector<net::NodeId>& participants,
    const std::vector<common::SimTime>& ready_at, net::NodeId directory,
    common::SimTime per_identity_processing);

}  // namespace mvcom::sharding
