#include "sharding/lane.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/fnv.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/latency.hpp"
#include "sharding/overlay.hpp"
#include "sim/simulator.hpp"

namespace mvcom::sharding {

using common::fnv1a_mix;
using common::kFnv1aBasis;
using common::Rng;

LaneResult run_committee_lane(const LaneTask& task, obs::ObsContext obs) {
  LaneResult result;
  result.committee_id = task.committee_id;
  if (!task.armed) return result;

  std::uint64_t digest = kFnv1aBasis;
  std::uint64_t events = 0;
  result.formation = task.formation;

  // The link model is stateless (all sampling goes through the lane's own
  // Network RNG), so a per-lane instance with the epoch's parameters is
  // indistinguishable from the shared instance the closure used to borrow.
  const auto link = std::make_shared<net::LognormalLatency>(
      task.link_latency_mean,
      SimTime(0.5 * task.link_latency_mean.seconds()));

  if (task.message_level_overlay) {
    // Stage 2 as the real directory exchange: the first solver collects
    // JOINs from its committee peers plus one identity announcement per
    // network node (the Elastico directory learns the whole membership —
    // the linear-in-N term), then pushes the list back out. Each exchange
    // runs on an isolated event fabric so its absolute-time scheduling
    // cannot collide with the other committees' stages.
    sim::Simulator overlay_sim(sim::SimConfig{task.kernel_mode});
    overlay_sim.set_obs(obs);
    net::Network overlay_net(overlay_sim, Rng(task.overlay_seed), link,
                             task.num_nodes);
    overlay_net.set_obs(obs);
    const OverlayResult exchanged = run_overlay_configuration(
        overlay_sim, overlay_net, task.participants, task.ready_at,
        task.participants.front(), task.overlay_identity_processing);
    digest = fnv1a_mix(digest, overlay_sim.order_digest());
    events += overlay_sim.events_executed();
    // Directory-side verification of the *network-wide* identity list.
    const SimTime directory_scan =
        SimTime(static_cast<double>(task.num_nodes) *
                task.overlay_identity_processing.seconds());
    SimTime configured = SimTime::zero();
    for (const SimTime t : exchanged.configured_at) {
      configured = std::max(configured, t);
    }
    if (configured.is_infinite() ||
        exchanged.directory_complete.is_infinite()) {
      // Exchange failed: committee unformed. The digest and event count
      // still merge (the exchange's events happened), but the coordinator
      // clears the membership.
      result.order_digest = digest;
      result.events_executed = events;
      return result;
    }
    result.formation = configured + directory_scan;
  }
  result.formed = true;

  if (task.committee_id < task.member_committees) {
    sim::Simulator lane_sim(sim::SimConfig{task.kernel_mode});
    lane_sim.set_obs(obs);
    net::Network lane_net(lane_sim, Rng(task.net_seed), link, task.num_nodes);
    lane_net.set_obs(obs);
    lane_net.set_loss_probability(task.message_loss_probability);
    for (std::size_t r = 0; r < task.participants.size(); ++r) {
      if (task.failed[r] != 0) lane_net.set_failed(task.participants[r], true);
    }
    consensus::PbftCluster cluster(lane_sim, lane_net, task.pbft,
                                   Rng(task.cluster_seed), task.participants);
    cluster.set_obs(obs);
    for (std::size_t r = 0; r < task.participants.size(); ++r) {
      cluster.set_speed_factor(r, task.verify_speeds[r]);
    }
    // Shard payload: Merkle root over a synthetic per-shard block digest.
    const crypto::Digest payload = crypto::Sha256::hash(
        task.randomness + "|shard|" + std::to_string(task.committee_id) +
        "|" + std::to_string(task.shard_txs));
    bool decided = false;
    const SimTime start = result.formation;
    lane_sim.schedule_at(start, [&cluster, payload, &result, &decided] {
      cluster.start_consensus(
          payload, [&result, &decided](const consensus::PbftResult& res) {
            result.committed = res.committed;
            result.consensus_latency = res.latency;
            result.view_changes = res.view_changes;
            decided = true;
          });
    });
    // Drive this committee to quiescence (the cluster's horizon event
    // bounds the run); by then nothing references the lane's objects.
    lane_sim.run();
    assert(decided);
    (void)decided;
    digest = fnv1a_mix(digest, lane_sim.order_digest());
    events += lane_sim.events_executed();
  }
  result.order_digest = digest;
  result.events_executed = events;
  return result;
}

}  // namespace mvcom::sharding
