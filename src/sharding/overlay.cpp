#include "sharding/overlay.hpp"

#include <stdexcept>

namespace mvcom::sharding {

OverlayResult run_overlay_configuration(
    sim::Simulator& simulator, net::Network& network,
    const std::vector<net::NodeId>& participants,
    const std::vector<common::SimTime>& ready_at, net::NodeId directory,
    common::SimTime per_identity_processing) {
  if (participants.empty() || participants.size() != ready_at.size()) {
    throw std::invalid_argument(
        "run_overlay_configuration: participants/ready_at mismatch");
  }

  OverlayResult result;
  result.configured_at.assign(participants.size(),
                              common::SimTime::infinity());

  // Shared mutable state for the directory's in-flight bookkeeping. Owned
  // by shared_ptr because callbacks may outlive this stack frame inside the
  // simulator queue (they won't — we drive to quiescence — but ownership
  // should not depend on that).
  struct DirectoryState {
    std::size_t joins_received = 0;
    common::SimTime busy_until = common::SimTime::zero();
  };
  auto state = std::make_shared<DirectoryState>();
  const std::size_t expected = participants.size();

  for (std::size_t i = 0; i < participants.size(); ++i) {
    const net::NodeId from = participants[i];
    simulator.schedule_at(ready_at[i], [&, state, from, i, expected,
                                        per_identity_processing, directory] {
      // JOIN: identity travels to the directory.
      network.send(from, directory, [&, state, i, expected,
                                     per_identity_processing, directory] {
        // The directory verifies identities sequentially — the linear term.
        state->busy_until =
            std::max(state->busy_until, simulator.now()) +
            per_identity_processing;
        ++state->joins_received;
        if (state->joins_received != expected) return;
        // All identities known: broadcast the membership list.
        result.directory_complete = state->busy_until;
        simulator.schedule_at(state->busy_until, [&, directory] {
          for (std::size_t j = 0; j < participants.size(); ++j) {
            const std::size_t member = j;
            network.send(directory, participants[j], [&, member] {
              result.configured_at[member] = simulator.now();
            });
          }
        });
      });
    });
  }

  simulator.run();
  return result;
}

}  // namespace mvcom::sharding
