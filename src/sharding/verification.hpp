#pragma once
// Shard-submission verification. The MVCom utility trusts the (s_i, l_i)
// features committees report; a rational committee could inflate s_i to
// look more valuable. The final committee therefore verifies each
// submission: the shard's content is committed by a Merkle root over
// per-block entries that *bind the transaction counts*, so a claimed total
// that disagrees with the committed entries is detected before scheduling.
// (Latency l_i needs no such check: the final committee measures arrival
// time itself.)

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "txn/trace.hpp"

namespace mvcom::sharding {

/// One block carried by a shard: its hash and how many TXs it holds.
struct ShardEntry {
  std::string block_hash;
  std::uint64_t tx_count = 0;

  /// Count-binding leaf digest: H(block_hash ‖ tx_count).
  [[nodiscard]] crypto::Digest leaf() const;
};

/// What a member committee submits to the final committee.
struct ShardSubmission {
  std::uint32_t committee_id = 0;
  std::vector<ShardEntry> entries;
  crypto::Digest claimed_root{};
  std::uint64_t claimed_tx_count = 0;
};

enum class SubmissionError {
  kEmpty,
  kRootMismatch,
  kCountMismatch,
};
[[nodiscard]] const char* to_string(SubmissionError error) noexcept;

/// Builds an honest submission from the shard's entries.
[[nodiscard]] ShardSubmission build_submission(
    std::uint32_t committee_id, std::vector<ShardEntry> entries);

/// Builds a submission directly from trace blocks (provenance indices).
[[nodiscard]] ShardSubmission build_submission_from_trace(
    std::uint32_t committee_id, const txn::Trace& trace,
    std::span<const std::size_t> block_indices);

/// Verifies root and count binding; nullopt = accepted.
[[nodiscard]] std::optional<SubmissionError> verify_submission(
    const ShardSubmission& submission);

}  // namespace mvcom::sharding
