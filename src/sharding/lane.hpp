#pragma once
// One committee's stage-2/3 lane as a pure value → pure function.
//
// PR 5 established the lane determinism contract *inside* one process: every
// lane draws only from RNG substreams forked serially in committee order
// before any lane runs, and lane outcomes merge back in committee order, so
// the worker count never changes results. This header lifts the lane out of
// `ElasticoNetwork::run_epoch`'s closure into an explicit (LaneTask →
// LaneResult) function of a plain value — which is what lets the same lane
// run on a thread in this process (the in-process path), or in a *separate
// worker process* connected by a pipe (src/fabric), and produce bitwise-
// identical results either way. A LaneTask carries everything the lane
// touches: the epoch context, the committee's membership, and the three
// pre-drawn RNG seeds; `run_committee_lane` builds a private Simulator +
// Network (+ PbftCluster) from nothing else.
//
// Serializability is a design constraint, not an accident: every field is a
// scalar, a string, or a flat vector, so the fabric wire format
// (fabric/wire.hpp) encodes a task frame without touching this code.

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "consensus/pbft.hpp"
#include "net/network.hpp"
#include "obs/context.hpp"
#include "sim/kernel.hpp"

namespace mvcom::sharding {

using common::SimTime;

/// Everything one committee lane consumes. Built serially, in committee
/// order, by the coordinator (`run_epoch`); consumed by `run_committee_lane`
/// on any thread or in any process.
struct LaneTask {
  // --- identity / role ---
  std::uint32_t committee_id = 0;
  /// Ids below this bound are member committees (they run stage-3 PBFT);
  /// the id equal to it is the final committee (its lane runs only the
  /// message-level overlay exchange — stage 4 happens coordinator-side).
  std::uint32_t member_committees = 0;
  /// False for under-populated committees: the lane is a no-op and the
  /// result keeps its zero digest (the merge folds it unchanged).
  bool armed = false;

  // --- epoch-wide context ---
  bool message_level_overlay = false;
  sim::KernelMode kernel_mode = sim::KernelMode::kReference;
  std::uint32_t num_nodes = 0;
  SimTime link_latency_mean = SimTime::zero();
  double message_loss_probability = 0.0;
  SimTime overlay_identity_processing = SimTime::zero();
  consensus::PbftConfig pbft{};
  /// Current epoch randomness — seeds the shard payload hash.
  std::string randomness;

  // --- pre-drawn RNG seeds (serial, committee order — the contract) ---
  std::uint64_t overlay_seed = 0;  // message-level overlay fabric only
  std::uint64_t net_seed = 0;      // the lane's Network
  std::uint64_t cluster_seed = 0;  // the lane's PbftCluster

  // --- committee payload ---
  /// Closed-form formation instant (PoW + linear overlay). In message-level
  /// overlay mode the lane recomputes formation from the exchange instead.
  SimTime formation = SimTime::infinity();
  std::uint64_t shard_txs = 0;  // member committees only
  std::vector<net::NodeId> participants;
  /// PoW solve instants, aligned with `participants` (overlay mode only).
  std::vector<SimTime> ready_at;
  /// Per-participant PBFT verification speed factors.
  std::vector<double> verify_speeds;
  /// Per-participant this-epoch failure flags (1 = offline all epoch).
  std::vector<std::uint8_t> failed;
};

/// What a lane reports back. Plain scalars, merged in committee order.
struct LaneResult {
  std::uint32_t committee_id = 0;
  /// False when the lane never ran (unarmed) or the message-level overlay
  /// exchange failed — the coordinator then clears the committee's
  /// membership, exactly as the in-closure code did.
  bool formed = false;
  bool committed = false;
  /// Realized formation instant (== task.formation unless the lane ran the
  /// message-level exchange). Valid only when `formed`.
  SimTime formation = SimTime::infinity();
  SimTime consensus_latency = SimTime::zero();
  std::uint64_t view_changes = 0;
  /// FNV-1a fold of the lane's simulator order digests; 0 for unarmed
  /// lanes, the basis value for armed lanes that scheduled nothing.
  std::uint64_t order_digest = 0;
  std::uint64_t events_executed = 0;
};

/// Runs one committee lane to quiescence on a private event fabric. Pure in
/// `task` (obs attachment never changes results — the PR 3 contract), so two
/// calls with equal tasks produce equal results in any process, which is
/// both the fabric's determinism witness and its crash-replay mechanism.
[[nodiscard]] LaneResult run_committee_lane(const LaneTask& task,
                                            obs::ObsContext obs = {});

}  // namespace mvcom::sharding
