#include "sharding/randomness.hpp"

#include <memory>
#include <stdexcept>

namespace mvcom::sharding {

BeaconResult run_commit_reveal_beacon(sim::Simulator& simulator,
                                      net::Network& network, common::Rng& rng,
                                      const std::vector<net::NodeId>& members,
                                      const std::vector<bool>& withholding,
                                      const BeaconConfig& config) {
  if (members.empty() || members.size() != withholding.size()) {
    throw std::invalid_argument(
        "run_commit_reveal_beacon: members/withholding mismatch");
  }
  const net::NodeId leader = members[0];
  const std::size_t n = members.size();

  // Each member's secret contribution and its commitment.
  std::vector<std::string> secrets(n);
  std::vector<crypto::Digest> commitments(n);
  for (std::size_t i = 0; i < n; ++i) {
    secrets[i] = "r-" + std::to_string(rng());
    commitments[i] = crypto::Sha256::hash(secrets[i]);
  }

  struct LeaderState {
    std::vector<bool> committed;
    std::vector<bool> revealed;
    std::size_t commit_count = 0;
    bool commits_closed = false;
    bool done = false;
  };
  auto state = std::make_shared<LeaderState>();
  state->committed.assign(n, false);
  state->revealed.assign(n, false);

  BeaconResult result;
  result.revealed.assign(n, false);

  auto finalize = [&, state] {
    if (state->done) return;
    state->done = true;
    crypto::Sha256 h;
    for (std::size_t i = 0; i < n; ++i) {
      if (!state->revealed[i]) continue;
      // Reveal verification: the preimage must match the commitment.
      if (crypto::Sha256::hash(secrets[i]) != commitments[i]) continue;
      h.update(secrets[i]);
      h.update("|");
      ++result.reveals;
      result.revealed[i] = true;
    }
    result.commits = state->commit_count;
    result.randomness = crypto::to_hex(h.finalize());
    result.completed_at = simulator.now();
  };

  // Phase 2 trigger: once all commits are in (or immediately for n == 1),
  // the leader requests reveals and arms the reveal deadline.
  auto close_commits = [&, state, leader, n] {
    if (state->commits_closed) return;
    state->commits_closed = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (withholding[i]) continue;  // withholder ignores the request
      const std::size_t member = i;
      // REVEAL-REQUEST out, REVEAL back.
      network.send(leader, members[i], [&, state, member, leader] {
        network.send(members[member], leader, [state, member] {
          if (!state->done) state->revealed[member] = true;
        });
      });
    }
    simulator.schedule_after(config.reveal_timeout, finalize);
  };

  // Phase 1: every member sends COMMIT to the leader.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t member = i;
    network.send(members[i], leader, [state, member, close_commits, n] {
      if (state->committed[member]) return;
      state->committed[member] = true;
      if (++state->commit_count == n) close_commits();
    });
  }
  // Leader's own path when sends drop (failed members): close after a grace
  // period even if some commits never arrive.
  simulator.schedule_after(config.reveal_timeout, close_commits);

  simulator.run();
  if (!state->done) finalize();
  return result;
}

}  // namespace mvcom::sharding
