#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"

namespace mvcom::obs {

namespace {

/// Prometheus sample-value spelling: decimal float, or +Inf/-Inf/NaN.
std::string fmt_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON number or null (JSON has no NaN/Inf spellings).
std::string fmt_json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k="v",...}` — with `extra` (the histogram `le`) appended when given.
std::string label_block(const std::vector<Label>& labels,
                        const Label* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  const auto append = [&](const Label& l) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    out += escape_label_value(l.value);
    out += '"';
  };
  for (const Label& l : labels) append(l);
  if (extra != nullptr) append(*extra);
  out += '}';
  return out;
}

const char* type_name(MetricsRegistry::Type type) {
  switch (type) {
    case MetricsRegistry::Type::kCounter: return "counter";
    case MetricsRegistry::Type::kGauge: return "gauge";
    case MetricsRegistry::Type::kHistogram: return "histogram";
  }
  return "untyped";
}

void write_text_file(const std::filesystem::path& path,
                     std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  out << content;
  if (!out) {
    throw std::runtime_error("short write: " + path.string());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

std::string to_prometheus_text(const MetricsRegistry& registry) {
  const auto snapshots = registry.snapshot();
  std::string out;
  std::string current_family;
  for (const auto& m : snapshots) {
    if (m.name != current_family) {
      current_family = m.name;
      if (!m.help.empty()) {
        out += "# HELP " + m.name + ' ' + escape_help(m.help) + '\n';
      }
      out += "# TYPE " + m.name + ' ' + type_name(m.type) + '\n';
    }
    if (m.type == MetricsRegistry::Type::kHistogram) {
      for (const auto& bucket : m.buckets) {
        const Label le{"le", fmt_value(bucket.upper_bound)};
        out += m.name + "_bucket" + label_block(m.labels, &le) + ' ' +
               fmt_value(static_cast<double>(bucket.cumulative)) + '\n';
      }
      out += m.name + "_sum" + label_block(m.labels) + ' ' +
             fmt_value(m.sum) + '\n';
      out += m.name + "_count" + label_block(m.labels) + ' ' +
             fmt_value(static_cast<double>(m.count)) + '\n';
    } else {
      out += m.name + label_block(m.labels) + ' ' + fmt_value(m.value) + '\n';
    }
  }
  return out;
}

void write_prometheus_text(const MetricsRegistry& registry,
                           const std::filesystem::path& path) {
  write_text_file(path, to_prometheus_text(registry));
}

namespace {

bool is_name_head(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool is_name_char(char c) {
  return is_name_head(c) || (c >= '0' && c <= '9');
}

/// Parses a metric/label name at text[pos]; advances pos past it.
bool scan_name(std::string_view text, std::size_t& pos, bool label_name) {
  if (pos >= text.size() || !is_name_head(text[pos])) return false;
  if (label_name && text[pos] == ':') return false;
  ++pos;
  while (pos < text.size() && is_name_char(text[pos]) &&
         !(label_name && text[pos] == ':')) {
    ++pos;
  }
  return true;
}

bool scan_sample_value(std::string_view token) {
  if (token.empty()) return false;
  if (token == "+Inf" || token == "-Inf" || token == "Inf" ||
      token == "NaN") {
    return true;
  }
  const std::string buf(token);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buf.c_str();
}

bool validate_sample_line(std::string_view line, std::string* error) {
  std::size_t pos = 0;
  if (!scan_name(line, pos, /*label_name=*/false)) {
    if (error) *error = "bad metric name";
    return false;
  }
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      if (!scan_name(line, pos, /*label_name=*/true)) {
        if (error) *error = "bad label name";
        return false;
      }
      if (pos + 1 >= line.size() || line[pos] != '=' ||
          line[pos + 1] != '"') {
        if (error) *error = "label missing =\"";
        return false;
      }
      pos += 2;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\') {
          if (pos + 1 >= line.size()) {
            if (error) *error = "dangling escape in label value";
            return false;
          }
          const char esc = line[pos + 1];
          if (esc != '\\' && esc != '"' && esc != 'n') {
            if (error) *error = "bad escape in label value";
            return false;
          }
          ++pos;
        }
        ++pos;
      }
      if (pos >= line.size()) {
        if (error) *error = "unterminated label value";
        return false;
      }
      ++pos;  // closing quote
      if (pos < line.size() && line[pos] == ',') ++pos;  // separator/trailing
    }
    if (pos >= line.size()) {
      if (error) *error = "unterminated label block";
      return false;
    }
    ++pos;  // '}'
  }
  if (pos >= line.size() || (line[pos] != ' ' && line[pos] != '\t')) {
    if (error) *error = "missing value";
    return false;
  }
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  const std::size_t value_start = pos;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
  if (!scan_sample_value(line.substr(value_start, pos - value_start))) {
    if (error) *error = "bad sample value";
    return false;
  }
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos < line.size()) {
    // Optional timestamp: an integer (possibly signed).
    std::size_t ts = pos;
    if (line[ts] == '-' || line[ts] == '+') ++ts;
    if (ts == line.size()) {
      if (error) *error = "bad timestamp";
      return false;
    }
    for (; ts < line.size(); ++ts) {
      if (line[ts] < '0' || line[ts] > '9') {
        if (error) *error = "bad timestamp";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool validate_prometheus_text(std::string_view text, std::string* error) {
  if (!text.empty() && text.back() != '\n') {
    if (error) *error = "text does not end with a newline";
    return false;
  }
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    const auto fail = [&](std::string_view why) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": " + std::string(why);
      }
      return false;
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) == 0) {
        std::size_t pos = 7;
        if (!scan_name(line, pos, false) ||
            (pos < line.size() && line[pos] != ' ')) {
          return fail("malformed HELP header");
        }
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::size_t pos = 7;
        if (!scan_name(line, pos, false) || pos >= line.size() ||
            line[pos] != ' ') {
          return fail("malformed TYPE header");
        }
        const std::string_view kind = line.substr(pos + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return fail("unknown TYPE");
        }
        continue;
      }
      continue;  // free-form comment
    }
    std::string why;
    if (!validate_sample_line(line, &why)) return fail(why);
  }
  return true;
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

void write_metrics_csv(const MetricsRegistry& registry,
                       const std::filesystem::path& path) {
  common::CsvWriter writer(path);
  writer.write_row({"name", "type", "labels", "field", "value"});
  std::string labels;
  for (const auto& m : registry.snapshot()) {
    labels.clear();
    for (const Label& l : m.labels) {
      if (!labels.empty()) labels += ',';
      labels += l.key + "=\"" + l.value + '"';
    }
    const char* type = type_name(m.type);
    if (m.type == MetricsRegistry::Type::kHistogram) {
      for (const auto& bucket : m.buckets) {
        writer.write_row({m.name, type, labels,
                          "bucket_le_" + fmt_value(bucket.upper_bound),
                          fmt_value(static_cast<double>(bucket.cumulative))});
      }
      writer.write_row({m.name, type, labels, "sum", fmt_value(m.sum)});
      writer.write_row({m.name, type, labels, "count",
                        fmt_value(static_cast<double>(m.count))});
    } else {
      writer.write_row({m.name, type, labels, "value", fmt_value(m.value)});
    }
  }
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_chrome_trace_json(std::span<const TraceEvent> events) {
  // pid 1 = the simulated clock, pid 2 = the wall clock; every event lands
  // on the pid of its primary timestamp and carries the other clock in args.
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  out << R"j({"name":"process_name","ph":"M","pid":1,"tid":0,)j"
      << R"j("args":{"name":"sim time"}})j";
  out << R"j(,{"name":"process_name","ph":"M","pid":2,"tid":0,)j"
      << R"j("args":{"name":"wall clock"}})j";
  for (const TraceEvent& e : events) {
    const bool has_sim = !std::isnan(e.sim_time_seconds);
    const int pid = has_sim ? 1 : 2;
    double ts = has_sim ? e.sim_time_seconds * 1e6 : e.wall_time_us;
    // TraceRecorder::complete records at the END of a span; Chrome 'X'
    // events carry the start, so rewind by the duration.
    if (e.phase == 'X') ts -= e.duration_seconds * 1e6;
    out << ",{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.category) << "\",\"ph\":\"" << e.phase
        << "\",\"pid\":" << pid << ",\"tid\":" << e.track
        << ",\"ts\":" << fmt_json_number(ts);
    if (e.phase == 'X') {
      out << ",\"dur\":" << fmt_json_number(e.duration_seconds * 1e6);
    }
    if (e.phase == 'i') {
      out << ",\"s\":\"t\"";  // thread-scoped instant
    }
    out << ",\"args\":{";
    bool first = true;
    for (std::size_t i = 0; i < e.arg_count(); ++i) {
      if (!first) out << ',';
      first = false;
      out << '"' << json_escape(e.args[i].key)
          << "\":" << fmt_json_number(e.args[i].value);
    }
    if (!first) out << ',';
    out << "\"wall_us\":" << fmt_json_number(e.wall_time_us);
    if (has_sim) {
      out << ",\"sim_s\":" << fmt_json_number(e.sim_time_seconds);
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

void write_chrome_trace_json(const TraceRecorder& recorder,
                             const std::filesystem::path& path) {
  const auto events = recorder.snapshot();
  write_text_file(path, to_chrome_trace_json(events));
}

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness check
// ---------------------------------------------------------------------------

namespace {

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool fail(std::string_view why) {
    error = std::string(why) + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }
  [[nodiscard]] bool string() {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("dangling escape");
        const char esc = text[pos];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + static_cast<std::size_t>(i) >= text.size() ||
                std::isxdigit(static_cast<unsigned char>(
                    text[pos + static_cast<std::size_t>(i)])) == 0) {
              return fail("bad \\u escape");
            }
          }
          pos += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(text[pos]) < 0x20) {
        return fail("raw control character in string");
      }
      ++pos;
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;
    return true;
  }
  [[nodiscard]] bool number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("expected number");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    return true;
  }
  [[nodiscard]] bool value(int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  [[nodiscard]] bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
  [[nodiscard]] bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  JsonParser parser{text, 0, {}};
  if (!parser.value(0)) {
    if (error) *error = parser.error;
    return false;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error) *error = "trailing content after JSON value";
    return false;
  }
  return true;
}

}  // namespace mvcom::obs
