#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mvcom::obs {

namespace {

/// Relaxed atomic double accumulation via CAS (fetch_add on atomic<double>
/// is C++20 but not universally lock-free yet; this is).
void atomic_add(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

/// Stable per-thread stripe: each new thread takes the next stripe index,
/// so up to kShards concurrent writers touch distinct cache lines.
std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

std::string label_suffix(const std::vector<Label>& labels) {
  std::string out;
  for (const Label& l : labels) {
    out += '\0';
    out += l.key;
    out += '\0';
    out += l.value;
  }
  return out;
}

}  // namespace

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

bool valid_label_name(std::string_view key) noexcept {
  return valid_metric_name(key) && key.find(':') == std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

void Counter::add(std::uint64_t n) noexcept {
  shards_[thread_stripe() % kShards].value.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::add(double v) noexcept { atomic_add(value_, v); }

LogHistogram::LogHistogram(Buckets buckets) : spec_(buckets) {
  if (!(spec_.lowest > 0.0) || !(spec_.growth > 1.0) || spec_.count == 0) {
    throw std::invalid_argument(
        "LogHistogram: lowest > 0, growth > 1, count >= 1 required");
  }
  bounds_.reserve(spec_.count);
  double bound = spec_.lowest;
  for (std::size_t i = 0; i < spec_.count; ++i) {
    bounds_.push_back(bound);
    bound *= spec_.growth;
  }
  counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void LogHistogram::observe(double v) noexcept {
  // NaN observations would poison the sum and fit no bucket; drop them.
  if (std::isnan(v)) return;
  std::size_t idx = bounds_.size();  // +Inf bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      idx = i;
      break;
    }
  }
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

double LogHistogram::upper_bound(std::size_t i) const {
  if (i < bounds_.size()) return bounds_[i];
  if (i == bounds_.size()) return std::numeric_limits<double>::infinity();
  throw std::out_of_range("LogHistogram::upper_bound");
}

std::uint64_t LogHistogram::bucket_value(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("LogHistogram::bucket_value");
  return counts_[i].load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::entry_for(
    std::string_view name, std::string_view help, std::vector<Label>&& labels,
    Type type, const LogHistogram::Buckets* buckets) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name: " + std::string(name));
  }
  for (const Label& l : labels) {
    if (!valid_label_name(l.key)) {
      throw std::invalid_argument("invalid label name: " + l.key);
    }
  }
  std::string key(name);
  key += label_suffix(labels);

  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.type != type) {
      throw std::invalid_argument("metric re-registered with another type: " +
                                  std::string(name));
    }
    return it->second;
  }
  Entry entry;
  entry.type = type;
  entry.help = std::string(help);
  entry.labels = std::move(labels);
  switch (type) {
    case Type::kCounter:
      entry.counter.reset(new Counter());
      break;
    case Type::kGauge:
      entry.gauge.reset(new Gauge());
      break;
    case Type::kHistogram:
      entry.histogram.reset(new LogHistogram(*buckets));
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::vector<Label> labels) {
  return *entry_for(name, help, std::move(labels), Type::kCounter, nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::vector<Label> labels) {
  return *entry_for(name, help, std::move(labels), Type::kGauge, nullptr)
              .gauge;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<Label> labels,
                                         LogHistogram::Buckets buckets) {
  return *entry_for(name, help, std::move(labels), Type::kHistogram, &buckets)
              .histogram;
}

std::vector<MetricsRegistry::MetricSnapshot> MetricsRegistry::snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = key.substr(0, key.find('\0'));
    snap.help = entry.help;
    snap.type = entry.type;
    snap.labels = entry.labels;
    switch (entry.type) {
      case Type::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case Type::kGauge:
        snap.value = entry.gauge->value();
        break;
      case Type::kHistogram: {
        const LogHistogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        snap.buckets.reserve(h.bucket_count());
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          cumulative += h.bucket_value(i);
          snap.buckets.push_back({h.upper_bound(i), cumulative});
        }
        snap.sum = h.total_sum();
        snap.count = h.total_count();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  // std::map iteration is already name-then-labels ordered via the key.
  return out;
}

}  // namespace mvcom::obs
