#include "obs/trace.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/fnv.hpp"

namespace mvcom::obs {

namespace {
constexpr double kNoSimTime = std::numeric_limits<double>::quiet_NaN();

void fill_args(TraceEvent& event, std::initializer_list<TraceArg> args) {
  std::size_t n = 0;
  for (const TraceArg& a : args) {
    if (n == TraceEvent::kMaxArgs) break;  // excess args are dropped
    event.args[n++] = a;
  }
}
}  // namespace

std::uint64_t events_digest(std::span<const TraceEvent> events) noexcept {
  std::uint64_t h = common::kFnv1aBasis;
  const auto mix_byte = [&h](std::uint8_t byte) {
    h = common::fnv1a_byte(h, byte);
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto mix_double = [&](double d) {
    // NaN sim times (no sim clock) digest as one canonical pattern.
    std::uint64_t bits;
    if (d != d) {
      bits = 0x7ff8000000000000ULL;
    } else {
      static_assert(sizeof(double) == sizeof(std::uint64_t));
      __builtin_memcpy(&bits, &d, sizeof(bits));
    }
    mix_u64(bits);
  };
  const auto mix_str = [&](const char* s) {
    for (; s != nullptr && *s != '\0'; ++s) {
      mix_byte(static_cast<std::uint8_t>(*s));
    }
    mix_byte(0);  // terminator keeps ("ab","c") != ("a","bc")
  };
  for (const TraceEvent& e : events) {
    mix_str(e.category);
    mix_str(e.name);
    mix_byte(static_cast<std::uint8_t>(e.phase));
    mix_u64(e.track);
    mix_double(e.sim_time_seconds);
    mix_double(e.duration_seconds);
    mix_u64(e.seq);
    const std::size_t n = e.arg_count();
    mix_u64(n);
    for (std::size_t i = 0; i < n; ++i) {
      mix_str(e.args[i].key);
      mix_double(e.args[i].value);
    }
  }
  return h;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  if (capacity_ == 0) {
    throw std::invalid_argument("TraceRecorder: capacity must be >= 1");
  }
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceRecorder::set_sim_clock(std::function<double()> now_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  sim_clock_ = std::move(now_seconds);
}

double TraceRecorder::wall_now_us() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

double TraceRecorder::sim_now_locked() const {
  return sim_clock_ ? sim_clock_() : kNoSimTime;
}

void TraceRecorder::append_locked(TraceEvent&& event) {
  event.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceRecorder::record(TraceEvent event) {
  event.wall_time_us = wall_now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  event.sim_time_seconds = sim_now_locked();
  append_locked(std::move(event));
}

void TraceRecorder::instant(const char* category, const char* name,
                            std::initializer_list<TraceArg> args,
                            std::uint32_t track) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'i';
  event.track = track;
  fill_args(event, args);
  record(event);
}

void TraceRecorder::complete(const char* category, const char* name,
                             double duration_seconds,
                             std::initializer_list<TraceArg> args,
                             std::uint32_t track) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'X';
  event.track = track;
  event.duration_seconds = duration_seconds;
  fill_args(event, args);
  record(event);
}

void TraceRecorder::counter(const char* category, const char* name,
                            std::initializer_list<TraceArg> args,
                            std::uint32_t track) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'C';
  event.track = track;
  fill_args(event, args);
  record(event);
}

void TraceRecorder::merge(const std::vector<TraceEvent>& events) {
  const double wall = wall_now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  const double sim = sim_now_locked();
  for (const TraceEvent& e : events) {
    TraceEvent stamped = e;
    stamped.wall_time_us = wall;
    stamped.sim_time_seconds = sim;
    append_locked(std::move(stamped));
  }
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::uint64_t TraceRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t TraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace mvcom::obs
