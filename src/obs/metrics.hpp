#pragma once
// MetricsRegistry — cheap, thread-safe instruments for the whole stack:
// sharded counters (striped atomics so Γ worker threads never contend on
// one cache line), gauges, and log-bucketed histograms (geometric bucket
// bounds — latencies and sizes span orders of magnitude, so fixed-width
// bins like common::stats::Histogram would waste most of their resolution).
//
// Instruments are registered by (name, labels) and live as long as the
// registry; call sites cache the returned reference and update it lock-free.
// Names follow the Prometheus data model (family name + label pairs), so a
// snapshot exports losslessly to the text exposition format (obs/export.hpp).
//
// Hot-path policy: an instrument update is one relaxed atomic RMW. Code
// hotter than that (the SE inner loop) must not touch instruments per
// event — it accumulates plain thread-local tallies and folds them into the
// registry at its natural synchronization points (see SeObsCounters).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"

namespace mvcom::obs {

/// One Prometheus label pair. Keys must match [a-zA-Z_][a-zA-Z0-9_]*.
struct Label {
  std::string key;
  std::string value;
};

/// Monotonic counter, striped over cache-line-sized shards: concurrent
/// add() calls from different threads usually hit different lines.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  void inc() noexcept { add(1); }
  /// Sum over shards. Monotone but not a snapshot under concurrent adds.
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins double gauge.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Histogram with geometric (log-spaced) bucket upper bounds:
///   le_0 = lowest, le_i = lowest · growth^i, i < bucket_count,
/// plus the implicit +Inf bucket. observe() is one relaxed RMW per call
/// after a short bounded scan for the bucket index.
class LogHistogram {
 public:
  struct Buckets {
    double lowest = 1e-6;       // upper bound of the first finite bucket
    double growth = 4.0;        // geometric growth factor (> 1)
    std::size_t count = 16;     // number of finite buckets
  };

  void observe(double v) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();  // includes the +Inf bucket
  }
  /// Upper bound of bucket `i`; +Inf for the last.
  [[nodiscard]] double upper_bound(std::size_t i) const;
  /// Non-cumulative count of bucket `i`.
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const;
  [[nodiscard]] std::uint64_t total_count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit LogHistogram(Buckets buckets);

  Buckets spec_;
  std::vector<double> bounds_;  // finite upper bounds, ascending
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns every instrument; hands out stable references. Registration takes a
/// mutex; instrument updates never do. Re-registering the same
/// (name, labels) returns the existing instrument; registering the same
/// name with a different instrument type throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help = "",
                   std::vector<Label> labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = "",
               std::vector<Label> labels = {});
  LogHistogram& histogram(std::string_view name, std::string_view help = "",
                          std::vector<Label> labels = {},
                          LogHistogram::Buckets buckets = {});

  enum class Type { kCounter, kGauge, kHistogram };

  /// Point-in-time copy of one instrument, ready for export.
  struct MetricSnapshot {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<Label> labels;
    double value = 0.0;  // counter / gauge
    struct Bucket {
      double upper_bound = 0.0;  // +Inf for the last
      std::uint64_t cumulative = 0;
    };
    std::vector<Bucket> buckets;  // histogram only; cumulative counts
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  /// All instruments, sorted by (name, labels) so exports are deterministic.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

 private:
  struct Entry {
    Type type;
    std::string help;
    std::vector<Label> labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  Entry& entry_for(std::string_view name, std::string_view help,
                   std::vector<Label>&& labels, Type type,
                   const LogHistogram::Buckets* buckets);

  mutable std::mutex mu_;
  // Key: name + '\0' + serialized labels — unique per (family, label set).
  std::map<std::string, Entry, std::less<>> entries_;
};

/// True iff `name` is a valid Prometheus metric name
/// ([a-zA-Z_:][a-zA-Z0-9_:]*).
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;
/// True iff `key` is a valid Prometheus label name ([a-zA-Z_][a-zA-Z0-9_]*).
[[nodiscard]] bool valid_label_name(std::string_view key) noexcept;

}  // namespace mvcom::obs
