#pragma once
// TraceRecorder — a lock-cheap, fixed-capacity ring buffer of structured
// trace events, dual-clocked:
//
//  * wall time  — microseconds on std::chrono::steady_clock since the
//    recorder was constructed; stamped on every event.
//  * sim time   — seconds on the discrete-event simulator's clock, stamped
//    whenever a sim clock is attached (set_sim_clock); NaN otherwise.
//    Standalone SE runs have no simulator, so their events carry wall time
//    only; anything driven by sim::Simulator gets both.
//
// Recording takes one short mutex-protected append (the DES path is
// single-threaded; the Γ-parallel SE path never records from workers — it
// accumulates per-thread tallies and the scheduler materializes events at
// the cooperation barrier, mirroring SeBlockStats). When the ring is full
// the oldest events are overwritten and counted as dropped: tracing must
// never turn into an unbounded allocation in a long run.
//
// Events map 1:1 onto the Chrome trace-event JSON that obs/export.hpp
// writes (loadable in Perfetto / chrome://tracing): phase 'i' = instant,
// 'X' = complete (with duration), 'C' = counter series.

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <span>
#include <vector>

#include "obs/context.hpp"

namespace mvcom::obs {

/// One numeric event argument. Keys must be static-lifetime strings (string
/// literals at instrumentation sites) — events are POD and never own memory.
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 4;

  const char* category = "";  // static-lifetime, e.g. "se", "epoch"
  const char* name = "";      // static-lifetime event name
  char phase = 'i';           // 'i' instant | 'X' complete | 'C' counter
  std::uint32_t track = 0;    // exported as tid (0 = main track)
  double sim_time_seconds = 0.0;  // NaN when no sim clock was attached
  double wall_time_us = 0.0;
  double duration_seconds = 0.0;  // 'X' only, in the event's clock domain
  std::uint64_t seq = 0;          // recorder-global order
  std::array<TraceArg, kMaxArgs> args{};

  [[nodiscard]] std::size_t arg_count() const noexcept {
    std::size_t n = 0;
    while (n < kMaxArgs && args[n].key != nullptr) ++n;
    return n;
  }
};

/// FNV-1a digest over every deterministic field of the events — category,
/// name, phase, track, sim time, duration, sequence number, and args — and
/// deliberately NOT wall_time_us, which differs between runs. Two runs of
/// the same seeded workload must produce the same digest: the adversarial
/// replay harness uses it as the bit-identical-event-stream witness.
[[nodiscard]] std::uint64_t events_digest(
    std::span<const TraceEvent> events) noexcept;

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Attaches/detaches the simulated clock (seconds). The recorder stamps
  /// every subsequent event with it. The callable must outlive its
  /// attachment — detach (pass nullptr) before the simulator dies.
  void set_sim_clock(std::function<double()> now_seconds);

  /// Records one event; clocks and sequence number are stamped here.
  void record(TraceEvent event);

  // Convenience shapes.
  void instant(const char* category, const char* name,
               std::initializer_list<TraceArg> args = {},
               std::uint32_t track = 0);
  /// A span of `duration_seconds` ending now (record at completion — the
  /// single-pass DES never needs open/close pairs).
  void complete(const char* category, const char* name,
                double duration_seconds,
                std::initializer_list<TraceArg> args = {},
                std::uint32_t track = 0);
  /// A counter sample: each arg becomes one series on the track's counter.
  void counter(const char* category, const char* name,
               std::initializer_list<TraceArg> args,
               std::uint32_t track = 0);

  /// Batch append (e.g. a per-thread buffer folded in at a barrier). Events
  /// are stamped with the current clocks, preserving their relative order.
  void merge(const std::vector<TraceEvent>& events);

  /// The retained events in record order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::uint64_t recorded() const;
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Microseconds since construction — the wall clock events are stamped on.
  [[nodiscard]] double wall_now_us() const;

 private:
  void append_locked(TraceEvent&& event);
  [[nodiscard]] double sim_now_locked() const;

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  std::size_t head_ = 0;          // next write position once full
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::function<double()> sim_clock_;
};

}  // namespace mvcom::obs
