#pragma once
// ObsContext — the handle instrumented components carry. Observability is
// explicitly passed (no singletons): a component that should emit metrics or
// trace events receives an ObsContext holding non-owning pointers to a
// MetricsRegistry and/or a TraceRecorder; a default-constructed context is
// inert and every instrumentation site is written as
//
//   if (auto* m = obs_.metrics()) m->...;
//   if (auto* t = obs_.trace())   t->...;
//
// When the build disables observability (CMake -DMVCOM_OBS=OFF, which
// defines MVCOM_OBS_ENABLED=0 on every target linking mvcom_obs), the
// accessors constant-fold to nullptr and kEnabled to false, so the branches
// above — and any `if constexpr (obs::kEnabled)` hot-path counters — compile
// to true no-ops. The class definitions themselves are identical in both
// modes; only this one constant differs, which keeps the ODR surface of the
// build flag to a pair of trivially-foldable inline accessors.

#ifndef MVCOM_OBS_ENABLED
#define MVCOM_OBS_ENABLED 1
#endif

namespace mvcom::obs {

/// True when the build compiles instrumentation in (the default).
inline constexpr bool kEnabled = MVCOM_OBS_ENABLED != 0;

class MetricsRegistry;
class TraceRecorder;

struct ObsContext {
  constexpr ObsContext() noexcept = default;
  constexpr ObsContext(MetricsRegistry* metrics, TraceRecorder* trace) noexcept
      : metrics_(metrics), trace_(trace) {}

  [[nodiscard]] constexpr MetricsRegistry* metrics() const noexcept {
    return kEnabled ? metrics_ : nullptr;
  }
  [[nodiscard]] constexpr TraceRecorder* trace() const noexcept {
    return kEnabled ? trace_ : nullptr;
  }
  [[nodiscard]] constexpr explicit operator bool() const noexcept {
    return metrics() != nullptr || trace() != nullptr;
  }

 private:
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace mvcom::obs
