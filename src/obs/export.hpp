#pragma once
// Exporters for the observability subsystem:
//
//  * Prometheus text exposition (v0.0.4) of a MetricsRegistry snapshot —
//    one HELP/TYPE header per family, `name{labels} value` samples,
//    histogram `_bucket`/`_sum`/`_count` expansion — plus a strict
//    line-grammar validator used by the tests and the CI smoke job.
//  * CSV dump of the same snapshot (via common::csv, which quotes help
//    strings and label values as needed).
//  * Chrome trace-event JSON of a TraceRecorder snapshot, loadable in
//    Perfetto (ui.perfetto.dev) or chrome://tracing. Events with a sim
//    timestamp land on pid 1 ("sim time"); events with wall time only land
//    on pid 2 ("wall clock"); each event carries the other clock in args.
//  * A minimal JSON well-formedness checker (validate_json) so writers can
//    self-verify output without external tooling.

#include <filesystem>
#include <span>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvcom::obs {

[[nodiscard]] std::string to_prometheus_text(const MetricsRegistry& registry);
void write_prometheus_text(const MetricsRegistry& registry,
                           const std::filesystem::path& path);

/// Strict syntax check of the Prometheus text format: every line must be a
/// comment, a HELP/TYPE header, or a `name{labels} value [timestamp]`
/// sample; the text must end with a newline. On failure returns false and,
/// when `error` is non-null, describes the first offending line.
[[nodiscard]] bool validate_prometheus_text(std::string_view text,
                                            std::string* error = nullptr);

/// name,type,labels,value,sum,count rows (histograms add one row per
/// bucket). Backed by common::CsvWriter.
void write_metrics_csv(const MetricsRegistry& registry,
                       const std::filesystem::path& path);

[[nodiscard]] std::string to_chrome_trace_json(
    std::span<const TraceEvent> events);
void write_chrome_trace_json(const TraceRecorder& recorder,
                             const std::filesystem::path& path);

/// Minimal recursive-descent JSON well-formedness check (objects, arrays,
/// strings with escapes, numbers, literals). Not a full RFC-8259 validator
/// of numeric grammar corner cases, but strict on structure.
[[nodiscard]] bool validate_json(std::string_view text,
                                 std::string* error = nullptr);

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace mvcom::obs
