#pragma once
// Typed-event kernel interface of the DES engine (DESIGN.md §16).
//
// The protocol hot paths (PBFT message delivery and phase advance, heartbeat
// ticks) fire millions of structurally identical events per epoch. The
// batched execution mode lets a component describe such an event as a fixed
// 16-byte payload plus a kernel id instead of a type-erased callback: the
// engine stores payloads in a flat arena, groups ready events into cohorts
// of equal (timestamp, kernel), and hands each cohort to the kernel as one
// struct-of-arrays call. The slab/callback interpreter stays available — and
// remains the reference semantics — selectable per Simulator instance via
// SimConfig::kernel_mode. Both modes execute the same events in the same
// (timestamp, sequence) order and therefore produce the same order_digest;
// the differential suite in tests/test_sim_kernels.cpp enforces that bit for
// bit across every scenario class and lane-worker count.

#include <cstddef>
#include <cstdint>

namespace mvcom::sim {

/// Which executor drives Simulator::run.
enum class KernelMode : std::uint8_t {
  /// Every event — typed or not — fires through the generation-stamped slab
  /// as an individual callback; typed events are wrapped in a cohort of one.
  /// This is the reference interpreter the batched mode is diffed against.
  kReference,
  /// Typed events bypass the slab: payloads live in a recycled flat arena
  /// and ready events are dispatched cohort-at-a-time to their kernels.
  /// Callback events (cancellable timers, cold paths) still use the slab.
  kBatched,
};

struct SimConfig {
  KernelMode kernel_mode = KernelMode::kReference;
};

/// Fixed-size typed-event payload. Components pack whatever the kernel needs
/// to decode the event (replica/committee ids, phase tags, interned digest
/// indices) into the two words; anything larger belongs on the callback path.
struct TypedPayload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// A batch kernel: executes `n` events carrying `cohort[0..n)` payloads, all
/// sharing one timestamp (= Simulator::now() during the call). The kernel
/// runs its elements in array order — that order is the events' global
/// (timestamp, sequence) order, so per-element side effects (RNG draws,
/// schedules) must happen in index order to preserve determinism. Kernels
/// may re-enter the simulator (schedule_typed / schedule_at / cancel) but
/// must not call run/run_until. Typed events cannot be cancelled.
using KernelFn = void (*)(void* ctx, const TypedPayload* cohort,
                          std::size_t n);

/// Dense kernel handle returned by Simulator::register_kernel.
struct KernelId {
  std::uint16_t value = 0;
  friend bool operator==(KernelId, KernelId) = default;
};

}  // namespace mvcom::sim
