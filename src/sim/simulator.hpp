#pragma once
// Discrete-event simulation (DES) engine. The PBFT and Elastico substrates
// run on simulated time: components schedule callbacks at future instants,
// and the engine executes them in timestamp order (FIFO within equal
// timestamps, by insertion sequence — deterministic).
//
// The engine is deliberately single-threaded: determinism matters more than
// parallel speed for a protocol simulator, and all experiments complete in
// seconds of wall-clock time.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"
#include "obs/context.hpp"

namespace mvcom::obs {
class Counter;
}  // namespace mvcom::obs

namespace mvcom::sim {

using common::SimTime;

/// Handle for a scheduled event; lets the scheduler cancel timers (e.g.
/// PBFT view-change timers that are disarmed on progress).
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// The simulation kernel.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to run at absolute simulated time `at`.
  /// Precondition: at >= now() (the past is immutable).
  EventId schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` to run `delay` after the current time.
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now() + delay, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a harmless no-op (matches how protocol timers are usually disarmed).
  void cancel(EventId id);

  /// Runs events until the queue empties or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= horizon. Events scheduled during the run
  /// are honored if they also fall within the horizon. Advances the clock to
  /// `horizon` even if the queue drains early.
  std::size_t run_until(SimTime horizon);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return live_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Attaches observability: counts scheduled/executed/cancelled events.
  /// (The sim clock itself is attached to a TraceRecorder by the run
  /// harness via TraceRecorder::set_sim_clock, not here — the recorder must
  /// outlive every component, while this simulator may not.)
  void set_obs(obs::ObsContext obs);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    // Callback lives out-of-line so Entry moves are cheap in the heap.
    std::shared_ptr<Callback> cb;

    friend bool operator>(const Entry& a, const Entry& b) noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool fire_next();  // pops and executes one event; false if queue empty

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> live_;       // scheduled, not yet fired
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones in the heap
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;

  obs::Counter* obs_scheduled_ = nullptr;
  obs::Counter* obs_executed_ = nullptr;
  obs::Counter* obs_cancelled_ = nullptr;
};

}  // namespace mvcom::sim
