#pragma once
// Discrete-event simulation (DES) engine. The PBFT and Elastico substrates
// run on simulated time: components schedule callbacks at future instants,
// and the engine executes them in timestamp order (FIFO within equal
// timestamps, by insertion sequence — deterministic).
//
// One Simulator instance is single-threaded by construction — determinism
// matters more than intra-fabric parallelism for a protocol simulator. The
// epoch substrate reaches wall-clock parallelism one level up: mutually
// independent protocol instances (e.g. Elastico's per-committee PBFT runs)
// each own a private Simulator "lane" and many lanes execute concurrently
// on a worker pool (see sharding/elastico and DESIGN.md §12).
//
// Hot-path design (this engine fires tens of millions of events per epoch
// at the large scale tiers). Events come in two kinds, not one callback per
// event as in early revisions:
//  * Callback events live in a slab of generation-stamped slots recycled
//    through a free list — no per-event heap allocation once the slab is
//    warm, and cancel() is O(1): bump the slot's generation and the stale
//    heap entry is skipped when it surfaces (lazy deletion, no hash sets).
//    Callbacks are stored inline in the slot (small-buffer, type-erased);
//    only captures larger than EventCallback::kInlineCapacity fall back to
//    a single heap allocation.
//  * Typed events (sim/kernel.hpp) carry a 16-byte payload and a kernel id.
//    Under SimConfig::kernel_mode == kBatched the payloads live in a flat
//    recycled arena and ready events are dispatched to their kernel a whole
//    cohort — maximal run of equal (timestamp, kernel) — at a time, SoA
//    style; under kReference they are interpreted one at a time through the
//    slab, which is the semantics the batched mode must reproduce bitwise.
//  * The pending set is a 4-ary implicit heap — shallower than a binary
//    heap and with four children per cache line of entries, it does fewer
//    cache-missing levels per push/pop on large queues. Both executors pop
//    from the same heap, so the (timestamp, sequence) execution order — and
//    the FNV-1a order_digest folded over it — is identical across modes.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/fnv.hpp"
#include "common/sim_time.hpp"
#include "obs/context.hpp"
#include "sim/kernel.hpp"

namespace mvcom::obs {
class Counter;
}  // namespace mvcom::obs

namespace mvcom::sim {

using common::SimTime;

/// Handle for a scheduled event; lets the scheduler cancel timers (e.g.
/// PBFT view-change timers that are disarmed on progress).
/// Encodes {slot index, slot generation}; a default-constructed id (0)
/// never matches a live event.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// Type-erased callable storage with a small inline buffer. Built for the
/// event slab: a callback is emplaced exactly once, invoked at most once
/// from its slot (slots never move — the slab hands out stable addresses),
/// and destroyed in place.
class EventCallback {
 public:
  /// Sized so the common protocol callbacks — a PBFT message delivery
  /// lambda plus the network's tracing wrapper — stay inline.
  static constexpr std::size_t kInlineCapacity = 104;

  EventCallback() noexcept = default;
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  [[nodiscard]] bool armed() const noexcept { return ops_ != nullptr; }

  template <typename F>
  void emplace(F&& f) {
    assert(ops_ == nullptr);
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  /// Invokes the stored callable. The callable stays alive for the whole
  /// call (it may re-enter the simulator); call reset() afterwards.
  void invoke() {
    assert(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* storage) { (*std::launder(static_cast<Fn*>(storage)))(); },
      [](void* storage) noexcept {
        std::launder(static_cast<Fn*>(storage))->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops boxed_ops{
      [](void* storage) { (**std::launder(static_cast<Fn**>(storage)))(); },
      [](void* storage) noexcept {
        delete *std::launder(static_cast<Fn**>(storage));
      }};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
};

/// The simulation kernel.
class Simulator {
 public:
  /// Compatibility alias — schedule_at accepts any callable, not just
  /// std::function, so small captures stay allocation-free.
  using Callback = std::function<void()>;

  explicit Simulator(SimConfig config = {}) noexcept : config_(config) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] KernelMode kernel_mode() const noexcept {
    return config_.kernel_mode;
  }

  /// Registers a typed-event kernel (sim/kernel.hpp). Kernels are expected
  /// to be registered up front, one per event type a component emits; the
  /// returned id is dense and valid for this simulator's lifetime.
  KernelId register_kernel(KernelFn fn, void* ctx);

  /// Schedules one typed event. Typed events cannot be cancelled — use the
  /// callback path for disarmable timers. Under kReference the event fires
  /// as a cohort of one through the slab; under kBatched it is dispatched
  /// with every other ready event of the same (timestamp, kernel).
  /// Precondition: at >= now(), kernel was returned by register_kernel.
  void schedule_typed(SimTime at, KernelId kernel, TypedPayload payload);

  /// schedule_typed relative to the current time.
  void schedule_typed_after(SimTime delay, KernelId kernel,
                            TypedPayload payload) {
    schedule_typed(now() + delay, kernel, payload);
  }

  /// Schedules `f` to run at absolute simulated time `at`.
  /// Precondition: at >= now() (the past is immutable).
  template <typename F>
  EventId schedule_at(SimTime at, F&& f) {
    const std::uint32_t index = arm_slot(at);
    slot(index).cb.emplace(std::forward<F>(f));
    return EventId{pack(index, slot(index).gen)};
  }

  /// Schedules `f` to run `delay` after the current time.
  template <typename F>
  EventId schedule_after(SimTime delay, F&& f) {
    return schedule_at(now() + delay, std::forward<F>(f));
  }

  /// Cancels a pending event in O(1). Cancelling an already-fired or
  /// unknown event is a harmless no-op (matches how protocol timers are
  /// usually disarmed).
  void cancel(EventId id);

  /// Runs events until the queue empties or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= horizon. Events scheduled during the run
  /// are honored if they also fall within the horizon. Advances the clock to
  /// `horizon` even if the queue drains early.
  std::size_t run_until(SimTime horizon);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Order digest: FNV-1a over the (sequence, timestamp) pairs of every
  /// executed event, folded in execution order. Two runs that fired the
  /// same events in the same order — the determinism contract of the
  /// lane-parallel epoch substrate — have equal digests; any divergence in
  /// scheduling or ordering changes it. Independent of the observability
  /// build mode.
  [[nodiscard]] std::uint64_t order_digest() const noexcept { return digest_; }

  /// Attaches observability: counts scheduled/executed/cancelled events.
  /// (The sim clock itself is attached to a TraceRecorder by the run
  /// harness via TraceRecorder::set_sim_clock, not here — the recorder must
  /// outlive every component, while this simulator may not.)
  void set_obs(obs::ObsContext obs);

 private:
  /// Generation-stamped event slot. Slots live in fixed chunks (stable
  /// addresses) and are recycled through free_; the generation ties heap
  /// entries and EventIds to one incarnation of the slot.
  struct Slot {
    std::uint32_t gen = 1;
    EventCallback cb;
  };

  /// One pending-queue entry. `seq` is the global schedule order — the
  /// FIFO tie-break among equal timestamps. For slab events (slot's top bit
  /// clear) (slot, gen) is validated against the slab on pop, which is how
  /// O(1) cancel works. For batched typed events the top bit of `slot` is
  /// set, the low bits index the payload arena, and `gen` holds the kernel
  /// id — typed events are never cancellable, so no generation is needed.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kTypedBit = 0x80000000u;

  struct Kernel {
    KernelFn fn;
    void* ctx;
  };

  static constexpr std::size_t kChunkShift = 6;  // 64 slots per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  static constexpr std::uint64_t pack(std::uint32_t index,
                                      std::uint32_t gen) noexcept {
    return (std::uint64_t{index} << 32) | gen;
  }

  [[nodiscard]] Slot& slot(std::uint32_t index) noexcept {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  /// Claims a free slot (extending the slab if needed), pushes the heap
  /// entry, and returns the slot index. The caller emplaces the callback.
  std::uint32_t arm_slot(SimTime at);

  void retire_slot(std::uint32_t index) noexcept;

  static bool entry_before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  void heap_push(const HeapEntry& e);
  void heap_pop_root() noexcept;

  bool fire_next();  // pops and executes one event; false if queue empty

  /// Drops stale slab tombstones (cancelled events) from the heap head so
  /// the peeked entry is live. Typed entries are always live.
  void skip_stale_head() noexcept;

  /// The cohort executor (kernel_mode == kBatched). Fires up to `limit`
  /// events; when `horizon` is non-null only events with at <= *horizon
  /// fire. Returns the number of events executed.
  std::size_t run_batched(std::size_t limit, const SimTime* horizon);

  SimConfig config_{};
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_;   // recycled slot indices (LIFO)
  std::vector<HeapEntry> heap_;       // 4-ary implicit min-heap
  std::size_t live_ = 0;              // scheduled, not yet fired/cancelled
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t digest_ = common::kFnv1aBasis;

  // Typed-event machinery. `typed_pool_` is the payload arena: a flat array
  // recycled through `typed_free_`, sized to the peak number of in-flight
  // typed events (per-epoch lane simulators give it an arena-per-epoch
  // lifetime). `cohort_` is the gather scratch handed to kernels.
  std::vector<Kernel> kernels_;
  std::vector<TypedPayload> typed_pool_;
  std::vector<std::uint32_t> typed_free_;
  std::vector<TypedPayload> cohort_;

  obs::Counter* obs_scheduled_ = nullptr;
  obs::Counter* obs_executed_ = nullptr;
  obs::Counter* obs_cancelled_ = nullptr;
};

}  // namespace mvcom::sim
