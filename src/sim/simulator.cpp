#include "sim/simulator.hpp"

#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mvcom::sim {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  // Fold the value byte-granularity-free: one xor-multiply per 64-bit word
  // keeps the per-event cost to a couple of cycles.
  return (h ^ v) * kFnvPrime;
}

}  // namespace

void Simulator::set_obs(obs::ObsContext obs) {
  obs_scheduled_ = nullptr;
  obs_executed_ = nullptr;
  obs_cancelled_ = nullptr;
  if (obs::MetricsRegistry* m = obs.metrics()) {
    obs_scheduled_ = &m->counter("mvcom_sim_events_total",
                                 "DES events by lifecycle stage",
                                 {{"stage", "scheduled"}});
    obs_executed_ = &m->counter("mvcom_sim_events_total",
                                "DES events by lifecycle stage",
                                {{"stage", "executed"}});
    obs_cancelled_ = &m->counter("mvcom_sim_events_total",
                                 "DES events by lifecycle stage",
                                 {{"stage", "cancelled"}});
  }
}

std::uint32_t Simulator::arm_slot(SimTime at) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at: cannot schedule in the past");
  }
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    // Every allocated slot is busy: grow the slab by one chunk, take its
    // first slot, and hand the rest to the free list (descending, so low
    // indices are recycled first).
    const std::size_t used = chunks_.size() * kChunkSize;
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    for (std::size_t i = kChunkSize - 1; i > 0; --i) {
      free_.push_back(static_cast<std::uint32_t>(used + i));
    }
    index = static_cast<std::uint32_t>(used);
  }
  heap_push(HeapEntry{at, next_seq_++, index, slot(index).gen});
  ++live_;
  if (obs_scheduled_ != nullptr) obs_scheduled_->inc();
  return index;
}

void Simulator::retire_slot(std::uint32_t index) noexcept {
  Slot& s = slot(index);
  ++s.gen;
  s.cb.reset();
  free_.push_back(index);
}

void Simulator::cancel(EventId id) {
  // Only ids whose generation matches the slot's current incarnation are
  // live; cancelling a fired or unknown id is a no-op (protocol timers are
  // routinely disarmed late). The stale heap entry is skipped lazily.
  const auto index = static_cast<std::uint32_t>(id.value >> 32);
  const auto gen = static_cast<std::uint32_t>(id.value);
  if (gen == 0 || index >= chunks_.size() * kChunkSize) return;
  Slot& s = slot(index);
  if (s.gen != gen || !s.cb.armed()) return;
  retire_slot(index);
  --live_;
  if (obs_cancelled_ != nullptr) obs_cancelled_->inc();
}

void Simulator::heap_push(const HeapEntry& e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::heap_pop_root() noexcept {
  heap_[0] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << 2) + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

bool Simulator::fire_next() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    heap_pop_root();
    Slot& s = slot(top.slot);
    if (s.gen != top.gen) continue;  // cancelled: stale tombstone
    assert(top.at >= now_);
    now_ = top.at;
    ++s.gen;  // disarm: the event's id is dead for cancel() from here on
    --live_;
    ++executed_;
    digest_ = fnv_mix(digest_, top.seq);
    digest_ = fnv_mix(digest_, std::bit_cast<std::uint64_t>(top.at.seconds()));
    if (obs_executed_ != nullptr) obs_executed_->inc();
    // The callback stays in its slot for the call (slots are stable even if
    // the callback schedules new events); the slot returns to the free list
    // only afterwards, so reentrant scheduling cannot reuse it mid-call.
    struct Retire {
      Simulator* sim;
      std::uint32_t index;
      ~Retire() {
        Slot& sl = sim->slot(index);
        sl.cb.reset();
        sim->free_.push_back(index);
      }
    } retire{this, top.slot};
    s.cb.invoke();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t fired = 0;
  while (!heap_.empty()) {
    // Drop stale tombstones at the head so the peeked time is live.
    const HeapEntry& top = heap_[0];
    if (slot(top.slot).gen != top.gen) {
      heap_pop_root();
      continue;
    }
    if (top.at > horizon) break;
    fire_next();
    ++fired;
  }
  if (now_ < horizon) now_ = horizon;
  return fired;
}

}  // namespace mvcom::sim
