#include "sim/simulator.hpp"

#include <bit>
#include <stdexcept>

#include "common/fnv.hpp"
#include "obs/metrics.hpp"

namespace mvcom::sim {
namespace {

// Fold values byte-granularity-free: one xor-multiply per 64-bit word keeps
// the per-event cost to a couple of cycles (common/fnv.hpp).
using common::fnv1a_mix;

}  // namespace

void Simulator::set_obs(obs::ObsContext obs) {
  obs_scheduled_ = nullptr;
  obs_executed_ = nullptr;
  obs_cancelled_ = nullptr;
  if (obs::MetricsRegistry* m = obs.metrics()) {
    obs_scheduled_ = &m->counter("mvcom_sim_events_total",
                                 "DES events by lifecycle stage",
                                 {{"stage", "scheduled"}});
    obs_executed_ = &m->counter("mvcom_sim_events_total",
                                "DES events by lifecycle stage",
                                {{"stage", "executed"}});
    obs_cancelled_ = &m->counter("mvcom_sim_events_total",
                                 "DES events by lifecycle stage",
                                 {{"stage", "cancelled"}});
  }
}

std::uint32_t Simulator::arm_slot(SimTime at) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at: cannot schedule in the past");
  }
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    // Every allocated slot is busy: grow the slab by one chunk, take its
    // first slot, and hand the rest to the free list (descending, so low
    // indices are recycled first).
    const std::size_t used = chunks_.size() * kChunkSize;
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    for (std::size_t i = kChunkSize - 1; i > 0; --i) {
      free_.push_back(static_cast<std::uint32_t>(used + i));
    }
    index = static_cast<std::uint32_t>(used);
  }
  assert((index & kTypedBit) == 0);  // 2^31 slots: the slab never gets there
  heap_push(HeapEntry{at, next_seq_++, index, slot(index).gen});
  ++live_;
  if (obs_scheduled_ != nullptr) obs_scheduled_->inc();
  return index;
}

void Simulator::retire_slot(std::uint32_t index) noexcept {
  Slot& s = slot(index);
  ++s.gen;
  s.cb.reset();
  free_.push_back(index);
}

void Simulator::cancel(EventId id) {
  // Only ids whose generation matches the slot's current incarnation are
  // live; cancelling a fired or unknown id is a no-op (protocol timers are
  // routinely disarmed late). The stale heap entry is skipped lazily.
  const auto index = static_cast<std::uint32_t>(id.value >> 32);
  const auto gen = static_cast<std::uint32_t>(id.value);
  if (gen == 0 || index >= chunks_.size() * kChunkSize) return;
  Slot& s = slot(index);
  if (s.gen != gen || !s.cb.armed()) return;
  retire_slot(index);
  --live_;
  if (obs_cancelled_ != nullptr) obs_cancelled_->inc();
}

// Both percolations carry the moving entry in registers and shift the
// displaced entries with single copies (a "hole" walk) instead of swapping
// 24-byte entries at every level — one third of the memory traffic, same
// comparison sequence, so the resulting order (and therefore the digest) is
// identical to the textbook swap formulation.
void Simulator::heap_push(const HeapEntry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);  // placeholder; overwritten when the hole settles
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_root() noexcept {
  // Floyd's variant: the replacement entry comes from the heap bottom, so
  // instead of comparing it against the min child at every level (it almost
  // always loses), sink the hole straight to a leaf along the min-child path
  // and bubble the entry back up — usually zero or one step. The popped
  // minimum is identical either way (the (at, seq) order is total), so the
  // executed-event order and the digest cannot change.
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << 2) + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

bool Simulator::fire_next() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    heap_pop_root();
    Slot& s = slot(top.slot);
    if (s.gen != top.gen) continue;  // cancelled: stale tombstone
    assert(top.at >= now_);
    now_ = top.at;
    ++s.gen;  // disarm: the event's id is dead for cancel() from here on
    --live_;
    ++executed_;
    digest_ = fnv1a_mix(digest_, top.seq);
    digest_ = fnv1a_mix(digest_, std::bit_cast<std::uint64_t>(top.at.seconds()));
    if (obs_executed_ != nullptr) obs_executed_->inc();
    // The callback stays in its slot for the call (slots are stable even if
    // the callback schedules new events); the slot returns to the free list
    // only afterwards, so reentrant scheduling cannot reuse it mid-call.
    struct Retire {
      Simulator* sim;
      std::uint32_t index;
      ~Retire() {
        Slot& sl = sim->slot(index);
        sl.cb.reset();
        sim->free_.push_back(index);
      }
    } retire{this, top.slot};
    s.cb.invoke();
    return true;
  }
  return false;
}

KernelId Simulator::register_kernel(KernelFn fn, void* ctx) {
  assert(fn != nullptr);
  if (kernels_.size() >= 0x10000) {
    throw std::logic_error("Simulator::register_kernel: too many kernels");
  }
  kernels_.push_back(Kernel{fn, ctx});
  return KernelId{static_cast<std::uint16_t>(kernels_.size() - 1)};
}

void Simulator::schedule_typed(SimTime at, KernelId kernel,
                               TypedPayload payload) {
  assert(kernel.value < kernels_.size());
  if (config_.kernel_mode == KernelMode::kReference) {
    // Reference interpreter: the event goes through the slab like any other
    // callback and invokes the kernel as a cohort of one. 32-byte capture —
    // stays inline.
    const Kernel k = kernels_[kernel.value];
    schedule_at(at, [k, payload] { k.fn(k.ctx, &payload, 1); });
    return;
  }
  if (at < now_) {
    throw std::logic_error(
        "Simulator::schedule_typed: cannot schedule in the past");
  }
  std::uint32_t index;
  if (!typed_free_.empty()) {
    index = typed_free_.back();
    typed_free_.pop_back();
    typed_pool_[index] = payload;
  } else {
    index = static_cast<std::uint32_t>(typed_pool_.size());
    typed_pool_.push_back(payload);
  }
  heap_push(HeapEntry{at, next_seq_++, kTypedBit | index, kernel.value});
  ++live_;
  if (obs_scheduled_ != nullptr) obs_scheduled_->inc();
}

void Simulator::skip_stale_head() noexcept {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    if ((top.slot & kTypedBit) != 0 || slot(top.slot).gen == top.gen) return;
    heap_pop_root();
  }
}

std::size_t Simulator::run_batched(std::size_t limit, const SimTime* horizon) {
  std::size_t fired = 0;
  while (fired < limit) {
    skip_stale_head();
    if (heap_.empty()) break;
    if (horizon != nullptr && heap_[0].at > *horizon) break;
    if ((heap_[0].slot & kTypedBit) == 0) {
      // Live slab event at the head: fire it individually, as the reference
      // executor would.
      fire_next();
      ++fired;
      continue;
    }
    // Collect the maximal cohort: consecutive typed entries sharing
    // (timestamp, kernel) in heap pop order. Events a kernel schedules get
    // strictly larger `seq` values, so they sort after every collected
    // member — the execution order (and hence the digest, folded per member
    // in pop order below) is identical to firing them one at a time.
    const SimTime at = heap_[0].at;
    const std::uint32_t kernel = heap_[0].gen;
    assert(at >= now_);
    cohort_.clear();
    do {
      const HeapEntry top = heap_[0];
      heap_pop_root();
      const std::uint32_t index = top.slot & ~kTypedBit;
      cohort_.push_back(typed_pool_[index]);
      typed_free_.push_back(index);
      --live_;
      ++executed_;
      ++fired;
      digest_ = fnv1a_mix(digest_, top.seq);
      digest_ =
          fnv1a_mix(digest_, std::bit_cast<std::uint64_t>(top.at.seconds()));
      skip_stale_head();
    } while (fired < limit && !heap_.empty() &&
             (heap_[0].slot & kTypedBit) != 0 && heap_[0].gen == kernel &&
             heap_[0].at == at);
    now_ = at;
    if (obs_executed_ != nullptr) obs_executed_->add(cohort_.size());
    // Payload slots were recycled above; the kernel sees copies, so
    // schedule_typed re-entry may safely reuse (or grow) the arena.
    const Kernel k = kernels_[kernel];
    k.fn(k.ctx, cohort_.data(), cohort_.size());
  }
  return fired;
}

std::size_t Simulator::run(std::size_t limit) {
  if (config_.kernel_mode == KernelMode::kBatched) {
    return run_batched(limit, nullptr);
  }
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t fired = 0;
  if (config_.kernel_mode == KernelMode::kBatched) {
    fired = run_batched(SIZE_MAX, &horizon);
    if (now_ < horizon) now_ = horizon;
    return fired;
  }
  while (!heap_.empty()) {
    // Drop stale tombstones at the head so the peeked time is live.
    const HeapEntry& top = heap_[0];
    if (slot(top.slot).gen != top.gen) {
      heap_pop_root();
      continue;
    }
    if (top.at > horizon) break;
    fire_next();
    ++fired;
  }
  if (now_ < horizon) now_ = horizon;
  return fired;
}

}  // namespace mvcom::sim
