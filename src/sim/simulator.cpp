#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace mvcom::sim {

EventId Simulator::schedule_at(SimTime at, Callback cb) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at: cannot schedule in the past");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq, std::make_shared<Callback>(std::move(cb))});
  live_.insert(seq);
  return EventId{seq};
}

void Simulator::cancel(EventId id) {
  // Only live events grow the tombstone set; cancelling a fired or unknown
  // id is a no-op (protocol timers are routinely disarmed late).
  if (live_.erase(id.value) > 0) {
    cancelled_.insert(id.value);
  }
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(top.at >= now_);
    now_ = top.at;
    live_.erase(top.seq);
    ++executed_;
    (*top.cb)();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Skip cancelled tombstones at the head so the peeked time is live.
    Entry top = queue_.top();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      queue_.pop();
      cancelled_.erase(it);
      continue;
    }
    if (top.at > horizon) break;
    fire_next();
    ++fired;
  }
  if (now_ < horizon) now_ = horizon;
  return fired;
}

}  // namespace mvcom::sim
