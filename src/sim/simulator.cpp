#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mvcom::sim {

void Simulator::set_obs(obs::ObsContext obs) {
  obs_scheduled_ = nullptr;
  obs_executed_ = nullptr;
  obs_cancelled_ = nullptr;
  if (obs::MetricsRegistry* m = obs.metrics()) {
    obs_scheduled_ = &m->counter("mvcom_sim_events_total",
                                 "DES events by lifecycle stage",
                                 {{"stage", "scheduled"}});
    obs_executed_ = &m->counter("mvcom_sim_events_total",
                                "DES events by lifecycle stage",
                                {{"stage", "executed"}});
    obs_cancelled_ = &m->counter("mvcom_sim_events_total",
                                 "DES events by lifecycle stage",
                                 {{"stage", "cancelled"}});
  }
}

EventId Simulator::schedule_at(SimTime at, Callback cb) {
  if (at < now_) {
    throw std::logic_error("Simulator::schedule_at: cannot schedule in the past");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq, std::make_shared<Callback>(std::move(cb))});
  live_.insert(seq);
  if (obs_scheduled_ != nullptr) obs_scheduled_->inc();
  return EventId{seq};
}

void Simulator::cancel(EventId id) {
  // Only live events grow the tombstone set; cancelling a fired or unknown
  // id is a no-op (protocol timers are routinely disarmed late).
  if (live_.erase(id.value) > 0) {
    cancelled_.insert(id.value);
    if (obs_cancelled_ != nullptr) obs_cancelled_->inc();
  }
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(top.at >= now_);
    now_ = top.at;
    live_.erase(top.seq);
    ++executed_;
    if (obs_executed_ != nullptr) obs_executed_->inc();
    (*top.cb)();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Skip cancelled tombstones at the head so the peeked time is live.
    Entry top = queue_.top();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      queue_.pop();
      cancelled_.erase(it);
      continue;
    }
    if (top.at > horizon) break;
    fire_next();
    ++fired;
  }
  if (now_ < horizon) now_ = horizon;
  return fired;
}

}  // namespace mvcom::sim
