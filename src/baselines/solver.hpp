#pragma once
// Common interface for the committee-selection solvers compared in §VI:
// the SE algorithm (src/mvcom) against Simulated Annealing, Dynamic
// Programming, and the Whale Optimization Algorithm, plus two extras used
// as ground truth and sanity baselines (Exhaustive, Greedy).

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"

namespace mvcom::baselines {

using core::Committee;
using core::EpochInstance;
using core::Selection;
using core::SelectionStats;

struct SolverResult {
  Selection best;                     // empty when infeasible
  double utility = 0.0;
  double valuable_degree = 0.0;
  bool feasible = false;
  std::size_t iterations = 0;
  /// Best-feasible-so-far utility after each iteration (iterative solvers;
  /// single-shot solvers emit one point).
  std::vector<double> utility_trace;
};

/// Abstract solver.
class Solver {
 public:
  virtual ~Solver() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual SolverResult solve(const EpochInstance& instance) = 0;
};

/// Repairs a selection toward feasibility with *informed* choices:
///  1. while over capacity: drop the selected committee with the worst
///     marginal utility per transaction;
///  2. while below N_min: add the unselected committee with the smallest
///     shard that still fits (N_min needs bodies, cheap ones first).
/// Returns false when no feasible repair exists (capacity and N_min clash).
/// Note: this is itself a decent greedy heuristic — only Greedy and
/// final-answer fixups use it. Metaheuristic baselines use repair_random
/// so their reported quality reflects their own search, not the repair's.
bool repair(const EpochInstance& instance, Selection& x);

/// Neutral feasibility repair: drops uniformly random selected committees
/// until capacity holds, then adds random fitting committees until N_min.
/// Same return contract as repair().
bool repair_random(const EpochInstance& instance, Selection& x,
                   common::Rng& rng);

/// Fills in utility/valuable-degree fields from a candidate selection.
void finalize_result(const EpochInstance& instance, SolverResult& result);

}  // namespace mvcom::baselines
