#pragma once
// Greedy density heuristic (extra baseline, not in the paper): sort by
// marginal utility per transaction (gain_i / s_i), pack while the capacity
// allows, then repair to N_min. One-shot and deterministic — a useful
// sanity floor for the metaheuristics.

#include "baselines/solver.hpp"

namespace mvcom::baselines {

class Greedy final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Greedy";
  }
  [[nodiscard]] SolverResult solve(const EpochInstance& instance) override;
};

}  // namespace mvcom::baselines
