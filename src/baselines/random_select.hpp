#pragma once
// Random-selection floor baseline: a uniformly random subset repaired to
// feasibility, best of `trials` draws. Any scheduler worth running must
// clear this bar; benches use it to contextualize the SE-vs-baseline gaps.

#include "baselines/solver.hpp"

namespace mvcom::baselines {

struct RandomSelectParams {
  std::size_t trials = 64;
};

class RandomSelect final : public Solver {
 public:
  RandomSelect(RandomSelectParams params, std::uint64_t seed)
      : params_(params), seed_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Random";
  }
  [[nodiscard]] SolverResult solve(const EpochInstance& instance) override;

 private:
  RandomSelectParams params_;
  std::uint64_t seed_;
};

}  // namespace mvcom::baselines
