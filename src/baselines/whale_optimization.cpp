#include "baselines/whale_optimization.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

namespace mvcom::baselines {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Threshold binarization of a continuous whale position.
Selection binarize(const std::vector<double>& pos) {
  Selection x(pos.size(), 0);
  for (std::size_t i = 0; i < pos.size(); ++i) x[i] = pos[i] > 0.5 ? 1 : 0;
  return x;
}

}  // namespace

SolverResult WhaleOptimization::solve(const EpochInstance& instance) {
  common::Rng rng(seed_);
  const std::size_t dim = instance.size();
  const std::size_t pop = params_.population;

  std::vector<std::vector<double>> whales(pop, std::vector<double>(dim));
  for (auto& w : whales) {
    for (double& v : w) v = rng.uniform01();
  }

  // Fitness = utility of the binarized position with linear constraint
  // penalties (the standard binary-WOA recipe) — NOT a repaired utility,
  // so the reported quality reflects WOA's own search. The penalty slope
  // exceeds any per-TX gain, so infeasible never beats feasible.
  const double penalty_rate = instance.alpha() + 1.0;
  const double n_min_penalty =
      penalty_rate * static_cast<double>(instance.capacity());
  const auto fitness = [&](const std::vector<double>& pos,
                           Selection* out) -> double {
    Selection x = binarize(pos);
    const auto st = instance.stats(x);
    double f = instance.utility(x);
    if (st.txs > instance.capacity()) {
      f -= penalty_rate * static_cast<double>(st.txs - instance.capacity());
    }
    if (st.chosen < instance.n_min()) {
      f -= n_min_penalty * static_cast<double>(instance.n_min() - st.chosen);
    }
    if (out) *out = std::move(x);
    return f;
  };

  double best_fitness = kNegInf;
  std::vector<double> best_pos(dim, 0.0);
  Selection best_selection;
  for (const auto& w : whales) {
    Selection x;
    const double f = fitness(w, &x);
    if (f > best_fitness) {
      best_fitness = f;
      best_pos = w;
      best_selection = std::move(x);
    }
  }

  SolverResult result;
  result.utility_trace.reserve(params_.iterations);

  for (std::size_t it = 0; it < params_.iterations; ++it) {
    // a decreases linearly 2 → 0 over the run (exploration → exploitation).
    const double a = 2.0 - 2.0 * static_cast<double>(it) /
                               static_cast<double>(params_.iterations);
    for (auto& w : whales) {
      const double p = rng.uniform01();
      if (p < 0.5) {
        const double A = 2.0 * a * rng.uniform01() - a;
        const double C = 2.0 * rng.uniform01();
        if (std::abs(A) < 1.0) {
          // Encircling prey: move toward the best-known whale.
          for (std::size_t d = 0; d < dim; ++d) {
            const double dist = std::abs(C * best_pos[d] - w[d]);
            w[d] = best_pos[d] - A * dist;
          }
        } else {
          // Search for prey: move relative to a random whale.
          const auto& rand_whale = whales[rng.below(pop)];
          for (std::size_t d = 0; d < dim; ++d) {
            const double dist = std::abs(C * rand_whale[d] - w[d]);
            w[d] = rand_whale[d] - A * dist;
          }
        }
      } else {
        // Bubble-net attack: logarithmic spiral around the best whale.
        const double l = rng.uniform(-1.0, 1.0);
        for (std::size_t d = 0; d < dim; ++d) {
          const double dist = std::abs(best_pos[d] - w[d]);
          w[d] = dist * std::exp(params_.spiral_b * l) *
                     std::cos(2.0 * std::numbers::pi * l) +
                 best_pos[d];
        }
      }
      for (double& v : w) v = std::clamp(v, 0.0, 1.0);

      Selection x;
      const double f = fitness(w, &x);
      if (f > best_fitness) {
        best_fitness = f;
        best_pos = w;
        best_selection = std::move(x);
      }
    }
    result.utility_trace.push_back(
        best_fitness == kNegInf ? std::numeric_limits<double>::quiet_NaN()
                                : best_fitness);
  }

  result.iterations = params_.iterations;
  // The best whale may sit just outside the feasible region (penalty
  // fitness); neutrally repair the final answer only.
  if (!best_selection.empty() && !instance.feasible(best_selection)) {
    repair_random(instance, best_selection, rng);
  }
  result.best = std::move(best_selection);
  finalize_result(instance, result);
  return result;
}

}  // namespace mvcom::baselines
