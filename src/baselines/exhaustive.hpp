#pragma once
// Exhaustive search — exact ground truth for small instances (|I| <= 24).
// Used by property tests to certify the SE scheduler's near-optimality and
// by the theory benches to enumerate the full solution space F.

#include "baselines/solver.hpp"

namespace mvcom::baselines {

class Exhaustive final : public Solver {
 public:
  /// Throws std::invalid_argument when the instance exceeds `max_size`
  /// committees (2^|I| states — keep it honest).
  explicit Exhaustive(std::size_t max_size = 24) : max_size_(max_size) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Exhaustive";
  }
  [[nodiscard]] SolverResult solve(const EpochInstance& instance) override;

 private:
  std::size_t max_size_;
};

}  // namespace mvcom::baselines
