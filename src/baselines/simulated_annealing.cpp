#include "baselines/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mvcom::baselines {

SolverResult SimulatedAnnealing::solve(const EpochInstance& instance) {
  common::Rng rng(seed_);
  const auto& committees = instance.committees();
  const std::size_t total = instance.size();

  // Start from a *neutrally* repaired random selection — the repair only
  // restores feasibility; any quality must come from the annealing itself.
  Selection x(total, 0);
  for (std::size_t i = 0; i < total; ++i) x[i] = rng.bernoulli(0.5) ? 1 : 0;
  SolverResult result;
  if (!repair_random(instance, x, rng)) {
    result.utility_trace.assign(params_.iterations, 0.0);
    return result;  // infeasible instance
  }

  SelectionStats st = instance.stats(x);
  double utility = instance.utility(x);

  double best_utility = -std::numeric_limits<double>::infinity();
  Selection best;
  if (instance.n_min_ok(st)) {
    best_utility = utility;
    best = x;
  }

  // Auto temperature: a fraction of the spread of single-committee gains so
  // early iterations accept most moves.
  double temperature = params_.initial_temperature;
  if (temperature < 0.0) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = 0; i < total; ++i) {
      lo = std::min(lo, instance.gain(i));
      hi = std::max(hi, instance.gain(i));
    }
    temperature = std::max(1.0, 0.5 * (hi - lo));
  }

  result.utility_trace.reserve(params_.iterations);
  for (std::size_t it = 0; it < params_.iterations; ++it) {
    // Propose: swap (cardinality-preserving) or flip (explores cardinality).
    double delta = 0.0;
    std::size_t flip_a = total;
    std::size_t flip_b = total;
    if (st.chosen > 0 && st.chosen < total &&
        rng.bernoulli(params_.swap_probability)) {
      // Swap a random selected with a random unselected committee.
      std::size_t out;
      std::size_t in;
      do {
        out = static_cast<std::size_t>(rng.below(total));
      } while (!x[out]);
      do {
        in = static_cast<std::size_t>(rng.below(total));
      } while (x[in]);
      if (st.txs - committees[out].txs + committees[in].txs <=
          instance.capacity()) {
        delta = instance.gain(in) - instance.gain(out);
        flip_a = out;
        flip_b = in;
      }
    } else {
      const auto i = static_cast<std::size_t>(rng.below(total));
      if (x[i]) {
        delta = -instance.gain(i);
        flip_a = i;
      } else if (st.txs + committees[i].txs <= instance.capacity()) {
        delta = instance.gain(i);
        flip_a = i;
      }
    }

    if (flip_a != total) {
      const bool accept =
          delta >= 0.0 || rng.uniform01() < std::exp(delta / temperature);
      if (accept) {
        // Apply the move.
        auto apply = [&](std::size_t i) {
          if (x[i]) {
            x[i] = 0;
            --st.chosen;
            st.txs -= committees[i].txs;
          } else {
            x[i] = 1;
            ++st.chosen;
            st.txs += committees[i].txs;
          }
        };
        apply(flip_a);
        if (flip_b != total) apply(flip_b);
        utility += delta;
        if (instance.n_min_ok(st) && utility > best_utility) {
          best_utility = utility;
          best = x;
        }
      }
    }

    temperature = std::max(params_.min_temperature,
                           temperature * params_.cooling);
    result.utility_trace.push_back(
        best.empty() ? std::numeric_limits<double>::quiet_NaN()
                     : best_utility);
  }

  result.iterations = params_.iterations;
  result.best = std::move(best);
  finalize_result(instance, result);
  return result;
}

}  // namespace mvcom::baselines
