#pragma once
// Whale Optimization Algorithm baseline (paper §VI-B, citing Mirjalili &
// Lewis 2016 and Pham et al. 2020): population-based metaheuristic with the
// canonical three behaviours — encircling prey, bubble-net spiral attack,
// and random search — applied to a continuous relaxation in [0,1]^I that is
// binarized by thresholding and repaired to feasibility before fitness
// evaluation. The binary adaptation follows the standard transfer-function
// recipe used in binary-WOA literature.

#include "baselines/solver.hpp"

namespace mvcom::baselines {

struct WoaParams {
  std::size_t population = 30;
  std::size_t iterations = 200;
  double spiral_b = 1.0;  // logarithmic-spiral shape constant
};

class WhaleOptimization final : public Solver {
 public:
  WhaleOptimization(WoaParams params, std::uint64_t seed)
      : params_(params), seed_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "WOA";
  }
  [[nodiscard]] SolverResult solve(const EpochInstance& instance) override;

 private:
  WoaParams params_;
  std::uint64_t seed_;
};

}  // namespace mvcom::baselines
