#include "baselines/exhaustive.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

namespace mvcom::baselines {

SolverResult Exhaustive::solve(const EpochInstance& instance) {
  const std::size_t n = instance.size();
  if (n > max_size_) {
    throw std::invalid_argument("Exhaustive: instance too large");
  }
  const auto& committees = instance.committees();

  double best_utility = -std::numeric_limits<double>::infinity();
  std::uint64_t best_mask = 0;
  bool found = false;

  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) < instance.n_min()) {
      continue;
    }
    std::uint64_t txs = 0;
    double utility = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) {
        txs += committees[i].txs;
        utility += instance.gain(i);
      }
    }
    if (txs > instance.capacity()) continue;
    if (!found || utility > best_utility) {
      found = true;
      best_utility = utility;
      best_mask = mask;
    }
  }

  SolverResult result;
  result.iterations = 1;
  if (found) {
    Selection x(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = (best_mask >> i) & 1 ? 1 : 0;
    }
    result.best = std::move(x);
  }
  finalize_result(instance, result);
  result.utility_trace.assign(
      1, result.feasible ? result.utility
                         : std::numeric_limits<double>::quiet_NaN());
  return result;
}

}  // namespace mvcom::baselines
