#pragma once
// Dynamic Programming baseline (paper §VI-B): the classical 0/1-knapsack
// value iteration. Two objective variants are provided:
//
//  * kThroughput (default — the paper's baseline): value_i = s_i. This is
//    the DP a block producer would naturally write — "pack the most
//    transactions into the Ĉ-capacity final block" — and it is completely
//    blind to the cumulative age Π_i. That blindness is exactly what the
//    paper observes: "DP and WOA algorithms generate solutions with pretty
//    low valuable degrees ... failed to help the final committee choose the
//    most valuable member committees" (§VI-E). An age-aware exact DP could
//    never trail SE on utility, so the paper's DP must be this variant.
//
//  * kUtility (extra, ground-truth flavored): value_i = α·s_i − Π_i, the
//    exact Eq.-(2) knapsack. With an unscaled table and N_min = 0 it is
//    provably optimal — used by tests to certify the other solvers.
//
// In both variants N_min is handled only by post-repair (the knapsack
// recurrence cannot express a cardinality lower bound without a second
// dimension), and capacities up to 10^6 are scaled into at most
// `max_buckets` weight buckets (weights rounded up, so the returned
// selection never violates Ĉ — the classic FPTAS rounding).

#include "baselines/solver.hpp"

namespace mvcom::baselines {

enum class DpObjective {
  kThroughput,  // maximize packed TXs (the paper's DP)
  kUtility,     // maximize Eq. (2) exactly
};

struct DpParams {
  std::size_t max_buckets = 50'000;
  DpObjective objective = DpObjective::kThroughput;
};

class DynamicProgramming final : public Solver {
 public:
  explicit DynamicProgramming(DpParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return params_.objective == DpObjective::kThroughput ? "DP" : "DP-U";
  }
  [[nodiscard]] SolverResult solve(const EpochInstance& instance) override;

 private:
  DpParams params_;
};

}  // namespace mvcom::baselines
