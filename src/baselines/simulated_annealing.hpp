#pragma once
// Simulated Annealing baseline (paper §VI-B, citing Knust & Xie 2019):
// Metropolis search over selections with a geometric cooling schedule.
// Moves are single-bit flips and swaps; capacity is enforced on every move
// and N_min at best-tracking time, mirroring how the SE scheduler treats
// the two constraints.

#include "baselines/solver.hpp"

namespace mvcom::baselines {

struct SaParams {
  std::size_t iterations = 5000;
  double initial_temperature = -1.0;  // < 0: auto-scale to the utility range
  double cooling = 0.999;             // geometric decay per iteration
  double min_temperature = 1e-6;
  /// Probability that a move is a swap (else a flip).
  double swap_probability = 0.5;
};

class SimulatedAnnealing final : public Solver {
 public:
  SimulatedAnnealing(SaParams params, std::uint64_t seed)
      : params_(params), seed_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "SA";
  }
  [[nodiscard]] SolverResult solve(const EpochInstance& instance) override;

 private:
  SaParams params_;
  std::uint64_t seed_;
};

}  // namespace mvcom::baselines
