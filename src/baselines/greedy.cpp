#include "baselines/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace mvcom::baselines {

SolverResult Greedy::solve(const EpochInstance& instance) {
  const auto& committees = instance.committees();
  const std::size_t n = instance.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = instance.gain(a) /
                      static_cast<double>(std::max<std::uint64_t>(
                          committees[a].txs, 1));
    const double db = instance.gain(b) /
                      static_cast<double>(std::max<std::uint64_t>(
                          committees[b].txs, 1));
    return da > db;
  });

  Selection x(n, 0);
  std::uint64_t txs = 0;
  for (const std::size_t i : order) {
    if (instance.gain(i) <= 0.0) break;  // sorted: the rest only hurt Eq. (2)
    if (txs + committees[i].txs > instance.capacity()) continue;
    x[i] = 1;
    txs += committees[i].txs;
  }

  SolverResult result;
  result.iterations = 1;
  if (repair(instance, x)) {
    result.best = std::move(x);
  }
  finalize_result(instance, result);
  result.utility_trace.assign(
      1, result.feasible ? result.utility
                         : std::numeric_limits<double>::quiet_NaN());
  return result;
}

}  // namespace mvcom::baselines
