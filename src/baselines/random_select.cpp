#include "baselines/random_select.hpp"

#include <limits>

namespace mvcom::baselines {

SolverResult RandomSelect::solve(const EpochInstance& instance) {
  common::Rng rng(seed_);
  SolverResult result;
  double best_utility = -std::numeric_limits<double>::infinity();
  Selection best;
  result.utility_trace.reserve(params_.trials);
  for (std::size_t trial = 0; trial < params_.trials; ++trial) {
    Selection x(instance.size(), 0);
    for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
    if (repair_random(instance, x, rng) && instance.feasible(x)) {
      const double u = instance.utility(x);
      if (u > best_utility) {
        best_utility = u;
        best = x;
      }
    }
    result.utility_trace.push_back(
        best.empty() ? std::numeric_limits<double>::quiet_NaN()
                     : best_utility);
  }
  result.iterations = params_.trials;
  result.best = std::move(best);
  finalize_result(instance, result);
  return result;
}

}  // namespace mvcom::baselines
