#include "baselines/solver.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace mvcom::baselines {

bool repair(const EpochInstance& instance, Selection& x) {
  const auto& committees = instance.committees();
  SelectionStats st = instance.stats(x);

  // Phase 1: shed load until the capacity constraint holds — drop selected
  // committees in ascending order of marginal utility per transaction.
  if (st.txs > instance.capacity()) {
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i]) selected.push_back(i);
    }
    std::sort(selected.begin(), selected.end(),
              [&](std::size_t a, std::size_t b) {
                const double da =
                    instance.gain(a) /
                    static_cast<double>(std::max<std::uint64_t>(
                        committees[a].txs, 1));
                const double db =
                    instance.gain(b) /
                    static_cast<double>(std::max<std::uint64_t>(
                        committees[b].txs, 1));
                return da < db;
              });
    for (const std::size_t i : selected) {
      if (st.txs <= instance.capacity()) break;
      x[i] = 0;
      --st.chosen;
      st.txs -= committees[i].txs;
    }
    if (st.txs > instance.capacity()) return false;
  }

  // Phase 2: meet N_min with the smallest unselected shards that still fit
  // (N_min needs bodies; cheap ones spend the least capacity).
  if (st.chosen < instance.n_min()) {
    std::vector<std::size_t> unselected;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (!x[i]) unselected.push_back(i);
    }
    std::sort(unselected.begin(), unselected.end(),
              [&](std::size_t a, std::size_t b) {
                return committees[a].txs < committees[b].txs;
              });
    for (const std::size_t i : unselected) {
      if (st.chosen >= instance.n_min()) break;
      if (st.txs + committees[i].txs > instance.capacity()) {
        // Sorted ascending by size: nothing later fits either.
        break;
      }
      x[i] = 1;
      ++st.chosen;
      st.txs += committees[i].txs;
    }
    if (st.chosen < instance.n_min()) return false;
  }
  return true;
}

bool repair_random(const EpochInstance& instance, Selection& x,
                   common::Rng& rng) {
  const auto& committees = instance.committees();
  SelectionStats st = instance.stats(x);

  if (st.txs > instance.capacity()) {
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i]) selected.push_back(i);
    }
    rng.shuffle(std::span<std::size_t>(selected));
    for (const std::size_t i : selected) {
      if (st.txs <= instance.capacity()) break;
      x[i] = 0;
      --st.chosen;
      st.txs -= committees[i].txs;
    }
    if (st.txs > instance.capacity()) return false;
  }

  if (st.chosen < instance.n_min()) {
    std::vector<std::size_t> unselected;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (!x[i]) unselected.push_back(i);
    }
    rng.shuffle(std::span<std::size_t>(unselected));
    for (const std::size_t i : unselected) {
      if (st.chosen >= instance.n_min()) break;
      if (st.txs + committees[i].txs > instance.capacity()) continue;
      x[i] = 1;
      ++st.chosen;
      st.txs += committees[i].txs;
    }
    if (st.chosen < instance.n_min()) {
      // Random fills can strand capacity on big shards; fall back to the
      // deterministic repair, which provably finds a fill when one exists.
      return repair(instance, x);
    }
  }
  return true;
}

void finalize_result(const EpochInstance& instance, SolverResult& result) {
  result.feasible = !result.best.empty() && instance.feasible(result.best);
  if (result.feasible) {
    result.utility = instance.utility(result.best);
    result.valuable_degree = instance.valuable_degree(result.best);
  } else {
    result.best.clear();
    result.utility = 0.0;
    result.valuable_degree = 0.0;
  }
}

}  // namespace mvcom::baselines
