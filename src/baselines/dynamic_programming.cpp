#include "baselines/dynamic_programming.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace mvcom::baselines {

SolverResult DynamicProgramming::solve(const EpochInstance& instance) {
  const auto& committees = instance.committees();
  const std::size_t n = instance.size();

  // Scale weights so the DP table stays bounded. Rounding up keeps every DP
  // solution capacity-feasible in the unscaled problem.
  const std::uint64_t capacity = instance.capacity();
  const std::uint64_t scale =
      std::max<std::uint64_t>(1, (capacity + params_.max_buckets - 1) /
                                     params_.max_buckets);
  const auto buckets = static_cast<std::size_t>(capacity / scale);

  std::vector<std::size_t> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = static_cast<std::size_t>((committees[i].txs + scale - 1) / scale);
  }

  // dp[w] = best value with total (scaled) weight exactly <= w.
  // taken[i] marks, per item, the weights at which item i was chosen.
  std::vector<double> dp(buckets + 1, 0.0);
  std::vector<std::vector<bool>> taken(n, std::vector<bool>(buckets + 1, false));

  for (std::size_t i = 0; i < n; ++i) {
    const double value = params_.objective == DpObjective::kThroughput
                             ? static_cast<double>(committees[i].txs)
                             : instance.gain(i);
    if (value <= 0.0) continue;  // non-positive value never helps the DP
    const std::size_t w_i = weight[i];
    if (w_i > buckets) continue;
    for (std::size_t w = buckets; w >= w_i; --w) {
      const double candidate = dp[w - w_i] + value;
      if (candidate > dp[w]) {
        dp[w] = candidate;
        taken[i][w] = true;
      }
      if (w == w_i) break;  // avoid size_t underflow
    }
  }

  // Reconstruct.
  Selection x(n, 0);
  std::size_t w = buckets;
  for (std::size_t i = n; i-- > 0;) {
    if (w >= weight[i] && taken[i][w]) {
      x[i] = 1;
      w -= weight[i];
    }
  }

  SolverResult result;
  result.iterations = 1;
  // DP ignores N_min; repair adds the cheapest shards if needed.
  if (repair(instance, x)) {
    result.best = std::move(x);
  }
  finalize_result(instance, result);
  result.utility_trace.assign(
      1, result.feasible ? result.utility
                         : std::numeric_limits<double>::quiet_NaN());
  return result;
}

}  // namespace mvcom::baselines
