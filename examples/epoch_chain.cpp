// Cross-epoch carry-over walkthrough — the paper's Fig. 3 rule: a committee
// refused at epoch j re-enters epoch j+1 with its two-phase latency reduced
// by the previous deadline, so "a refused committee will be more likely to
// be permitted with a new smaller two-phase latency at epoch j+1."
//
// Run: ./build/examples/epoch_chain

#include <cstdio>

#include "common/rng.hpp"
#include "mvcom/dynamics.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

int main() {
  mvcom::common::Rng rng(17);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 400;
  tc.target_total_txs = 400'000;
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 30;
  const mvcom::txn::WorkloadGenerator gen(
      mvcom::txn::generate_trace(tc, rng), wc);

  // Five epochs of fresh committee reports.
  std::vector<std::vector<mvcom::core::Committee>> epochs;
  for (std::uint32_t e = 0; e < 5; ++e) {
    const auto workload = gen.epoch(rng);
    std::vector<mvcom::core::Committee> fresh;
    for (const auto& r : workload.reports) {
      fresh.push_back({e * 100 + r.committee_id,
                       r.tx_count, r.two_phase_latency()});
    }
    epochs.push_back(std::move(fresh));
  }

  mvcom::core::EpochChainParams params;
  params.alpha = 1.5;
  params.capacity = 24'000;  // tight: refusals are guaranteed
  params.n_min = 10;
  params.se.threads = 4;
  params.se.max_iterations = 2000;

  const auto result = mvcom::core::run_epoch_chain(epochs, params, 99);

  std::printf("epoch |   utility | refused carried to next epoch\n");
  for (std::size_t e = 0; e < result.epoch_utilities.size(); ++e) {
    std::printf("  %2zu  | %9.1f | %zu\n", e, result.epoch_utilities[e],
                result.refused_counts[e]);
  }
  std::printf("\ntotal permitted TXs across the chain: %llu\n",
              static_cast<unsigned long long>(result.total_permitted_txs));
  std::printf("(refused committees re-enter with latency reduced by the\n"
              " previous deadline — Fig. 3 — so their shards are not lost,\n"
              " just deferred to a later final block)\n");
  return 0;
}
