// Baseline comparison — every solver in the repository on one paper-scale
// epoch: SE (the paper's algorithm), SA, DP (throughput variant — the
// paper's baseline), DP-U (utility-exact knapsack, an upper reference),
// WOA, Greedy, and — because the instance is kept small enough — the
// Exhaustive ground truth.
//
// Run: ./build/examples/baseline_comparison

#include <cstdio>

#include "baselines/dynamic_programming.hpp"
#include "baselines/exhaustive.hpp"
#include "baselines/greedy.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/whale_optimization.hpp"
#include "common/rng.hpp"
#include "mvcom/se_scheduler.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

namespace {

void report(const char* name, bool feasible, double utility, double degree,
            std::size_t chosen) {
  if (feasible) {
    std::printf("  %-12s utility %10.1f   valuable degree %8.2f   "
                "committees %zu\n", name, utility, degree, chosen);
  } else {
    std::printf("  %-12s (infeasible)\n", name);
  }
}

}  // namespace

int main() {
  mvcom::common::Rng rng(5);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 64;
  tc.target_total_txs = 64'000;
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 20;  // small enough for exhaustive ground truth
  const mvcom::txn::WorkloadGenerator gen(
      mvcom::txn::generate_trace(tc, rng), wc);
  const auto workload = gen.epoch(rng);
  const auto instance = mvcom::core::EpochInstance::from_reports(
      workload.reports, /*alpha=*/1.5,
      /*capacity=*/(workload.total_txs() * 7) / 10, /*n_min=*/8);

  std::printf("instance: |I|=%zu, capacity %llu of %llu total TXs, "
              "N_min=%zu, deadline %.0f s\n\n",
              instance.size(),
              static_cast<unsigned long long>(instance.capacity()),
              static_cast<unsigned long long>(workload.total_txs()),
              instance.n_min(), instance.deadline());

  // SE — the paper's scheduler.
  mvcom::core::SeParams params;
  params.threads = 8;
  params.max_iterations = 6000;
  mvcom::core::SeScheduler se(instance, params, 1);
  const auto se_result = se.run();
  report("SE", se_result.feasible, se_result.utility,
         se_result.valuable_degree,
         se_result.feasible ? instance.stats(se_result.best).chosen : 0);

  auto run = [&](mvcom::baselines::Solver& solver) {
    const auto r = solver.solve(instance);
    report(std::string(solver.name()).c_str(), r.feasible, r.utility,
           r.valuable_degree,
           r.feasible ? instance.stats(r.best).chosen : 0);
  };

  mvcom::baselines::SimulatedAnnealing sa({}, 1);
  run(sa);
  mvcom::baselines::DynamicProgramming dp;  // throughput (the paper's DP)
  run(dp);
  mvcom::baselines::DpParams up;
  up.objective = mvcom::baselines::DpObjective::kUtility;
  mvcom::baselines::DynamicProgramming dpu(up);
  run(dpu);
  mvcom::baselines::WhaleOptimization woa({}, 1);
  run(woa);
  mvcom::baselines::Greedy greedy;
  run(greedy);
  mvcom::baselines::Exhaustive exact;
  run(exact);

  std::printf("\n(Exhaustive is the true optimum; SE should sit within a "
              "few percent of it, DP/WOA below — the paper's ordering.)\n");
  return 0;
}
