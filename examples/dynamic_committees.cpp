// Online dynamics walkthrough — the SE scheduler handling committee joins,
// a failure (detected as an infinite ping, §V-A), and a recovery, while the
// utility trace shows the Fig. 9 dip-and-reconverge behaviour.
//
// Run: ./build/examples/dynamic_committees

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "mvcom/dynamics.hpp"
#include "mvcom/se_scheduler.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

int main() {
  using mvcom::core::DynamicEvent;

  // Build an epoch workload from the synthetic Bitcoin trace.
  mvcom::common::Rng rng(11);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 256;
  tc.target_total_txs = 256'000;
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 40;
  const mvcom::txn::WorkloadGenerator gen(
      mvcom::txn::generate_trace(tc, rng), wc);
  const auto workload = gen.epoch(rng);

  auto instance = mvcom::core::EpochInstance::from_reports(
      workload.reports, /*alpha=*/1.5, /*capacity=*/30'000, /*n_min=*/15);

  mvcom::core::SeParams params;
  params.threads = 4;
  mvcom::core::SeScheduler scheduler(instance, params, 3);

  // Schedule the story: two late committees join; then the largest
  // committee is DoS'ed (leave) and recovers 600 iterations later.
  std::size_t big = 0;
  for (std::size_t i = 1; i < instance.size(); ++i) {
    if (instance.committees()[i].txs > instance.committees()[big].txs) {
      big = i;
    }
  }
  const auto victim = instance.committees()[big];

  std::vector<DynamicEvent> events;
  events.push_back({300, DynamicEvent::Kind::kJoin, {100, 900, 1150.0}});
  events.push_back({500, DynamicEvent::Kind::kJoin, {101, 750, 1230.0}});
  events.push_back({900, DynamicEvent::Kind::kLeave, victim});
  events.push_back({1500, DynamicEvent::Kind::kJoin, victim});

  const auto trace = mvcom::core::run_with_events(scheduler, 2200, events);

  std::printf("utility trace (every 100 iterations; events at 300/500 join, "
              "900 leave of committee %u, 1500 rejoin):\n", victim.id);
  for (std::size_t i = 0; i < trace.utility.size(); i += 100) {
    const double u = trace.utility[i];
    std::printf("  iter %4zu  utility %10.1f", i, std::isnan(u) ? 0.0 : u);
    for (const std::size_t ev : trace.event_iterations) {
      if (ev >= i && ev < i + 100) std::printf("   <- event @%zu", ev);
    }
    std::printf("\n");
  }

  std::printf("\nfinal: %zu committees, utility %.1f, selection of %zu\n",
              scheduler.instance().size(), trace.final_utility,
              scheduler.instance().stats(trace.final_selection).chosen);
  return 0;
}
