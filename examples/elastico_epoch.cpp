// Elastico epoch walkthrough — the full sharded-blockchain substrate, end
// to end: PoW committee election (with a real solved puzzle shown for one
// node), the five-stage epoch pipeline with message-level PBFT in every
// committee, and an MVCom SE scheduler plugged into the final committee to
// pick the most valuable shards for the final block.
//
// Run: ./build/examples/elastico_epoch

#include <cstdio>

#include "common/rng.hpp"
#include "crypto/pow.hpp"
#include "mvcom/se_scheduler.hpp"
#include "sharding/elastico.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;

/// The MVCom policy the final committee runs at the deadline.
std::vector<std::uint32_t> mvcom_select(
    const std::vector<mvcom::sharding::CommitteeOutcome>& committed) {
  std::vector<mvcom::txn::ShardReport> reports;
  for (const auto& c : committed) {
    reports.push_back({c.committee_id, c.tx_count,
                       c.formation_latency.seconds(),
                       c.consensus_latency.seconds()});
  }
  std::uint64_t total = 0;
  for (const auto& r : reports) total += r.tx_count;
  if (reports.size() < 4) {  // nothing to schedule over
    std::vector<std::uint32_t> all;
    for (const auto& c : committed) all.push_back(c.committee_id);
    return all;
  }
  const auto instance = mvcom::core::EpochInstance::from_reports(
      reports, /*alpha=*/1.5, /*capacity=*/(total * 7) / 10,
      /*n_min=*/reports.size() / 2);
  mvcom::core::SeParams params;
  params.threads = 8;
  params.max_iterations = 3000;
  mvcom::core::SeScheduler scheduler(instance, params, 7);
  const auto result = scheduler.run();
  std::vector<std::uint32_t> ids;
  if (result.feasible) {
    for (std::size_t i = 0; i < result.best.size(); ++i) {
      if (result.best[i]) ids.push_back(instance.committees()[i].id);
    }
  } else {
    for (const auto& c : committed) ids.push_back(c.committee_id);
  }
  return ids;
}

}  // namespace

int main() {
  // --- A real PoW solution, to show the election mechanism itself --------
  const auto target = mvcom::crypto::PowTarget::from_difficulty_bits(16);
  const auto solution =
      mvcom::crypto::solve("epoch-randomness-0", "node-42", target, 1u << 22);
  if (solution) {
    std::printf("node-42 solved the election puzzle: nonce=%llu\n",
                static_cast<unsigned long long>(solution->nonce));
    std::printf("  digest  %s\n", mvcom::crypto::to_hex(solution->digest).c_str());
    std::printf("  -> committee %u (last 4 digest bits)\n\n",
                mvcom::crypto::committee_of(solution->digest, 4));
  }

  // --- The epoch pipeline --------------------------------------------------
  mvcom::sharding::ElasticoConfig config;
  config.num_nodes = 256;
  config.committee_size = 8;
  config.committee_bits = 4;  // 15 member committees + the final committee
  config.link_latency_mean = SimTime(2.0);
  config.pbft.verification_mean = SimTime(1.0);

  mvcom::sharding::ElasticoNetwork network(config, Rng(2021));

  Rng trace_rng(1);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 256;
  tc.target_total_txs = 256'000;
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);

  for (int epoch = 0; epoch < 2; ++epoch) {
    std::printf("=== epoch %d (randomness %.16s...) ===\n", epoch,
                network.epoch_randomness().c_str());
    const auto outcome = network.run_epoch(trace, mvcom_select);

    for (const auto& c : outcome.committees) {
      std::printf(
          "  committee %2u: members=%zu formed=%7.1fs consensus=%6.1fs "
          "txs=%6llu %s\n",
          c.committee_id, c.member_count, c.formation_latency.seconds(),
          c.consensus_latency.seconds(),
          static_cast<unsigned long long>(c.tx_count),
          c.committed ? "committed" : "FAILED");
    }
    std::printf("  final block: %zu shards, %llu TXs, final consensus %.1fs, "
                "epoch makespan %.1fs\n\n",
                outcome.selected.size(),
                static_cast<unsigned long long>(outcome.final_block_txs),
                outcome.final_consensus_latency.seconds(),
                outcome.epoch_makespan.seconds());
  }
  return 0;
}
