// Quickstart — the MVCom public API in one page.
//
// Scenario (the paper's Fig. 1 motivation): four member committees report
// their shard sizes and two-phase latencies; committee C3 is the straggler
// that packs the most transactions. Should the final committee wait for it?
// MVCom answers by maximizing U = Σ(α·s_i − Π_i) under the final block's
// capacity, via the Stochastic-Exploration scheduler.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "mvcom/problem.hpp"
#include "mvcom/se_scheduler.hpp"

int main() {
  using mvcom::core::Committee;

  // Committee reports: {id, transactions in shard, two-phase latency (s)}.
  // C3 (id 2) is the paper's straggler: the biggest shard, the last arrival.
  const std::vector<Committee> reports = {
      {0, 100, 800.0},
      {1, 150, 900.0},
      {2, 400, 1200.0},
      {3, 200, 1000.0},
  };

  // α weighs throughput against freshness; Ĉ caps the final block; N_min
  // forces a minimum committee turnout (Eq. 2–5 of the paper).
  const mvcom::core::EpochInstance instance(reports, /*alpha=*/1.5,
                                            /*capacity=*/700, /*n_min=*/2);

  std::printf("deadline t = max latency = %.0f s\n", instance.deadline());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    std::printf("  committee %u: s=%llu, age=%.0f s, marginal gain=%.0f\n",
                instance.committees()[i].id,
                static_cast<unsigned long long>(instance.committees()[i].txs),
                instance.age(i), instance.gain(i));
  }

  // Run the SE scheduler (Alg. 1–3): Γ=4 parallel exploration threads.
  mvcom::core::SeParams params;
  params.threads = 4;
  mvcom::core::SeScheduler scheduler(instance, params, /*seed=*/2021);
  const mvcom::core::SeResult result = scheduler.run();

  if (!result.feasible) {
    std::printf("no feasible selection (capacity vs N_min clash)\n");
    return 1;
  }
  std::printf("\nconverged after %zu iterations, utility %.1f\n",
              result.iterations, result.utility);
  std::printf("permitted committees:");
  for (std::size_t i = 0; i < result.best.size(); ++i) {
    if (result.best[i]) std::printf(" C%u", instance.committees()[i].id + 1);
  }
  std::printf("\npermitted TXs: %llu / capacity %llu, cumulative age %.0f s\n",
              static_cast<unsigned long long>(
                  instance.permitted_txs(result.best)),
              static_cast<unsigned long long>(instance.capacity()),
              instance.cumulative_age(result.best));
  std::printf("valuable degree: %.2f\n", result.valuable_degree);
  return 0;
}
