// Online scheduler walkthrough — the full Fig. 5 interaction loop driven by
// the discrete-event simulator: member committees finish at their two-phase
// latencies and their reports *arrive as events*; the final committee's
// OnlineCommitteeScheduler bootstraps once scheduling becomes worthwhile
// (Alg. 1 line 1), explores between arrivals, absorbs a mid-epoch failure,
// stops listening at N_max (line 29), and issues the final decision.
//
// Run: ./build/examples/online_scheduler

#include <cstdio>

#include "common/rng.hpp"
#include "mvcom/online.hpp"
#include "sim/simulator.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

int main() {
  using mvcom::common::SimTime;

  // One epoch's workload: 40 committees, shards of ~one trace block.
  mvcom::common::Rng rng(23);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 128;
  tc.target_total_txs = 128'000;
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 40;
  const mvcom::txn::WorkloadGenerator gen(
      mvcom::txn::generate_trace(tc, rng), wc);
  const auto workload = gen.epoch(rng);

  mvcom::core::OnlineSchedulerConfig config;
  config.alpha = 1.5;
  config.capacity = 30'000;
  config.expected_committees = 40;
  config.se.threads = 4;
  mvcom::core::OnlineCommitteeScheduler scheduler(config, 7);

  // Each committee's report arrives at its two-phase latency instant.
  mvcom::sim::Simulator simulator;
  for (const auto& report : workload.reports) {
    simulator.schedule_at(SimTime(report.two_phase_latency()), [&, report] {
      const bool accepted = scheduler.on_report(report);
      std::printf("t=%7.1fs  committee %2u arrives (s=%llu)%s%s\n",
                  simulator.now().seconds(), report.committee_id,
                  static_cast<unsigned long long>(report.tx_count),
                  accepted ? "" : "  [refused: N_max reached]",
                  scheduler.bootstrapped() && accepted ? "" : "");
      scheduler.explore(100);
    });
  }

  // Mid-epoch DoS: the first committee to arrive fails at t = 700 s and is
  // detected by an infinite ping (§V-A), then recovers at t = 850 s.
  std::uint32_t victim = 0;
  {
    double best = 1e300;
    for (const auto& r : workload.reports) {
      if (r.two_phase_latency() < best) {
        best = r.two_phase_latency();
        victim = r.committee_id;
      }
    }
  }
  const auto* victim_report = &workload.reports[victim];
  simulator.schedule_at(SimTime(700.0), [&] {
    std::printf("t=  700.0s  committee %u FAILS (ping -> infinity)\n", victim);
    scheduler.on_failure(victim);
  });
  simulator.schedule_at(SimTime(850.0), [&] {
    std::printf("t=  850.0s  committee %u recovers and re-submits\n", victim);
    scheduler.on_recovery(*victim_report);
  });

  simulator.run();
  scheduler.explore(2000);  // final polish before the DDL

  const auto decision = scheduler.decide();
  std::printf("\narrived %zu committees; bootstrapped=%s; listening=%s\n",
              scheduler.arrived(), scheduler.bootstrapped() ? "yes" : "no",
              scheduler.listening() ? "yes" : "no");
  if (!decision.feasible) {
    std::printf("no feasible selection\n");
    return 1;
  }
  std::printf("decision: %zu committees, %llu TXs (capacity %llu), "
              "utility %.1f, valuable degree %.2f\n",
              decision.permitted_ids.size(),
              static_cast<unsigned long long>(decision.permitted_txs),
              static_cast<unsigned long long>(config.capacity),
              decision.utility, decision.valuable_degree);
  return 0;
}
