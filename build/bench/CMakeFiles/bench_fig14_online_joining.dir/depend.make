# Empty dependencies file for bench_fig14_online_joining.
# This may be replaced when dependencies are built.
