file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_online_joining.dir/bench_fig14_online_joining.cpp.o"
  "CMakeFiles/bench_fig14_online_joining.dir/bench_fig14_online_joining.cpp.o.d"
  "bench_fig14_online_joining"
  "bench_fig14_online_joining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_online_joining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
