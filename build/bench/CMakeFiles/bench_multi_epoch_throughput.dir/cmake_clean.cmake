file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_epoch_throughput.dir/bench_multi_epoch_throughput.cpp.o"
  "CMakeFiles/bench_multi_epoch_throughput.dir/bench_multi_epoch_throughput.cpp.o.d"
  "bench_multi_epoch_throughput"
  "bench_multi_epoch_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_epoch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
