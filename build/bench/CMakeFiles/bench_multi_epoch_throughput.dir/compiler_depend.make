# Empty compiler generated dependencies file for bench_multi_epoch_throughput.
# This may be replaced when dependencies are built.
