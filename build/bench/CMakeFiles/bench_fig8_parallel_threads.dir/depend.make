# Empty dependencies file for bench_fig8_parallel_threads.
# This may be replaced when dependencies are built.
