
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_parallel_threads.cpp" "bench/CMakeFiles/bench_fig8_parallel_threads.dir/bench_fig8_parallel_threads.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_parallel_threads.dir/bench_fig8_parallel_threads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mvcom_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mvcom_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mvcom_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/mvcom_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvcom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mvcom_net.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mvcom_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/mvcom_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/sharding/CMakeFiles/mvcom_sharding.dir/DependInfo.cmake"
  "/root/repo/build/src/mvcom/CMakeFiles/mvcom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mvcom_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mvcom_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
