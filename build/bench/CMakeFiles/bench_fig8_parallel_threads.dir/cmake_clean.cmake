file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_parallel_threads.dir/bench_fig8_parallel_threads.cpp.o"
  "CMakeFiles/bench_fig8_parallel_threads.dir/bench_fig8_parallel_threads.cpp.o.d"
  "bench_fig8_parallel_threads"
  "bench_fig8_parallel_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_parallel_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
