# Empty dependencies file for mvcom_benchutil.
# This may be replaced when dependencies are built.
