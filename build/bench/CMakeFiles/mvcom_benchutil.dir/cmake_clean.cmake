file(REMOVE_RECURSE
  "CMakeFiles/mvcom_benchutil.dir/bench_util.cpp.o"
  "CMakeFiles/mvcom_benchutil.dir/bench_util.cpp.o.d"
  "libmvcom_benchutil.a"
  "libmvcom_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
