
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cpp" "bench/CMakeFiles/mvcom_benchutil.dir/bench_util.cpp.o" "gcc" "bench/CMakeFiles/mvcom_benchutil.dir/bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mvcom_common.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mvcom_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/mvcom/CMakeFiles/mvcom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mvcom_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
