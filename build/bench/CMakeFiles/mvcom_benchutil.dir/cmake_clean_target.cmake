file(REMOVE_RECURSE
  "libmvcom_benchutil.a"
)
