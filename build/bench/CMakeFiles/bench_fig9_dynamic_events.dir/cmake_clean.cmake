file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dynamic_events.dir/bench_fig9_dynamic_events.cpp.o"
  "CMakeFiles/bench_fig9_dynamic_events.dir/bench_fig9_dynamic_events.cpp.o.d"
  "bench_fig9_dynamic_events"
  "bench_fig9_dynamic_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dynamic_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
