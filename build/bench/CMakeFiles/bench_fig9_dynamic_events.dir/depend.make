# Empty dependencies file for bench_fig9_dynamic_events.
# This may be replaced when dependencies are built.
