file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vary_committees.dir/bench_fig11_vary_committees.cpp.o"
  "CMakeFiles/bench_fig11_vary_committees.dir/bench_fig11_vary_committees.cpp.o.d"
  "bench_fig11_vary_committees"
  "bench_fig11_vary_committees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vary_committees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
