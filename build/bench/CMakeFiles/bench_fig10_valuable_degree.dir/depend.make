# Empty dependencies file for bench_fig10_valuable_degree.
# This may be replaced when dependencies are built.
