file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ddl.dir/bench_ablation_ddl.cpp.o"
  "CMakeFiles/bench_ablation_ddl.dir/bench_ablation_ddl.cpp.o.d"
  "bench_ablation_ddl"
  "bench_ablation_ddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
