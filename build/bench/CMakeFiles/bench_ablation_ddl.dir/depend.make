# Empty dependencies file for bench_ablation_ddl.
# This may be replaced when dependencies are built.
