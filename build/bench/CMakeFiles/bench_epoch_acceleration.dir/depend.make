# Empty dependencies file for bench_epoch_acceleration.
# This may be replaced when dependencies are built.
