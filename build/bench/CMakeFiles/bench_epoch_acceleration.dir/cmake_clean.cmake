file(REMOVE_RECURSE
  "CMakeFiles/bench_epoch_acceleration.dir/bench_epoch_acceleration.cpp.o"
  "CMakeFiles/bench_epoch_acceleration.dir/bench_epoch_acceleration.cpp.o.d"
  "bench_epoch_acceleration"
  "bench_epoch_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epoch_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
