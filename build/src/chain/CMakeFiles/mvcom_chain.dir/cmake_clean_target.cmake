file(REMOVE_RECURSE
  "libmvcom_chain.a"
)
