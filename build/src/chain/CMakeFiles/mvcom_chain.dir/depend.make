# Empty dependencies file for mvcom_chain.
# This may be replaced when dependencies are built.
