file(REMOVE_RECURSE
  "CMakeFiles/mvcom_chain.dir/block.cpp.o"
  "CMakeFiles/mvcom_chain.dir/block.cpp.o.d"
  "CMakeFiles/mvcom_chain.dir/root_chain.cpp.o"
  "CMakeFiles/mvcom_chain.dir/root_chain.cpp.o.d"
  "libmvcom_chain.a"
  "libmvcom_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
