# Empty dependencies file for mvcom_core.
# This may be replaced when dependencies are built.
