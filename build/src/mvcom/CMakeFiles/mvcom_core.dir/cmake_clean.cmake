file(REMOVE_RECURSE
  "CMakeFiles/mvcom_core.dir/ddl_policy.cpp.o"
  "CMakeFiles/mvcom_core.dir/ddl_policy.cpp.o.d"
  "CMakeFiles/mvcom_core.dir/dynamics.cpp.o"
  "CMakeFiles/mvcom_core.dir/dynamics.cpp.o.d"
  "CMakeFiles/mvcom_core.dir/online.cpp.o"
  "CMakeFiles/mvcom_core.dir/online.cpp.o.d"
  "CMakeFiles/mvcom_core.dir/problem.cpp.o"
  "CMakeFiles/mvcom_core.dir/problem.cpp.o.d"
  "CMakeFiles/mvcom_core.dir/se_scheduler.cpp.o"
  "CMakeFiles/mvcom_core.dir/se_scheduler.cpp.o.d"
  "libmvcom_core.a"
  "libmvcom_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
