file(REMOVE_RECURSE
  "libmvcom_core.a"
)
