# CMake generated Testfile for 
# Source directory: /root/repo/src/mvcom
# Build directory: /root/repo/build/src/mvcom
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
