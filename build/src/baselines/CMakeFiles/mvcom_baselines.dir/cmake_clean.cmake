file(REMOVE_RECURSE
  "CMakeFiles/mvcom_baselines.dir/dynamic_programming.cpp.o"
  "CMakeFiles/mvcom_baselines.dir/dynamic_programming.cpp.o.d"
  "CMakeFiles/mvcom_baselines.dir/exhaustive.cpp.o"
  "CMakeFiles/mvcom_baselines.dir/exhaustive.cpp.o.d"
  "CMakeFiles/mvcom_baselines.dir/greedy.cpp.o"
  "CMakeFiles/mvcom_baselines.dir/greedy.cpp.o.d"
  "CMakeFiles/mvcom_baselines.dir/random_select.cpp.o"
  "CMakeFiles/mvcom_baselines.dir/random_select.cpp.o.d"
  "CMakeFiles/mvcom_baselines.dir/simulated_annealing.cpp.o"
  "CMakeFiles/mvcom_baselines.dir/simulated_annealing.cpp.o.d"
  "CMakeFiles/mvcom_baselines.dir/solver.cpp.o"
  "CMakeFiles/mvcom_baselines.dir/solver.cpp.o.d"
  "CMakeFiles/mvcom_baselines.dir/whale_optimization.cpp.o"
  "CMakeFiles/mvcom_baselines.dir/whale_optimization.cpp.o.d"
  "libmvcom_baselines.a"
  "libmvcom_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
