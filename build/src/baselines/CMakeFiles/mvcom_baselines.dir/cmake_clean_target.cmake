file(REMOVE_RECURSE
  "libmvcom_baselines.a"
)
