# Empty dependencies file for mvcom_baselines.
# This may be replaced when dependencies are built.
