
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dynamic_programming.cpp" "src/baselines/CMakeFiles/mvcom_baselines.dir/dynamic_programming.cpp.o" "gcc" "src/baselines/CMakeFiles/mvcom_baselines.dir/dynamic_programming.cpp.o.d"
  "/root/repo/src/baselines/exhaustive.cpp" "src/baselines/CMakeFiles/mvcom_baselines.dir/exhaustive.cpp.o" "gcc" "src/baselines/CMakeFiles/mvcom_baselines.dir/exhaustive.cpp.o.d"
  "/root/repo/src/baselines/greedy.cpp" "src/baselines/CMakeFiles/mvcom_baselines.dir/greedy.cpp.o" "gcc" "src/baselines/CMakeFiles/mvcom_baselines.dir/greedy.cpp.o.d"
  "/root/repo/src/baselines/random_select.cpp" "src/baselines/CMakeFiles/mvcom_baselines.dir/random_select.cpp.o" "gcc" "src/baselines/CMakeFiles/mvcom_baselines.dir/random_select.cpp.o.d"
  "/root/repo/src/baselines/simulated_annealing.cpp" "src/baselines/CMakeFiles/mvcom_baselines.dir/simulated_annealing.cpp.o" "gcc" "src/baselines/CMakeFiles/mvcom_baselines.dir/simulated_annealing.cpp.o.d"
  "/root/repo/src/baselines/solver.cpp" "src/baselines/CMakeFiles/mvcom_baselines.dir/solver.cpp.o" "gcc" "src/baselines/CMakeFiles/mvcom_baselines.dir/solver.cpp.o.d"
  "/root/repo/src/baselines/whale_optimization.cpp" "src/baselines/CMakeFiles/mvcom_baselines.dir/whale_optimization.cpp.o" "gcc" "src/baselines/CMakeFiles/mvcom_baselines.dir/whale_optimization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mvcom_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mvcom/CMakeFiles/mvcom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mvcom_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mvcom_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
