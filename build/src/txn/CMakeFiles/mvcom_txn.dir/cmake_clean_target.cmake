file(REMOVE_RECURSE
  "libmvcom_txn.a"
)
