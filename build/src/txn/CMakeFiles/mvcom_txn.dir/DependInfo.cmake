
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/age.cpp" "src/txn/CMakeFiles/mvcom_txn.dir/age.cpp.o" "gcc" "src/txn/CMakeFiles/mvcom_txn.dir/age.cpp.o.d"
  "/root/repo/src/txn/trace_generator.cpp" "src/txn/CMakeFiles/mvcom_txn.dir/trace_generator.cpp.o" "gcc" "src/txn/CMakeFiles/mvcom_txn.dir/trace_generator.cpp.o.d"
  "/root/repo/src/txn/trace_io.cpp" "src/txn/CMakeFiles/mvcom_txn.dir/trace_io.cpp.o" "gcc" "src/txn/CMakeFiles/mvcom_txn.dir/trace_io.cpp.o.d"
  "/root/repo/src/txn/workload.cpp" "src/txn/CMakeFiles/mvcom_txn.dir/workload.cpp.o" "gcc" "src/txn/CMakeFiles/mvcom_txn.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mvcom_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mvcom_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
