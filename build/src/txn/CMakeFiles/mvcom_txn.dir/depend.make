# Empty dependencies file for mvcom_txn.
# This may be replaced when dependencies are built.
