file(REMOVE_RECURSE
  "CMakeFiles/mvcom_txn.dir/age.cpp.o"
  "CMakeFiles/mvcom_txn.dir/age.cpp.o.d"
  "CMakeFiles/mvcom_txn.dir/trace_generator.cpp.o"
  "CMakeFiles/mvcom_txn.dir/trace_generator.cpp.o.d"
  "CMakeFiles/mvcom_txn.dir/trace_io.cpp.o"
  "CMakeFiles/mvcom_txn.dir/trace_io.cpp.o.d"
  "CMakeFiles/mvcom_txn.dir/workload.cpp.o"
  "CMakeFiles/mvcom_txn.dir/workload.cpp.o.d"
  "libmvcom_txn.a"
  "libmvcom_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
