file(REMOVE_RECURSE
  "CMakeFiles/mvcom_net.dir/network.cpp.o"
  "CMakeFiles/mvcom_net.dir/network.cpp.o.d"
  "libmvcom_net.a"
  "libmvcom_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
