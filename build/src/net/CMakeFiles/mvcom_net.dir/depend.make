# Empty dependencies file for mvcom_net.
# This may be replaced when dependencies are built.
