file(REMOVE_RECURSE
  "libmvcom_net.a"
)
