file(REMOVE_RECURSE
  "libmvcom_common.a"
)
