file(REMOVE_RECURSE
  "CMakeFiles/mvcom_common.dir/csv.cpp.o"
  "CMakeFiles/mvcom_common.dir/csv.cpp.o.d"
  "CMakeFiles/mvcom_common.dir/rng.cpp.o"
  "CMakeFiles/mvcom_common.dir/rng.cpp.o.d"
  "CMakeFiles/mvcom_common.dir/stats.cpp.o"
  "CMakeFiles/mvcom_common.dir/stats.cpp.o.d"
  "libmvcom_common.a"
  "libmvcom_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
