# Empty compiler generated dependencies file for mvcom_common.
# This may be replaced when dependencies are built.
