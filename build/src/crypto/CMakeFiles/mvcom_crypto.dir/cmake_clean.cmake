file(REMOVE_RECURSE
  "CMakeFiles/mvcom_crypto.dir/merkle.cpp.o"
  "CMakeFiles/mvcom_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/mvcom_crypto.dir/pow.cpp.o"
  "CMakeFiles/mvcom_crypto.dir/pow.cpp.o.d"
  "CMakeFiles/mvcom_crypto.dir/sha256.cpp.o"
  "CMakeFiles/mvcom_crypto.dir/sha256.cpp.o.d"
  "libmvcom_crypto.a"
  "libmvcom_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
