# Empty compiler generated dependencies file for mvcom_crypto.
# This may be replaced when dependencies are built.
