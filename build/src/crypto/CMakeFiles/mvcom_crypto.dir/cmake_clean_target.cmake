file(REMOVE_RECURSE
  "libmvcom_crypto.a"
)
