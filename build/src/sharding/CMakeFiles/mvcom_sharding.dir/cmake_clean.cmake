file(REMOVE_RECURSE
  "CMakeFiles/mvcom_sharding.dir/elastico.cpp.o"
  "CMakeFiles/mvcom_sharding.dir/elastico.cpp.o.d"
  "CMakeFiles/mvcom_sharding.dir/overlay.cpp.o"
  "CMakeFiles/mvcom_sharding.dir/overlay.cpp.o.d"
  "CMakeFiles/mvcom_sharding.dir/randomness.cpp.o"
  "CMakeFiles/mvcom_sharding.dir/randomness.cpp.o.d"
  "CMakeFiles/mvcom_sharding.dir/verification.cpp.o"
  "CMakeFiles/mvcom_sharding.dir/verification.cpp.o.d"
  "libmvcom_sharding.a"
  "libmvcom_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
