file(REMOVE_RECURSE
  "libmvcom_sharding.a"
)
