# Empty compiler generated dependencies file for mvcom_sharding.
# This may be replaced when dependencies are built.
