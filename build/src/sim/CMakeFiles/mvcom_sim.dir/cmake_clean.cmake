file(REMOVE_RECURSE
  "CMakeFiles/mvcom_sim.dir/simulator.cpp.o"
  "CMakeFiles/mvcom_sim.dir/simulator.cpp.o.d"
  "libmvcom_sim.a"
  "libmvcom_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
