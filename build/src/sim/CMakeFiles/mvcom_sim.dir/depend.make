# Empty dependencies file for mvcom_sim.
# This may be replaced when dependencies are built.
