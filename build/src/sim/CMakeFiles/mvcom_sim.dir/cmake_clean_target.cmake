file(REMOVE_RECURSE
  "libmvcom_sim.a"
)
