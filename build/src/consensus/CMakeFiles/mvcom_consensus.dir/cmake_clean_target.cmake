file(REMOVE_RECURSE
  "libmvcom_consensus.a"
)
