file(REMOVE_RECURSE
  "CMakeFiles/mvcom_consensus.dir/pbft.cpp.o"
  "CMakeFiles/mvcom_consensus.dir/pbft.cpp.o.d"
  "libmvcom_consensus.a"
  "libmvcom_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
