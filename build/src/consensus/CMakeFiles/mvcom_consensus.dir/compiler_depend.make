# Empty compiler generated dependencies file for mvcom_consensus.
# This may be replaced when dependencies are built.
