file(REMOVE_RECURSE
  "libmvcom_analysis.a"
)
