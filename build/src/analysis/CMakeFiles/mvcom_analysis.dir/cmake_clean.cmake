file(REMOVE_RECURSE
  "CMakeFiles/mvcom_analysis.dir/convergence.cpp.o"
  "CMakeFiles/mvcom_analysis.dir/convergence.cpp.o.d"
  "CMakeFiles/mvcom_analysis.dir/markov.cpp.o"
  "CMakeFiles/mvcom_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/mvcom_analysis.dir/spectral.cpp.o"
  "CMakeFiles/mvcom_analysis.dir/spectral.cpp.o.d"
  "CMakeFiles/mvcom_analysis.dir/theory.cpp.o"
  "CMakeFiles/mvcom_analysis.dir/theory.cpp.o.d"
  "libmvcom_analysis.a"
  "libmvcom_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
