# Empty compiler generated dependencies file for mvcom_analysis.
# This may be replaced when dependencies are built.
