# Empty compiler generated dependencies file for dynamic_committees.
# This may be replaced when dependencies are built.
