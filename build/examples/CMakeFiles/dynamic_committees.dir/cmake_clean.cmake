file(REMOVE_RECURSE
  "CMakeFiles/dynamic_committees.dir/dynamic_committees.cpp.o"
  "CMakeFiles/dynamic_committees.dir/dynamic_committees.cpp.o.d"
  "dynamic_committees"
  "dynamic_committees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_committees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
