file(REMOVE_RECURSE
  "CMakeFiles/epoch_chain.dir/epoch_chain.cpp.o"
  "CMakeFiles/epoch_chain.dir/epoch_chain.cpp.o.d"
  "epoch_chain"
  "epoch_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
