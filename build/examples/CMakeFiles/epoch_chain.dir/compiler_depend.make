# Empty compiler generated dependencies file for epoch_chain.
# This may be replaced when dependencies are built.
