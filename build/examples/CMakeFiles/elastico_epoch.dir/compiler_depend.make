# Empty compiler generated dependencies file for elastico_epoch.
# This may be replaced when dependencies are built.
