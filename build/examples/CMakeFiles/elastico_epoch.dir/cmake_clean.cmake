file(REMOVE_RECURSE
  "CMakeFiles/elastico_epoch.dir/elastico_epoch.cpp.o"
  "CMakeFiles/elastico_epoch.dir/elastico_epoch.cpp.o.d"
  "elastico_epoch"
  "elastico_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastico_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
