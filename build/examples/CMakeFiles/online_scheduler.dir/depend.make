# Empty dependencies file for online_scheduler.
# This may be replaced when dependencies are built.
