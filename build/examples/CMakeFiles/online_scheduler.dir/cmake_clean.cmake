file(REMOVE_RECURSE
  "CMakeFiles/online_scheduler.dir/online_scheduler.cpp.o"
  "CMakeFiles/online_scheduler.dir/online_scheduler.cpp.o.d"
  "online_scheduler"
  "online_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
