file(REMOVE_RECURSE
  "CMakeFiles/mvcom.dir/mvcom_cli.cpp.o"
  "CMakeFiles/mvcom.dir/mvcom_cli.cpp.o.d"
  "mvcom"
  "mvcom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
