# Empty dependencies file for mvcom.
# This may be replaced when dependencies are built.
