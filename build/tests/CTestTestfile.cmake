# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_csv[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_pbft[1]_include.cmake")
include("/root/repo/build/tests/test_elastico[1]_include.cmake")
include("/root/repo/build/tests/test_problem[1]_include.cmake")
include("/root/repo/build/tests/test_swap_set[1]_include.cmake")
include("/root/repo/build/tests/test_se_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_theory[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ddl_policy[1]_include.cmake")
include("/root/repo/build/tests/test_age[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_convergence[1]_include.cmake")
include("/root/repo/build/tests/test_pbft_adversarial[1]_include.cmake")
include("/root/repo/build/tests/test_se_properties[1]_include.cmake")
include("/root/repo/build/tests/test_online[1]_include.cmake")
include("/root/repo/build/tests/test_chain[1]_include.cmake")
include("/root/repo/build/tests/test_irreducibility[1]_include.cmake")
include("/root/repo/build/tests/test_spectral[1]_include.cmake")
