# Empty dependencies file for test_ddl_policy.
# This may be replaced when dependencies are built.
