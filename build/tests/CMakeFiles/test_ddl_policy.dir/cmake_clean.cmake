file(REMOVE_RECURSE
  "CMakeFiles/test_ddl_policy.dir/test_ddl_policy.cpp.o"
  "CMakeFiles/test_ddl_policy.dir/test_ddl_policy.cpp.o.d"
  "test_ddl_policy"
  "test_ddl_policy.pdb"
  "test_ddl_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
