file(REMOVE_RECURSE
  "CMakeFiles/test_se_scheduler.dir/test_se_scheduler.cpp.o"
  "CMakeFiles/test_se_scheduler.dir/test_se_scheduler.cpp.o.d"
  "test_se_scheduler"
  "test_se_scheduler.pdb"
  "test_se_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_se_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
