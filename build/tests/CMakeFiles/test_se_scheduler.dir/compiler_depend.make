# Empty compiler generated dependencies file for test_se_scheduler.
# This may be replaced when dependencies are built.
