# Empty dependencies file for test_se_properties.
# This may be replaced when dependencies are built.
