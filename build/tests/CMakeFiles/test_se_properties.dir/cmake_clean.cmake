file(REMOVE_RECURSE
  "CMakeFiles/test_se_properties.dir/test_se_properties.cpp.o"
  "CMakeFiles/test_se_properties.dir/test_se_properties.cpp.o.d"
  "test_se_properties"
  "test_se_properties.pdb"
  "test_se_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_se_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
