file(REMOVE_RECURSE
  "CMakeFiles/test_irreducibility.dir/test_irreducibility.cpp.o"
  "CMakeFiles/test_irreducibility.dir/test_irreducibility.cpp.o.d"
  "test_irreducibility"
  "test_irreducibility.pdb"
  "test_irreducibility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irreducibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
