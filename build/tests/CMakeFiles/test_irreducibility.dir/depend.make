# Empty dependencies file for test_irreducibility.
# This may be replaced when dependencies are built.
