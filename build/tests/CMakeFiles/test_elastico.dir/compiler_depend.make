# Empty compiler generated dependencies file for test_elastico.
# This may be replaced when dependencies are built.
