file(REMOVE_RECURSE
  "CMakeFiles/test_elastico.dir/test_elastico.cpp.o"
  "CMakeFiles/test_elastico.dir/test_elastico.cpp.o.d"
  "test_elastico"
  "test_elastico.pdb"
  "test_elastico[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elastico.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
