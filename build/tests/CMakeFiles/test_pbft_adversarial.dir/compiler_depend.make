# Empty compiler generated dependencies file for test_pbft_adversarial.
# This may be replaced when dependencies are built.
