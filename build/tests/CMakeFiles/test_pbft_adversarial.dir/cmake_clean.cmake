file(REMOVE_RECURSE
  "CMakeFiles/test_pbft_adversarial.dir/test_pbft_adversarial.cpp.o"
  "CMakeFiles/test_pbft_adversarial.dir/test_pbft_adversarial.cpp.o.d"
  "test_pbft_adversarial"
  "test_pbft_adversarial.pdb"
  "test_pbft_adversarial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbft_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
