# Empty dependencies file for test_age.
# This may be replaced when dependencies are built.
