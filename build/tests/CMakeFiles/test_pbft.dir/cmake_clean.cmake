file(REMOVE_RECURSE
  "CMakeFiles/test_pbft.dir/test_pbft.cpp.o"
  "CMakeFiles/test_pbft.dir/test_pbft.cpp.o.d"
  "test_pbft"
  "test_pbft.pdb"
  "test_pbft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
