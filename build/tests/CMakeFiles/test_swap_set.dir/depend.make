# Empty dependencies file for test_swap_set.
# This may be replaced when dependencies are built.
