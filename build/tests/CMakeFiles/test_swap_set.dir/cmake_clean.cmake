file(REMOVE_RECURSE
  "CMakeFiles/test_swap_set.dir/test_swap_set.cpp.o"
  "CMakeFiles/test_swap_set.dir/test_swap_set.cpp.o.d"
  "test_swap_set"
  "test_swap_set.pdb"
  "test_swap_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
