#!/usr/bin/env bash
# Builds the repository with ThreadSanitizer (-DMVCOM_TSAN=ON) in a separate
# build tree and runs the full tier-1 ctest suite under it. The parallel SE
# execution path (SeParams::parallel_execution) is exercised by
# tests/test_se_parallel.cpp, including a join/leave storm interleaved with
# pool-driven stepping. The lane-parallel Elastico epoch
# (ElasticoConfig::lane_workers) is exercised by tests/test_elastico_lanes.cpp
# at worker counts {1, 2, 8} — per-lane simulators/networks plus the shared
# obs sinks run concurrently there, so races in the lane substrate surface in
# this suite.
#
# Usage: tools/run_tsan_tests.sh [extra ctest args…]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"

# Fail the run on the first race report instead of only logging it.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

cmake -B "${BUILD}" -S "${ROOT}" -DMVCOM_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j"$(nproc)"
ctest --test-dir "${BUILD}" --output-on-failure -j"$(nproc)" "$@"
