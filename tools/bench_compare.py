#!/usr/bin/env python3
"""Perf gate: compare BENCH_*.json sidecars against committed baselines.

Every bench emits a BENCH_<name>.json sidecar (see bench/bench_util.hpp).
Keys prefixed ``gate_`` are performance gates and self-describe their
direction:

  gate_rate_*     higher is better (throughput); fails when the current run
                  drops more than ``--threshold`` below the baseline.
  gate_seconds_*  lower is better (wall clock); fails when the current run
                  rises more than ``--threshold`` above the baseline.

All other keys are informational and never gate. A gate key present in only
one side is reported as a warning, not a failure — baselines are refreshed
with ``--update`` whenever a bench gains or loses keys.

Usage:
  tools/bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]
  tools/bench_compare.py BASELINE_DIR CURRENT_DIR --update
  tools/bench_compare.py --selftest

Exit status: 0 when every gate holds, 1 on any regression (or selftest
failure), 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
import tempfile
from pathlib import Path

GATE_RATE = "gate_rate_"
GATE_SECONDS = "gate_seconds_"


def load_sidecars(directory: Path) -> dict[str, dict]:
    """Maps bench name -> parsed sidecar for every BENCH_*.json in dir."""
    out: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        name = doc.get("bench", path.stem.removeprefix("BENCH_"))
        out[name] = doc
    return out


def gate_keys(doc: dict) -> list[str]:
    return [
        k
        for k, v in doc.items()
        if (k.startswith(GATE_RATE) or k.startswith(GATE_SECONDS))
        and isinstance(v, (int, float))
    ]


def check(baseline_dir: Path, current_dir: Path, threshold: float) -> int:
    baselines = load_sidecars(baseline_dir)
    currents = load_sidecars(current_dir)
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}")
        return 2
    if not currents:
        print(f"error: no BENCH_*.json sidecars in {current_dir}")
        return 2

    failures = 0
    gates = 0
    for name in sorted(set(baselines) | set(currents)):
        base = baselines.get(name)
        cur = currents.get(name)
        if base is None or cur is None:
            side = "baseline" if base is None else "current run"
            print(f"warn: bench '{name}' missing from {side}; not gated")
            continue
        keys = sorted(set(gate_keys(base)) | set(gate_keys(cur)))
        for key in keys:
            b = base.get(key)
            c = cur.get(key)
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                side = "baseline" if not isinstance(b, (int, float)) else "current"
                print(f"warn: {name}.{key} missing from {side}; not gated")
                continue
            if not (math.isfinite(b) and math.isfinite(c)) or b <= 0:
                print(f"warn: {name}.{key} non-finite/non-positive; not gated")
                continue
            gates += 1
            if key.startswith(GATE_RATE):
                # Higher is better: fail when current < (1 - threshold) * base.
                change = c / b - 1.0
                bad = change < -threshold
                direction = "rate"
            else:
                # Lower is better: fail when current > (1 + threshold) * base.
                change = c / b - 1.0
                bad = change > threshold
                direction = "seconds"
            status = "FAIL" if bad else "ok"
            print(
                f"{status:>4}  {name}.{key} [{direction}] "
                f"baseline={b:.6g} current={c:.6g} change={change:+.1%} "
                f"(threshold ±{threshold:.0%})"
            )
            failures += 1 if bad else 0

    if gates == 0:
        print("error: no comparable gate_ keys found — nothing was checked")
        return 2
    print(
        f"\nperf gate: {gates} gate(s) checked, {failures} regression(s) "
        f"beyond {threshold:.0%}"
    )
    return 1 if failures else 0


def update(baseline_dir: Path, current_dir: Path) -> int:
    paths = sorted(current_dir.glob("BENCH_*.json"))
    if not paths:
        print(f"error: no BENCH_*.json sidecars in {current_dir}")
        return 2
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for path in paths:
        shutil.copy2(path, baseline_dir / path.name)
        print(f"updated {baseline_dir / path.name}")
    return 0


def selftest() -> int:
    """Synthesizes a 20% slowdown and asserts the gate fails on it (and
    passes on an identical run) — proof the gate can actually catch a
    regression."""
    doc = {
        "bench": "selftest",
        "wall_seconds": 1.0,
        "gate_rate_widgets_per_sec": 1000.0,
        "gate_seconds_epoch": 2.0,
        "informational_key": 123.0,
    }
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = Path(tmp) / "baseline"
        same_dir = Path(tmp) / "same"
        slow_dir = Path(tmp) / "slow"
        for d in (base_dir, same_dir, slow_dir):
            d.mkdir()
        (base_dir / "BENCH_selftest.json").write_text(json.dumps(doc))
        (same_dir / "BENCH_selftest.json").write_text(json.dumps(doc))
        slow = dict(doc)
        slow["gate_rate_widgets_per_sec"] = 800.0  # -20% throughput
        slow["gate_seconds_epoch"] = 2.4  # +20% wall clock
        (slow_dir / "BENCH_selftest.json").write_text(json.dumps(slow))

        print("--- selftest: identical run must pass ---")
        if check(base_dir, same_dir, 0.15) != 0:
            print("selftest FAILED: identical run was flagged")
            return 1
        print("--- selftest: 20% slowdown must fail ---")
        if check(base_dir, slow_dir, 0.15) != 1:
            print("selftest FAILED: 20% slowdown was not flagged")
            return 1
    print("selftest passed: the gate detects a 20% regression")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline_dir", nargs="?", type=Path,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("current_dir", nargs="?", type=Path,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative change before failing "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--update", action="store_true",
                        help="copy current sidecars over the baselines")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the gate flags a synthetic 20%% slowdown")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.baseline_dir is None or args.current_dir is None:
        parser.print_usage()
        return 2
    if not args.current_dir.is_dir():
        print(f"error: {args.current_dir} is not a directory")
        return 2
    if args.update:
        return update(args.baseline_dir, args.current_dir)
    if not args.baseline_dir.is_dir():
        print(f"error: {args.baseline_dir} is not a directory")
        return 2
    return check(args.baseline_dir, args.current_dir, args.threshold)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
