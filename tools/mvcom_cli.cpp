// mvcom — command-line driver for the library.
//
//   mvcom gen-trace <out.csv> [--blocks N] [--txs N] [--seed S]
//       Generate a synthetic Bitcoin-like transaction trace (DESIGN.md §3).
//
//   mvcom schedule <trace.csv> [--committees N] [--capacity C] [--alpha A]
//                  [--nmin K] [--gamma G] [--iters N] [--seed S]
//       Build one epoch's workload from the trace and run the SE scheduler;
//       prints the permitted committees and the selection's metrics.
//
//   mvcom epoch [--nodes N] [--committee-bits B] [--seed S]
//       Run one full Elastico epoch (PoW election, PBFT committees, final
//       consensus) and print every committee's two-phase latency.
//
//   mvcom bounds [--committees N] [--beta B] [--spread U] [--epsilon E]
//       Evaluate Theorem 1's mixing-time bounds (natural-log scale).
//
//   mvcom serve [--epochs N] [--committees N] [--depth D] [--workers W]
//               [--blocks N] [--txs N] [--seed S] [--stream-seed S]
//               [--iters N] [--capacity-fraction F] [--grind-bits B]
//               [--checkpoint-out <file>] [--checkpoint-every N]
//               [--metrics-out <file.prom>] [--metrics-csv-out <file.csv>]
//               [--trace-out <file.json>]
//       Long-running streaming mode: ingest a synthetic transaction stream,
//       software-pipeline epoch formation against SE scheduling + final
//       consensus (--depth 2 overlaps epoch e+1's formation with epoch e's
//       scheduling), warm-start each epoch's SE from the carried-over
//       selection, extend the root chain every epoch, and write periodic
//       checkpoints. SIGINT stops gracefully at the next epoch boundary and
//       still flushes every export file, complete and valid.
//
//   mvcom chaos [--committees N] [--capacity C] [--seed S] [--ddl T]
//               [--crashes N] [--crash-recovers N] [--stragglers N]
//               [--misreports N] [--equivocations N] [--loss-bursts N]
//       Run one supervised epoch under a randomized fault plan: committee
//       submissions are verified on admission, a heartbeat monitor detects
//       crashes, and the graceful-degradation ladder decides at the DDL.
//       Prints the plan, the utility timeline, the Theorem-2 accounting per
//       failure, and the final tier-attributed decision.
//
//   mvcom chaos --adversary <strategy> [--epochs N] [--budget B]
//               [--committees N] [--capacity C] [--reserve N] [--risk 0|1]
//               [--inflation X] [--seed S] [--ddl T]
//       Multi-epoch STRATEGIC campaign instead of a random plan: the
//       adversary (targeted-corruption | colluding-misreport | adaptive-dos
//       | churn-storm) observes each epoch's realized decision and aims the
//       next epoch's faults at it, while the supervisor carries strikes,
//       bans, and (with --risk 1, the default) the risk-adaptive N_min
//       policy across epochs. Prints per-epoch utility/safety plus two
//       replay witnesses — the campaign decision digest and the obs
//       event-stream digest — which must be bit-identical across runs with
//       the same seed (the CI adversarial-smoke contract).
//
//   mvcom fabric [--nodes N] [--committee-bits B] [--committee-size S]
//                [--epochs N] [--workers W] [--seed S] [--verify 0|1]
//                [--kill-epoch K] [--kill-worker W] [--metrics-dir DIR]
//                [--metrics-out <file.prom>]
//       Run Elastico epochs on the multi-process shard fabric (DESIGN.md
//       §17): W forked worker processes execute the committee lanes,
//       connected by the binary wire protocol. With --verify 1 (default) a
//       second, in-process network replays the identical run and every
//       epoch's event_order_digest / makespan / final block is diffed
//       bitwise — any divergence exits 1. --kill-epoch SIGKILLs a worker
//       right after that epoch's dispatch to exercise the crash-replay
//       path (the digests must STILL match). --metrics-dir makes each
//       worker export its private registry per epoch (per-process
//       Prometheus surface).
//
//   mvcom xshard [--accounts N] [--shards N] [--txs N] [--epochs N]
//                [--skew S] [--ratios 0,0.1,0.3,0.5] [--rounds R]
//                [--capacity C] [--slack K] [--scheduler greedy|dynamic]
//                [--seed S] [--txs-out <file.csv>]
//       Cross-shard ratio sweep (DESIGN.md §15): generate account-model
//       traffic at each requested cross-shard ratio, run both assembler
//       arms (conflict-aware vs random-oblivious) through the x-shard
//       scheduler, and print committed/intra/cross/deferred tallies plus a
//       per-arm ledger digest — a replay witness that must be bit-identical
//       across runs with the same seed (the CI xshard-smoke contract).
//       --txs-out dumps the first epoch's AccountTx trace as CSV.
//
// The `schedule`, `chaos`, and `xshard` commands accept observability sinks:
//   --metrics-out <file.prom>   Prometheus text exposition of every counter,
//                               gauge, and histogram the run touched.
//   --trace-out <file.json>     Chrome trace-event JSON (load in Perfetto,
//                               ui.perfetto.dev). Chaos traces are
//                               dual-clocked: simulated time on pid 1, wall
//                               clock on pid 2.

#include <algorithm>
#include <atomic>
#include <bit>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/theory.hpp"
#include "common/fnv.hpp"
#include "common/rng.hpp"
#include "mvcom/adversary/campaign.hpp"
#include "mvcom/fault_injection.hpp"
#include "mvcom/se_scheduler.hpp"
#include "obs/context.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/serve.hpp"
#include "fabric/coordinator.hpp"
#include "sharding/elastico.hpp"
#include "txn/accounts/model.hpp"
#include "txn/trace_generator.hpp"
#include "txn/trace_io.hpp"
#include "txn/workload.hpp"
#include "txn/xshard/scheduler.hpp"

namespace {

/// Tiny `--flag value` parser: positionals + a string map.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] double get_f64(const std::string& key,
                               double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
};

std::optional<Args> parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", token.c_str());
        return std::nullopt;
      }
      args.flags[token.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

/// Observability sinks requested with --metrics-out / --trace-out. Owns the
/// registry/recorder so a command can thread an ObsContext through its run
/// and flush the export files afterwards.
struct ObsSinks {
  std::string metrics_path;
  std::string trace_path;
  std::optional<mvcom::obs::MetricsRegistry> registry;
  std::optional<mvcom::obs::TraceRecorder> recorder;

  // Registry/recorder hold mutexes, so ObsSinks is neither movable nor
  // copyable — construct it in place from the parsed flags.
  explicit ObsSinks(const Args& args) {
    if (const auto it = args.flags.find("metrics-out");
        it != args.flags.end()) {
      metrics_path = it->second;
      registry.emplace();
    }
    if (const auto it = args.flags.find("trace-out"); it != args.flags.end()) {
      trace_path = it->second;
      recorder.emplace();
    }
  }

  [[nodiscard]] mvcom::obs::ObsContext context() {
    return {registry ? &*registry : nullptr, recorder ? &*recorder : nullptr};
  }

  /// Writes the requested files. Returns false (after printing to stderr)
  /// if an export failed validation — the CI smoke job keys off the exit
  /// code.
  [[nodiscard]] bool flush() {
    bool ok = true;
    std::string error;
    if (registry) {
      const std::string text = mvcom::obs::to_prometheus_text(*registry);
      if (!mvcom::obs::validate_prometheus_text(text, &error)) {
        std::fprintf(stderr, "metrics export failed validation: %s\n",
                     error.c_str());
        ok = false;
      }
      mvcom::obs::write_prometheus_text(*registry, metrics_path);
      std::printf("wrote %zu metric series to %s\n",
                  registry->snapshot().size(), metrics_path.c_str());
    }
    if (recorder) {
      const auto events = recorder->snapshot();
      const std::string json = mvcom::obs::to_chrome_trace_json(events);
      if (!mvcom::obs::validate_json(json, &error)) {
        std::fprintf(stderr, "trace export failed validation: %s\n",
                     error.c_str());
        ok = false;
      }
      mvcom::obs::write_chrome_trace_json(*recorder, trace_path);
      std::printf("wrote %zu trace events to %s (%llu dropped)\n",
                  events.size(), trace_path.c_str(),
                  static_cast<unsigned long long>(recorder->dropped()));
    }
    return ok;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: mvcom <gen-trace|schedule|epoch|fabric|bounds|serve|chaos|"
               "xshard> [options]\n"
               "see the header of tools/mvcom_cli.cpp for details\n");
  return 2;
}

int cmd_xshard(const Args& args) {
  mvcom::txn::AccountModelConfig model;
  model.num_accounts =
      static_cast<std::uint32_t>(args.get_u64("accounts", 50'000));
  model.num_shards = static_cast<std::uint32_t>(args.get_u64("shards", 20));
  model.txs_per_epoch = args.get_u64("txs", 20'000);
  model.zipf_skew = args.get_f64("skew", model.zipf_skew);
  mvcom::txn::XShardConfig xc;
  xc.num_shards = model.num_shards;
  xc.rounds_per_epoch =
      static_cast<std::uint32_t>(args.get_u64("rounds", xc.rounds_per_epoch));
  xc.shard_round_capacity = args.get_u64("capacity", xc.shard_round_capacity);
  xc.deadline_slack_rounds = static_cast<std::uint32_t>(
      args.get_u64("slack", xc.deadline_slack_rounds));
  const auto sched_it = args.flags.find("scheduler");
  if (sched_it != args.flags.end()) {
    if (sched_it->second == "greedy") {
      xc.scheduler = mvcom::txn::SchedulerPolicy::kGreedyColoring;
    } else if (sched_it->second == "dynamic") {
      xc.scheduler = mvcom::txn::SchedulerPolicy::kDynamicDeadline;
    } else {
      std::fprintf(stderr, "xshard: unknown scheduler '%s'\n",
                   sched_it->second.c_str());
      return 2;
    }
  }
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::size_t epochs = args.get_u64("epochs", 2);

  std::vector<double> ratios = {0.0, 0.1, 0.3, 0.5};
  if (const auto it = args.flags.find("ratios"); it != args.flags.end()) {
    ratios.clear();
    std::string token;
    for (const char c : it->second + ",") {
      if (c == ',') {
        if (!token.empty()) ratios.push_back(std::stod(token));
        token.clear();
      } else {
        token += c;
      }
    }
    if (ratios.empty()) {
      std::fprintf(stderr, "xshard: --ratios needs at least one value\n");
      return 2;
    }
  }

  ObsSinks sinks(args);
  auto obs = sinks.context();

  std::printf("x-shard ratio sweep: %u accounts on %u shards, %llu TXs/epoch "
              "x %zu epochs, skew %.2f, scheduler %s, R=%u rounds, C=%llu "
              "legs/shard/round\n",
              model.num_accounts, model.num_shards,
              static_cast<unsigned long long>(model.txs_per_epoch), epochs,
              model.zipf_skew, mvcom::txn::to_string(xc.scheduler),
              xc.rounds_per_epoch,
              static_cast<unsigned long long>(xc.shard_round_capacity));
  for (const double ratio : ratios) {
    model.cross_shard_ratio = ratio;
    const mvcom::txn::AccountTxGenerator generator(model);
    if (const auto it = args.flags.find("txs-out");
        it != args.flags.end() && ratio == ratios.front()) {
      const auto epoch0 = generator.epoch_keyed(seed, 0);
      mvcom::txn::write_account_txs_csv(epoch0.txs, it->second);
      std::printf("wrote %zu account TXs to %s\n", epoch0.txs.size(),
                  it->second.c_str());
    }
    for (const auto policy : {mvcom::txn::AssemblerPolicy::kConflictAware,
                              mvcom::txn::AssemblerPolicy::kRandomOblivious}) {
      xc.assembler = policy;
      std::uint64_t committed = 0, intra = 0, cross = 0, deferred = 0;
      std::uint64_t digest = mvcom::common::kFnv1aBasis;
      for (std::size_t e = 0; e < epochs; ++e) {
        const auto epoch = generator.epoch_keyed(seed, e);
        const auto result = mvcom::txn::run_epoch(epoch, xc, seed);
        committed += result.outcome.committed_txs;
        intra += result.outcome.intra_txs;
        cross += result.outcome.cross_txs;
        deferred += result.outcome.deferred_txs;
        digest = mvcom::common::fnv1a_mix(digest, result.outcome.ledger_digest);
      }
      if (auto* m = obs.metrics()) {
        const std::string arm = mvcom::txn::to_string(policy);
        m->counter("mvcom_xshard_txs_total", "TXs by x-shard classification",
                   {{"class", "intra"}, {"assembler", arm}})
            .add(intra);
        m->counter("mvcom_xshard_txs_total", "TXs by x-shard classification",
                   {{"class", "cross"}, {"assembler", arm}})
            .add(cross);
        m->counter("mvcom_xshard_txs_total", "TXs by x-shard classification",
                   {{"class", "deferred"}, {"assembler", arm}})
            .add(deferred);
      }
      std::printf("  ratio %.2f %-16s committed %8llu (intra %8llu, cross "
                  "%7llu), deferred %7llu | ledger digest %016llx\n",
                  ratio, mvcom::txn::to_string(policy),
                  static_cast<unsigned long long>(committed),
                  static_cast<unsigned long long>(intra),
                  static_cast<unsigned long long>(cross),
                  static_cast<unsigned long long>(deferred),
                  static_cast<unsigned long long>(digest));
    }
  }
  if (!sinks.flush()) return 1;
  return 0;
}

int cmd_gen_trace(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "gen-trace: output path required\n");
    return 2;
  }
  mvcom::txn::TraceGeneratorConfig config;
  config.num_blocks = args.get_u64("blocks", config.num_blocks);
  config.target_total_txs = args.get_u64("txs", config.target_total_txs);
  mvcom::common::Rng rng(args.get_u64("seed", 2016));
  const auto trace = mvcom::txn::generate_trace(config, rng);
  mvcom::txn::write_trace_csv(trace, args.positional[0]);
  std::printf("wrote %zu blocks / %llu TXs to %s\n", trace.blocks.size(),
              static_cast<unsigned long long>(trace.total_txs()),
              args.positional[0].c_str());
  return 0;
}

int cmd_schedule(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "schedule: trace path required\n");
    return 2;
  }
  const auto trace = mvcom::txn::load_trace_csv(args.positional[0]);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = args.get_u64("committees", 50);
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  mvcom::common::Rng rng(args.get_u64("seed", 1));
  const auto workload = gen.epoch(rng);

  const std::uint64_t capacity =
      args.get_u64("capacity", 1000 * wc.num_committees);
  const auto instance = mvcom::core::EpochInstance::from_reports(
      workload.reports, args.get_f64("alpha", 1.5), capacity,
      args.get_u64("nmin", 0));

  mvcom::core::SeParams params;
  params.threads = args.get_u64("gamma", 10);
  params.max_iterations = args.get_u64("iters", 5000);
  mvcom::core::SeScheduler scheduler(instance, params,
                                     args.get_u64("seed", 1));
  ObsSinks sinks(args);
  scheduler.set_obs(sinks.context());
  const auto result = scheduler.run();
  if (!sinks.flush()) return 1;
  if (!result.feasible) {
    std::printf("no feasible selection (capacity %llu, N_min %llu)\n",
                static_cast<unsigned long long>(capacity),
                static_cast<unsigned long long>(args.get_u64("nmin", 0)));
    return 1;
  }
  std::printf("converged after %zu iterations\n", result.iterations);
  std::printf("utility %.1f, valuable degree %.2f\n", result.utility,
              result.valuable_degree);
  std::printf("permitted %llu TXs of capacity %llu using committees:",
              static_cast<unsigned long long>(
                  instance.permitted_txs(result.best)),
              static_cast<unsigned long long>(capacity));
  for (std::size_t i = 0; i < result.best.size(); ++i) {
    if (result.best[i]) {
      std::printf(" %u", instance.committees()[i].id);
    }
  }
  std::printf("\n");
  return 0;
}

int cmd_epoch(const Args& args) {
  mvcom::sharding::ElasticoConfig config;
  config.num_nodes = args.get_u64("nodes", 256);
  config.committee_bits =
      static_cast<int>(args.get_u64("committee-bits", 4));
  config.committee_size = args.get_u64("committee-size", 8);
  mvcom::sharding::ElasticoNetwork network(
      config, mvcom::common::Rng(args.get_u64("seed", 1)));

  mvcom::common::Rng trace_rng(args.get_u64("seed", 1) + 1);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = std::max<std::uint64_t>(64, network.num_member_committees());
  tc.target_total_txs = tc.num_blocks * 1000;
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);

  const auto outcome = network.run_epoch(trace);
  for (const auto& c : outcome.committees) {
    std::printf("committee %2u: formation %8.1fs consensus %7.1fs txs %6llu %s\n",
                c.committee_id, c.formation_latency.seconds(),
                c.consensus_latency.seconds(),
                static_cast<unsigned long long>(c.tx_count),
                c.committed ? "committed" : "FAILED");
  }
  std::printf("final block: %zu shards, %llu TXs, makespan %.1fs; "
              "root chain height %llu (valid=%s)\n",
              outcome.selected.size(),
              static_cast<unsigned long long>(outcome.final_block_txs),
              outcome.epoch_makespan.seconds(),
              static_cast<unsigned long long>(network.root_chain().height()),
              network.root_chain().validate_full() ? "yes" : "NO");
  return 0;
}

int cmd_fabric(const Args& args) {
  mvcom::sharding::ElasticoConfig config;
  config.num_nodes = args.get_u64("nodes", 128);
  config.committee_bits = static_cast<int>(args.get_u64("committee-bits", 3));
  config.committee_size = args.get_u64("committee-size", 6);
  config.pbft.verification_mean = mvcom::common::SimTime(0.2);
  config.node_failure_probability = args.get_f64("failure", 0.0);
  config.message_loss_probability = args.get_f64("loss", 0.0);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::uint64_t epochs = args.get_u64("epochs", 4);
  const bool verify = args.get_u64("verify", 1) != 0;

  mvcom::common::Rng trace_rng(seed + 1);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = std::max<std::uint64_t>(
      64, (std::size_t{1} << config.committee_bits) - 1);
  tc.target_total_txs = tc.num_blocks * 1000;
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);

  ObsSinks sinks(args);
  mvcom::fabric::FabricConfig fabric_config;
  fabric_config.workers = args.get_u64("workers", 2);
  if (const auto it = args.flags.find("metrics-dir");
      it != args.flags.end()) {
    fabric_config.metrics_dir = it->second;
  }
  mvcom::fabric::ProcessFabric fleet(fabric_config, sinks.context());
  if (const auto it = args.flags.find("kill-epoch"); it != args.flags.end()) {
    fleet.inject_kill(args.get_u64("kill-worker", 0),
                      args.get_u64("kill-epoch", 0));
  }

  mvcom::sharding::ElasticoNetwork network(config,
                                           mvcom::common::Rng(seed));
  network.set_obs(sinks.context());
  network.set_lane_executor(fleet.executor());

  // The in-process reference replays the identical epochs: same config,
  // same seed, lanes on the default pool. Its digests are the ground truth
  // the fabric must match bitwise.
  std::optional<mvcom::sharding::ElasticoNetwork> reference;
  if (verify) reference.emplace(config, mvcom::common::Rng(seed));

  bool diverged = false;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    const auto outcome = network.run_epoch(trace);
    std::printf("epoch %llu: digest %016llx makespan %.3fs txs %llu "
                "shards %zu\n",
                static_cast<unsigned long long>(e),
                static_cast<unsigned long long>(outcome.event_order_digest),
                outcome.epoch_makespan.seconds(),
                static_cast<unsigned long long>(outcome.final_block_txs),
                outcome.selected.size());
    if (reference) {
      const auto expected = reference->run_epoch(trace);
      const bool equal =
          expected.event_order_digest == outcome.event_order_digest &&
          expected.events_executed == outcome.events_executed &&
          expected.final_block_txs == outcome.final_block_txs &&
          expected.next_epoch_randomness == outcome.next_epoch_randomness &&
          std::bit_cast<std::uint64_t>(expected.epoch_makespan.seconds()) ==
              std::bit_cast<std::uint64_t>(outcome.epoch_makespan.seconds());
      if (!equal) {
        diverged = true;
        std::printf("epoch %llu: DIVERGED from in-process reference "
                    "(expected digest %016llx)\n",
                    static_cast<unsigned long long>(e),
                    static_cast<unsigned long long>(
                        expected.event_order_digest));
      }
    }
  }
  std::printf("fabric: %llu epochs on %zu workers, %llu respawns, "
              "chain height %llu (valid=%s)\n",
              static_cast<unsigned long long>(epochs), fleet.workers(),
              static_cast<unsigned long long>(fleet.respawns()),
              static_cast<unsigned long long>(network.root_chain().height()),
              network.root_chain().validate_full() ? "yes" : "NO");
  if (verify) {
    std::printf("verify: %s\n", diverged ? "DIVERGED" : "identical");
  }
  fleet.shutdown();
  if (!sinks.flush()) return 1;
  return diverged ? 1 : 0;
}

int cmd_bounds(const Args& args) {
  const auto committees = args.get_u64("committees", 500);
  const double beta = args.get_f64("beta", 2.0);
  const double spread = args.get_f64("spread", 100.0);
  const double epsilon = args.get_f64("epsilon", 0.01);
  const auto bounds = mvcom::analysis::mixing_time_bounds(
      committees, beta, 0.0, spread, epsilon);
  std::printf("Theorem 1 mixing-time bounds for |I|=%llu, beta=%.2f, "
              "Umax-Umin=%.1f, eps=%.3f:\n",
              static_cast<unsigned long long>(committees), beta, spread,
              epsilon);
  std::printf("  ln(lower) = %.2f\n  ln(upper) = %.2f\n", bounds.log_lower,
              bounds.log_upper);
  std::printf("  optimality loss (1/beta)·log|F| = %.1f\n",
              mvcom::analysis::log_sum_exp_optimality_loss(committees, beta));
  return 0;
}

int cmd_chaos_adversary(const Args& args, const std::string& strategy_name) {
  const auto strategy = mvcom::core::parse_adversary_strategy(strategy_name);
  if (!strategy) {
    std::fprintf(stderr,
                 "chaos: unknown adversary '%s' (targeted-corruption | "
                 "colluding-misreport | adaptive-dos | churn-storm)\n",
                 strategy_name.c_str());
    return 2;
  }
  const std::size_t committees = args.get_u64("committees", 20);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const bool churn = *strategy == mvcom::core::AdversaryStrategy::kChurnStorm;

  mvcom::core::CampaignConfig config;
  config.adversary.strategy = *strategy;
  config.adversary.budget = args.get_f64("budget", 0.35);
  config.adversary.inflation = args.get_f64("inflation", 3.0);
  config.committees = committees;
  config.epochs = args.get_u64("epochs", 6);
  config.reserve = args.get_u64("reserve", churn ? committees : 0);

  auto& sched = config.chaos.supervisor.scheduler;
  sched.alpha = args.get_f64("alpha", 1.5);
  // Capacity with modest slack past N_min·E[s_i] (~1088 TXs/shard): a lone
  // inflated claim still fits beside the N_min−1 smallest honest shards —
  // the crowding-out regime the risk-adaptive defense exists for.
  sched.capacity = args.get_u64("capacity", 725 * committees);
  // The whole membership (and any joiner) must be admittable: an N_max
  // listening cutoff below the membership depletes the honest pool, and a
  // depleted pool is exactly what lets a forged claim fit inside the
  // capacity at the feasibility-frontier N_min. Keep the *effective* N_min
  // at 50% of the initial membership.
  sched.expected_committees = committees + config.reserve;
  sched.n_max_fraction = 1.0;
  if (config.reserve > 0) {
    sched.n_min_fraction = 0.5 * static_cast<double>(committees) /
                           static_cast<double>(committees + config.reserve);
  }
  config.chaos.ddl_seconds = args.get_f64("ddl", 1800.0);
  config.chaos.supervisor.risk.enabled = args.get_u64("risk", 1) != 0;
  config.chaos.supervisor.risk.escalation_step = 1.2;
  config.chaos.supervisor.risk.boost_cap = 8;

  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = std::max<std::uint64_t>(64, committees + config.reserve);
  tc.target_total_txs = tc.num_blocks * 1000;
  mvcom::common::Rng trace_rng(seed + 1);
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);

  // The obs event stream doubles as the replay witness, so a recorder is
  // always attached — the user's --trace-out sink when given, else a local
  // one that only feeds the digest.
  ObsSinks sinks(args);
  std::optional<mvcom::obs::TraceRecorder> local_recorder;
  mvcom::obs::ObsContext obs = sinks.context();
  if (obs.trace() == nullptr) {
    local_recorder.emplace();
    obs = {obs.metrics(), &*local_recorder};
  }
  config.chaos.obs = obs;

  const auto result =
      mvcom::core::run_adversarial_campaign(trace, config, seed);
  if (!sinks.flush()) return 1;

  std::printf("adversary %s, budget %.2f, %zu epochs, %zu committees "
              "(+%zu reserve), risk policy %s\n",
              mvcom::core::to_string(*strategy), config.adversary.budget,
              config.epochs, committees, config.reserve,
              config.chaos.supervisor.risk.enabled ? "on" : "off");
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    const auto& o = result.epochs[e];
    std::printf(
        "  epoch %2zu: %2zu faults  tier %-14s utility %10.1f  safety %.3f  "
        "honest %6llu/%6llu TXs  n_min %2zu  joins %llu  leaves %llu  "
        "skipped %llu  quar %zu  banned %zu  risk %.1f\n",
        e, o.plan.events.size(),
        mvcom::core::to_string(o.report.final_decision.tier), o.utility,
        o.safety, static_cast<unsigned long long>(o.honest_permitted_txs),
        static_cast<unsigned long long>(o.claimed_permitted_txs),
        o.report.effective_n_min,
        static_cast<unsigned long long>(o.report.joins),
        static_cast<unsigned long long>(o.report.leaves),
        static_cast<unsigned long long>(o.report.skipped_events),
        o.report.quarantined_ids.size(), o.report.banned_ids.size(),
        o.report.risk_score);
  }
  std::uint64_t honest_total = 0;
  for (const auto& o : result.epochs) honest_total += o.honest_permitted_txs;
  std::printf("mean utility %.1f, mean safety %.3f, honest permitted TXs "
              "%llu\n",
              result.mean_utility, result.mean_safety,
              static_cast<unsigned long long>(honest_total));
  std::vector<mvcom::obs::TraceEvent> trace_events;
  if (auto* t = obs.trace()) trace_events = t->snapshot();
  const std::uint64_t obs_digest = mvcom::obs::events_digest(trace_events);
  std::printf("decision digest: %016llx\n",
              static_cast<unsigned long long>(result.decision_digest));
  std::printf("obs events digest: %016llx\n",
              static_cast<unsigned long long>(obs_digest));
  std::printf("infeasible-while-feasible: %s\n",
              result.infeasible_while_feasible ? "VIOLATED" : "never");
  return result.infeasible_while_feasible ? 1 : 0;
}

int cmd_chaos(const Args& args) {
  if (const auto it = args.flags.find("adversary"); it != args.flags.end()) {
    return cmd_chaos_adversary(args, it->second);
  }
  const std::size_t committees = args.get_u64("committees", 20);
  const std::uint64_t seed = args.get_u64("seed", 1);

  // Calibrated workload (§VI-A): one ~1000-TX block per committee.
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = std::max<std::uint64_t>(64, committees);
  tc.target_total_txs = tc.num_blocks * 1000;
  mvcom::common::Rng trace_rng(seed + 1);
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = committees;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  mvcom::common::Rng workload_rng(seed + 2);
  const auto chaos_committees = mvcom::core::chaos_committees_from_reports(
      gen.epoch(workload_rng).reports);

  mvcom::core::FaultPlanConfig pc;
  pc.crashes = args.get_u64("crashes", 1);
  pc.crash_recovers = args.get_u64("crash-recovers", 1);
  pc.stragglers = args.get_u64("stragglers", 1);
  pc.misreports = args.get_u64("misreports", 1);
  pc.equivocations = args.get_u64("equivocations", 0);
  pc.loss_bursts = args.get_u64("loss-bursts", 0);
  mvcom::common::Rng plan_rng(seed + 3);
  const auto plan =
      mvcom::core::FaultPlan::randomized(pc, committees, plan_rng);

  mvcom::core::ChaosConfig config;
  config.supervisor.scheduler.alpha = args.get_f64("alpha", 1.5);
  // Default capacity covers ~70% of the calibrated workload (~775 TXs per
  // committee), so the epoch is genuinely capacity-constrained and the SE
  // scheduler bootstraps (bootstrap requires total claimed TXs > capacity)
  // while an N_min-sized selection still fits (feasibility).
  config.supervisor.scheduler.capacity =
      args.get_u64("capacity", 550 * committees);
  config.supervisor.scheduler.expected_committees = committees;
  config.ddl_seconds = args.get_f64("ddl", 1800.0);

  ObsSinks sinks(args);
  config.obs = sinks.context();
  const auto report =
      mvcom::core::run_chaos_epoch(chaos_committees, plan, config, seed);
  if (!sinks.flush()) return 1;

  std::printf("fault plan (%zu events):\n", plan.events.size());
  for (const auto& e : plan.events) {
    std::printf("  t=%7.1fs  %-18s committee %2u  duration %5.0fs  x%.2f\n",
                e.at_seconds, mvcom::core::to_string(e.kind), e.committee_id,
                e.duration_seconds, e.magnitude);
  }
  std::printf("timeline (every %.0fs):\n", config.explore_tick_seconds * 4);
  for (std::size_t i = 0; i < report.timeline.size(); i += 4) {
    const auto& p = report.timeline[i];
    std::printf("  t=%7.1fs  %-14s utility %10.1f%s\n", p.at_seconds,
                mvcom::core::to_string(p.tier), p.utility,
                p.feasible ? "" : "  (infeasible)");
  }
  std::printf("admission: %llu admitted, %llu readmitted, %llu quarantined, "
              "%llu refused, %llu dropped sends\n",
              static_cast<unsigned long long>(report.admitted),
              static_cast<unsigned long long>(report.readmitted),
              static_cast<unsigned long long>(report.quarantine_events),
              static_cast<unsigned long long>(report.refused),
              static_cast<unsigned long long>(report.dropped_submissions));
  std::printf("detector: %llu failures, %llu recoveries\n",
              static_cast<unsigned long long>(report.failures_detected),
              static_cast<unsigned long long>(report.recoveries_detected));
  for (const auto& f : report.failures) {
    std::printf("  failure t=%7.1fs committee %2u: utility %9.1f -> %9.1f "
                "(Theorem-2 bound %9.1f, %s)\n",
                f.sim_time_seconds, f.committee_id, f.utility_before,
                f.utility_after, f.perturbation_bound,
                f.within_bound ? "ok" : "VIOLATED");
  }
  const auto& d = report.final_decision;
  if (!d.decision.feasible) {
    std::printf("final decision: INFEASIBLE (%s)\n",
                mvcom::core::to_string(d.reason));
  } else {
    std::printf("final decision [%s]: utility %.1f, %zu committees, "
                "%llu TXs of %llu capacity\n",
                mvcom::core::to_string(d.tier), d.decision.utility,
                d.decision.permitted_ids.size(),
                static_cast<unsigned long long>(d.decision.permitted_txs),
                static_cast<unsigned long long>(
                    config.supervisor.scheduler.capacity));
  }
  std::printf("Theorem 2 respected: %s; infeasible-while-feasible: %s\n",
              d.theorem2_respected ? "yes" : "NO",
              report.infeasible_while_feasible ? "VIOLATED" : "never");
  return report.infeasible_while_feasible ? 1 : 0;
}

// The SIGINT handler may only touch lock-free atomics; request_stop() is a
// single relaxed store, so routing the signal through this pointer is
// async-signal-safe.
std::atomic<mvcom::pipeline::ServeSession*> g_serve_session{nullptr};

extern "C" void serve_sigint_handler(int) {
  if (auto* session = g_serve_session.load(std::memory_order_relaxed)) {
    session->request_stop();
  }
}

int cmd_serve(const Args& args) {
  mvcom::pipeline::ServeConfig config;
  config.pipeline.epochs = args.get_u64("epochs", 8);
  config.pipeline.committees = args.get_u64("committees", 50);
  config.pipeline.overlap_depth = args.get_u64("depth", 2);
  config.pipeline.workers = args.get_u64("workers", 2);
  config.pipeline.seed = args.get_u64("seed", 1);
  config.pipeline.capacity_fraction =
      args.get_f64("capacity-fraction", config.pipeline.capacity_fraction);
  config.pipeline.se.max_iterations = args.get_u64("iters", 2000);
  config.pipeline.se.convergence_window =
      std::min<std::size_t>(config.pipeline.se.max_iterations, 500);
  config.pipeline.pow_grind_bits =
      static_cast<int>(args.get_u64("grind-bits", 0));
  config.stream.num_blocks = args.get_u64("blocks", 600);
  config.stream.target_total_txs = args.get_u64("txs", 600'000);
  config.stream_seed = args.get_u64("stream-seed", 2016);
  const auto flag = [&](const char* key) {
    const auto it = args.flags.find(key);
    return it == args.flags.end() ? std::string() : it->second;
  };
  config.metrics_out = flag("metrics-out");
  config.metrics_csv_out = flag("metrics-csv-out");
  config.trace_out = flag("trace-out");
  config.checkpoint_out = flag("checkpoint-out");
  config.checkpoint_every = args.get_u64("checkpoint-every", 1);

  mvcom::pipeline::ServeSession session(config);
  g_serve_session.store(&session, std::memory_order_relaxed);
  std::signal(SIGINT, serve_sigint_handler);

  std::printf("serving %llu epochs x %llu committees "
              "(depth %zu, workers %zu, warm start %s)\n",
              static_cast<unsigned long long>(config.pipeline.epochs),
              static_cast<unsigned long long>(config.pipeline.committees),
              config.pipeline.overlap_depth, config.pipeline.workers,
              config.pipeline.warm_start ? "on" : "off");
  const auto summary =
      session.run([](const mvcom::pipeline::EpochReport& r) {
        std::printf("epoch %3zu: start %9.1fs commit %9.1fs  "
                    "utility %12.1f  committed %8llu TXs  carried %8llu  "
                    "digest %016llx\n",
                    r.epoch, r.start, r.commit, r.utility,
                    static_cast<unsigned long long>(r.committed_txs),
                    static_cast<unsigned long long>(r.carried_txs),
                    static_cast<unsigned long long>(r.event_order_digest));
        std::fflush(stdout);
      });
  std::signal(SIGINT, SIG_DFL);
  g_serve_session.store(nullptr, std::memory_order_relaxed);

  const auto& t = summary.totals;
  std::printf("%s after %zu epochs: ingested %llu, committed %llu, "
              "pending %llu TXs (digest %016llx)\n",
              t.stopped_early ? "stopped early" : "stream drained",
              t.epochs_run, static_cast<unsigned long long>(t.ingested_txs),
              static_cast<unsigned long long>(t.committed_txs),
              static_cast<unsigned long long>(t.pending_txs),
              static_cast<unsigned long long>(t.digest));
  std::printf("chain valid: %s; checkpoints written: %zu; "
              "artifacts valid: %s\n",
              summary.chain_valid ? "yes" : "NO", summary.checkpoints_written,
              summary.artifacts_valid ? "yes" : "NO");
  return summary.chain_valid && summary.artifacts_valid ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const auto args = parse(argc, argv, 2);
  if (!args) return 2;
  try {
    if (command == "gen-trace") return cmd_gen_trace(*args);
    if (command == "schedule") return cmd_schedule(*args);
    if (command == "epoch") return cmd_epoch(*args);
    if (command == "fabric") return cmd_fabric(*args);
    if (command == "bounds") return cmd_bounds(*args);
    if (command == "serve") return cmd_serve(*args);
    if (command == "chaos") return cmd_chaos(*args);
    if (command == "xshard") return cmd_xshard(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mvcom %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
