#pragma once
// Shared machinery for the figure-reproduction benches: paper-parameterized
// workload construction (§VI-A) and plain-text series printing. Every bench
// binary regenerates one figure of the paper's evaluation and prints the
// same rows/series that figure plots.

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

namespace mvcom::bench {

/// The paper's dataset: the synthetic stand-in for the 1378-block / 1.5M-TX
/// January-2016 Bitcoin snapshot (see DESIGN.md §3). Deterministic.
[[nodiscard]] txn::Trace paper_trace(std::uint64_t seed = 2016);

/// Builds one epoch's MVCom instance at the paper's parameter points:
/// |I| committees, capacity Ĉ, weight α, N_min (0 unless the experiment is
/// an online case, where the paper fixes N_min = 50%·|I|).
[[nodiscard]] core::EpochInstance paper_instance(const txn::Trace& trace,
                                                 std::uint64_t epoch_seed,
                                                 std::size_t num_committees,
                                                 std::uint64_t capacity,
                                                 double alpha,
                                                 std::size_t n_min);

/// Builds one epoch at the 10k–50k scale tiers: the paper's workload shape
/// blown up past the 1378-block snapshot (2·|I| blocks, ~1500·|I| TXs),
/// Ĉ = 70% of the epoch's total load, α = 1.5, N_min = |I|/2. Deterministic
/// in |I|, so every scale bench and the perf gate see the same instance.
[[nodiscard]] core::EpochInstance scale_instance(std::size_t num_committees);

/// True when the expensive 50k-committee tiers should run too
/// (MVCOM_BENCH_SCALE=full); the 10k tiers always run.
[[nodiscard]] bool scale_full_enabled();

/// Prints a section header for one figure/panel.
void print_header(const std::string& figure, const std::string& subtitle);

/// Prints an iteration-utility series, downsampled to ~`points` rows.
void print_trace(const std::string& label, std::span<const double> trace,
                 std::size_t points = 25);

/// Prints one "name: value" summary row.
void print_row(const std::string& name, double value);
void print_row(const std::string& name, const std::string& value);

/// Machine-readable results sidecar. A bench constructs one BenchJson up
/// front, records its headline numbers (utilities, iteration counts, series)
/// as it prints them, and calls write() at the end — producing
/// BENCH_<name>.json in $MVCOM_BENCH_OUT_DIR (default: the working
/// directory). Wall time from construction to write() is stamped
/// automatically as "wall_seconds". Keys are written in insertion order;
/// setting an existing key overwrites it in place.
class BenchJson {
 public:
  explicit BenchJson(std::string name);

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);
  void set_series(const std::string& key, std::span<const double> values);

  /// Renders the accumulated document (always validate_json-clean: non-finite
  /// numbers are emitted as null).
  [[nodiscard]] std::string to_json() const;

  /// Writes BENCH_<name>.json and returns the path written.
  std::string write() const;

 private:
  void put(const std::string& key, std::string rendered);

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  // key -> pre-rendered JSON value, in insertion order.
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace mvcom::bench
