#pragma once
// Shared machinery for the figure-reproduction benches: paper-parameterized
// workload construction (§VI-A) and plain-text series printing. Every bench
// binary regenerates one figure of the paper's evaluation and prints the
// same rows/series that figure plots.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/problem.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

namespace mvcom::bench {

/// The paper's dataset: the synthetic stand-in for the 1378-block / 1.5M-TX
/// January-2016 Bitcoin snapshot (see DESIGN.md §3). Deterministic.
[[nodiscard]] txn::Trace paper_trace(std::uint64_t seed = 2016);

/// Builds one epoch's MVCom instance at the paper's parameter points:
/// |I| committees, capacity Ĉ, weight α, N_min (0 unless the experiment is
/// an online case, where the paper fixes N_min = 50%·|I|).
[[nodiscard]] core::EpochInstance paper_instance(const txn::Trace& trace,
                                                 std::uint64_t epoch_seed,
                                                 std::size_t num_committees,
                                                 std::uint64_t capacity,
                                                 double alpha,
                                                 std::size_t n_min);

/// Prints a section header for one figure/panel.
void print_header(const std::string& figure, const std::string& subtitle);

/// Prints an iteration-utility series, downsampled to ~`points` rows.
void print_trace(const std::string& label, std::span<const double> trace,
                 std::size_t points = 25);

/// Prints one "name: value" summary row.
void print_row(const std::string& name, double value);
void print_row(const std::string& name, const std::string& value);

}  // namespace mvcom::bench
