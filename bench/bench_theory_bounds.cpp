// Theory benches — the paper's analytical results, regenerated numerically:
//   * Theorem 1: mixing-time lower/upper bounds vs |I| and β (Remark 2's
//     O(4^|I|)·O(e^β)·O(ln 1/ε) scaling);
//   * Remark 1: log-sum-exp optimality loss (1/β)·log|F| vs β;
//   * Lemma 3: Gillespie occupancy vs the Eq.-(6) stationary distribution
//     (detailed balance, measured as total-variation distance);
//   * Lemma 4 / Theorem 2: exact failure perturbation on an enumerable
//     instance — d_TV ≤ 1/2 and utility shift ≤ max_g U_g;
//   * Ablation: converged utility and iterations-to-converge vs β and τ.

#include <cstdio>

#include "analysis/markov.hpp"
#include "analysis/spectral.hpp"
#include "analysis/theory.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

mvcom::core::EpochInstance enumerable_instance(std::uint64_t seed) {
  mvcom::common::Rng rng(seed);
  std::vector<mvcom::core::Committee> committees;
  for (std::uint32_t i = 0; i < 10; ++i) {
    committees.push_back({i, 2 + rng.below(8), rng.uniform(0.0, 5.0)});
  }
  return mvcom::core::EpochInstance(std::move(committees), 1.0, 10'000, 0);
}

}  // namespace

int main() {
  // ---- Theorem 1 -----------------------------------------------------------
  mvcom::bench::print_header("Theorem 1",
                             "mixing-time bounds (natural-log scale)");
  std::printf("  %6s %6s %16s %16s\n", "|I|", "beta", "ln(lower bound)",
              "ln(upper bound)");
  for (const std::size_t committees : {50u, 200u, 500u, 1000u}) {
    for (const double beta : {1.0, 2.0}) {
      const auto bounds = mvcom::analysis::mixing_time_bounds(
          committees, beta, 0.0, /*utility_spread=*/100.0, /*epsilon=*/0.01);
      std::printf("  %6zu %6.1f %16.1f %16.1f\n", committees, beta,
                  bounds.log_lower, bounds.log_upper);
    }
  }
  std::printf("  (expected shape: upper bound grows ~|I|·ln4 per committee "
              "and with beta — Remark 2)\n");

  // ---- Remark 1 --------------------------------------------------------------
  mvcom::bench::print_header("Remark 1", "optimality loss (1/beta)·log|F|");
  for (const double beta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    mvcom::bench::print_row(
        "loss at |I|=500, beta=" + std::to_string(beta),
        mvcom::analysis::log_sum_exp_optimality_loss(500, beta));
  }

  // ---- Lemma 3 (detailed balance, simulated) ---------------------------------
  mvcom::bench::print_header(
      "Lemma 3", "Gillespie occupancy vs Eq.(6) stationary distribution");
  const auto instance = enumerable_instance(3);
  const auto space = mvcom::analysis::enumerate_space(instance, 5);
  const auto p_star = mvcom::analysis::stationary_distribution(space, 1.0);
  std::printf("  %12s %16s\n", "transitions", "TV distance");
  for (const std::size_t transitions : {1'000u, 10'000u, 100'000u, 500'000u}) {
    mvcom::common::Rng rng(9);
    const auto occupancy =
        mvcom::analysis::simulate_occupancy(space, 1.0, 0.0, transitions, rng);
    std::printf("  %12zu %16.4f\n", transitions,
                mvcom::analysis::total_variation(p_star, occupancy));
  }
  std::printf("  (expected shape: TV distance shrinks toward 0 — the chain "
              "is time-reversible with the Eq.(6) stationary law)\n");

  // ---- Lemma 4 / Theorem 2 ----------------------------------------------------
  mvcom::bench::print_header("Lemma 4 / Theorem 2",
                             "exact failure perturbation (|I|=10, full F)");
  const auto full = mvcom::analysis::enumerate_full_space(instance);
  std::printf("  %8s %12s %14s %18s %14s\n", "failed", "d_TV", "(bound 0.5)",
              "utility shift", "(bound maxU)");
  for (const std::uint32_t failed : {0u, 3u, 7u}) {
    const auto p = mvcom::analysis::failure_perturbation(full, 2.0, failed);
    std::printf("  %8u %12.4f %14s %18.4f %14.1f\n", failed, p.tv_distance,
                p.tv_distance <= 0.5 ? "OK" : "VIOLATED", p.utility_shift,
                p.max_trimmed_utility);
  }
  mvcom::bench::print_row("|F\\G| / |F| (Lemma 4 counting step)",
                          mvcom::analysis::failure_perturbation(full, 2.0, 0)
                              .trimmed_fraction);

  // ---- Spectral gap (citation [19]) -------------------------------------------
  mvcom::bench::print_header(
      "Spectral", "exact relaxation-time sandwich vs beta (|I|=10, n=5)");
  const auto gap_space = mvcom::analysis::enumerate_space(instance, 5);
  std::printf("  %6s %12s %16s %16s %16s\n", "beta", "gap(ctmc)",
              "gap(uniformized)", "t_mix lower", "t_mix upper");
  for (const double beta : {0.5, 1.0, 2.0, 4.0}) {
    const auto spectral =
        mvcom::analysis::spectral_gap(gap_space, beta, 0.0);
    std::printf("  %6.1f %12.4f %16.6f %16.3f %16.3f\n", beta, spectral.gap,
                spectral.uniformized_gap(), spectral.t_mix_lower(0.01),
                spectral.t_mix_upper(0.01));
  }
  std::printf("  (expected shape: the *uniformized* gap — mixing per\n"
              "   transition — shrinks as beta grows: sharper stationary\n"
              "   laws need more transitions, Remark 2 made exact)\n");

  // ---- Ablation: beta and tau -------------------------------------------------
  mvcom::bench::print_header(
      "Ablation", "SE converged utility vs beta/tau (|I|=50, C=50K, a=1.5)");
  const auto trace = mvcom::bench::paper_trace();
  const auto se_instance = mvcom::bench::paper_instance(
      trace, 17, /*num_committees=*/50, /*capacity=*/50'000, /*alpha=*/1.5,
      /*n_min=*/0);
  std::printf("  %6s %6s %16s %14s\n", "beta", "tau", "converged U",
              "iterations");
  for (const double beta : {0.5, 1.0, 2.0, 4.0}) {
    for (const double tau : {0.0, 1.0}) {
      mvcom::core::SeParams params;
      params.beta = beta;
      params.tau = tau;
      params.threads = 10;
      params.max_iterations = 3000;
      mvcom::core::SeScheduler scheduler(se_instance, params, 23);
      const auto result = scheduler.run();
      std::printf("  %6.1f %6.1f %16.1f %14zu\n", beta, tau, result.utility,
                  result.iterations);
    }
  }
  std::printf("  (expected shape: moderate beta converges well; tau shifts "
              "rates uniformly and barely matters — Eq. 7 intuition)\n");
  return 0;
}
