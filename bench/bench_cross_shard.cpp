// Cross-shard scheduling bench — the account-model ratio sweep (DESIGN.md
// §15). Generates Zipf-skewed account traffic at cross-shard ratios
// {0, 10, 30, 50}%, assembles shards with both arms (conflict-aware vs
// random-oblivious placement), runs the deadline-aware dynamic scheduler,
// and reports committed/deferred tallies per arm. A greedy-coloring row at
// the canonical 30% ratio anchors the scheduler-baseline comparison.
//
// PASS/FAIL criteria (the process exits 1 on FAIL):
//   * monotone degradation — on the conflict-aware arm, committed TXs never
//     increase as the cross-shard ratio grows: more scattered read/write
//     sets mean more legs per TX and more lock conflicts, so throughput can
//     only fall.
//   * assembler dominance — the conflict-aware assembler commits at least
//     as many TXs as random-oblivious placement at EVERY ratio (strictly
//     more summed over the sweep).
//   * determinism — each (ratio, arm) ledger digest is bit-identical across
//     two independent replays of the same epochs.
//
// The sidecar gates (tools/bench_compare.py vs bench/baselines/):
//   gate_rate_xshard_committed_txs  aggregate committed TXs, conflict-aware
//                                   arm over the whole sweep
//   gate_rate_xshard_assembler      assembler+scheduler throughput, TXs
//                                   processed per wall-clock second
//   gate_seconds_sweep              wall clock of the full sweep

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/fnv.hpp"
#include "bench_util.hpp"
#include "txn/accounts/model.hpp"
#include "txn/xshard/scheduler.hpp"

namespace {

using mvcom::txn::AccountModelConfig;
using mvcom::txn::AccountTxGenerator;
using mvcom::txn::AssemblerPolicy;
using mvcom::txn::SchedulerPolicy;
using mvcom::txn::XShardConfig;

constexpr std::uint64_t kSeed = 7;
constexpr std::size_t kEpochs = 3;

struct ArmResult {
  std::uint64_t committed = 0;
  std::uint64_t intra = 0;
  std::uint64_t cross = 0;
  std::uint64_t deferred = 0;
  std::uint64_t digest = 0;  // FNV fold of the per-epoch ledger digests
  std::uint64_t txs_processed = 0;
};

ArmResult run_arm(const AccountTxGenerator& generator, XShardConfig config,
                  AssemblerPolicy policy, SchedulerPolicy scheduler) {
  config.assembler = policy;
  config.scheduler = scheduler;
  ArmResult arm;
  arm.digest = mvcom::common::kFnv1aBasis;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const auto epoch = generator.epoch_keyed(kSeed, e);
    const auto result = mvcom::txn::run_epoch(epoch, config, kSeed);
    arm.committed += result.outcome.committed_txs;
    arm.intra += result.outcome.intra_txs;
    arm.cross += result.outcome.cross_txs;
    arm.deferred += result.outcome.deferred_txs;
    arm.digest = mvcom::common::fnv1a_mix(arm.digest, result.outcome.ledger_digest);
    arm.txs_processed += epoch.txs.size();
  }
  return arm;
}

void print_pass(const char* criterion, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", criterion);
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("cross_shard");
  mvcom::bench::print_header(
      "Cross-shard ratio sweep",
      "conflict-aware vs random-oblivious assembly, dynamic-deadline "
      "scheduler");

  AccountModelConfig model;
  model.num_accounts = 50'000;
  model.num_shards = 20;
  model.txs_per_epoch = 20'000;
  XShardConfig xc;
  xc.num_shards = model.num_shards;

  const std::vector<double> ratios = {0.0, 0.1, 0.3, 0.5};
  std::vector<double> aware_committed, oblivious_committed;
  std::vector<double> aware_deferred, aware_cross;
  bool monotone = true, dominates_everywhere = true, deterministic = true;
  double prev_aware = -1.0;
  std::uint64_t aware_total = 0, oblivious_total = 0, txs_processed = 0;

  std::printf("%u accounts on %u shards, %llu TXs/epoch x %zu epochs, skew "
              "%.2f, R=%u rounds, C=%llu legs/shard/round, seed %llu\n",
              model.num_accounts, model.num_shards,
              static_cast<unsigned long long>(model.txs_per_epoch), kEpochs,
              model.zipf_skew, xc.rounds_per_epoch,
              static_cast<unsigned long long>(xc.shard_round_capacity),
              static_cast<unsigned long long>(kSeed));
  std::printf("  %-6s %-16s %10s %10s %9s %9s  %s\n", "ratio", "assembler",
              "committed", "intra", "cross", "deferred", "ledger digest");

  const auto sweep_start = std::chrono::steady_clock::now();
  for (const double ratio : ratios) {
    model.cross_shard_ratio = ratio;
    const AccountTxGenerator generator(model);
    for (const auto policy :
         {AssemblerPolicy::kConflictAware, AssemblerPolicy::kRandomOblivious}) {
      const ArmResult arm = run_arm(generator, xc, policy,
                                    SchedulerPolicy::kDynamicDeadline);
      const ArmResult replay = run_arm(generator, xc, policy,
                                       SchedulerPolicy::kDynamicDeadline);
      deterministic &= arm.digest == replay.digest;
      txs_processed += arm.txs_processed + replay.txs_processed;
      std::printf("  %-6.2f %-16s %10llu %10llu %9llu %9llu  %016llx\n",
                  ratio, mvcom::txn::to_string(policy),
                  static_cast<unsigned long long>(arm.committed),
                  static_cast<unsigned long long>(arm.intra),
                  static_cast<unsigned long long>(arm.cross),
                  static_cast<unsigned long long>(arm.deferred),
                  static_cast<unsigned long long>(arm.digest));
      const double committed = static_cast<double>(arm.committed);
      if (policy == AssemblerPolicy::kConflictAware) {
        if (prev_aware >= 0.0 && committed > prev_aware) monotone = false;
        prev_aware = committed;
        aware_total += arm.committed;
        aware_committed.push_back(committed);
        aware_deferred.push_back(static_cast<double>(arm.deferred));
        aware_cross.push_back(static_cast<double>(arm.cross));
      } else {
        if (committed > aware_committed.back()) dominates_everywhere = false;
        oblivious_total += arm.committed;
        oblivious_committed.push_back(committed);
      }
    }
  }

  // Scheduler-baseline anchor: greedy coloring at the canonical 30% ratio,
  // conflict-aware arm. Deadline-blind batch coloring burns whole-epoch
  // round budget per color class, so it commits less than the online
  // deadline-aware scheduler on the same assembly.
  model.cross_shard_ratio = 0.3;
  const AccountTxGenerator anchor_gen(model);
  const ArmResult greedy = run_arm(anchor_gen, xc, AssemblerPolicy::kConflictAware,
                                   SchedulerPolicy::kGreedyColoring);
  std::printf("  %-6.2f %-16s %10llu %10llu %9llu %9llu  %016llx  "
              "(greedy-coloring baseline)\n",
              0.3, "conflict-aware",
              static_cast<unsigned long long>(greedy.committed),
              static_cast<unsigned long long>(greedy.intra),
              static_cast<unsigned long long>(greedy.cross),
              static_cast<unsigned long long>(greedy.deferred),
              static_cast<unsigned long long>(greedy.digest));
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  txs_processed += greedy.txs_processed;

  const bool dominates =
      dominates_everywhere && aware_total > oblivious_total;
  std::printf("sweep aggregate: conflict-aware %llu vs random-oblivious %llu "
              "committed TXs\n",
              static_cast<unsigned long long>(aware_total),
              static_cast<unsigned long long>(oblivious_total));
  print_pass("committed TXs degrade monotonically with the cross-shard ratio",
             monotone);
  print_pass("conflict-aware assembly dominates random-oblivious at every "
             "ratio (strictly over the sweep)",
             dominates);
  print_pass("ledger digests are bit-identical across replays", deterministic);
  mvcom::bench::print_row("sweep seconds", sweep_seconds);

  json.set_series("ratios", ratios);
  json.set_series("aware_committed_txs", aware_committed);
  json.set_series("oblivious_committed_txs", oblivious_committed);
  json.set_series("aware_deferred_txs", aware_deferred);
  json.set_series("aware_cross_txs", aware_cross);
  json.set("greedy_committed_txs", static_cast<double>(greedy.committed));
  json.set("gate_rate_xshard_committed_txs", static_cast<double>(aware_total));
  json.set("gate_rate_xshard_assembler",
           static_cast<double>(txs_processed) / sweep_seconds);
  json.set("gate_seconds_sweep", sweep_seconds);
  json.set("monotone", monotone ? 1.0 : 0.0);
  json.set("dominates", dominates ? 1.0 : 0.0);
  json.set("deterministic", deterministic ? 1.0 : 0.0);
  json.write();
  return monotone && dominates && deterministic ? 0 : 1;
}
