// Fault-tolerance bench — the EpochSupervisor under a scripted FaultPlan on
// the paper's calibrated workload (§VI-A parameters: |I| committees,
// Ĉ = 1000·|I|, α = 1.5, N_min = 50%·|I|). One of every fault kind strikes
// a distinct committee:
//   * crash            — node dies before its submission can be sent
//   * crash-recover    — node dies after admission and returns; the
//                        heartbeat monitor re-admits it automatically
//   * straggler        — node slows down; its submission arrives late
//   * misreport        — claimed s_i inflated 3×; verified admission must
//                        quarantine it (the inflated value never enters the
//                        instance)
//   * equivocate       — a second verification-passing submission binding a
//                        different s_i after honest admission
//   * loss burst       — 50% message loss for a while; the K-missed-pings
//                        tolerance must ride it out or recover after
// The bench prints the utility timeline across the epoch, the per-failure
// Theorem-2 accounting (observed dip vs bound), the admission/detector
// statistics, and PASS/FAIL rows for the issue's acceptance criteria.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mvcom/fault_injection.hpp"
#include "txn/workload.hpp"

namespace {

using mvcom::core::ChaosCommittee;
using mvcom::core::ChaosConfig;
using mvcom::core::ChaosReport;
using mvcom::core::FaultKind;
using mvcom::core::FaultPlan;

void print_pass(const char* criterion, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", criterion);
}

}  // namespace

int main() {
  const std::size_t kCommittees = 20;
  const auto trace = mvcom::bench::paper_trace();
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = kCommittees;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  mvcom::common::Rng rng(41);
  const auto workload = gen.epoch(rng);
  const auto committees =
      mvcom::core::chaos_committees_from_reports(workload.reports);

  ChaosConfig config;
  config.supervisor.scheduler.alpha = 1.5;
  config.supervisor.scheduler.capacity = 1000 * kCommittees;
  config.supervisor.scheduler.expected_committees = kCommittees;
  config.ddl_seconds = 1800.0;
  config.explore_tick_seconds = 20.0;

  const auto id_of = [&](std::size_t i) {
    return committees[i].submission.committee_id;
  };
  const auto delivered_at = [&](std::size_t i) {
    return committees[i].formation_latency + committees[i].consensus_latency;
  };

  FaultPlan plan;
  // Misreport before delivery: the lie is the committee's only submission.
  plan.events.push_back({FaultKind::kMisreport, id_of(3), 10.0, 0.0, 3.0});
  // Crash before delivery: the submission is dropped at send time.
  plan.events.push_back({FaultKind::kCrash, id_of(5), 200.0, 0.0, 1.0});
  // Straggler from early on: ×6 slowdown, submission pushed back 120 s.
  plan.events.push_back(
      {FaultKind::kStragglerDelay, id_of(11), 300.0, 120.0, 6.0});
  // Loss burst mid-epoch: 50% loss for 120 s.
  plan.events.push_back(
      {FaultKind::kMessageLossBurst, 0, 600.0, 120.0, 0.5});
  // Crash-recover after this committee's delivery; 250 s downtime.
  plan.events.push_back({FaultKind::kCrashRecover, id_of(8),
                         delivered_at(8) + 60.0, 250.0, 1.0});
  // Equivocation after this committee's honest admission.
  plan.events.push_back({FaultKind::kEquivocate, id_of(14),
                         delivered_at(14) + 30.0, 0.0, 2.0});
  std::sort(plan.events.begin(), plan.events.end(),
            [](const auto& a, const auto& b) {
              return a.at_seconds < b.at_seconds;
            });

  const ChaosReport report =
      mvcom::core::run_chaos_epoch(committees, plan, config, 2021);

  mvcom::bench::print_header(
      "Fault tolerance",
      "supervised epoch under one of each fault kind (|I|=20, C=20K, a=1.5)");

  std::printf("  fault plan:\n");
  for (const auto& e : plan.events) {
    std::printf("    t=%7.1fs  %-18s committee %2u  (duration %.0fs, x%.1f)\n",
                e.at_seconds, mvcom::core::to_string(e.kind), e.committee_id,
                e.duration_seconds, e.magnitude);
  }

  std::vector<double> utility;
  utility.reserve(report.timeline.size());
  for (const auto& p : report.timeline) utility.push_back(p.utility);
  mvcom::bench::print_trace("utility over the epoch", utility, 24);

  std::printf("  admission: %llu admitted, %llu readmitted, %llu quarantine "
              "events, %llu refused, %llu dropped sends\n",
              static_cast<unsigned long long>(report.admitted),
              static_cast<unsigned long long>(report.readmitted),
              static_cast<unsigned long long>(report.quarantine_events),
              static_cast<unsigned long long>(report.refused),
              static_cast<unsigned long long>(report.dropped_submissions));
  std::printf("  detector: %llu failures, %llu recoveries\n",
              static_cast<unsigned long long>(report.failures_detected),
              static_cast<unsigned long long>(report.recoveries_detected));

  if (!report.failures.empty()) {
    std::printf("  Theorem-2 accounting per failure (dip vs bound):\n");
    for (const auto& f : report.failures) {
      std::printf("    t=%7.1fs  committee %2u  U %9.1f -> %9.1f  dip %8.1f"
                  "  bound %9.1f  %s\n",
                  f.sim_time_seconds, f.committee_id, f.utility_before,
                  f.utility_after,
                  std::abs(f.utility_before - f.utility_after),
                  f.perturbation_bound, f.within_bound ? "ok" : "VIOLATED");
    }
  }

  const auto& final_d = report.final_decision;
  mvcom::bench::print_row("final tier",
                          std::string(mvcom::core::to_string(final_d.tier)));
  mvcom::bench::print_row("final utility", final_d.decision.utility);
  mvcom::bench::print_row(
      "permitted committees",
      static_cast<double>(final_d.decision.permitted_ids.size()));
  mvcom::bench::print_row(
      "permitted TXs", static_cast<double>(final_d.decision.permitted_txs));

  // The issue's acceptance criteria.
  bool misreporter_contained = true;
  for (const std::uint32_t id : final_d.decision.permitted_ids) {
    if (id == id_of(3)) misreporter_contained = false;
  }
  const bool quarantine_fired = report.quarantine_events >= 2;  // lie + equiv
  std::printf("  acceptance criteria:\n");
  print_pass("never infeasible while a feasible selection exists",
             !report.infeasible_while_feasible);
  print_pass("misreporter quarantined; inflated s_i never admitted",
             quarantine_fired && misreporter_contained);
  print_pass("post-failure utility dips respect the Theorem-2 bound",
             final_d.theorem2_respected);
  print_pass("epoch still decides (feasible at the DDL)",
             final_d.decision.feasible);

  const bool all_ok = !report.infeasible_while_feasible &&
                      quarantine_fired && misreporter_contained &&
                      final_d.theorem2_respected && final_d.decision.feasible;
  return all_ok ? 0 : 1;
}
