// Fig. 12 — convergence of the four algorithms with a fixed set of arrived
// committees, varying α ∈ {1.5, 5, 10}, with |I| = 50, Γ = 25, Ĉ = 50K.
// Expected shape: converged utilities grow with α for every algorithm; the
// SE-vs-baseline gap widens as α increases.

#include <algorithm>
#include <cstdio>

#include "baselines/dynamic_programming.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/whale_optimization.hpp"
#include "bench_util.hpp"
#include "mvcom/se_scheduler.hpp"

int main() {
  const auto trace = mvcom::bench::paper_trace();

  for (const double alpha : {1.5, 5.0, 10.0}) {
    const auto instance = mvcom::bench::paper_instance(
        trace, /*epoch_seed=*/11, /*num_committees=*/50, /*capacity=*/50'000,
        alpha, /*n_min=*/0);

    mvcom::bench::print_header(
        "Fig. 12 (alpha=" + std::to_string(alpha) + ")",
        "algorithm convergence, |I|=50, Gamma=25, C=50K");

    mvcom::core::SeParams params;
    params.threads = 25;
    params.max_iterations = 4000;
    params.convergence_window = params.max_iterations;
    mvcom::core::SeScheduler se(instance, params, 21);
    const auto se_result = se.run();
    mvcom::bench::print_trace("SE", se_result.utility_trace, 10);

    mvcom::baselines::SimulatedAnnealing sa({}, 21);
    const auto sa_result = sa.solve(instance);
    mvcom::bench::print_trace("SA", sa_result.utility_trace, 10);

    mvcom::baselines::DynamicProgramming dp;
    const auto dp_result = dp.solve(instance);

    mvcom::baselines::WhaleOptimization woa({}, 21);
    const auto woa_result = woa.solve(instance);
    mvcom::bench::print_trace("WOA", woa_result.utility_trace, 10);

    mvcom::bench::print_row("SE  converged", se_result.utility);
    mvcom::bench::print_row("SA  converged", sa_result.utility);
    mvcom::bench::print_row("DP  (one-shot)", dp_result.utility);
    mvcom::bench::print_row("WOA converged", woa_result.utility);
    const double best_baseline =
        std::max({sa_result.utility, dp_result.utility, woa_result.utility});
    mvcom::bench::print_row(
        "SE advantage over best baseline (%)",
        100.0 * (se_result.utility - best_baseline) / best_baseline);
  }
  std::printf("\n  (expected shape: all utilities grow with alpha; SE stays "
              "on top)\n");
  return 0;
}
