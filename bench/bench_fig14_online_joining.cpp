// Fig. 14 — online execution with consecutive committee-joining events,
// varying α ∈ {1.5, 5, 10}, with |I| = 50, Γ = 25, Ĉ = 40K and 23 joining
// events in the epoch (paper §VI-G). N_min = 50%·|I| (online case, §VI-A).
// SE handles the joins online; the baselines are (re)solved on the final
// arrived set. Expected shape: SE converges 20–30% above the baselines and
// utilities grow with α.

#include <algorithm>
#include <cstdio>

#include "baselines/dynamic_programming.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/whale_optimization.hpp"
#include "bench_util.hpp"
#include "mvcom/dynamics.hpp"
#include "mvcom/se_scheduler.hpp"

int main() {
  const auto trace = mvcom::bench::paper_trace();

  for (const double alpha : {1.5, 5.0, 10.0}) {
    const auto final_instance = mvcom::bench::paper_instance(
        trace, /*epoch_seed=*/14, /*num_committees=*/50, /*capacity=*/40'000,
        alpha, /*n_min=*/25);

    mvcom::bench::print_header(
        "Fig. 14 (alpha=" + std::to_string(alpha) + ")",
        "online run with 23 joining events, |I|=50, Gamma=25, C=40K");

    // The 27 fastest committees have arrived; 23 join consecutively in
    // latency order (online arrivals are ordered by completion time).
    std::vector<mvcom::core::Committee> arrival_order =
        final_instance.committees();
    std::sort(arrival_order.begin(), arrival_order.end(),
              [](const mvcom::core::Committee& a,
                 const mvcom::core::Committee& b) {
                return a.latency < b.latency;
              });
    std::vector<mvcom::core::Committee> initial(arrival_order.begin(),
                                                arrival_order.begin() + 27);
    // N_min tracks 50% of the arrived count; start at 13.
    mvcom::core::EpochInstance start(initial, alpha, 40'000, /*n_min=*/13);

    mvcom::core::SeParams params;
    params.threads = 25;
    mvcom::core::SeScheduler scheduler(start, params, 5);
    std::vector<mvcom::core::DynamicEvent> events;
    for (std::size_t j = 27; j < 50; ++j) {
      events.push_back({150 + (j - 27) * 60,
                        mvcom::core::DynamicEvent::Kind::kJoin,
                        arrival_order[j]});
    }
    const auto dyn = mvcom::core::run_with_events(scheduler, 2600, events);
    mvcom::bench::print_trace("SE (online)", dyn.utility, 14);

    mvcom::baselines::SimulatedAnnealing sa({}, 15);
    const auto sa_result = sa.solve(final_instance);
    mvcom::baselines::DynamicProgramming dp;
    const auto dp_result = dp.solve(final_instance);
    mvcom::baselines::WhaleOptimization woa({}, 15);
    const auto woa_result = woa.solve(final_instance);

    mvcom::bench::print_row("SE  converged (online)", dyn.final_utility);
    mvcom::bench::print_row("SA  converged", sa_result.utility);
    mvcom::bench::print_row("DP  (one-shot)", dp_result.utility);
    mvcom::bench::print_row("WOA converged", woa_result.utility);
    const double best_baseline =
        std::max({sa_result.utility, dp_result.utility, woa_result.utility});
    if (best_baseline > 0.0) {
      mvcom::bench::print_row(
          "SE advantage over best baseline (%)",
          100.0 * (dyn.final_utility - best_baseline) / best_baseline);
    }
  }
  std::printf("\n  (expected shape: SE tops the baselines despite handling "
              "the joins online; utilities grow with alpha)\n");
  return 0;
}
