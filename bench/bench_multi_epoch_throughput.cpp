// Extension bench — multi-epoch selection quality with *true per-TX ages*.
//
// The paper's abstract: throughput degrades because of the transactions'
// cumulative age. Over six consecutive epochs (epoch window comparable to
// the two-phase latencies, so scheduling actually matters) we track every
// block's btime (txn/age) and measure the age of each committed TX at the
// instant its final block commits. Refused shards carry over with the
// Fig. 3 latency rebase (l' = max(0, l − t_prev)), so nothing is dropped —
// only deferred, and deferral is visible in the age accounting.
//
// Three final-committee policies, the middle two under the SAME capacity:
//   wait-for-all — no capacity, DDL = max latency: commits everything;
//   DP (throughput) — packs the most TXs into Ĉ, blind to freshness;
//   MVCom (SE) — maximizes Eq. (2): freshness-aware selection under Ĉ.
// Expected: DP and MVCom commit the same volume, but MVCom's committed mix
// is younger (lower mean per-TX age) — the Fig.-10 valuable-degree story at
// per-transaction granularity.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/dynamic_programming.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "mvcom/se_scheduler.hpp"
#include "txn/accounts/model.hpp"
#include "txn/age.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"
#include "txn/xshard/scheduler.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::core::EpochInstance;
using mvcom::txn::ShardBlocks;
using mvcom::txn::Trace;

constexpr double kFinalConsensusSeconds = 54.5;

enum class Policy { kWaitAll, kThroughputDp, kMvcomSe };

/// One pipeline configuration: the classic paper-scale run and the 10k–50k
/// scale tiers share all the carry-over machinery and differ only here.
struct RunShape {
  std::size_t committees = 20;
  std::size_t epochs = 6;
  std::size_t se_iterations = 2000;
  std::size_t se_threads = 8;
  std::size_t se_max_family = mvcom::core::SeParams{}.max_family;
};

struct PendingShard {
  std::vector<std::size_t> block_indices;
  std::uint64_t txs = 0;
  double latency = 0.0;      // effective latency relative to this epoch's start
  double submit_time = 0.0;  // absolute two-phase completion instant
  bool carried = false;
};

struct RunTotals {
  std::uint64_t committed_txs = 0;
  double total_age = 0.0;  // Σ per-TX (commit − btime) over committed TXs
  std::uint64_t deferred_txs = 0;  // still pending after the last epoch
};

RunTotals run(const Trace& trace, Policy policy, std::uint64_t seed,
              const RunShape& shape) {
  Rng rng(seed);
  mvcom::txn::WorkloadConfig wc;  // latency model parameters only
  wc.num_committees = shape.committees;

  const double trace_start = trace.blocks.front().btime;
  const double span = trace.blocks.back().btime - trace_start + 1.0;
  const double window = span / static_cast<double>(shape.epochs);

  RunTotals totals;
  std::vector<PendingShard> carried;
  double prev_commit = 0.0;  // realized boundary: previous final-block commit

  std::size_t next_block = 0;
  for (std::size_t epoch = 0; epoch < shape.epochs; ++epoch) {
    const double window_end =
        trace_start + static_cast<double>(epoch + 1) * window;
    // The final committee cannot start epoch e before its own previous block
    // committed — when stage-4 consensus overruns the window, the realized
    // boundary is that commit instant, not the nominal window edge. Every
    // latency below is measured from here (the old `l − prev_ddl` rebase
    // ignored the final-consensus overrun and under-aged carried shards).
    const double start = std::max(window_end, prev_commit);

    std::vector<std::size_t> fresh;
    while (next_block < trace.blocks.size() &&
           trace.blocks[next_block].btime < window_end) {
      fresh.push_back(next_block++);
    }

    // Carried shards re-enter with the Fig.-3 latency rebase against the
    // realized boundary; fresh blocks are dealt round-robin over new
    // committees.
    std::vector<PendingShard> shards = std::move(carried);
    carried.clear();
    for (PendingShard& s : shards) {
      s.latency = std::max(0.0, s.submit_time - start);
      s.carried = true;
    }
    std::vector<PendingShard> dealt(shape.committees);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      dealt[i % shape.committees].block_indices.push_back(fresh[i]);
    }
    for (PendingShard& s : dealt) {
      if (s.block_indices.empty()) continue;
      // Committees form as soon as the window closes; submission is absolute
      // so a later carry rebases exactly, however far consensus overran.
      s.submit_time = mvcom::txn::sample_submit_instant(rng, wc, window_end);
      s.latency = std::max(0.0, s.submit_time - start);
      shards.push_back(std::move(s));
    }
    if (shards.empty()) continue;

    std::uint64_t pending_txs = 0;
    for (PendingShard& s : shards) {
      s.txs = 0;
      for (const std::size_t b : s.block_indices) {
        s.txs += trace.blocks[b].tx_count;
      }
      pending_txs += s.txs;
    }

    std::vector<mvcom::core::Committee> committees;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      committees.push_back({static_cast<std::uint32_t>(i), shards[i].txs,
                            shards[i].latency});
    }

    std::vector<bool> keep(shards.size(), policy == Policy::kWaitAll);
    if (policy != Policy::kWaitAll) {
      const std::uint64_t capacity = (pending_txs * 6) / 10;  // same Ĉ
      const EpochInstance instance(committees, /*alpha=*/1.5, capacity, 0);
      mvcom::core::Selection best;
      if (policy == Policy::kThroughputDp) {
        mvcom::baselines::DynamicProgramming dp;  // throughput objective
        const auto result = dp.solve(instance);
        if (result.feasible) best = result.best;
      } else {
        mvcom::core::SeParams params;
        params.threads = shape.se_threads;
        params.max_iterations = shape.se_iterations;
        params.max_family = shape.se_max_family;
        mvcom::core::SeScheduler scheduler(instance, params, seed + epoch);
        const auto result = scheduler.run();
        if (result.feasible) best = result.best;
      }
      for (std::size_t i = 0; i < best.size(); ++i) keep[i] = best[i] != 0;
    }

    // DDL = slowest *selected* submission; commit after final consensus.
    double ddl = 0.0;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (keep[i]) ddl = std::max(ddl, shards[i].latency);
    }
    const double commit = start + ddl + kFinalConsensusSeconds;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (keep[i]) {
        ShardBlocks provenance;
        provenance.block_indices = shards[i].block_indices;
        const auto age =
            mvcom::txn::shard_age_profile(trace, provenance, commit);
        totals.committed_txs += age.tx_count;
        totals.total_age += age.total_age;
      } else {
        carried.push_back(std::move(shards[i]));
      }
    }
    prev_commit = commit;
  }

  for (const PendingShard& s : carried) totals.deferred_txs += s.txs;
  return totals;
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("multi_epoch_throughput");
  Rng trace_rng(2016);
  mvcom::txn::TraceGeneratorConfig tc;
  // Compressed timescale: blocks every ~15 s so an epoch window (~1500 s)
  // is commensurate with the two-phase latencies (~650 s) — the regime
  // where committee scheduling can move per-TX ages at all.
  tc.num_blocks = 600;
  tc.target_total_txs = 600'000;
  tc.mean_interblock_seconds = 15.0;
  const Trace trace = mvcom::txn::generate_trace(tc, trace_rng);

  mvcom::bench::print_header(
      "Extension",
      "multi-epoch per-TX ages under equal capacity (6 epochs, C=60%)");
  std::printf("  %-16s %14s %16s %14s\n", "policy", "TXs committed",
              "mean TX age(s)", "TXs deferred");
  const struct {
    Policy policy;
    const char* name;
  } kPolicies[] = {
      {Policy::kWaitAll, "wait-for-all"},
      {Policy::kThroughputDp, "DP (capacity)"},
      {Policy::kMvcomSe, "MVCom (SE)"},
  };
  const RunShape paper_shape;
  for (const auto& entry : kPolicies) {
    RunTotals totals{};
    constexpr std::uint64_t kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const RunTotals one = run(trace, entry.policy, seed * 10, paper_shape);
      totals.committed_txs += one.committed_txs;
      totals.total_age += one.total_age;
      totals.deferred_txs += one.deferred_txs;
    }
    const double mean_age =
        totals.total_age / static_cast<double>(totals.committed_txs);
    std::printf("  %-16s %14llu %16.1f %14llu\n", entry.name,
                static_cast<unsigned long long>(totals.committed_txs / kSeeds),
                mean_age,
                static_cast<unsigned long long>(totals.deferred_txs / kSeeds));
    const std::string tag = entry.policy == Policy::kWaitAll   ? "wait_all"
                            : entry.policy == Policy::kThroughputDp
                                ? "dp"
                                : "mvcom_se";
    json.set(tag + "_committed_txs",
             static_cast<double>(totals.committed_txs / kSeeds));
    json.set(tag + "_mean_tx_age_seconds", mean_age);
    json.set(tag + "_deferred_txs",
             static_cast<double>(totals.deferred_txs / kSeeds));
  }
  std::printf("  (expected shape: under the same capacity, MVCom commits a "
              "similar volume to DP at a lower mean per-TX age — the "
              "freshness-aware selection; wait-for-all is the no-capacity "
              "reference)\n");

  // --- Scale tier: the same carry-over pipeline at 10k (and, under
  // MVCOM_BENCH_SCALE=full, 50k) committees — SE policy only; the DP
  // baseline's pseudo-polynomial knapsack is not in the 10k game. One seed,
  // fewer epochs and iterations: this tier times the engine under epoch
  // churn, it does not re-measure the quality story above.
  mvcom::bench::print_header(
      "Scale tier", "multi-epoch SE pipeline at 10k-50k committees");
  std::vector<std::size_t> tiers = {10'000};
  if (mvcom::bench::scale_full_enabled()) tiers.push_back(50'000);
  for (const std::size_t icount : tiers) {
    Rng scale_trace_rng(2016);
    mvcom::txn::TraceGeneratorConfig stc;
    stc.num_blocks = 2 * icount;
    stc.target_total_txs = icount * 1500;
    stc.mean_interblock_seconds = 15.0;
    const Trace scale_trace = mvcom::txn::generate_trace(stc, scale_trace_rng);
    RunShape shape;
    shape.committees = icount;
    shape.epochs = 3;
    shape.se_iterations = 300;
    shape.se_threads = 4;
    if (icount > 10'000) shape.se_max_family = 256;
    const auto t0 = std::chrono::steady_clock::now();
    const RunTotals totals = run(scale_trace, Policy::kMvcomSe, 10, shape);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double tx_rate =
        static_cast<double>(totals.committed_txs) / seconds;
    std::printf(
        "  I=%zu: %zu epochs in %.3fs | %llu TXs committed (%.0f TX/s "
        "end-to-end), %llu deferred\n",
        icount, shape.epochs, seconds,
        static_cast<unsigned long long>(totals.committed_txs), tx_rate,
        static_cast<unsigned long long>(totals.deferred_txs));
    const std::string tag = "scale_" + std::to_string(icount);
    json.set(tag + "_committed_txs",
             static_cast<double>(totals.committed_txs));
    json.set("gate_seconds_" + tag + "_pipeline", seconds);
    json.set("gate_rate_" + tag + "_committed_txs_per_sec", tx_rate);
  }

  // --- Account-model deferred carry: the streaming pipeline's stage A must
  // stay pure, so it counts-and-drops the x-shard scheduler's deferrals
  // (DESIGN.md §15). Here nothing is pure — so deferred account TXs carry
  // into the next epoch's scheduling queue with their original timestamps
  // (arrival round 0 after the clamp), and we measure how long they wait:
  // the per-TX age story of the main bench, at account granularity.
  mvcom::bench::print_header(
      "Account-model carry",
      "deferred cross-shard TXs re-queued across epochs, conflict-aware arm");
  {
    mvcom::txn::AccountModelConfig model;
    model.num_accounts = 50'000;
    model.num_shards = 20;
    model.txs_per_epoch = 20'000;
    model.cross_shard_ratio = 0.3;
    mvcom::txn::XShardConfig xc;
    xc.num_shards = model.num_shards;
    const mvcom::txn::AccountTxGenerator generator(model);
    constexpr std::uint64_t kCarrySeed = 7;
    constexpr std::size_t kCarryEpochs = 6;

    struct QueuedTx {
      mvcom::txn::AccountTx tx;
      std::size_t born = 0;  // epoch the TX first arrived in
    };
    std::vector<QueuedTx> backlog;
    std::uint64_t committed = 0, committed_carried = 0, ingested = 0;
    std::uint64_t defer_epoch_sum = 0;  // Σ (commit epoch − born), committed
    std::printf("  %-6s %10s %10s %10s %10s\n", "epoch", "fresh", "carried",
                "committed", "backlog");
    for (std::size_t e = 0; e < kCarryEpochs; ++e) {
      const auto fresh = generator.epoch_keyed(kCarrySeed, e);
      ingested += fresh.txs.size();
      mvcom::txn::AccountEpoch merged;
      merged.epoch_index = fresh.epoch_index;
      merged.window_start = fresh.window_start;
      merged.window_end = fresh.window_end;
      std::vector<std::size_t> born;
      merged.txs.reserve(backlog.size() + fresh.txs.size());
      born.reserve(backlog.size() + fresh.txs.size());
      for (const QueuedTx& q : backlog) {
        merged.txs.push_back(q.tx);
        born.push_back(q.born);
      }
      for (const auto& tx : fresh.txs) {
        merged.txs.push_back(tx);
        born.push_back(e);
      }
      // Carried timestamps predate this window, so the backlog prefix is
      // already in (timestamp, tx_id) order and fresh TXs arrive sorted —
      // the merged queue keeps the scheduler's arrival-order contract.
      const std::size_t carried_in = backlog.size();
      const auto result = mvcom::txn::run_epoch(merged, xc, kCarrySeed);
      backlog.clear();
      for (std::size_t t = 0; t < merged.txs.size(); ++t) {
        if (result.outcome.tx_outcomes[t].cls ==
            mvcom::txn::TxClass::kDeferred) {
          backlog.push_back({merged.txs[t], born[t]});
        } else {
          ++committed;
          if (born[t] < e) ++committed_carried;
          defer_epoch_sum += e - born[t];
        }
      }
      std::printf("  %-6zu %10zu %10zu %10llu %10zu\n", e, fresh.txs.size(),
                  carried_in,
                  static_cast<unsigned long long>(result.outcome.committed_txs),
                  backlog.size());
    }
    const double mean_defer =
        committed == 0 ? 0.0
                       : static_cast<double>(defer_epoch_sum) /
                             static_cast<double>(committed);
    std::printf("  carry total: %llu/%llu TXs committed (%llu after a carry, "
                "mean wait %.2f epochs), backlog %zu\n",
                static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(ingested),
                static_cast<unsigned long long>(committed_carried), mean_defer,
                backlog.size());
    json.set("account_carry_committed_txs", static_cast<double>(committed));
    json.set("account_carry_committed_after_carry",
             static_cast<double>(committed_carried));
    json.set("account_carry_mean_wait_epochs", mean_defer);
    json.set("account_carry_final_backlog_txs",
             static_cast<double>(backlog.size()));
  }

  json.write();
  return 0;
}
