// Fig. 10 — Valuable Degree Σ x_i s_i / Π_i of the selections produced by
// the four algorithms, |I|=500, Ĉ=500K, α=1.5, Γ=25. Expected shape:
// SE highest; SA close behind; DP and WOA markedly lower (they ignore the
// TX-per-age ratio).

#include <cstdio>

#include "baselines/dynamic_programming.hpp"
#include "common/stats.hpp"
#include "baselines/greedy.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/whale_optimization.hpp"
#include "bench_util.hpp"
#include "mvcom/se_scheduler.hpp"

int main() {
  const auto trace = mvcom::bench::paper_trace();

  mvcom::bench::print_header(
      "Fig. 10", "Valuable Degree per algorithm (|I|=500, C=500K, a=1.5)");

  constexpr std::uint64_t kSeeds = 4;
  std::vector<double> se_vd;
  std::vector<double> sa_vd;
  std::vector<double> dp_vd;
  std::vector<double> woa_vd;
  std::vector<double> greedy_vd;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto instance = mvcom::bench::paper_instance(
        trace, seed, /*num_committees=*/500, /*capacity=*/500'000,
        /*alpha=*/1.5, /*n_min=*/0);

    mvcom::core::SeParams params;
    params.threads = 25;
    params.max_iterations = 5000;
    params.convergence_window = 1500;
    mvcom::core::SeScheduler se(instance, params, seed);
    const auto se_result = se.run();
    se_vd.push_back(se_result.valuable_degree);

    mvcom::baselines::SaParams sa_params;
    sa_params.iterations = 20000;
    mvcom::baselines::SimulatedAnnealing sa(sa_params, seed);
    sa_vd.push_back(sa.solve(instance).valuable_degree);

    mvcom::baselines::DynamicProgramming dp;
    dp_vd.push_back(dp.solve(instance).valuable_degree);

    mvcom::baselines::WhaleOptimization woa({}, seed);
    woa_vd.push_back(woa.solve(instance).valuable_degree);

    mvcom::baselines::Greedy greedy;
    greedy_vd.push_back(greedy.solve(instance).valuable_degree);
  }

  const auto report = [](const char* name, const std::vector<double>& v) {
    const auto ci = mvcom::common::mean_confidence_interval(v, 0.95);
    std::printf("  %-28s %12.3f +- %.3f (95%% CI over %zu seeds)\n", name,
                ci.mean, ci.half_width, v.size());
  };
  report("SE  (proposed)", se_vd);
  report("SA", sa_vd);
  report("DP", dp_vd);
  report("WOA", woa_vd);
  report("Greedy (extra baseline)", greedy_vd);
  std::printf("  (expected shape: SE highest, SA close, DP/WOA clearly "
              "lower)\n");
  return 0;
}
