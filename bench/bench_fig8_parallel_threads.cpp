// Fig. 8 — convergence of the SE algorithm under different numbers of
// distributed parallel execution threads Γ ∈ {1, 5, 10, 25}, with
// |I_j| = 500, Ĉ = 500K, α = 1.5. Expected shape: larger Γ converges faster
// and to a (weakly) higher utility, saturating around Γ ≈ 10.
//
// Beyond the per-iteration shape, this bench times the real threading model
// (SeParams::parallel_execution): each Γ point runs the serial reference and
// the pool-backed parallel path, reports wall-clock iterations/sec and chain
// throughput (explorer-iterations/sec = Γ · iterations/sec), and the
// parallel speedup at each Γ relative to Γ = 1. On a host with ≥ Γ cores the
// speedup approaches Γ (explorers advance concurrently between §IV-D share
// barriers); on a single core it stays ≈ 1. The utility traces of the two
// paths are bitwise identical by construction — the bench verifies that too.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "bench_util.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

struct TimedRun {
  mvcom::core::SeResult result;
  double seconds = 0.0;
};

TimedRun timed_run(const mvcom::core::EpochInstance& instance,
                   mvcom::core::SeParams params, bool parallel) {
  params.parallel_execution = parallel;
  mvcom::core::SeScheduler scheduler(instance, params, 42);
  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = scheduler.run();
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("fig8_parallel_threads");
  const auto trace = mvcom::bench::paper_trace();
  const auto instance = mvcom::bench::paper_instance(
      trace, /*epoch_seed=*/1, /*num_committees=*/500, /*capacity=*/500'000,
      /*alpha=*/1.5, /*n_min=*/0);

  mvcom::bench::print_header(
      "Fig. 8", "SE convergence vs parallel threads (|I|=500, C=500K, a=1.5)");
  std::printf("  beta=2, tau=0 (paper defaults); utility trace per Γ\n");
  std::printf("  hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  double baseline_chain_rate = 0.0;  // explorer-iterations/sec at Γ=1
  for (const std::size_t gamma : {1u, 5u, 10u, 25u}) {
    mvcom::core::SeParams params;
    params.threads = gamma;
    params.max_iterations = 3000;
    params.convergence_window = params.max_iterations;  // fixed budget
    const TimedRun serial = timed_run(instance, params, /*parallel=*/false);
    const TimedRun parallel = timed_run(instance, params, /*parallel=*/true);

    mvcom::bench::print_trace("Gamma=" + std::to_string(gamma),
                              parallel.result.utility_trace, 12);
    mvcom::bench::print_row("  converged utility (Gamma=" +
                                std::to_string(gamma) + ")",
                            parallel.result.utility);

    // Determinism contract: the pool-backed path must reproduce the serial
    // trace exactly — parallelism changes wall-clock, never results.
    double max_divergence = 0.0;
    const auto& a = serial.result.utility_trace;
    const auto& b = parallel.result.utility_trace;
    if (a.size() != b.size()) {
      max_divergence = std::numeric_limits<double>::infinity();
    } else {
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i]) && std::isnan(b[i])) continue;
        max_divergence = std::max(max_divergence, std::fabs(a[i] - b[i]));
      }
    }
    mvcom::bench::print_row("  serial-vs-parallel trace divergence",
                            max_divergence);

    const double iters = static_cast<double>(parallel.result.iterations);
    const double iter_rate = iters / parallel.seconds;
    const double chain_rate = static_cast<double>(gamma) * iter_rate;
    if (gamma == 1) baseline_chain_rate = chain_rate;
    const std::string tag = "gamma_" + std::to_string(gamma);
    json.set(tag + "_utility", parallel.result.utility);
    json.set(tag + "_iterations", iters);
    json.set(tag + "_parallel_seconds", parallel.seconds);
    json.set(tag + "_serial_seconds", serial.seconds);
    json.set(tag + "_trace_divergence", max_divergence);
    if (gamma == 25) {
      // Perf-gate key (see tools/bench_compare.py): gate_rate_* keys are
      // higher-is-better throughputs checked against bench/baselines/.
      json.set("gate_rate_gamma25_chain_iters_per_sec", chain_rate);
    }
    std::printf(
        "  Gamma=%zu: serial %.3fs, parallel %.3fs | %.0f iters/s, "
        "%.0f explorer-iters/s, speedup vs Gamma=1: %.2fx\n",
        gamma, serial.seconds, parallel.seconds, iter_rate, chain_rate,
        chain_rate / baseline_chain_rate);

    // Core-count-aware verdict (same discipline as the Fig. 2 DES tier): a
    // Γ-thread pool can only beat the serial path when the host actually
    // has Γ cores to run it on. On a 1-core CI box the parallel path IS
    // slower — pool handoff with nothing to overlap — and printing that
    // bare number reads like a regression when it's the expected shape.
    const unsigned cores = std::thread::hardware_concurrency();
    const double pool_speedup = serial.seconds / parallel.seconds;
    json.set(tag + "_pool_speedup", pool_speedup);
    if (gamma == 1) {
      // Γ=1 has nothing to overlap anywhere; no verdict to render.
    } else if (cores >= gamma) {
      std::printf("  pool speedup target (>= 1x at Gamma=%zu, %u cores): "
                  "%.2fx %s\n",
                  gamma, cores, pool_speedup,
                  pool_speedup >= 1.0 ? "PASS" : "FAIL");
    } else {
      std::printf("  pool speedup target skipped at Gamma=%zu: only %u "
                  "hardware threads (need >= %zu; serial-vs-parallel here "
                  "measures pool overhead, not speedup)\n",
                  gamma, cores, gamma);
    }
  }
  std::printf("  (expected shape: higher Γ converges faster/higher; benefit "
              "saturates near Γ=10; explorer-iters/s scales with min(Γ, "
              "cores) when parallel execution is on)\n");

  // --- Scale tiers: one fixed-budget epoch at 10k (and, under
  // MVCOM_BENCH_SCALE=full, 50k) committees. The 10k tier keeps the default
  // full-fidelity family cap; 50k uses a 256-chain family — at that size the
  // cardinality grid is what makes the epoch interactive (see DESIGN.md
  // §11). gate_seconds_* keys are lower-is-better wall-clock gates.
  mvcom::bench::print_header(
      "Scale tier", "single-epoch wall clock at 10k-50k committees");
  std::vector<std::size_t> tiers = {10'000};
  if (mvcom::bench::scale_full_enabled()) tiers.push_back(50'000);
  for (const std::size_t icount : tiers) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto scale = mvcom::bench::scale_instance(icount);
    const auto t1 = std::chrono::steady_clock::now();
    mvcom::core::SeParams params;
    params.threads = 4;
    params.max_iterations = 400;
    params.convergence_window = params.max_iterations;  // fixed budget
    if (icount > 10'000) params.max_family = 256;
    mvcom::core::SeScheduler scheduler(scale, params, 42);
    const auto t2 = std::chrono::steady_clock::now();
    const auto result = scheduler.run();
    const auto t3 = std::chrono::steady_clock::now();
    const auto secs = [](auto a, auto b) {
      return std::chrono::duration<double>(b - a).count();
    };
    const double epoch_seconds = secs(t1, t3);
    const double iter_rate =
        static_cast<double>(result.iterations) / secs(t2, t3);
    std::printf(
        "  I=%zu: instance %.3fs, scheduler ctor %.3fs, run %.3fs "
        "(epoch %.3fs, %.0f iters/s), utility %.1f, feasible=%d\n",
        icount, secs(t0, t1), secs(t1, t2), secs(t2, t3), epoch_seconds,
        iter_rate, result.utility, result.feasible ? 1 : 0);
    const std::string tag = "scale_" + std::to_string(icount);
    json.set(tag + "_utility", result.utility);
    json.set(tag + "_feasible", result.feasible ? 1.0 : 0.0);
    json.set(tag + "_ctor_seconds", secs(t1, t2));
    json.set(tag + "_run_seconds", secs(t2, t3));
    json.set("gate_seconds_" + tag + "_epoch", epoch_seconds);
    json.set("gate_rate_" + tag + "_iters_per_sec", iter_rate);
  }

  json.write();
  return 0;
}
