// Fig. 8 — convergence of the SE algorithm under different numbers of
// distributed parallel execution threads Γ ∈ {1, 5, 10, 25}, with
// |I_j| = 500, Ĉ = 500K, α = 1.5. Expected shape: larger Γ converges faster
// and to a (weakly) higher utility, saturating around Γ ≈ 10.

#include <cstdio>

#include "bench_util.hpp"
#include "mvcom/se_scheduler.hpp"

int main() {
  const auto trace = mvcom::bench::paper_trace();
  const auto instance = mvcom::bench::paper_instance(
      trace, /*epoch_seed=*/1, /*num_committees=*/500, /*capacity=*/500'000,
      /*alpha=*/1.5, /*n_min=*/0);

  mvcom::bench::print_header(
      "Fig. 8", "SE convergence vs parallel threads (|I|=500, C=500K, a=1.5)");
  std::printf("  beta=2, tau=0 (paper defaults); utility trace per Γ\n");

  for (const std::size_t gamma : {1u, 5u, 10u, 25u}) {
    mvcom::core::SeParams params;
    params.threads = gamma;
    params.max_iterations = 3000;
    params.convergence_window = params.max_iterations;  // fixed budget
    mvcom::core::SeScheduler scheduler(instance, params, 42);
    const auto result = scheduler.run();
    mvcom::bench::print_trace("Gamma=" + std::to_string(gamma),
                              result.utility_trace, 12);
    mvcom::bench::print_row("  converged utility (Gamma=" +
                                std::to_string(gamma) + ")",
                            result.utility);
  }
  std::printf("  (expected shape: higher Γ converges faster/higher; benefit "
              "saturates near Γ=10)\n");
  return 0;
}
