// Fig. 8 — convergence of the SE algorithm under different numbers of
// distributed parallel execution threads Γ ∈ {1, 5, 10, 25}, with
// |I_j| = 500, Ĉ = 500K, α = 1.5. Expected shape: larger Γ converges faster
// and to a (weakly) higher utility, saturating around Γ ≈ 10.
//
// Beyond the per-iteration shape, this bench times the real threading model
// (SeParams::parallel_execution): each Γ point runs the serial reference and
// the pool-backed parallel path, reports wall-clock iterations/sec and chain
// throughput (explorer-iterations/sec = Γ · iterations/sec), and the
// parallel speedup at each Γ relative to Γ = 1. On a host with ≥ Γ cores the
// speedup approaches Γ (explorers advance concurrently between §IV-D share
// barriers); on a single core it stays ≈ 1. The utility traces of the two
// paths are bitwise identical by construction — the bench verifies that too.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "bench_util.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

struct TimedRun {
  mvcom::core::SeResult result;
  double seconds = 0.0;
};

TimedRun timed_run(const mvcom::core::EpochInstance& instance,
                   mvcom::core::SeParams params, bool parallel) {
  params.parallel_execution = parallel;
  mvcom::core::SeScheduler scheduler(instance, params, 42);
  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = scheduler.run();
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("fig8_parallel_threads");
  const auto trace = mvcom::bench::paper_trace();
  const auto instance = mvcom::bench::paper_instance(
      trace, /*epoch_seed=*/1, /*num_committees=*/500, /*capacity=*/500'000,
      /*alpha=*/1.5, /*n_min=*/0);

  mvcom::bench::print_header(
      "Fig. 8", "SE convergence vs parallel threads (|I|=500, C=500K, a=1.5)");
  std::printf("  beta=2, tau=0 (paper defaults); utility trace per Γ\n");
  std::printf("  hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  double baseline_chain_rate = 0.0;  // explorer-iterations/sec at Γ=1
  for (const std::size_t gamma : {1u, 5u, 10u, 25u}) {
    mvcom::core::SeParams params;
    params.threads = gamma;
    params.max_iterations = 3000;
    params.convergence_window = params.max_iterations;  // fixed budget
    const TimedRun serial = timed_run(instance, params, /*parallel=*/false);
    const TimedRun parallel = timed_run(instance, params, /*parallel=*/true);

    mvcom::bench::print_trace("Gamma=" + std::to_string(gamma),
                              parallel.result.utility_trace, 12);
    mvcom::bench::print_row("  converged utility (Gamma=" +
                                std::to_string(gamma) + ")",
                            parallel.result.utility);

    // Determinism contract: the pool-backed path must reproduce the serial
    // trace exactly — parallelism changes wall-clock, never results.
    double max_divergence = 0.0;
    const auto& a = serial.result.utility_trace;
    const auto& b = parallel.result.utility_trace;
    if (a.size() != b.size()) {
      max_divergence = std::numeric_limits<double>::infinity();
    } else {
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i]) && std::isnan(b[i])) continue;
        max_divergence = std::max(max_divergence, std::fabs(a[i] - b[i]));
      }
    }
    mvcom::bench::print_row("  serial-vs-parallel trace divergence",
                            max_divergence);

    const double iters = static_cast<double>(parallel.result.iterations);
    const double iter_rate = iters / parallel.seconds;
    const double chain_rate = static_cast<double>(gamma) * iter_rate;
    if (gamma == 1) baseline_chain_rate = chain_rate;
    const std::string tag = "gamma_" + std::to_string(gamma);
    json.set(tag + "_utility", parallel.result.utility);
    json.set(tag + "_iterations", iters);
    json.set(tag + "_parallel_seconds", parallel.seconds);
    json.set(tag + "_serial_seconds", serial.seconds);
    json.set(tag + "_trace_divergence", max_divergence);
    std::printf(
        "  Gamma=%zu: serial %.3fs, parallel %.3fs | %.0f iters/s, "
        "%.0f explorer-iters/s, speedup vs Gamma=1: %.2fx\n",
        gamma, serial.seconds, parallel.seconds, iter_rate, chain_rate,
        chain_rate / baseline_chain_rate);
  }
  std::printf("  (expected shape: higher Γ converges faster/higher; benefit "
              "saturates near Γ=10; explorer-iters/s scales with min(Γ, "
              "cores) when parallel execution is on)\n");
  json.write();
  return 0;
}
