#include "bench_util.hpp"

#include <cmath>
#include <cstdio>

namespace mvcom::bench {

txn::Trace paper_trace(std::uint64_t seed) {
  common::Rng rng(seed);
  return txn::generate_trace({}, rng);  // defaults = §VI-A calibration
}

core::EpochInstance paper_instance(const txn::Trace& trace,
                                   std::uint64_t epoch_seed,
                                   std::size_t num_committees,
                                   std::uint64_t capacity, double alpha,
                                   std::size_t n_min) {
  common::Rng rng(epoch_seed);
  txn::WorkloadConfig wc;
  wc.num_committees = num_committees;
  const txn::WorkloadGenerator gen(trace, wc);
  const txn::EpochWorkload workload = gen.epoch(rng);
  return core::EpochInstance::from_reports(workload.reports, alpha, capacity,
                                           n_min);
}

void print_header(const std::string& figure, const std::string& subtitle) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), subtitle.c_str());
}

void print_trace(const std::string& label, std::span<const double> trace,
                 std::size_t points) {
  if (trace.empty()) {
    std::printf("%-28s (empty trace)\n", label.c_str());
    return;
  }
  const std::size_t stride =
      trace.size() <= points ? 1 : (trace.size() + points - 1) / points;
  std::printf("%-28s", label.c_str());
  for (std::size_t i = 0; i < trace.size(); i += stride) {
    const double u = trace[i];
    if (std::isnan(u)) {
      std::printf(" [%zu]=nan", i);
    } else {
      std::printf(" [%zu]=%.0f", i, u);
    }
  }
  const double last = trace.back();
  std::printf(" [final]=%s\n",
              std::isnan(last) ? "nan" : std::to_string(last).c_str());
}

void print_row(const std::string& name, double value) {
  std::printf("  %-44s %14.3f\n", name.c_str(), value);
}

void print_row(const std::string& name, const std::string& value) {
  std::printf("  %-44s %14s\n", name.c_str(), value.c_str());
}

}  // namespace mvcom::bench
