#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/export.hpp"

namespace mvcom::bench {

namespace {

/// Shortest round-trippable rendering; JSON has no NaN/Inf, so non-finite
/// values become null.
std::string render_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

txn::Trace paper_trace(std::uint64_t seed) {
  common::Rng rng(seed);
  return txn::generate_trace({}, rng);  // defaults = §VI-A calibration
}

core::EpochInstance paper_instance(const txn::Trace& trace,
                                   std::uint64_t epoch_seed,
                                   std::size_t num_committees,
                                   std::uint64_t capacity, double alpha,
                                   std::size_t n_min) {
  common::Rng rng(epoch_seed);
  txn::WorkloadConfig wc;
  wc.num_committees = num_committees;
  const txn::WorkloadGenerator gen(trace, wc);
  const txn::EpochWorkload workload = gen.epoch(rng);
  return core::EpochInstance::from_reports(workload.reports, alpha, capacity,
                                           n_min);
}

core::EpochInstance scale_instance(std::size_t num_committees) {
  common::Rng trace_rng(2016);
  txn::TraceGeneratorConfig tc;
  tc.num_blocks = 2 * num_committees;
  tc.target_total_txs = num_committees * 1500;
  const txn::Trace trace = txn::generate_trace(tc, trace_rng);
  common::Rng rng(1);
  txn::WorkloadConfig wc;
  wc.num_committees = num_committees;
  const txn::WorkloadGenerator gen(trace, wc);
  const txn::EpochWorkload workload = gen.epoch(rng);
  std::uint64_t total = 0;
  for (const auto& r : workload.reports) total += r.tx_count;
  return core::EpochInstance::from_reports(workload.reports, /*alpha=*/1.5,
                                           /*capacity=*/(total * 7) / 10,
                                           /*n_min=*/num_committees / 2);
}

bool scale_full_enabled() {
  const char* v = std::getenv("MVCOM_BENCH_SCALE");
  return v != nullptr && std::string(v) == "full";
}

void print_header(const std::string& figure, const std::string& subtitle) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), subtitle.c_str());
}

void print_trace(const std::string& label, std::span<const double> trace,
                 std::size_t points) {
  if (trace.empty()) {
    std::printf("%-28s (empty trace)\n", label.c_str());
    return;
  }
  const std::size_t stride =
      trace.size() <= points ? 1 : (trace.size() + points - 1) / points;
  std::printf("%-28s", label.c_str());
  for (std::size_t i = 0; i < trace.size(); i += stride) {
    const double u = trace[i];
    if (std::isnan(u)) {
      std::printf(" [%zu]=nan", i);
    } else {
      std::printf(" [%zu]=%.0f", i, u);
    }
  }
  const double last = trace.back();
  std::printf(" [final]=%s\n",
              std::isnan(last) ? "nan" : std::to_string(last).c_str());
}

void print_row(const std::string& name, double value) {
  std::printf("  %-44s %14.3f\n", name.c_str(), value);
}

void print_row(const std::string& name, const std::string& value) {
  std::printf("  %-44s %14s\n", name.c_str(), value.c_str());
}

BenchJson::BenchJson(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

void BenchJson::put(const std::string& key, std::string rendered) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  fields_.emplace_back(key, std::move(rendered));
}

void BenchJson::set(const std::string& key, double value) {
  put(key, render_number(value));
}

void BenchJson::set(const std::string& key, const std::string& value) {
  std::string rendered;
  const std::string escaped = obs::json_escape(value);
  rendered.reserve(escaped.size() + 2);
  rendered += '"';
  rendered += escaped;
  rendered += '"';
  put(key, std::move(rendered));
}

void BenchJson::set_series(const std::string& key,
                           std::span<const double> values) {
  std::string rendered = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) rendered += ",";
    rendered += render_number(values[i]);
  }
  rendered += "]";
  put(key, std::move(rendered));
}

std::string BenchJson::to_json() const {
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  std::string out = "{\n  \"bench\": \"" + obs::json_escape(name_) + "\",\n";
  out += "  \"wall_seconds\": " + render_number(wall);
  for (const auto& [key, value] : fields_) {
    out += ",\n  \"" + obs::json_escape(key) + "\": " + value;
  }
  out += "\n}\n";
  return out;
}

std::string BenchJson::write() const {
  const char* dir = std::getenv("MVCOM_BENCH_OUT_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/BENCH_" + name_ + ".json"
                         : "BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("BenchJson: cannot open " + path);
  }
  out << to_json();
  std::printf("  [bench-json] %s\n", path.c_str());
  return path;
}

}  // namespace mvcom::bench
