// Extension bench — the paper's headline claim, measured end-to-end on the
// Elastico substrate: "the proposed algorithm can select the most valuable
// committees ... thus accelerating the block formation by eliminating the
// straggler shards in each epoch." We run the same epoch under three final-
// committee policies and report the epoch makespan, packed TXs, throughput,
// and the cumulative shard age of the final block.
//
// Policies:
//   wait-for-all — the vanilla Elastico final committee: DDL = max latency,
//                  every committed shard is packed;
//   fastest-70%  — a blind percentile cut: keep the fastest 70%;
//   MVCom (SE)   — Alg. 1: stop listening at N_max = 80% (percentile DDL),
//                  then SE-select the most valuable admitted shards under
//                  the final block's capacity.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "mvcom/ddl_policy.hpp"
#include "mvcom/se_scheduler.hpp"
#include "sharding/elastico.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::sharding::CommitteeOutcome;

constexpr std::size_t kMemberCommittees = 31;

mvcom::sharding::ElasticoConfig config() {
  mvcom::sharding::ElasticoConfig c;
  c.num_nodes = 512;
  c.committee_size = 8;
  c.committee_bits = 5;  // 31 member committees + final
  c.overlay_cost_per_node = SimTime(0.35);
  c.link_latency_mean = SimTime(2.0);
  c.pbft.verification_mean = SimTime(1.2);
  return c;
}

/// One-block-scale shards (≈2 blocks per committee) so the freshness term
/// α·s vs Π is genuinely balanced, as in the paper's parameter regime.
mvcom::txn::Trace small_trace() {
  Rng rng(2016);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 2 * kMemberCommittees;
  tc.target_total_txs = 2 * kMemberCommittees * 1088;
  return mvcom::txn::generate_trace(tc, rng);
}

std::vector<mvcom::txn::ShardReport> to_reports(
    const std::vector<CommitteeOutcome>& committed) {
  std::vector<mvcom::txn::ShardReport> reports;
  for (const auto& c : committed) {
    reports.push_back({c.committee_id, c.tx_count,
                       c.formation_latency.seconds(),
                       c.consensus_latency.seconds()});
  }
  return reports;
}

/// MVCom policy: N_max = 80% admission, then SE under 70%-of-total capacity.
std::vector<std::uint32_t> mvcom_policy(
    const std::vector<CommitteeOutcome>& committed) {
  const auto reports = to_reports(committed);
  std::uint64_t total = 0;
  for (const auto& r : reports) total += r.tx_count;
  const mvcom::core::PercentileDdl ddl(0.8);
  const auto instance = mvcom::core::make_instance_with_ddl(
      reports, ddl, /*alpha=*/1.5, (total * 7) / 10, reports.size() / 3);
  std::vector<std::uint32_t> ids;
  if (!instance) {
    for (const auto& c : committed) ids.push_back(c.committee_id);
    return ids;
  }
  mvcom::core::SeParams params;
  params.threads = 10;
  params.max_iterations = 2500;
  mvcom::core::SeScheduler scheduler(*instance, params, 77);
  const auto result = scheduler.run();
  if (result.feasible) {
    for (std::size_t i = 0; i < result.best.size(); ++i) {
      if (result.best[i]) ids.push_back(instance->committees()[i].id);
    }
  } else {
    for (const auto& c : committed) ids.push_back(c.committee_id);
  }
  return ids;
}

/// Blind percentile cut: keep the fastest 70% of committees.
std::vector<std::uint32_t> percentile_policy(
    const std::vector<CommitteeOutcome>& committed) {
  std::vector<CommitteeOutcome> sorted = committed;
  std::sort(sorted.begin(), sorted.end(),
            [](const CommitteeOutcome& a, const CommitteeOutcome& b) {
              return a.two_phase_latency() < b.two_phase_latency();
            });
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < (sorted.size() * 7) / 10; ++i) {
    ids.push_back(sorted[i].committee_id);
  }
  return ids;
}

}  // namespace

int main() {
  const auto trace = small_trace();
  mvcom::bench::print_header(
      "Extension", "epoch acceleration on the Elastico substrate");
  std::printf("  %-18s %12s %10s %10s %14s\n", "final-cmte policy",
              "makespan(s)", "TXs", "TXs/s", "shard age(s)");

  struct Policy {
    const char* name;
    mvcom::sharding::CommitteeScheduler scheduler;
  };
  const Policy policies[] = {
      {"wait-for-all", nullptr},
      {"fastest-70%", percentile_policy},
      {"MVCom (SE)", mvcom_policy},
  };

  for (const Policy& policy : policies) {
    double makespan = 0.0;
    double txs = 0.0;
    double age = 0.0;
    constexpr std::uint64_t kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      mvcom::sharding::ElasticoNetwork network(config(), Rng(seed * 100));
      const auto outcome = network.run_epoch(trace, policy.scheduler);
      makespan += outcome.epoch_makespan.seconds();
      txs += static_cast<double>(outcome.final_block_txs);
      // Cumulative shard age: Σ over packed shards of (DDL − submission).
      double ddl = 0.0;
      for (const std::uint32_t id : outcome.selected) {
        ddl = std::max(ddl,
                       outcome.committees[id].two_phase_latency().seconds());
      }
      for (const std::uint32_t id : outcome.selected) {
        age += ddl - outcome.committees[id].two_phase_latency().seconds();
      }
    }
    makespan /= kSeeds;
    txs /= kSeeds;
    age /= kSeeds;
    std::printf("  %-18s %12.1f %10.0f %10.1f %14.1f\n", policy.name,
                makespan, txs, txs / makespan, age);
  }
  std::printf("  (expected shape: MVCom cuts the makespan and the cumulative "
              "shard age vs wait-for-all while keeping throughput high — "
              "matching throughput with far fresher shards)\n");
  return 0;
}
