// Fig. 9 — dynamic-event handling, α = 1.5, Γ = 1.
//   (a) |I|=50, Ĉ=40K: one committee leaves (fails) mid-run and later
//       rejoins; utility dips sharply at the leave, reconverges quickly.
//   (b) |I|=100, Ĉ=80K: committees keep joining consecutively; SE converges
//       again within the first few hundred iterations after each join.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "mvcom/dynamics.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

using mvcom::core::DynamicEvent;
using mvcom::core::SeParams;
using mvcom::core::SeScheduler;

SeParams online_params() {
  SeParams params;
  params.threads = 1;  // Γ=1 per the figure caption
  return params;
}

}  // namespace

int main() {
  const auto trace = mvcom::bench::paper_trace();

  // ---- Fig. 9(a): leave then rejoin ---------------------------------------
  {
    // Online case: N_min = 50%·|I| (paper §VI-A). The leave victim must not
    // break N_min, so use 40% headroom.
    const auto instance = mvcom::bench::paper_instance(
        trace, 2, /*num_committees=*/50, /*capacity=*/40'000, /*alpha=*/1.5,
        /*n_min=*/20);
    SeScheduler scheduler(instance, online_params(), 7);

    // Choose the victim: the largest-gain committee so the dip is visible.
    std::size_t victim_index = 0;
    for (std::size_t i = 1; i < instance.size(); ++i) {
      if (instance.gain(i) > instance.gain(victim_index)) victim_index = i;
    }
    const auto victim = instance.committees()[victim_index];

    std::vector<DynamicEvent> events;
    events.push_back({1200, DynamicEvent::Kind::kLeave, victim});
    events.push_back({2400, DynamicEvent::Kind::kJoin, victim});
    const auto dyn =
        mvcom::core::run_with_events(scheduler, 3600, events);

    mvcom::bench::print_header(
        "Fig. 9(a)", "leave @1200 and rejoin @2400 (|I|=50, C=40K, a=1.5)");
    mvcom::bench::print_trace("utility", dyn.utility, 24);
    mvcom::bench::print_row("final utility", dyn.final_utility);
    std::printf("  (expected shape: sharp dip at the leave, fast "
                "reconvergence; recovery after rejoin)\n");
  }

  // ---- Fig. 9(b): consecutive joins ---------------------------------------
  {
    // Online arrivals happen in two-phase-latency order: a committee joins
    // the moment it finishes. Start from the 60 fastest; the remaining 40
    // join one by one, slowest last.
    const auto full_instance = mvcom::bench::paper_instance(
        trace, 3, /*num_committees=*/100, /*capacity=*/80'000, /*alpha=*/1.5,
        /*n_min=*/0);
    std::vector<mvcom::core::Committee> arrival_order =
        full_instance.committees();
    std::sort(arrival_order.begin(), arrival_order.end(),
              [](const mvcom::core::Committee& a,
                 const mvcom::core::Committee& b) {
                return a.latency < b.latency;
              });
    std::vector<mvcom::core::Committee> initial(arrival_order.begin(),
                                                arrival_order.begin() + 60);
    mvcom::core::EpochInstance start(initial, 1.5, 80'000, /*n_min=*/30);
    SeScheduler scheduler(start, online_params(), 8);

    // Alg. 1 line 29: the final committee stops listening once N_max = 80%
    // of the member committees have arrived — the slowest 20 never join
    // (otherwise each late straggler inflates the deadline and ages every
    // already-arrived shard).
    std::vector<DynamicEvent> events;
    for (std::size_t j = 60; j < 80; ++j) {
      events.push_back({200 + (j - 60) * 60, DynamicEvent::Kind::kJoin,
                        arrival_order[j]});
    }
    const auto dyn =
        mvcom::core::run_with_events(scheduler, 3400, events);

    mvcom::bench::print_header(
        "Fig. 9(b)", "20 consecutive joins up to N_max=80% (|I|→80 of 100, C=80K, a=1.5)");
    mvcom::bench::print_trace("utility", dyn.utility, 24);
    mvcom::bench::print_row("final utility", dyn.final_utility);
    mvcom::bench::print_row("final committee count",
                            static_cast<double>(scheduler.instance().size()));
    std::printf("  (expected shape: utility climbs as committees join; "
                "reconvergence within a few hundred iterations per join)\n");
  }
  return 0;
}
