// Google-benchmark microbenchmarks for the hot paths: SE iteration cost vs
// |I|, SwapSet operations, SHA-256 throughput, one full PBFT instance, and
// the DP knapsack solve. These quantify the "executes in real time" claim
// of §IV-A — one SE iteration must be far cheaper than the inter-report
// arrival gaps it schedules around.
//
// After the google-benchmark suite, a custom main runs the observability
// overhead guard: the SE inner loop timed with no ObsContext attached vs
// with live metrics + tracing sinks, interleaved to cancel thermal/clock
// drift. The attached path must stay within a few percent (<5% target) of
// the detached one — the per-iteration cost is a handful of plain
// thread-local counter increments, flushed to sharded atomics only at
// share-interval barriers. Results land in BENCH_perf_microbench.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "baselines/dynamic_programming.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "consensus/pbft.hpp"
#include "crypto/pow.hpp"
#include "crypto/sha256.hpp"
#include "mvcom/se_scheduler.hpp"
#include "mvcom/swap_set.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;

mvcom::core::EpochInstance make_instance(std::size_t n) {
  Rng rng(1);
  std::vector<mvcom::core::Committee> committees;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mvcom::core::Committee c{static_cast<std::uint32_t>(i),
                             500 + rng.below(1500),
                             600.0 + rng.uniform(0.0, 900.0)};
    total += c.txs;
    committees.push_back(c);
  }
  return mvcom::core::EpochInstance(std::move(committees), 1.5,
                                    (total * 7) / 10, 0);
}

void BM_SeStep(benchmark::State& state) {
  const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
  mvcom::core::SeParams params;
  params.threads = 1;
  mvcom::core::SeScheduler scheduler(instance, params, 3);
  for (auto _ : state) {
    scheduler.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SeStep)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)->Arg(10000);

// Wall-clock cost of one barrier-to-barrier block of Γ explorers (|I|=200,
// 100 iterations per block — the default share_interval granularity), with
// the Γ chains advanced serially vs on the worker pool. Items = explorer
// iterations, so items/s is directly comparable across rows: on a host with
// ≥ Γ cores the parallel rows approach Γ× the serial Γ=1 rate.
void BM_SeAdvanceBlock(benchmark::State& state) {
  const auto instance = make_instance(200);
  mvcom::core::SeParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  params.parallel_execution = state.range(1) != 0;
  mvcom::core::SeScheduler scheduler(instance, params, 3);
  constexpr std::size_t kBlock = 100;
  for (auto _ : state) {
    scheduler.advance(kBlock);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlock) * state.range(0));
}
BENCHMARK(BM_SeAdvanceBlock)
    ->ArgNames({"gamma", "parallel"})
    ->Args({1, 0})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->UseRealTime();

void BM_SwapSetSwap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mvcom::core::Selection x(n, 0);
  for (std::size_t i = 0; i < n / 2; ++i) x[i] = 1;
  mvcom::core::SwapSet set(x);
  Rng rng(5);
  for (auto _ : state) {
    const auto out = set.sample_selected(rng);
    const auto in = set.sample_unselected(rng);
    set.swap(out, in);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_SwapSetSwap)->Arg(100)->Arg(1000)->Arg(50000);

void BM_Sha256(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(mvcom::crypto::Sha256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PbftInstance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto payload = mvcom::crypto::Sha256::hash("p");
  for (auto _ : state) {
    mvcom::sim::Simulator simulator;
    mvcom::net::Network network(
        simulator, Rng(7),
        std::make_shared<mvcom::net::UniformLatency>(SimTime(0.5),
                                                     SimTime(1.5)),
        n);
    std::vector<mvcom::net::NodeId> members(n);
    for (std::size_t i = 0; i < n; ++i) {
      members[i] = static_cast<mvcom::net::NodeId>(i);
    }
    mvcom::consensus::PbftCluster cluster(simulator, network, {}, Rng(8),
                                          members);
    benchmark::DoNotOptimize(cluster.run_consensus(payload));
  }
}
BENCHMARK(BM_PbftInstance)->Arg(4)->Arg(16)->Arg(32);

// PoW grind rate through the cached midstate (one Sha256 copy + <= 20 nonce
// bytes per attempt) vs re-absorbing the whole preimage each attempt — the
// stage-1 hot loop of every Elastico epoch.
void BM_PowGrindMidstate(benchmark::State& state) {
  const mvcom::crypto::PowMidstate midstate("bench-epoch-randomness",
                                            "node-12345");
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(midstate.digest(nonce++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PowGrindMidstate);

void BM_PowGrindFromScratch(benchmark::State& state) {
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mvcom::crypto::Sha256::hash(
        std::string("bench-epoch-randomness") + "|node-12345|" +
        std::to_string(nonce++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PowGrindFromScratch);

// DES kernel churn: schedule + fire through the slab/4-ary-heap engine at a
// live queue depth typical of a large committee fabric.
void BM_SimulatorChurn(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  mvcom::sim::Simulator sim;
  Rng rng(11);
  double horizon = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    sim.schedule_at(SimTime(rng.uniform(0.0, 100.0)), [] {});
  }
  for (auto _ : state) {
    // Fire one event, schedule one replacement: steady-state queue depth.
    sim.run(1);
    horizon = sim.now().seconds() + rng.uniform(0.0, 100.0);
    sim.schedule_at(SimTime(horizon), [] {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorChurn)->Arg(64)->Arg(4096)->Arg(65536);

// Cohort dispatch: typed-event churn through the batched SoA executor,
// `range(0)` events per timestamp so every pop drains one cohort. The
// counterpart of BM_SimulatorChurn for the kernel path (DESIGN.md §16).
void BM_CohortDispatch(benchmark::State& state) {
  const auto cohort = static_cast<std::size_t>(state.range(0));
  mvcom::sim::Simulator sim(
      mvcom::sim::SimConfig{mvcom::sim::KernelMode::kBatched});
  static std::uint64_t sink = 0;
  const auto kernel = sim.register_kernel(
      [](void*, const mvcom::sim::TypedPayload* c, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) sink += c[i].a;
      },
      nullptr);
  double at = 1.0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < cohort; ++i) {
      sim.schedule_typed(SimTime(at), kernel, {i, 0});
    }
    state.ResumeTiming();
    sim.run();
    at += 1.0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cohort));
}
BENCHMARK(BM_CohortDispatch)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

// Batched exponential sampling — the SIMD-friendly transform behind the
// PBFT verification delays and the Eq.-(8) timer race.
void BM_FillExponential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> out(n);
  for (auto _ : state) {
    rng.fill_exponential(std::span<double>(out), 0.2);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FillExponential)->Arg(4)->Arg(64)->Arg(1024);

void BM_DpSolve(benchmark::State& state) {
  const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
  mvcom::baselines::DynamicProgramming dp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.solve(instance));
  }
}
BENCHMARK(BM_DpSolve)->Arg(50)->Arg(500);

/// Wall seconds for `iterations` SE iterations on a fresh scheduler.
double timed_advance(const mvcom::core::EpochInstance& instance,
                     mvcom::obs::ObsContext obs, std::size_t iterations) {
  mvcom::core::SeParams params;
  params.threads = 4;
  params.max_iterations = iterations * 2;  // never stop inside the run
  params.convergence_window = params.max_iterations;
  mvcom::core::SeScheduler scheduler(instance, params, 3);
  scheduler.set_obs(obs);
  const auto start = std::chrono::steady_clock::now();
  scheduler.advance(iterations);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Observability overhead guard (<5% target on the SE inner loop). Takes
/// the best of `kReps` interleaved detached/attached repetitions, so a
/// one-off scheduler stall cannot fake a regression either way.
void run_overhead_guard(mvcom::bench::BenchJson& json) {
  const auto instance = make_instance(200);
  constexpr std::size_t kIterations = 20'000;
  constexpr int kReps = 5;

  mvcom::obs::MetricsRegistry registry;
  mvcom::obs::TraceRecorder recorder;
  const mvcom::obs::ObsContext attached(&registry, &recorder);
  const mvcom::obs::ObsContext detached;

  (void)timed_advance(instance, detached, kIterations);  // warm-up
  double best_detached = 0.0;
  double best_attached = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double d = timed_advance(instance, detached, kIterations);
    const double a = timed_advance(instance, attached, kIterations);
    best_detached = rep == 0 ? d : std::min(best_detached, d);
    best_attached = rep == 0 ? a : std::min(best_attached, a);
  }
  const double overhead = best_attached / best_detached - 1.0;

  std::printf("\n--- observability overhead guard (SE inner loop) ---\n");
  std::printf("  %zu iterations x %d reps, best-of: detached %.3fs, "
              "attached %.3fs\n",
              kIterations, kReps, best_detached, best_attached);
  std::printf("  overhead: %+.2f%% (target < 5%%) -> %s\n", 100.0 * overhead,
              overhead < 0.05 ? "PASS" : "FAIL");

  json.set("se_overhead_iterations", static_cast<double>(kIterations));
  json.set("se_detached_best_seconds", best_detached);
  json.set("se_attached_best_seconds", best_attached);
  json.set("se_obs_overhead_fraction", overhead);
  json.set("se_obs_overhead_pass", overhead < 0.05 ? 1.0 : 0.0);
  // Perf-gate key (tools/bench_compare.py): lower-is-better wall clock.
  json.set("gate_seconds_se_inner_20k", best_detached);
}

/// Scale throughput: SE scheduler construction time and steady-state step
/// rate at 10k (and, under MVCOM_BENCH_SCALE=full, 50k) committees — the
/// perf-gate numbers behind the 50k-committee tentpole.
void run_scale_throughput(mvcom::bench::BenchJson& json) {
  std::printf("\n--- SE scale throughput ---\n");
  std::vector<std::size_t> tiers = {10'000};
  if (mvcom::bench::scale_full_enabled()) tiers.push_back(50'000);
  for (const std::size_t icount : tiers) {
    const auto instance = mvcom::bench::scale_instance(icount);
    mvcom::core::SeParams params;
    params.threads = 1;
    if (icount > 10'000) params.max_family = 256;
    const auto c0 = std::chrono::steady_clock::now();
    mvcom::core::SeScheduler scheduler(instance, params, 3);
    const double ctor_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
            .count();
    scheduler.advance(20);  // warm-up: fault in the chain state
    constexpr std::size_t kIters = 200;
    const auto t0 = std::chrono::steady_clock::now();
    scheduler.advance(kIters);
    const double step_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double rate = static_cast<double>(kIters) / step_seconds;
    std::printf("  I=%zu: ctor %.3fs, %.0f iters/s (%zu chains/iteration)\n",
                icount, ctor_seconds, rate,
                scheduler.layout().family.size());
    const std::string tag = std::to_string(icount);
    json.set("scale_" + tag + "_family_chains",
             static_cast<double>(scheduler.layout().family.size()));
    json.set("gate_seconds_se_ctor_" + tag, ctor_seconds);
    json.set("gate_rate_se_step_" + tag, rate);
  }
}

/// PoW hash rate through the midstate path, measured by grinding a fixed
/// attempt count against an unsolvable target (leading64_below = 0 never
/// matches, so solve() always performs exactly kAttempts hashes).
void run_pow_rate(mvcom::bench::BenchJson& json) {
  constexpr std::uint64_t kAttempts = 200'000;
  const mvcom::crypto::PowTarget unsolvable{0};
  (void)mvcom::crypto::solve("bench-epoch-randomness", "node-12345",
                             unsolvable, kAttempts / 10);  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  const auto solution = mvcom::crypto::solve("bench-epoch-randomness",
                                             "node-12345", unsolvable,
                                             kAttempts);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rate = static_cast<double>(kAttempts) / seconds;
  std::printf("\n--- PoW grind rate (midstate path) ---\n");
  std::printf("  %llu attempts in %.3fs -> %.0f hashes/s%s\n",
              static_cast<unsigned long long>(kAttempts), seconds, rate,
              solution.has_value() ? " (unexpected solution!)" : "");
  json.set("pow_grind_attempts", static_cast<double>(kAttempts));
  json.set("gate_rate_pow_grind", rate);
}

/// DES event churn rate: steady-state schedule+fire pairs at 4096 pending
/// events — the slab/heap engine's throughput number the lane-parallel
/// epoch multiplies by the worker count.
void run_event_churn(mvcom::bench::BenchJson& json) {
  constexpr std::size_t kDepth = 4096;
  constexpr std::size_t kEvents = 2'000'000;
  mvcom::sim::Simulator sim;
  Rng rng(13);
  for (std::size_t i = 0; i < kDepth; ++i) {
    sim.schedule_at(SimTime(rng.uniform(0.0, 100.0)), [] {});
  }
  sim.run(kDepth / 2);  // warm-up: heap + slab are hot
  for (std::size_t i = 0; i < kDepth / 2; ++i) {
    sim.schedule_after(SimTime(rng.uniform(0.0, 100.0)), [] {});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kEvents; ++i) {
    sim.run(1);
    sim.schedule_after(SimTime(rng.uniform(0.0, 100.0)), [] {});
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rate = static_cast<double>(kEvents) / seconds;
  std::printf("\n--- DES event churn (depth %zu) ---\n", kDepth);
  std::printf("  %zu schedule+fire pairs in %.3fs -> %.0f events/s\n",
              kEvents, seconds, rate);
  json.set("sim_churn_depth", static_cast<double>(kDepth));
  json.set("gate_rate_sim_event_churn", rate);
}

/// Typed-event throughput through both executors on an identical workload:
/// steady-state same-timestamp storms (cohort size 64) where every executed
/// element schedules its replacement one tick later — constant queue depth,
/// so the measurement is dispatch cost, not heap depth. Gates the batched
/// path and records the reference interpreter alongside; aborts if the two
/// order digests ever disagree — a perf run must never certify a rate for a
/// divergent engine.
void run_cohort_dispatch(mvcom::bench::BenchJson& json) {
  constexpr std::size_t kCohort = 64;
  constexpr std::uint64_t kEvents = 1'000'000;
  struct Run {
    double seconds = 0.0;
    std::uint64_t digest = 0;
    std::uint64_t executed = 0;
  };
  const auto measure = [&](mvcom::sim::KernelMode mode) {
    struct Ctx {
      mvcom::sim::Simulator sim;
      mvcom::sim::KernelId kernel{};
      std::uint64_t sink = 0;
      explicit Ctx(mvcom::sim::KernelMode m)
          : sim(mvcom::sim::SimConfig{m}) {}
    } ctx(mode);
    ctx.kernel = ctx.sim.register_kernel(
        [](void* raw, const mvcom::sim::TypedPayload* c, std::size_t n) {
          auto* self = static_cast<Ctx*>(raw);
          const SimTime next = self->sim.now() + SimTime(1.0);
          for (std::size_t i = 0; i < n; ++i) {
            self->sink += c[i].a;
            self->sim.schedule_typed(next, self->kernel, c[i]);
          }
        },
        &ctx);
    for (std::size_t i = 0; i < kCohort; ++i) {
      ctx.sim.schedule_typed(SimTime(1.0), ctx.kernel, {i, 0});
    }
    ctx.sim.run(kCohort * 16);  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    ctx.sim.run(kEvents);
    Run run;
    run.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    run.digest = ctx.sim.order_digest();
    run.executed = ctx.sim.events_executed();
    benchmark::DoNotOptimize(ctx.sink);
    return run;
  };
  const Run reference = measure(mvcom::sim::KernelMode::kReference);
  const Run batched = measure(mvcom::sim::KernelMode::kBatched);
  if (reference.digest != batched.digest ||
      reference.executed != batched.executed) {
    std::fprintf(stderr,
                 "FATAL: kernel modes diverged in run_cohort_dispatch\n");
    std::abort();
  }
  const double events = static_cast<double>(reference.executed);
  const double ref_rate = events / reference.seconds;
  const double bat_rate = events / batched.seconds;
  std::printf("\n--- cohort dispatch (size %zu storms) ---\n", kCohort);
  std::printf("  reference: %.0f events/s, batched: %.0f events/s (%.2fx)\n",
              ref_rate, bat_rate, bat_rate / ref_rate);
  json.set("sim_cohort_size", static_cast<double>(kCohort));
  json.set("sim_cohort_reference_rate", ref_rate);
  json.set("gate_rate_sim_cohort_dispatch", bat_rate);
}

/// Batched exponential sampling rate — fill_exponential over a 1024-draw
/// buffer, the shape the PBFT verification-delay kernel uses.
void run_fill_exponential(mvcom::bench::BenchJson& json) {
  constexpr std::size_t kBatch = 1024;
  constexpr std::size_t kReps = 20'000;
  Rng rng(7);
  std::vector<double> out(kBatch);
  double sink = 0.0;
  for (std::size_t r = 0; r < kReps / 10; ++r) {  // warm-up
    rng.fill_exponential(std::span<double>(out), 0.2);
    sink += out.back();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kReps; ++r) {
    rng.fill_exponential(std::span<double>(out), 0.2);
    sink += out.back();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(sink);
  const double rate = static_cast<double>(kBatch * kReps) / seconds;
  std::printf("\n--- fill_exponential (batch %zu) ---\n", kBatch);
  std::printf("  %.0f draws/s (%.2f ns/draw)\n", rate, 1e9 / rate);
  json.set("rng_fill_batch", static_cast<double>(kBatch));
  json.set("gate_rate_rng_fill_exponential", rate);
}

/// SE timer-race step rate — the Alg.-3 transition whose inner loop is the
/// batched Exp(1) race. Its own gate tier (gate_rate_se_steps): the
/// chain-parallel tiers above cannot see a regression in this path.
void run_se_timer_race(mvcom::bench::BenchJson& json) {
  const auto instance = make_instance(200);
  mvcom::core::SeParams params;
  params.threads = 1;
  params.transition = mvcom::core::SeTransition::kTimerRace;
  constexpr std::size_t kIters = 30'000;
  params.max_iterations = kIters * 2;
  params.convergence_window = params.max_iterations;
  mvcom::core::SeScheduler scheduler(instance, params, 3);
  scheduler.advance(kIters / 10);  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  scheduler.advance(kIters);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rate = static_cast<double>(kIters) / seconds;
  std::printf("\n--- SE timer-race step rate (|I|=200) ---\n");
  std::printf("  %.0f steps/s\n", rate);
  json.set("se_timer_race_iters", static_cast<double>(kIters));
  json.set("gate_rate_se_steps", rate);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mvcom::bench::BenchJson json("perf_microbench");
  run_overhead_guard(json);
  run_scale_throughput(json);
  run_pow_rate(json);
  run_event_churn(json);
  run_cohort_dispatch(json);
  run_fill_exponential(json);
  run_se_timer_race(json);
  json.write();
  return 0;
}
