// bench_fabric — throughput of the multi-process shard fabric (DESIGN.md
// §17) against the in-process lane pool it replaces, plus the wire format's
// raw encode/decode rates.
//
// Three tiers:
//   wire    — encode/decode a representative epoch TaskBatch in a tight
//             loop; MB/s is the framing overhead ceiling (zero-copy decode,
//             arena-reused encode buffer).
//   epochs  — identical Elastico epochs on (a) the serial in-process path,
//             (b) the in-process thread pool, (c) a 2-process fabric; each
//             reports epochs/sec, and the fabric's digests are diffed
//             bitwise against the serial reference (FAIL on divergence).
//   replay  — the fabric with one SIGKILL injected mid-run: wall clock of
//             the crash-detect + re-fork + replay path, digests still diffed.
//
// Like every process-parallel bench here, the fabric's speedup over serial
// is only observable with >= 2 free cores; the PASS/FAIL verdict is
// core-count-aware and the perf gate keys (gate_rate_fabric_*) track
// absolute rates, not speedups.

#include <bit>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/wire.hpp"
#include "sharding/elastico.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::sharding::ElasticoConfig;
using mvcom::sharding::ElasticoNetwork;
using mvcom::sharding::EpochOutcome;

double secs_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ElasticoConfig bench_config() {
  ElasticoConfig config;
  config.num_nodes = 128;
  config.committee_size = 6;
  config.committee_bits = 3;
  config.link_latency_mean = SimTime(1.0);
  config.pbft.verification_mean = SimTime(0.2);
  config.pbft.view_change_timeout = SimTime(120.0);
  return config;
}

mvcom::txn::Trace bench_trace() {
  Rng rng(7);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 96;
  tc.target_total_txs = 96'000;
  return mvcom::txn::generate_trace(tc, rng);
}

bool digests_equal(const std::vector<EpochOutcome>& a,
                   const std::vector<EpochOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t e = 0; e < a.size(); ++e) {
    if (a[e].event_order_digest != b[e].event_order_digest ||
        a[e].events_executed != b[e].events_executed ||
        a[e].next_epoch_randomness != b[e].next_epoch_randomness ||
        std::bit_cast<std::uint64_t>(a[e].epoch_makespan.seconds()) !=
            std::bit_cast<std::uint64_t>(b[e].epoch_makespan.seconds())) {
      return false;
    }
  }
  return true;
}

std::vector<EpochOutcome> run_epochs(const ElasticoConfig& config,
                                     std::size_t epochs,
                                     const mvcom::txn::Trace& trace,
                                     mvcom::fabric::ProcessFabric* fleet,
                                     double* seconds) {
  ElasticoNetwork network(config, Rng(4242));
  if (fleet != nullptr) network.set_lane_executor(fleet->executor());
  std::vector<EpochOutcome> out;
  out.reserve(epochs);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < epochs; ++e) {
    out.push_back(network.run_epoch(trace));
  }
  *seconds = secs_since(start);
  return out;
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("fabric");
  const unsigned cores = std::thread::hardware_concurrency();
  mvcom::bench::print_header(
      "Fabric", "multi-process shard fabric vs in-process lanes");
  std::printf("  hardware threads available: %u\n", cores);

  // --- wire tier ----------------------------------------------------------
  {
    // A representative epoch batch: 8 committees of 6 with full payloads.
    mvcom::fabric::TaskBatch batch;
    batch.epoch = 1;
    for (std::uint32_t c = 0; c < 8; ++c) {
      mvcom::sharding::LaneTask task;
      task.committee_id = c;
      task.member_committees = 7;
      task.armed = true;
      task.num_nodes = 128;
      task.randomness = "0123456789abcdef0123456789abcdef";
      task.participants = {1, 2, 3, 4, 5, 6};
      task.verify_speeds = {1.0, 0.9, 1.1, 1.0, 0.95, 1.05};
      task.failed = {0, 0, 0, 0, 0, 0};
      task.net_seed = 0x1111111111111111ULL * (c + 1);
      task.cluster_seed = 0x2222222222222222ULL * (c + 1);
      batch.tasks.push_back(task);
    }
    std::vector<std::uint8_t> payload;
    constexpr std::size_t kReps = 20'000;
    const auto enc_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kReps; ++i) {
      payload.clear();  // arena reuse, like the worker loop
      mvcom::fabric::encode_task_batch(payload, batch);
    }
    const double enc_seconds = secs_since(enc_start);
    mvcom::fabric::TaskBatch decoded;
    const auto dec_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kReps; ++i) {
      if (!mvcom::fabric::decode_task_batch(payload, decoded)) return 1;
    }
    const double dec_seconds = secs_since(dec_start);
    const double batch_mb =
        static_cast<double>(payload.size()) / (1024.0 * 1024.0);
    const double enc_rate = batch_mb * kReps / enc_seconds;
    const double dec_rate = batch_mb * kReps / dec_seconds;
    std::printf("  wire: batch %zu B, encode %.0f MB/s, decode %.0f MB/s\n",
                payload.size(), enc_rate, dec_rate);
    json.set("wire_batch_bytes", static_cast<double>(payload.size()));
    json.set("gate_rate_fabric_wire_encode_mb_per_sec", enc_rate);
    json.set("gate_rate_fabric_wire_decode_mb_per_sec", dec_rate);
  }

  // --- epoch tier ---------------------------------------------------------
  const auto trace = bench_trace();
  const ElasticoConfig config = bench_config();
  // Enough epochs that the per-arm wall clock is measurable (hundreds of
  // ms), so the gate rates average out scheduler noise on small CI boxes.
  constexpr std::size_t kEpochs = 400;

  double serial_seconds = 0.0;
  const auto serial =
      run_epochs(config, kEpochs, trace, nullptr, &serial_seconds);

  ElasticoConfig pooled_config = config;
  pooled_config.lane_workers = 2;
  double pooled_seconds = 0.0;
  const auto pooled =
      run_epochs(pooled_config, kEpochs, trace, nullptr, &pooled_seconds);

  double fabric_seconds = 0.0;
  std::vector<EpochOutcome> fabric;
  {
    mvcom::fabric::FabricConfig fabric_cfg;
    fabric_cfg.workers = 2;
    mvcom::fabric::ProcessFabric fleet(fabric_cfg);
    fabric = run_epochs(config, kEpochs, trace, &fleet, &fabric_seconds);
  }

  const double serial_rate = kEpochs / serial_seconds;
  const double pooled_rate = kEpochs / pooled_seconds;
  const double fabric_rate = kEpochs / fabric_seconds;
  const bool identical =
      digests_equal(serial, pooled) && digests_equal(serial, fabric);
  std::printf("  serial    : %.3fs (%.2f epochs/s)\n", serial_seconds,
              serial_rate);
  std::printf("  pool x2   : %.3fs (%.2f epochs/s)\n", pooled_seconds,
              pooled_rate);
  std::printf("  fabric x2 : %.3fs (%.2f epochs/s, %.2fx vs serial)\n",
              fabric_seconds, fabric_rate, fabric_rate / serial_rate);
  std::printf("  determinism: digests %s\n",
              identical ? "identical (PASS)" : "DIVERGED (FAIL)");
  if (cores >= 2) {
    std::printf("  fabric speedup target (>= 0.9x at 2 workers, %u cores): "
                "%.2fx %s\n",
                cores, fabric_rate / serial_rate,
                fabric_rate / serial_rate >= 0.9 ? "PASS" : "FAIL");
  } else {
    std::printf("  fabric speedup target skipped: only %u hardware threads "
                "(2 worker processes share one core; the rate below still "
                "gates regressions)\n",
                cores);
  }
  json.set("epochs", static_cast<double>(kEpochs));
  json.set("serial_epochs_per_sec", serial_rate);
  json.set("pool2_epochs_per_sec", pooled_rate);
  json.set("digests_identical", identical ? 1.0 : 0.0);
  json.set("hardware_threads", static_cast<double>(cores));
  json.set("gate_rate_fabric_epochs_per_sec", fabric_rate);

  // --- replay tier --------------------------------------------------------
  double replay_seconds = 0.0;
  std::vector<EpochOutcome> replayed;
  std::uint64_t respawns = 0;
  {
    mvcom::fabric::FabricConfig fabric_cfg;
    fabric_cfg.workers = 2;
    mvcom::fabric::ProcessFabric fleet(fabric_cfg);
    fleet.inject_kill(0, kEpochs / 2);
    replayed = run_epochs(config, kEpochs, trace, &fleet, &replay_seconds);
    respawns = fleet.respawns();
  }
  const bool replay_identical = digests_equal(serial, replayed);
  std::printf("  kill-replay: %.3fs (%llu respawns), digests %s\n",
              replay_seconds, static_cast<unsigned long long>(respawns),
              replay_identical ? "identical (PASS)" : "DIVERGED (FAIL)");
  json.set("replay_respawns", static_cast<double>(respawns));
  json.set("replay_digests_identical", replay_identical ? 1.0 : 0.0);
  json.set("gate_rate_fabric_replay_epochs_per_sec",
           kEpochs / replay_seconds);

  json.write();
  return identical && replay_identical ? 0 : 1;
}
