// Fig. 2 — measurement of the two-phase latency under Elastico.
//   (a) committee-formation vs intra-committee consensus latency as the
//       network size scales from 100 to 1000 nodes: formation consumes the
//       larger portion and grows ~linearly with network size.
//   (b) CDF of both latency terms at a fixed network size: each is randomly
//       distributed within its own range.
// Regenerated here with the message-level Elastico + PBFT simulators.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sharding/elastico.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;

mvcom::sharding::ElasticoConfig config_for(std::size_t nodes) {
  mvcom::sharding::ElasticoConfig config;
  config.num_nodes = nodes;
  config.committee_size = 8;
  // Elastico scales committee count with the network: ~14 nodes/committee.
  int bits = 1;
  while ((std::size_t{1} << (bits + 1)) * 14 <= nodes) ++bits;
  config.committee_bits = bits;
  config.pow_expected_solve = SimTime(600.0);
  config.overlay_cost_per_node = SimTime(0.5);
  config.link_latency_mean = SimTime(2.0);
  config.pbft.verification_mean = SimTime(16.0);
  config.pbft.view_change_timeout = SimTime(180.0);
  return config;
}

struct LatencySample {
  std::vector<double> formation;
  std::vector<double> consensus;
};

LatencySample measure(std::size_t nodes, std::uint64_t seeds) {
  const auto trace = mvcom::bench::paper_trace();
  LatencySample sample;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    mvcom::sharding::ElasticoNetwork network(config_for(nodes),
                                             Rng(1000 + seed));
    const auto outcome = network.run_epoch(trace);
    for (const auto& c : outcome.committees) {
      if (!c.committed) continue;
      sample.formation.push_back(c.formation_latency.seconds());
      sample.consensus.push_back(c.consensus_latency.seconds());
    }
  }
  return sample;
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("fig2_two_phase_latency");
  mvcom::bench::print_header(
      "Fig. 2(a)", "two-phase latency vs network size (Elastico, simulated)");
  std::printf("  %8s %12s %12s %12s\n", "nodes", "formation(s)",
              "consensus(s)", "form-share");
  std::vector<double> formation_means;
  std::vector<double> consensus_means;
  for (const std::size_t nodes : {100u, 200u, 400u, 600u, 800u, 1000u}) {
    const LatencySample sample = measure(nodes, 5);
    const double f = mvcom::common::mean(sample.formation);
    const double c = mvcom::common::mean(sample.consensus);
    formation_means.push_back(f);
    consensus_means.push_back(c);
    std::printf("  %8zu %12.1f %12.1f %11.0f%%\n", nodes, f, c,
                100.0 * f / (f + c));
  }
  json.set_series("formation_mean_seconds", formation_means);
  json.set_series("consensus_mean_seconds", consensus_means);
  std::printf("  (expected shape: formation dominates and grows ~linearly "
              "with network size)\n");

  mvcom::bench::print_header("Fig. 2(b)",
                             "CDF of two-phase latency terms at 400 nodes");
  const LatencySample sample = measure(400, 4);
  const auto f_cdf = mvcom::common::cdf_at_quantiles(sample.formation, 11);
  const auto c_cdf = mvcom::common::cdf_at_quantiles(sample.consensus, 11);
  std::printf("  %6s %16s %16s\n", "CDF", "formation(s)", "consensus(s)");
  for (std::size_t i = 0; i < f_cdf.size(); ++i) {
    std::printf("  %5.0f%% %16.1f %16.1f\n",
                100.0 * f_cdf[i].cumulative_probability, f_cdf[i].value,
                c_cdf[i].value);
  }
  std::printf("  (expected shape: both terms random within their own range; "
              "formation range is much wider)\n");
  json.set("committees_sampled", static_cast<double>(sample.formation.size()));
  json.write();
  return 0;
}
