// Fig. 2 — measurement of the two-phase latency under Elastico.
//   (a) committee-formation vs intra-committee consensus latency as the
//       network size scales from 100 to 1000 nodes: formation consumes the
//       larger portion and grows ~linearly with network size.
//   (b) CDF of both latency terms at a fixed network size: each is randomly
//       distributed within its own range.
// Regenerated here with the message-level Elastico + PBFT simulators.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sharding/elastico.hpp"
#include "sim/kernel.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;

mvcom::sharding::ElasticoConfig config_for(std::size_t nodes) {
  mvcom::sharding::ElasticoConfig config;
  config.num_nodes = nodes;
  config.committee_size = 8;
  // Elastico scales committee count with the network: ~14 nodes/committee.
  int bits = 1;
  while ((std::size_t{1} << (bits + 1)) * 14 <= nodes) ++bits;
  config.committee_bits = bits;
  config.pow_expected_solve = SimTime(600.0);
  config.overlay_cost_per_node = SimTime(0.5);
  config.link_latency_mean = SimTime(2.0);
  config.pbft.verification_mean = SimTime(16.0);
  config.pbft.view_change_timeout = SimTime(180.0);
  return config;
}

struct LatencySample {
  std::vector<double> formation;
  std::vector<double> consensus;
};

LatencySample measure(std::size_t nodes, std::uint64_t seeds) {
  const auto trace = mvcom::bench::paper_trace();
  LatencySample sample;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    mvcom::sharding::ElasticoNetwork network(config_for(nodes),
                                             Rng(1000 + seed));
    const auto outcome = network.run_epoch(trace);
    for (const auto& c : outcome.committees) {
      if (!c.committed) continue;
      sample.formation.push_back(c.formation_latency.seconds());
      sample.consensus.push_back(c.consensus_latency.seconds());
    }
  }
  return sample;
}

// --- DES scale tier -------------------------------------------------------
// The lane-parallel substrate's perf gate: one message-level epoch at a node
// count large enough that the directory exchanges dominate (the linear-in-N
// stage), run serially (lane_workers = 0) and on an 8-worker lane pool. Both
// wall clocks are gated against committed baselines; the two runs must also
// report identical event-order digests (the determinism contract, enforced
// bit-exactly by test_elastico_lanes — re-checked here on the gate workload).

struct DesRun {
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::vector<std::uint64_t> digests;
};

DesRun timed_des_epochs(const mvcom::sharding::ElasticoConfig& base,
                        mvcom::sim::KernelMode kernel_mode,
                        std::size_t lane_workers, std::uint64_t epochs,
                        const mvcom::txn::Trace& trace) {
  mvcom::sharding::ElasticoConfig config = base;
  config.kernel_mode = kernel_mode;
  config.lane_workers = lane_workers;
  mvcom::sharding::ElasticoNetwork network(config, Rng(77));
  DesRun run;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t e = 0; e < epochs; ++e) {
    const auto outcome = network.run_epoch(trace);
    run.events += outcome.events_executed;
    run.digests.push_back(outcome.event_order_digest);
  }
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return run;
}

void run_des_scale_tier(mvcom::bench::BenchJson& json) {
  std::size_t nodes = 2048;
  if (mvcom::bench::scale_full_enabled()) nodes = 4096;
  constexpr std::uint64_t kEpochs = 16;
  constexpr std::size_t kLanes = 8;

  mvcom::sharding::ElasticoConfig config = config_for(nodes);
  config.message_level_overlay = true;
  // Quadratic PBFT traffic per committee keeps the DES (not the setup code)
  // the measured cost: ~1M events across the run.
  config.committee_size = 16;
  // Enough blocks for one shard per member committee at this scale.
  Rng trace_rng(31);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 2 * (std::size_t{1} << config.committee_bits);
  tc.target_total_txs = tc.num_blocks * 1000;
  const mvcom::txn::Trace trace = generate_trace(tc, trace_rng);

  mvcom::bench::print_header(
      "DES scale", "lane-parallel epoch substrate (message-level overlay)");
  std::printf("  %zu nodes, %d committee bits, %llu epochs\n", nodes,
              config.committee_bits,
              static_cast<unsigned long long>(kEpochs));

  // The gate workload runs the batched SoA kernel executor; the reference
  // slab interpreter is re-timed alongside, and all three runs (reference
  // serial, batched serial, batched laned) must report identical digests —
  // the bitwise-determinism witness across executors AND lane counts.
  const DesRun reference = timed_des_epochs(
      config, mvcom::sim::KernelMode::kReference, 0, kEpochs, trace);
  const DesRun serial = timed_des_epochs(
      config, mvcom::sim::KernelMode::kBatched, 0, kEpochs, trace);
  const DesRun laned = timed_des_epochs(
      config, mvcom::sim::KernelMode::kBatched, kLanes, kEpochs, trace);
  const bool identical = serial.digests == laned.digests &&
                         serial.digests == reference.digests &&
                         serial.events == laned.events &&
                         serial.events == reference.events;
  const double reference_rate =
      static_cast<double>(reference.events) / reference.seconds;
  const double serial_rate = static_cast<double>(serial.events) /
                             serial.seconds;
  const double speedup = serial.seconds / laned.seconds;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("  reference: %.3fs (%llu events, %.0f events/s)\n",
              reference.seconds,
              static_cast<unsigned long long>(reference.events),
              reference_rate);
  std::printf("  batched  : %.3fs (%llu events, %.0f events/s, %.2fx)\n",
              serial.seconds,
              static_cast<unsigned long long>(serial.events), serial_rate,
              serial_rate / reference_rate);
  std::printf("  %zu lanes  : %.3fs (speedup %.2fx)\n", kLanes, laned.seconds,
              speedup);
  std::printf("  determinism: digests %s\n",
              identical ? "identical (PASS)" : "DIVERGED (FAIL)");
  // The >= 4x-at-8-lanes target is only observable with >= 8 cores; on
  // smaller hosts the laned wall clock is still regression-gated below.
  if (cores >= 8) {
    std::printf("  speedup target (>= 4x at %zu lanes): %s\n", kLanes,
                speedup >= 4.0 ? "PASS" : "FAIL");
  } else {
    std::printf("  speedup target skipped: only %u hardware threads "
                "(need >= 8 to observe 4x)\n", cores);
  }

  json.set("des_scale_nodes", static_cast<double>(nodes));
  json.set("des_scale_epochs", static_cast<double>(kEpochs));
  json.set("des_scale_events", static_cast<double>(serial.events));
  json.set("des_scale_digests_identical", identical ? 1.0 : 0.0);
  json.set("des_scale_speedup_lanes8", speedup);
  json.set("des_scale_hardware_threads", static_cast<double>(cores));
  json.set("des_scale_reference_rate", reference_rate);
  // Perf-gate keys (tools/bench_compare.py): both paths are wall-clock
  // gated, and the batched serial path doubles as the events/s rate gate.
  json.set("gate_seconds_fig2_des_serial", serial.seconds);
  json.set("gate_seconds_fig2_des_lanes8", laned.seconds);
  json.set("gate_rate_fig2_des_events", serial_rate);
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("fig2_two_phase_latency");
  mvcom::bench::print_header(
      "Fig. 2(a)", "two-phase latency vs network size (Elastico, simulated)");
  std::printf("  %8s %12s %12s %12s\n", "nodes", "formation(s)",
              "consensus(s)", "form-share");
  std::vector<double> formation_means;
  std::vector<double> consensus_means;
  for (const std::size_t nodes : {100u, 200u, 400u, 600u, 800u, 1000u}) {
    const LatencySample sample = measure(nodes, 5);
    const double f = mvcom::common::mean(sample.formation);
    const double c = mvcom::common::mean(sample.consensus);
    formation_means.push_back(f);
    consensus_means.push_back(c);
    std::printf("  %8zu %12.1f %12.1f %11.0f%%\n", nodes, f, c,
                100.0 * f / (f + c));
  }
  json.set_series("formation_mean_seconds", formation_means);
  json.set_series("consensus_mean_seconds", consensus_means);
  std::printf("  (expected shape: formation dominates and grows ~linearly "
              "with network size)\n");

  mvcom::bench::print_header("Fig. 2(b)",
                             "CDF of two-phase latency terms at 400 nodes");
  const LatencySample sample = measure(400, 4);
  const auto f_cdf = mvcom::common::cdf_at_quantiles(sample.formation, 11);
  const auto c_cdf = mvcom::common::cdf_at_quantiles(sample.consensus, 11);
  std::printf("  %6s %16s %16s\n", "CDF", "formation(s)", "consensus(s)");
  for (std::size_t i = 0; i < f_cdf.size(); ++i) {
    std::printf("  %5.0f%% %16.1f %16.1f\n",
                100.0 * f_cdf[i].cumulative_probability, f_cdf[i].value,
                c_cdf[i].value);
  }
  std::printf("  (expected shape: both terms random within their own range; "
              "formation range is much wider)\n");
  json.set("committees_sampled", static_cast<double>(sample.formation.size()));

  run_des_scale_tier(json);
  json.write();
  return 0;
}
