// Fig. 13 — distribution of the converged utilities over repeated runs with
// a fixed set of arrived committees, varying α ∈ {1.5, 5, 10}, |I| = 50,
// Γ = 25, Ĉ = 50K. We print the CDF of converged utilities per algorithm.
// Expected shape: the SE distribution sits to the right of the baselines'
// for every α.

#include <cstdio>
#include <vector>

#include "baselines/dynamic_programming.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/whale_optimization.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

void print_cdf(const std::string& label, const std::vector<double>& sample) {
  const auto cdf = mvcom::common::cdf_at_quantiles(sample, 5);
  std::printf("  %-6s", label.c_str());
  for (const auto& point : cdf) {
    std::printf("  p%02.0f=%.0f", 100.0 * point.cumulative_probability,
                point.value);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto trace = mvcom::bench::paper_trace();
  constexpr std::uint64_t kRuns = 12;

  for (const double alpha : {1.5, 5.0, 10.0}) {
    const auto instance = mvcom::bench::paper_instance(
        trace, /*epoch_seed=*/13, /*num_committees=*/50, /*capacity=*/50'000,
        alpha, /*n_min=*/0);

    mvcom::bench::print_header(
        "Fig. 13 (alpha=" + std::to_string(alpha) + ")",
        "converged-utility distribution over repeated runs");

    std::vector<double> se_utilities;
    std::vector<double> sa_utilities;
    std::vector<double> woa_utilities;
    for (std::uint64_t run = 1; run <= kRuns; ++run) {
      mvcom::core::SeParams params;
      params.threads = 25;
      params.max_iterations = 1500;
      mvcom::core::SeScheduler se(instance, params, run * 31);
      se_utilities.push_back(se.run().utility);

      mvcom::baselines::SimulatedAnnealing sa({}, run * 37);
      sa_utilities.push_back(sa.solve(instance).utility);

      mvcom::baselines::WhaleOptimization woa({}, run * 41);
      woa_utilities.push_back(woa.solve(instance).utility);
    }
    // DP is deterministic: a point mass.
    mvcom::baselines::DynamicProgramming dp;
    const double dp_utility = dp.solve(instance).utility;

    print_cdf("SE", se_utilities);
    print_cdf("SA", sa_utilities);
    print_cdf("WOA", woa_utilities);
    mvcom::bench::print_row("DP (deterministic point mass)", dp_utility);
  }
  std::printf("\n  (expected shape: the SE distribution dominates the "
              "baselines' at every alpha)\n");
  return 0;
}
