// Fig. 11 — convergence of the four algorithms with a fixed set of arrived
// committees, varying |I| ∈ {500, 800, 1000}, with α = 1.5, Γ = 10 and
// Ĉ = 1000 · |I|. Expected shape: SE converges 20–30% above the baselines,
// and the gap widens as |I| grows.

#include <algorithm>
#include <cstdio>

#include "baselines/dynamic_programming.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/whale_optimization.hpp"
#include "bench_util.hpp"
#include "mvcom/se_scheduler.hpp"

int main() {
  const auto trace = mvcom::bench::paper_trace();

  for (const std::size_t committees : {500u, 800u, 1000u}) {
    const auto instance = mvcom::bench::paper_instance(
        trace, /*epoch_seed=*/committees, committees,
        /*capacity=*/1000 * committees, /*alpha=*/1.5, /*n_min=*/0);

    mvcom::bench::print_header(
        "Fig. 11 (|I|=" + std::to_string(committees) + ")",
        "algorithm convergence, a=1.5, Gamma=10, C=1000*|I|");

    mvcom::core::SeParams params;
    params.threads = 10;
    params.max_iterations = 9000;
    params.share_interval = 50;
    params.convergence_window = params.max_iterations;
    mvcom::core::SeScheduler se(instance, params, committees);
    const auto se_result = se.run();
    mvcom::bench::print_trace("SE", se_result.utility_trace, 10);

    mvcom::baselines::SaParams sa_params;
    sa_params.iterations = 20000;
    mvcom::baselines::SimulatedAnnealing sa(sa_params, committees);
    const auto sa_result = sa.solve(instance);
    mvcom::bench::print_trace("SA", sa_result.utility_trace, 10);

    mvcom::baselines::DynamicProgramming dp;
    const auto dp_result = dp.solve(instance);

    mvcom::baselines::WhaleOptimization woa({}, committees);
    const auto woa_result = woa.solve(instance);
    mvcom::bench::print_trace("WOA", woa_result.utility_trace, 10);

    mvcom::bench::print_row("SE  converged", se_result.utility);
    mvcom::bench::print_row("SA  converged", sa_result.utility);
    mvcom::bench::print_row("DP  (one-shot)", dp_result.utility);
    mvcom::bench::print_row("WOA converged", woa_result.utility);
    const double best_baseline =
        std::max({sa_result.utility, dp_result.utility, woa_result.utility});
    mvcom::bench::print_row(
        "SE advantage over best baseline (%)",
        100.0 * (se_result.utility - best_baseline) / best_baseline);
  }
  std::printf("\n  (expected shape: SE on top at every |I|; advantage does "
              "not shrink as |I| grows)\n");
  return 0;
}
