// Adversarial degradation bench — multi-epoch campaigns of every Adversary
// strategy against the EpochSupervisor, with the risk-adaptive committee
// sizing defense on and off. The headline experiment sweeps the attack
// budget for targeted corruption (the Blockguard threat model: corrupt the
// most valuable realized picks, file verification-passing forged
// submissions) and plots the degradation curves of honest permitted
// throughput and safety for both arms.
//
// PASS/FAIL criteria (the process exits 1 on FAIL):
//   * dominance — summed over the budget sweep, the risk-adaptive arm
//     strictly beats the static-N_min arm on BOTH honest permitted TXs and
//     mean safety at equal attack budget. (Per-budget rows are printed for
//     the curve; low budgets are near parity by design — there is little
//     detectable signal to adapt on — so the gate is on the sweep
//     aggregate.)
//   * never infeasible-while-feasible — across every campaign of every
//     strategy, the degradation ladder never reported infeasible while a
//     feasible selection existed on the live reports.
//
// The sidecar gates (tools/bench_compare.py vs bench/baselines/):
//   gate_rate_adaptive_honest_txs   aggregate honest TXs, adaptive arm
//   gate_rate_dominance_margin      adaptive − static aggregate honest TXs
//   gate_seconds_campaigns          wall clock of all campaigns

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "mvcom/adversary/campaign.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::core::AdversaryStrategy;
using mvcom::core::CampaignConfig;
using mvcom::core::CampaignResult;
using mvcom::core::run_adversarial_campaign;

constexpr std::size_t kCommittees = 20;
constexpr std::size_t kEpochs = 5;
constexpr std::uint64_t kSeed = 7;

void print_pass(const char* criterion, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", criterion);
}

/// Mirrors `mvcom chaos --adversary` defaults (tools/mvcom_cli.cpp), so the
/// bench numbers are reproducible from the CLI.
CampaignConfig campaign_config(AdversaryStrategy strategy, double budget,
                               bool risk_adaptive) {
  CampaignConfig config;
  config.adversary.strategy = strategy;
  config.adversary.budget = budget;
  config.committees = kCommittees;
  config.epochs = kEpochs;
  config.reserve =
      strategy == AdversaryStrategy::kChurnStorm ? kCommittees : 0;
  auto& sched = config.chaos.supervisor.scheduler;
  sched.alpha = 1.5;
  sched.capacity = 725 * kCommittees;
  sched.expected_committees = kCommittees + config.reserve;
  sched.n_max_fraction = 1.0;
  if (config.reserve > 0) {
    sched.n_min_fraction = 0.5 * static_cast<double>(kCommittees) /
                           static_cast<double>(kCommittees + config.reserve);
  }
  config.chaos.supervisor.risk.enabled = risk_adaptive;
  config.chaos.supervisor.risk.escalation_step = 1.2;
  config.chaos.supervisor.risk.boost_cap = 8;
  return config;
}

std::uint64_t honest_txs(const CampaignResult& result) {
  std::uint64_t total = 0;
  for (const auto& epoch : result.epochs) total += epoch.honest_permitted_txs;
  return total;
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("adversarial");
  mvcom::bench::print_header(
      "Adversarial degradation",
      "targeted corruption budget sweep, risk-adaptive vs static N_min");

  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 64;
  tc.target_total_txs = 64'000;
  mvcom::common::Rng trace_rng(kSeed + 1);
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);

  const std::vector<double> budgets = {0.15, 0.25, 0.35, 0.5};
  std::vector<double> adaptive_honest, static_honest;
  std::vector<double> adaptive_safety, static_safety;
  std::vector<double> adaptive_utility, static_utility;
  bool infeasible_while_feasible = false;

  const auto bench_start = std::chrono::steady_clock::now();
  std::printf("targeted corruption, %zu committees x %zu epochs, seed %llu\n",
              kCommittees, kEpochs, static_cast<unsigned long long>(kSeed));
  std::printf("  %-8s %-9s %14s %14s %10s %10s\n", "budget", "arm",
              "honest TXs", "utility", "safety", "n_min@end");
  for (const double budget : budgets) {
    for (const bool adaptive : {true, false}) {
      const auto config = campaign_config(
          AdversaryStrategy::kTargetedCorruption, budget, adaptive);
      const CampaignResult result =
          run_adversarial_campaign(trace, config, kSeed);
      infeasible_while_feasible |= result.infeasible_while_feasible;
      const double honest = static_cast<double>(honest_txs(result));
      const std::size_t n_min_end =
          result.epochs.empty() ? 0
                                : result.epochs.back().report.effective_n_min;
      std::printf("  %-8.2f %-9s %14.0f %14.1f %10.3f %10zu\n", budget,
                  adaptive ? "adaptive" : "static", honest,
                  result.mean_utility, result.mean_safety, n_min_end);
      (adaptive ? adaptive_honest : static_honest).push_back(honest);
      (adaptive ? adaptive_safety : static_safety)
          .push_back(result.mean_safety);
      (adaptive ? adaptive_utility : static_utility)
          .push_back(result.mean_utility);
    }
  }

  // The remaining strategies, adaptive arm, canonical budget: their
  // campaigns feed the never-infeasible criterion and the curve sidecar.
  std::printf("other strategies (adaptive arm, budget 0.35):\n");
  for (const AdversaryStrategy strategy :
       {AdversaryStrategy::kColludingMisreport, AdversaryStrategy::kAdaptiveDos,
        AdversaryStrategy::kChurnStorm}) {
    const auto config = campaign_config(strategy, 0.35, true);
    const CampaignResult result =
        run_adversarial_campaign(trace, config, kSeed);
    infeasible_while_feasible |= result.infeasible_while_feasible;
    std::printf("  %-20s honest %10llu TXs  utility %10.1f  safety %6.3f\n",
                mvcom::core::to_string(strategy),
                static_cast<unsigned long long>(honest_txs(result)),
                result.mean_utility, result.mean_safety);
    const std::string prefix = mvcom::core::to_string(strategy);
    json.set(prefix + "_honest_txs",
             static_cast<double>(honest_txs(result)));
    json.set(prefix + "_mean_safety", result.mean_safety);
  }
  const double campaign_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  double adaptive_total = 0, static_total = 0;
  double adaptive_safety_sum = 0, static_safety_sum = 0;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    adaptive_total += adaptive_honest[i];
    static_total += static_honest[i];
    adaptive_safety_sum += adaptive_safety[i];
    static_safety_sum += static_safety[i];
  }

  const bool dominates = adaptive_total > static_total &&
                         adaptive_safety_sum > static_safety_sum;
  std::printf("sweep aggregate: adaptive %0.f vs static %0.f honest TXs, "
              "safety %.3f vs %.3f\n",
              adaptive_total, static_total,
              adaptive_safety_sum / static_cast<double>(budgets.size()),
              static_safety_sum / static_cast<double>(budgets.size()));
  print_pass("risk-adaptive strictly dominates static N_min "
             "(honest TXs AND safety over the budget sweep)",
             dominates);
  print_pass("ladder never infeasible while a feasible selection exists",
             !infeasible_while_feasible);
  mvcom::bench::print_row("campaign seconds", campaign_seconds);

  json.set_series("budgets", budgets);
  json.set_series("adaptive_honest_txs", adaptive_honest);
  json.set_series("static_honest_txs", static_honest);
  json.set_series("adaptive_mean_safety", adaptive_safety);
  json.set_series("static_mean_safety", static_safety);
  json.set_series("adaptive_mean_utility", adaptive_utility);
  json.set_series("static_mean_utility", static_utility);
  json.set("gate_rate_adaptive_honest_txs", adaptive_total);
  json.set("gate_rate_dominance_margin", adaptive_total - static_total);
  json.set("gate_seconds_campaigns", campaign_seconds);
  json.set("dominates", dominates ? 1.0 : 0.0);
  json.set("infeasible_while_feasible",
           infeasible_while_feasible ? 1.0 : 0.0);
  json.write();
  return dominates && !infeasible_while_feasible ? 0 : 1;
}
