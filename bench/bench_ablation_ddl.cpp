// Ablation — the deadline-policy knob the paper leaves open (§III-A: "this
// paper is not trying to tell how to set such the DDL ... when the
// transaction capacity of the final block is limited, such DDL should be
// shorten as much as possible").
//
// Sweep the percentile deadline q from 0.5 to 1.0 (q = 1.0 is the paper's
// default t = max latency; q = 0.8 is the N_max rule) and report, per q:
// the deadline itself, how many committees straggle past it, the SE
// utility, the permitted TXs, and the cumulative age — the whole tradeoff
// surface.

#include <cstdio>

#include "bench_util.hpp"
#include "mvcom/ddl_policy.hpp"
#include "mvcom/se_scheduler.hpp"
#include "txn/workload.hpp"

int main() {
  const auto trace = mvcom::bench::paper_trace();
  // Build raw reports at the Fig. 9(a) scale: |I|=50, Ĉ=40K, α=1.5.
  mvcom::common::Rng rng(21);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 50;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  const auto workload = gen.epoch(rng);

  mvcom::bench::print_header(
      "Ablation", "DDL percentile sweep (|I|=50, C=40K, a=1.5, N_min=40%)");
  std::printf("  %6s %12s %12s %14s %12s %14s\n", "q", "DDL(s)",
              "stragglers", "SE utility", "TXs packed", "cum. age(s)");

  for (const double q : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const mvcom::core::PercentileDdl policy(q);
    const auto admission = policy.admit(workload.reports);
    const auto instance = mvcom::core::make_instance_with_ddl(
        workload.reports, policy, /*alpha=*/1.5, /*capacity=*/40'000,
        /*n_min=*/admission.admitted.size() * 2 / 5);
    if (!instance) continue;
    mvcom::core::SeParams params;
    params.threads = 10;
    params.max_iterations = 2500;
    mvcom::core::SeScheduler scheduler(*instance, params, 31);
    const auto result = scheduler.run();
    if (!result.feasible) {
      std::printf("  %6.2f %12.1f %12zu %14s\n", q, admission.deadline,
                  admission.stragglers, "(infeasible)");
      continue;
    }
    std::printf("  %6.2f %12.1f %12zu %14.1f %12llu %14.1f\n", q,
                admission.deadline, admission.stragglers, result.utility,
                static_cast<unsigned long long>(
                    instance->permitted_txs(result.best)),
                instance->cumulative_age(result.best));
  }
  std::printf(
      "  (expected shape: tighter deadlines trade TXs for freshness — the\n"
      "   cumulative age collapses long before the packed TXs do; around\n"
      "   q=0.8 the block loses little throughput but most of its age)\n");
  return 0;
}
