// Serve-mode sustained throughput — the streaming epoch pipeline under a
// multi-million-TX ingest stream (DESIGN.md §13).
//
// One trace, two executions of the identical schedule:
//   sequential — overlap depth 1, no pool: the bitwise-determinism reference;
//   pipelined  — overlap depth 2, worker pool: epoch e+1's formation (PoW
//                grinding, latency sampling, shard roots) overlaps epoch e's
//                SE scheduling + stage-4 final consensus.
//
// The two runs must agree on every per-epoch event_order_digest and on the
// fold-of-everything totals digest — a mismatch is a correctness bug, so the
// bench exits non-zero rather than publishing a number for a broken schedule.
//
// Gates (baseline-relative, tools/bench_compare.py):
//   gate_rate_serve_steady_txs        committed TX/s of the pipelined run;
//   gate_rate_serve_pipeline_speedup  sequential wall / pipelined wall —
//                                     ~1.0 on a single hardware thread, >1
//                                     on multi-core; gated so overlap never
//                                     *regresses* relative to the recorded
//                                     baseline host.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "pipeline/epoch_pipeline.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::pipeline::EpochPipeline;
using mvcom::pipeline::PipelineConfig;
using mvcom::pipeline::PipelineTotals;

struct TimedRun {
  PipelineTotals totals;
  std::vector<std::uint64_t> epoch_digests;
  double seconds = 0.0;
};

TimedRun run(const mvcom::txn::Trace& trace, const PipelineConfig& config) {
  TimedRun out;
  EpochPipeline pipe(trace, config);
  const auto t0 = std::chrono::steady_clock::now();
  out.totals = pipe.run([&](const mvcom::pipeline::EpochReport& r) {
    out.epoch_digests.push_back(r.event_order_digest);
  });
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

int main() {
  mvcom::bench::BenchJson json("serve_throughput");

  // Sustained tier: a ~20M-TX stream over 8 epoch windows. The TX volume
  // rides in the block counts (accounting is O(blocks), not O(TXs)), so the
  // tier measures the real per-epoch engine — formation with PoW grinding,
  // SE exploration, the stage-4 consensus DES — at a ≥10M-committed scale.
  mvcom::common::Rng trace_rng(2016);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 3000;
  tc.target_total_txs = 20'000'000;
  tc.mean_interblock_seconds = 15.0;
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);

  PipelineConfig config;
  config.committees = 300;
  config.epochs = 8;
  config.capacity_fraction = 0.6;
  config.se.threads = 4;
  config.se.max_iterations = 300;
  config.se.convergence_window = 300;
  config.pow_grind_bits = 8;
  config.seed = 1;

  mvcom::bench::print_header(
      "Serve throughput",
      "streaming pipeline, sequential reference vs depth-2 overlap");

  PipelineConfig seq = config;
  seq.overlap_depth = 1;
  seq.workers = 0;
  const TimedRun sequential = run(trace, seq);

  PipelineConfig pipe = config;
  pipe.overlap_depth = 2;
  pipe.workers = 2;
  const TimedRun pipelined = run(trace, pipe);

  // Determinism first: the overlapped schedule must BE the sequential one.
  bool identical = sequential.totals.digest == pipelined.totals.digest &&
                   sequential.epoch_digests == pipelined.epoch_digests;
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: pipelined digests diverge from the sequential "
                 "reference (totals %016llx vs %016llx)\n",
                 static_cast<unsigned long long>(sequential.totals.digest),
                 static_cast<unsigned long long>(pipelined.totals.digest));
    return 1;
  }
  if (pipelined.totals.committed_txs < 10'000'000) {
    std::fprintf(stderr,
                 "FATAL: sustained tier committed only %llu TXs (< 10M) — "
                 "the tier no longer measures the promised scale\n",
                 static_cast<unsigned long long>(
                     pipelined.totals.committed_txs));
    return 1;
  }

  const double steady_rate =
      static_cast<double>(pipelined.totals.committed_txs) / pipelined.seconds;
  const double speedup = sequential.seconds / pipelined.seconds;
  std::printf("  epochs %zu | ingested %llu TXs | committed %llu | "
              "pending %llu\n",
              pipelined.totals.epochs_run,
              static_cast<unsigned long long>(pipelined.totals.ingested_txs),
              static_cast<unsigned long long>(pipelined.totals.committed_txs),
              static_cast<unsigned long long>(pipelined.totals.pending_txs));
  std::printf("  sequential %.3fs | pipelined %.3fs | speedup %.3fx | "
              "steady state %.0f committed TX/s\n",
              sequential.seconds, pipelined.seconds, speedup, steady_rate);
  std::printf("  digests identical: yes (totals %016llx)\n",
              static_cast<unsigned long long>(pipelined.totals.digest));

  json.set("committed_txs",
           static_cast<double>(pipelined.totals.committed_txs));
  json.set("pending_txs", static_cast<double>(pipelined.totals.pending_txs));
  json.set("sequential_seconds", sequential.seconds);
  json.set("pipelined_seconds", pipelined.seconds);
  json.set("digests_identical", 1.0);
  json.set("gate_rate_serve_steady_txs", steady_rate);
  json.set("gate_rate_serve_pipeline_speedup", speedup);
  json.write();
  return 0;
}
