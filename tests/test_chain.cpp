// Tests for the root chain (chain/block, chain/root_chain) and the
// shard-submission verification layer (sharding/verification).

#include <gtest/gtest.h>

#include <sstream>

#include "chain/checkpoint.hpp"
#include "chain/root_chain.hpp"
#include "common/rng.hpp"
#include "sharding/verification.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::chain::AppendError;
using mvcom::chain::Block;
using mvcom::chain::RootChain;
using mvcom::crypto::Digest;
using mvcom::crypto::Sha256;

std::vector<Digest> roots(int n, const std::string& tag = "r") {
  std::vector<Digest> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Sha256::hash(tag + std::to_string(i)));
  }
  return out;
}

// --- blocks --------------------------------------------------------------------

TEST(BlockTest, HeaderHashBindsEveryField) {
  Block base = Block::assemble(nullptr, roots(3), 100, 5.0, "p", "rand");
  const Digest original = base.header.hash();
  auto mutate = [&](auto&& change) {
    Block copy = base;
    change(copy);
    EXPECT_NE(copy.header.hash(), original);
  };
  mutate([](Block& b) { b.header.height = 7; });
  mutate([](Block& b) { b.header.tx_count = 101; });
  mutate([](Block& b) { b.header.timestamp = 6.0; });
  mutate([](Block& b) { b.header.proposer = "q"; });
  mutate([](Block& b) { b.header.epoch_randomness = "other"; });
  mutate([](Block& b) { b.header.prev_hash = Sha256::hash("x"); });
}

TEST(BlockTest, HeaderHashIsNotAmbiguousUnderFieldSplits) {
  // "ab" + "c" must not collide with "a" + "bc" (length-prefixed encoding).
  Block a = Block::assemble(nullptr, {}, 0, 0.0, "ab", "c");
  Block b = Block::assemble(nullptr, {}, 0, 0.0, "a", "bc");
  EXPECT_NE(a.header.hash(), b.header.hash());
}

TEST(BlockTest, MerkleConsistencyDetectsTampering) {
  Block block = Block::assemble(nullptr, roots(4), 10, 1.0, "p", "r");
  EXPECT_TRUE(block.merkle_consistent());
  block.shard_roots[2] = Sha256::hash("swapped");
  EXPECT_FALSE(block.merkle_consistent());
}

TEST(BlockTest, ShardInclusionProofsVerify) {
  const Block block = Block::assemble(nullptr, roots(5), 10, 1.0, "p", "r");
  for (std::size_t i = 0; i < 5; ++i) {
    const auto proof = block.prove_shard(i);
    EXPECT_TRUE(mvcom::crypto::MerkleTree::verify(
        block.shard_roots[i], proof, block.header.shard_merkle_root));
  }
}

// --- root chain ------------------------------------------------------------------

TEST(RootChainTest, GenesisIsValid) {
  const RootChain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_TRUE(chain.validate_full());
}

TEST(RootChainTest, ExtendGrowsAValidChain) {
  RootChain chain;
  for (int e = 1; e <= 5; ++e) {
    chain.extend(roots(e), static_cast<std::uint64_t>(100 * e),
                 1000.0 * e, "final", "rand" + std::to_string(e));
  }
  EXPECT_EQ(chain.height(), 5u);
  EXPECT_TRUE(chain.validate_full());
  EXPECT_EQ(chain.total_txs(), 100u + 200 + 300 + 400 + 500);
  EXPECT_EQ(chain.at(3).header.height, 3u);
}

TEST(RootChainTest, AppendRejectsWrongHeight) {
  RootChain chain;
  Block block = Block::assemble(&chain.tip().header, roots(1), 10, 1.0, "p", "r");
  block.header.height = 5;
  EXPECT_EQ(chain.append(block), AppendError::kWrongHeight);
  EXPECT_EQ(chain.size(), 1u);
}

TEST(RootChainTest, AppendRejectsBrokenHashLink) {
  RootChain chain;
  Block block = Block::assemble(&chain.tip().header, roots(1), 10, 1.0, "p", "r");
  block.header.prev_hash = Sha256::hash("somewhere else");
  EXPECT_EQ(chain.append(block), AppendError::kBrokenHashLink);
}

TEST(RootChainTest, AppendRejectsMerkleMismatch) {
  RootChain chain;
  Block block = Block::assemble(&chain.tip().header, roots(2), 10, 1.0, "p", "r");
  block.shard_roots.push_back(Sha256::hash("smuggled"));
  EXPECT_EQ(chain.append(block), AppendError::kMerkleMismatch);
}

TEST(RootChainTest, AppendRejectsTimeTravel) {
  RootChain chain;
  chain.extend(roots(1), 10, 100.0, "p", "r");
  Block block = Block::assemble(&chain.tip().header, roots(1), 10, 50.0, "p", "r");
  EXPECT_EQ(chain.append(block), AppendError::kNonMonotonicTimestamp);
}

TEST(RootChainTest, AtBeyondTipThrows) {
  const RootChain chain;
  EXPECT_THROW(static_cast<void>(chain.at(1)), std::out_of_range);
}

TEST(RootChainTest, FullValidationCatchesDeepTampering) {
  RootChain chain;
  for (int e = 1; e <= 3; ++e) {
    chain.extend(roots(e), 100, 10.0 * e, "p", "r");
  }
  EXPECT_TRUE(chain.validate_full());
  // Forge a copy with a tampered middle block: revalidation must fail.
  RootChain tampered = chain;
  const_cast<Block&>(tampered.at(1)).header.tx_count = 999'999;
  EXPECT_FALSE(tampered.validate_full());
}

// --- shard-submission verification ------------------------------------------------

TEST(SubmissionTest, HonestSubmissionVerifies) {
  using mvcom::sharding::build_submission;
  using mvcom::sharding::verify_submission;
  const auto submission = build_submission(
      3, {{"hash-a", 100}, {"hash-b", 250}, {"hash-c", 7}});
  EXPECT_EQ(submission.claimed_tx_count, 357u);
  EXPECT_FALSE(verify_submission(submission).has_value());
}

TEST(SubmissionTest, InflatedCountIsDetected) {
  using mvcom::sharding::build_submission;
  using mvcom::sharding::SubmissionError;
  using mvcom::sharding::verify_submission;
  auto submission = build_submission(3, {{"hash-a", 100}, {"hash-b", 250}});
  submission.claimed_tx_count += 10'000;  // committee inflates its s_i
  EXPECT_EQ(verify_submission(submission), SubmissionError::kCountMismatch);
}

TEST(SubmissionTest, TamperedEntryBreaksTheRoot) {
  using mvcom::sharding::build_submission;
  using mvcom::sharding::SubmissionError;
  using mvcom::sharding::verify_submission;
  auto submission = build_submission(3, {{"hash-a", 100}, {"hash-b", 250}});
  submission.entries[1].tx_count = 9'999;  // count inflated *inside* entries
  // The root no longer matches — count binding works.
  EXPECT_EQ(verify_submission(submission), SubmissionError::kRootMismatch);
}

TEST(SubmissionTest, EmptyShardRejected) {
  using mvcom::sharding::build_submission;
  using mvcom::sharding::SubmissionError;
  using mvcom::sharding::verify_submission;
  EXPECT_EQ(verify_submission(build_submission(1, {})),
            SubmissionError::kEmpty);
}

TEST(SubmissionTest, TraceBackedSubmissionRoundtrips) {
  mvcom::common::Rng rng(7);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 20;
  tc.target_total_txs = 20'000;
  const auto trace = mvcom::txn::generate_trace(tc, rng);
  const std::vector<std::size_t> indices{2, 5, 11};
  const auto submission =
      mvcom::sharding::build_submission_from_trace(9, trace, indices);
  EXPECT_EQ(submission.entries.size(), 3u);
  EXPECT_EQ(submission.claimed_tx_count,
            trace.blocks[2].tx_count + trace.blocks[5].tx_count +
                trace.blocks[11].tx_count);
  EXPECT_FALSE(mvcom::sharding::verify_submission(submission).has_value());
}

// --- checkpoints ---------------------------------------------------------------

RootChain sample_chain() {
  RootChain chain("serve-genesis");
  double t = 100.0;
  for (int e = 0; e < 5; ++e) {
    t += 50.0 + e;
    chain.extend(roots(e % 3 + 1, "cp" + std::to_string(e)),
                 static_cast<std::uint64_t>(1000 * (e + 1)), t,
                 "final-committee", "rand-" + std::to_string(e));
  }
  return chain;
}

TEST(CheckpointTest, RoundtripRestoresTheExactChain) {
  const RootChain chain = sample_chain();
  std::stringstream buffer;
  ASSERT_TRUE(mvcom::chain::write_checkpoint(chain, buffer));
  const auto restored = mvcom::chain::load_checkpoint(buffer);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->validate_full());
  ASSERT_EQ(restored->size(), chain.size());
  for (std::uint64_t h = 0; h < chain.size(); ++h) {
    EXPECT_EQ(restored->at(h).header.hash(), chain.at(h).header.hash())
        << "height " << h;
  }
  EXPECT_EQ(restored->total_txs(), chain.total_txs());
}

TEST(CheckpointTest, TruncationFailsTheChecksum) {
  // The torn-write of a daemon killed mid-checkpoint: any prefix must be
  // rejected before structural parsing even starts.
  const RootChain chain = sample_chain();
  std::stringstream buffer;
  ASSERT_TRUE(mvcom::chain::write_checkpoint(chain, buffer));
  const std::string full = buffer.str();
  for (const std::size_t keep :
       {full.size() - 1, full.size() / 2, std::size_t{10}}) {
    std::stringstream cut(full.substr(0, keep));
    EXPECT_FALSE(mvcom::chain::load_checkpoint(cut).has_value())
        << "prefix of " << keep << " bytes was accepted";
  }
}

TEST(CheckpointTest, TamperedPayloadIsRejected) {
  const RootChain chain = sample_chain();
  std::stringstream buffer;
  ASSERT_TRUE(mvcom::chain::write_checkpoint(chain, buffer));
  std::string text = buffer.str();
  // Flip one tx_count digit somewhere in the middle of the payload.
  const std::size_t at = text.find("1000");
  ASSERT_NE(at, std::string::npos);
  text[at] = '2';
  std::stringstream tampered(text);
  EXPECT_FALSE(mvcom::chain::load_checkpoint(tampered).has_value());
}

TEST(CheckpointTest, EscapedStringsSurviveTheTokenizer) {
  RootChain chain("genesis with spaces\tand tabs");
  chain.extend(roots(2), 42, 7.5, "proposer with % and space", "r 1");
  std::stringstream buffer;
  ASSERT_TRUE(mvcom::chain::write_checkpoint(chain, buffer));
  const auto restored = mvcom::chain::load_checkpoint(buffer);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->at(1).header.proposer, "proposer with % and space");
  EXPECT_EQ(restored->at(1).header.epoch_randomness, "r 1");
  EXPECT_EQ(restored->tip().header.hash(), chain.tip().header.hash());
}

}  // namespace
