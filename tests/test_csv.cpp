// Tests for the RFC-4180-style CSV reader/writer.

#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace {

using mvcom::common::CsvRow;
using mvcom::common::CsvWriter;
using mvcom::common::escape_csv_field;
using mvcom::common::parse_csv_line;
using mvcom::common::read_csv;

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mvcom-csv-" + std::to_string(std::rand()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST(ParseCsvLineTest, SplitsFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"), (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line("single"), (CsvRow{"single"}));
  EXPECT_EQ(parse_csv_line("x,,z"), (CsvRow{"x", "", "z"}));
  EXPECT_EQ(parse_csv_line(",,"), (CsvRow{"", "", ""}));
}

TEST(ParseCsvLineTest, CustomSeparator) {
  EXPECT_EQ(parse_csv_line("a;b;c", ';'), (CsvRow{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, QuotedFields) {
  EXPECT_EQ(parse_csv_line("a,\"b\",c"), (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line("\"a,b\",c"), (CsvRow{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line("\"say \"\"hi\"\"\",x"), (CsvRow{"say \"hi\"", "x"}));
  EXPECT_EQ(parse_csv_line("\"\",\"\""), (CsvRow{"", ""}));
}

TEST(ParseCsvLineTest, MalformedQuotingThrows) {
  // Unterminated quoted field.
  EXPECT_THROW(parse_csv_line("a,\"b"), std::invalid_argument);
  // Stray quote inside an unquoted field.
  EXPECT_THROW(parse_csv_line("a,b\"c,d"), std::invalid_argument);
  // Text after the closing quote.
  EXPECT_THROW(parse_csv_line("\"a\"b,c"), std::invalid_argument);
  // Embedded newline — single-line API refuses what read_csv would accept.
  EXPECT_THROW(parse_csv_line("\"a\nb\",c\nd,e"), std::invalid_argument);
}

TEST(EscapeCsvFieldTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(escape_csv_field("plain"), "plain");
  EXPECT_EQ(escape_csv_field(""), "");
  EXPECT_EQ(escape_csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(escape_csv_field("he said \"hi\""), "\"he said \"\"hi\"\"\"");
  EXPECT_EQ(escape_csv_field("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(escape_csv_field("a;b", ';'), "\"a;b\"");
  EXPECT_EQ(escape_csv_field("a,b", ';'), "a,b");
}

TEST_F(CsvTest, WriteReadRoundtrip) {
  const auto path = dir_ / "data.csv";
  {
    CsvWriter writer(path);
    writer.write_row({"id", "value"});
    writer.write_row({"1", "3.5"});
    writer.write_row({"2", "7.25"});
  }
  const auto file = read_csv(path, /*expect_header=*/true);
  EXPECT_EQ(file.header, (CsvRow{"id", "value"}));
  ASSERT_EQ(file.rows.size(), 2u);
  EXPECT_EQ(file.rows[1], (CsvRow{"2", "7.25"}));
}

TEST_F(CsvTest, NoHeaderMode) {
  const auto path = dir_ / "raw.csv";
  {
    CsvWriter writer(path);
    writer.write_row({"1", "2"});
    writer.write_row({"3", "4"});
  }
  const auto file = read_csv(path, /*expect_header=*/false);
  EXPECT_TRUE(file.header.empty());
  EXPECT_EQ(file.rows.size(), 2u);
}

TEST_F(CsvTest, SkipsBlankLinesAndCarriageReturns) {
  const auto path = dir_ / "crlf.csv";
  {
    std::ofstream out(path);
    out << "a,b\r\n\r\n1,2\r\n";
  }
  const auto file = read_csv(path, /*expect_header=*/true);
  EXPECT_EQ(file.header, (CsvRow{"a", "b"}));
  ASSERT_EQ(file.rows.size(), 1u);
  EXPECT_EQ(file.rows[0], (CsvRow{"1", "2"}));
}

TEST_F(CsvTest, QuotedRoundtripWithSeparatorsNewlinesAndEmptyFields) {
  const auto path = dir_ / "quoted.csv";
  const CsvRow header{"name", "note", "empty"};
  const CsvRow row0{"alpha, beta", "first line\nsecond line", ""};
  const CsvRow row1{"quote \" inside", "trailing,comma,", ""};
  const CsvRow row2{"", "", ""};
  {
    CsvWriter writer(path);
    writer.write_row(header);
    writer.write_row(row0);
    writer.write_row(row1);
    writer.write_row(row2);
  }
  const auto file = read_csv(path, /*expect_header=*/true);
  EXPECT_EQ(file.header, header);
  ASSERT_EQ(file.rows.size(), 3u);
  EXPECT_EQ(file.rows[0], row0);
  EXPECT_EQ(file.rows[1], row1);
  EXPECT_EQ(file.rows[2], row2);
}

TEST_F(CsvTest, QuotedFieldSpanningCrlfLines) {
  const auto path = dir_ / "span.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\r\n\"multi\r\nline\",2\r\n";
  }
  const auto file = read_csv(path, /*expect_header=*/true);
  ASSERT_EQ(file.rows.size(), 1u);
  EXPECT_EQ(file.rows[0], (CsvRow{"multi\r\nline", "2"}));
}

TEST_F(CsvTest, MalformedQuotingInFileThrows) {
  const auto path = dir_ / "badquote.csv";
  {
    std::ofstream out(path);
    out << "a,b\n\"unterminated,2\n";
  }
  EXPECT_THROW(read_csv(path, true), std::invalid_argument);
}

TEST_F(CsvTest, InconsistentArityThrows) {
  const auto path = dir_ / "bad.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2,3\n";
  }
  EXPECT_THROW(read_csv(path, true), std::runtime_error);
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv(dir_ / "nope.csv", true), std::runtime_error);
}

TEST_F(CsvTest, WriterToUnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace
