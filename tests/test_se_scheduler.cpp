// Tests for the SE scheduler (Alg. 1–3): feasibility invariants,
// near-optimality against exhaustive ground truth, the Γ-threads effect,
// and online join/leave dynamics.

#include "mvcom/se_scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/exhaustive.hpp"
#include "common/rng.hpp"

namespace {

using mvcom::baselines::Exhaustive;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;
using mvcom::core::Selection;
using mvcom::core::SeParams;
using mvcom::core::SeResult;
using mvcom::core::SeScheduler;

/// Random instance small enough for exhaustive ground truth.
EpochInstance random_instance(std::uint64_t seed, std::size_t n = 12,
                              std::size_t n_min = 3) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Committee c;
    c.id = static_cast<std::uint32_t>(i);
    c.txs = 500 + rng.below(1500);
    c.latency = 600.0 + rng.uniform(0.0, 900.0);
    total += c.txs;
    committees.push_back(c);
  }
  // Capacity ~70% of the total: the knapsack genuinely binds.
  return EpochInstance(std::move(committees), 1.5, (total * 7) / 10, n_min);
}

SeParams quick_params(std::size_t threads = 2) {
  SeParams p;
  p.threads = threads;
  p.max_iterations = 3000;
  p.convergence_window = 400;
  return p;
}

TEST(SeSchedulerTest, ResultIsAlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EpochInstance inst = random_instance(seed);
    SeScheduler scheduler(inst, quick_params(), seed);
    const SeResult result = scheduler.run();
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_TRUE(inst.feasible(result.best)) << "seed " << seed;
    EXPECT_NEAR(inst.utility(result.best), result.utility, 1e-6);
  }
}

TEST(SeSchedulerTest, ConvergesNearExhaustiveOptimum) {
  // Remark 1 bounds the approximation loss by (1/β)log|F|; on these small
  // instances the converged SE solution should be within a few percent of
  // the exact optimum (and usually exact).
  Exhaustive exact;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const EpochInstance inst = random_instance(seed);
    const auto truth = exact.solve(inst);
    ASSERT_TRUE(truth.feasible);
    SeScheduler scheduler(inst, quick_params(4), seed * 17);
    const SeResult result = scheduler.run();
    ASSERT_TRUE(result.feasible);
    EXPECT_LE(result.utility, truth.utility + 1e-6) << "seed " << seed;
    EXPECT_GE(result.utility, 0.93 * truth.utility)
        << "seed " << seed << ": SE " << result.utility << " vs optimum "
        << truth.utility;
  }
}

TEST(SeSchedulerTest, UtilityTraceReachesConvergence) {
  const EpochInstance inst = random_instance(3);
  SeScheduler scheduler(inst, quick_params(), 99);
  const SeResult result = scheduler.run();
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.utility_trace.empty());
  // The trace's maximum equals the reported converged utility.
  double max_seen = -1e300;
  for (const double u : result.utility_trace) {
    if (!std::isnan(u)) max_seen = std::max(max_seen, u);
  }
  EXPECT_NEAR(max_seen, result.utility, 1e-9);
}

TEST(SeSchedulerTest, SelectionsRespectCapacityThroughoutTheRun) {
  const EpochInstance inst = random_instance(4);
  SeScheduler scheduler(inst, quick_params(1), 5);
  for (int it = 0; it < 500; ++it) {
    scheduler.step();
    if (it % 50 == 0) {
      const Selection x = scheduler.current_selection();
      if (x.empty()) continue;
      const auto st = inst.stats(x);
      ASSERT_LE(st.txs, inst.capacity()) << "iteration " << it;
      ASSERT_GE(st.chosen, inst.n_min()) << "iteration " << it;
    }
  }
}

TEST(SeSchedulerTest, MoreThreadsConvergeAtLeastAsWell) {
  // Fig. 8's qualitative claim: larger Γ converges to at least as good a
  // utility. Averaged over seeds to damp noise.
  double single = 0.0;
  double multi = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const EpochInstance inst = random_instance(seed, 14);
    SeParams p1 = quick_params(1);
    p1.max_iterations = 800;
    p1.convergence_window = 900;  // never early-stop: fixed budget
    SeParams p8 = p1;
    p8.threads = 8;
    SeScheduler s1(inst, p1, seed);
    SeScheduler s8(inst, p8, seed);
    single += s1.run().utility;
    multi += s8.run().utility;
  }
  EXPECT_GE(multi, single);
}

TEST(SeSchedulerTest, InfeasibleNminYieldsNoSolution) {
  // N_min = |I| but the full set exceeds capacity: no feasible selection.
  std::vector<Committee> committees{{0, 100, 1.0}, {1, 100, 2.0}};
  const EpochInstance inst(committees, 1.0, 150, 2);
  SeScheduler scheduler(inst, quick_params(), 1);
  const SeResult result = scheduler.run();
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.best.empty());
}

TEST(SeSchedulerTest, FullSetSolutionUsedWhenCapacityAllows) {
  // Everything fits: the optimum (all positive gains) is the full set,
  // which only exists via the static f_|I| solution of Alg. 1 line 25.
  std::vector<Committee> committees;
  for (std::uint32_t i = 0; i < 6; ++i) {
    committees.push_back({i, 100, 500.0 + i});
  }
  const EpochInstance inst(committees, 10.0, 10'000, 0);
  SeScheduler scheduler(inst, quick_params(), 2);
  const SeResult result = scheduler.run();
  ASSERT_TRUE(result.feasible);
  for (const auto bit : result.best) EXPECT_EQ(bit, 1);
}

TEST(SeSchedulerTest, RejectsInvalidParams) {
  const EpochInstance inst = random_instance(1);
  SeParams no_threads;
  no_threads.threads = 0;
  EXPECT_THROW(SeScheduler(inst, no_threads, 1), std::invalid_argument);
  SeParams bad_beta;
  bad_beta.beta = 0.0;
  EXPECT_THROW(SeScheduler(inst, bad_beta, 1), std::invalid_argument);
}

// --- Online dynamics ---------------------------------------------------------

TEST(SeSchedulerDynamicsTest, JoinGrowsTheInstanceAndStaysFeasible) {
  const EpochInstance inst = random_instance(7, 10, 2);
  SeScheduler scheduler(inst, quick_params(1), 3);
  for (int i = 0; i < 200; ++i) scheduler.step();
  scheduler.add_committee({100, 800, 950.0});
  EXPECT_EQ(scheduler.instance().size(), 11u);
  for (int i = 0; i < 200; ++i) scheduler.step();
  const Selection x = scheduler.current_selection();
  ASSERT_FALSE(x.empty());
  EXPECT_TRUE(scheduler.instance().feasible(x));
}

TEST(SeSchedulerDynamicsTest, LeaveShrinksAndRecovers) {
  const EpochInstance inst = random_instance(8, 10, 2);
  SeScheduler scheduler(inst, quick_params(2), 4);
  for (int i = 0; i < 300; ++i) scheduler.step();
  const double before = scheduler.current_utility();
  ASSERT_FALSE(std::isnan(before));

  // Fail a committee that is in the current best selection so the trimmed
  // space (Fig. 7) really bites.
  const Selection x = scheduler.current_selection();
  std::uint32_t victim = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i]) {
      victim = scheduler.instance().committees()[i].id;
      break;
    }
  }
  scheduler.remove_committee(victim);
  EXPECT_EQ(scheduler.instance().size(), 9u);
  for (int i = 0; i < 600; ++i) scheduler.step();
  const Selection after = scheduler.current_selection();
  ASSERT_FALSE(after.empty());
  EXPECT_TRUE(scheduler.instance().feasible(after));
  // The failed committee is gone from the instance entirely.
  for (const Committee& c : scheduler.instance().committees()) {
    EXPECT_NE(c.id, victim);
  }
}

TEST(SeSchedulerDynamicsTest, RemoveUnknownIdIsNoop) {
  const EpochInstance inst = random_instance(9);
  SeScheduler scheduler(inst, quick_params(1), 5);
  scheduler.remove_committee(424242);
  EXPECT_EQ(scheduler.instance().size(), inst.size());
}

TEST(SeSchedulerDynamicsTest, DeadlineTracksJoinedStraggler) {
  const EpochInstance inst = random_instance(10);
  SeScheduler scheduler(inst, quick_params(1), 6);
  const double deadline_before = scheduler.instance().deadline();
  scheduler.add_committee({200, 700, deadline_before + 500.0});
  EXPECT_DOUBLE_EQ(scheduler.instance().deadline(), deadline_before + 500.0);
}

// Sweep β: larger β should (stochastically) not hurt converged utility on a
// fixed instance — the stationary distribution concentrates on optima.
class SeBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeBetaSweep, ConvergedUtilityWithinOptimalityLoss) {
  const double beta = GetParam();
  const EpochInstance inst = random_instance(11, 12, 2);
  Exhaustive exact;
  const auto truth = exact.solve(inst);
  ASSERT_TRUE(truth.feasible);
  SeParams p = quick_params(4);
  p.beta = beta;
  SeScheduler scheduler(inst, p, 77);
  const SeResult result = scheduler.run();
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.utility, 0.9 * truth.utility) << "beta " << beta;
}

INSTANTIATE_TEST_SUITE_P(Betas, SeBetaSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

// Regression: Rng::uniform01() draws from the half-open [0,1), and u == 0
// fed into ln(−ln(1−u)) yields −∞ — a timer that wins the Eq.-(8) race
// deterministically regardless of β·ΔU. The draw must be clamped into the
// open interval (0,1).
TEST(SeTimerEdgeTest, ZeroDrawYieldsFiniteLogTimer) {
  const double at_zero = mvcom::core::detail::log_unit_exponential(0.0);
  EXPECT_TRUE(std::isfinite(at_zero));
  // Still an extreme (very negative) value: an "instant" but valid timer.
  EXPECT_LT(at_zero, -100.0);
}

TEST(SeTimerEdgeTest, LogUnitExponentialIsMonotoneAndExactInTheInterior) {
  // ln(−ln(1−u)) is strictly increasing on (0,1) — larger u, later timer.
  double prev = mvcom::core::detail::log_unit_exponential(0.0);
  for (const double u : {1e-300, 1e-12, 0.1, 0.5, 0.9, 0.999999}) {
    const double v = mvcom::core::detail::log_unit_exponential(u);
    EXPECT_TRUE(std::isfinite(v)) << "u=" << u;
    EXPECT_GT(v, prev) << "u=" << u;
    prev = v;
  }
  // Interior values are untouched by the clamp: ln(−ln(0.5)) at u = 0.5.
  EXPECT_DOUBLE_EQ(mvcom::core::detail::log_unit_exponential(0.5),
                   std::log(-std::log1p(-0.5)));
}

}  // namespace
